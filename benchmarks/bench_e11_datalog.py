"""E11 -- graph datalog: unbounded search, naive vs semi-naive.

Claim operationalized (section 3): "some forms of unbounded search will
require recursive queries, i.e., a 'graph datalog'".  Expected shape: both
strategies compute identical fixpoints; semi-naive wins increasingly with
recursion depth (on a long chain the naive strategy re-derives the whole
frontier every round, going quadratic, while semi-naive stays linear in
derived facts).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table, timed

from repro.core.graph import Graph
from repro.datalog import run_on_graph
from repro.datasets import generate_web

REACH = """
reach(X) :- root(X).
reach(Y) :- reach(X), edge(X, L, Y).
"""

CONSTRAINED = """
reach(X) :- root(X).
reach(Y) :- reach(X), edge(X, L, Y), L != "keyword".
interesting(X) :- reach(X), not leaf(X).
"""


def chain(n: int) -> Graph:
    g = Graph()
    nodes = [g.new_node() for _ in range(n)]
    g.set_root(nodes[0])
    for i in range(n - 1):
        g.add_edge(nodes[i], "next", nodes[i + 1])
    return g


def test_e11_chain_depth_sweep(benchmark):
    rows = []
    for n in (50, 100, 200, 400):
        g = chain(n)
        semi_s, semi = timed(lambda: run_on_graph(REACH, g, "reach"), repeat=1)
        naive_s, naive = timed(
            lambda: run_on_graph(REACH, g, "reach", semi_naive=False), repeat=1
        )
        assert semi == naive
        rows.append(
            (
                n,
                len(semi),
                f"{semi_s * 1e3:.1f}ms",
                f"{naive_s * 1e3:.1f}ms",
                f"x{naive_s / semi_s:.1f}",
            )
        )
    print_table(
        "E11: reachability on an n-chain, semi-naive vs naive",
        ["chain length", "facts", "semi-naive", "naive", "naive/semi"],
        rows,
    )
    # shape: the gap grows with depth
    ratios = [float(r[4][1:]) for r in rows]
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 3.0

    g = chain(200)
    benchmark(lambda: run_on_graph(REACH, g, "reach"))


def test_e11_web_with_negation(benchmark):
    web = generate_web(150, seed=111)
    semi_s, semi = timed(
        lambda: run_on_graph(CONSTRAINED, web, "interesting"), repeat=1
    )
    naive_s, naive = timed(
        lambda: run_on_graph(CONSTRAINED, web, "interesting", semi_naive=False),
        repeat=1,
    )
    assert semi == naive
    print_table(
        "E11b: stratified negation on a cyclic web graph",
        ["strategy", "facts", "time"],
        [
            ("semi-naive", len(semi), f"{semi_s * 1e3:.1f}ms"),
            ("naive", len(naive), f"{naive_s * 1e3:.1f}ms"),
        ],
    )
    benchmark(lambda: run_on_graph(CONSTRAINED, web, "interesting"))
