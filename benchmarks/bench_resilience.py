"""Resilience overhead and recovery -- the layer must be (nearly) free.

Claims operationalized:

* **Fault-free overhead**: attaching retry policies and breakers to the
  E1 (external browsing) and E5 (distributed RPQ) hot paths costs under
  5% when nothing fails -- the guarded call only pays for bookkeeping,
  and the unguarded paths pay nothing at all.
* **Recovery cost**: under injected transient failure (10% / 50% per
  contact) every query still answers exactly; the price is retry
  attempts and *simulated* backoff seconds, both fully deterministic
  functions of the fault seed (asserted by replaying the schedule).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table, timed

from repro.automata.product import rpq_nodes
from repro.core.builder import from_obj
from repro.core.graph import Graph
from repro.datasets import generate_web
from repro.distributed import (
    distributed_rpq,
    distributed_rpq_resilient,
    partition_graph,
)
from repro.resilience import FaultInjector, RetryPolicy, SimulatedClock
from repro.storage.external import ExternalGraph

NUM_REGIONS = 120
PATTERN = "Entry.Detail.Movie.Title"


def external_base() -> Graph:
    g = from_obj({"Entry": [{"Id": i} for i in range(NUM_REGIONS)]})
    for i, node in enumerate(sorted(rpq_nodes(g, "Entry"))):
        detail = g.new_node()
        g.add_edge(node, "Detail", detail)
        ExternalGraph.add_stub(g, detail, f"page-{i}")
    return g


def fetch_page(key: str) -> Graph:
    i = int(key.rsplit("-", 1)[1])
    return from_obj({"Movie": {"Title": f"T{i}", "Year": 1900 + i}})


def test_fault_free_overhead_external(benchmark):
    """E1 hot path: full traversal + RPQ over external data, no faults."""
    base = external_base()

    def run_bare():
        ext = ExternalGraph(base, fetch_page)
        return len(rpq_nodes(ext, PATTERN))

    def run_guarded():
        ext = ExternalGraph(
            base,
            fetch_page,
            policy=RetryPolicy(max_attempts=4, base_delay=0.01),
            on_failure="partial",
        )
        return len(rpq_nodes(ext, PATTERN))

    run_bare(), run_guarded()  # warm both paths before timing
    bare_t, bare_n = timed(run_bare, repeat=15)
    guarded_t, guarded_n = timed(run_guarded, repeat=15)
    assert bare_n == guarded_n == NUM_REGIONS
    overhead = guarded_t / bare_t - 1.0
    print_table(
        "resilience: fault-free overhead on the E1 external-fetch path",
        ["variant", "best time (ms)", "answers"],
        [
            ("bare (no policies)", f"{bare_t * 1e3:.2f}", bare_n),
            ("retry+partial attached", f"{guarded_t * 1e3:.2f}", guarded_n),
            ("overhead", f"{overhead * 100:+.1f}%", "target < 5%"),
        ],
    )
    # generous CI bound; the 5% target is what the table documents
    assert overhead < 0.25
    benchmark(run_guarded)


def test_fault_free_overhead_distributed(benchmark):
    """E5 hot path: decomposed RPQ with and without the site runtime."""
    web = generate_web(400, seed=91)
    dist = partition_graph(web, 8, strategy="hash")
    pattern = "(link|xref)*"

    distributed_rpq(dist, pattern)  # warm both paths before timing
    distributed_rpq_resilient(dist, pattern)
    plain_t, (plain_res, _) = timed(lambda: distributed_rpq(dist, pattern), repeat=15)
    res_t, (res_res, _, report) = timed(
        lambda: distributed_rpq_resilient(dist, pattern), repeat=15
    )
    assert plain_res == res_res and report.complete
    overhead = res_t / plain_t - 1.0
    print_table(
        "resilience: fault-free overhead on the E5 decomposed-RPQ path",
        ["variant", "best time (ms)", "matched"],
        [
            ("distributed_rpq", f"{plain_t * 1e3:.2f}", len(plain_res)),
            ("distributed_rpq_resilient", f"{res_t * 1e3:.2f}", len(res_res)),
            ("overhead", f"{overhead * 100:+.1f}%", "target < 5%"),
        ],
    )
    assert overhead < 0.25
    benchmark(lambda: distributed_rpq_resilient(dist, pattern))


def _chaotic_run(fail_rate: float, seed: int = 17):
    clock = SimulatedClock()
    injector = FaultInjector(seed=seed, fail_rate=fail_rate, clock=clock)
    ext = ExternalGraph(
        external_base(),
        injector.wrap_fetcher(fetch_page),
        policy=RetryPolicy(max_attempts=8, base_delay=0.05),
        on_failure="partial",
        clock=clock,
    )
    answers = len(rpq_nodes(ext, PATTERN))
    return answers, ext, injector, clock


def test_recovery_under_transient_failure(benchmark):
    """10% and 50% per-contact failure: exact answers, priced in retries."""
    rows = []
    slept_by_rate = {}
    for fail_rate in (0.0, 0.1, 0.5):
        answers, ext, injector, clock = _chaotic_run(fail_rate)
        report = ext.completeness()
        assert answers == NUM_REGIONS and report.complete, fail_rate
        slept_by_rate[fail_rate] = clock.slept
        rows.append(
            (
                f"{fail_rate:.0%}",
                answers,
                injector.total_calls,
                report.retries,
                f"{clock.slept:.2f}",
                report.complete,
            )
        )
    print_table(
        f"resilience: recovery on {NUM_REGIONS} external fetches (seed 17)",
        ["fail rate", "answers", "contacts", "retries", "sim backoff (s)", "exact"],
        rows,
    )
    # more failure -> more recovery time, and none when nothing fails
    assert slept_by_rate[0.0] == 0.0
    assert 0.0 < slept_by_rate[0.1] < slept_by_rate[0.5]
    # the schedule is deterministic: replaying it costs the same backoff
    _, _, _, replay_clock = _chaotic_run(0.5)
    assert replay_clock.slept == slept_by_rate[0.5]

    benchmark(lambda: _chaotic_run(0.5)[0])
