"""E16 -- the compile-to-relational backend vs the native kernel.

Three workload families over the PR-7 SQL backend, with the warm
fast-path kernel (frozen CSR snapshot, cached plan) as the baseline
everywhere:

* **flat RPQ** -- fixed/record-shaped chains on the relational bridge
  catalog and the movies OEM, where the compiler emits sargable
  ``wide``/``chain`` plans and sqlite's indexes do the work;
* **deep RPQ** -- Kleene-star closures on the web graph, where the
  compiled recursive CTE re-runs the kernel's BFS without its pruning:
  the ``auto`` route must keep these native and stay within 10% of the
  bare kernel;
* **Lorel** -- a filtered clause chain, native binding enumeration vs
  the SQL join plan.

The acceptance gates: SQL >= 1.5x the kernel on at least one flat
workload, and ``auto`` never loses more than 10% to the kernel on a
closure the policy keeps native.  ``BENCH_SMOKE=1`` shrinks the sweep
and skips the ratio assertions (shared CI runners are too noisy to
gate on).
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table, timed

from repro.core.convert import graph_to_oem
from repro.core.frozen import freeze
from repro.datasets import generate_movies, generate_web
from repro.datasets.relational_data import generate_catalog
from repro.lorel import parse_lorel
from repro.lorel.evaluator import lorel_bindings
from repro.obs.export import write_bench
from repro.planner import planner_for
from repro.relational.encode import relational_to_graph
from repro.schema.dataguide import DataGuide
from repro.sqlbackend import SqlBackend, lorel_sql_backend_for

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
MOVIES = 30 if SMOKE else 200
CATALOG = (30, 15) if SMOKE else (400, 150)
PAGES = 30 if SMOKE else 150
QUERY_REPEAT = 3 if SMOKE else 25

#: The flat workloads: record-shaped chains the compiler answers with
#: ``wide`` single-table scans or pruned self-join ``chain`` plans.
FLAT = {
    "catalog": ["Movies.tuple.title", "Casts.tuple.actor", "Movies.tuple.year"],
    "movies": ["Entry.Movie.Title", "Entry.Movie.Cast.Actors"],
}

#: The deep workloads: closures whose compiled form is a recursive CTE
#: -- the routing policy keeps every one of these on the kernel.
DEEP = ["link*.title", "link*.keyword", "link.link*.title"]

_RECORDS: dict = {}


def _flat_graphs():
    return {
        "catalog": relational_to_graph(generate_catalog(*CATALOG, seed=2)),
        "movies": generate_movies(MOVIES, seed=23),
    }


def test_e16_flat_sql_vs_kernel(benchmark):
    """Sargable plans on flat data: sqlite joins vs the Python kernel."""
    rows = []
    speedups = []
    backends = {}
    for name, graph in _flat_graphs().items():
        fg = freeze(graph)
        planner = planner_for(fg)
        backend = SqlBackend(fg, guide=DataGuide(fg))
        backends[name] = backend
        for pattern in FLAT[name]:
            plan = backend.compile(pattern)  # warm the plan cache
            native_res = planner.rpq(pattern, strategy="kernel")
            assert backend.rpq_nodes(pattern) == native_res

            def native():
                return [
                    planner.rpq(pattern, strategy="kernel")
                    for _ in range(QUERY_REPEAT)
                ]

            def via_sql():
                return [backend.rpq_nodes(pattern) for _ in range(QUERY_REPEAT)]

            native_s, _ = timed(native)
            sql_s, _ = timed(via_sql)
            speedup = native_s / sql_s if sql_s else float("inf")
            speedups.append(speedup)
            _RECORDS.setdefault("flat", {})[f"{name}/{pattern}"] = {
                "kind": plan.kind,
                "nodes": len(native_res),
                "native_s": native_s,
                "sql_s": sql_s,
                "speedup": speedup,
            }
            rows.append(
                (
                    f"{name}/{pattern}",
                    plan.kind,
                    len(native_res),
                    f"{native_s * 1e3:.2f}ms",
                    f"{sql_s * 1e3:.2f}ms",
                    f"x{speedup:.1f}",
                )
            )
    print_table(
        f"E16a: flat chains, SQL vs kernel (catalog{CATALOG[0]}, movies{MOVIES})",
        ["workload", "plan", "nodes", "kernel", "sql", "speedup"],
        rows,
    )
    if not SMOKE:
        assert max(speedups) >= 1.5, speedups
    backend = backends["catalog"]
    benchmark(lambda: backend.rpq_nodes(FLAT["catalog"][0]))


def test_e16_deep_auto_stays_native(benchmark):
    """Closures: the CTE loses to the kernel, so ``auto`` must not pay it."""
    fg = freeze(generate_web(PAGES, seed=7))
    planner = planner_for(fg)
    planner.attach_sql()
    backend = SqlBackend(fg)
    rows = []
    auto_ratios = []
    for pattern in DEEP:
        native_res = planner.rpq(pattern, strategy="kernel")
        assert backend.rpq_nodes(pattern) == native_res
        assert planner.rpq(pattern, strategy="auto") == native_res

        def native():
            return [
                planner.rpq(pattern, strategy="kernel") for _ in range(QUERY_REPEAT)
            ]

        def auto():
            return [
                planner.rpq(pattern, strategy="auto") for _ in range(QUERY_REPEAT)
            ]

        def via_sql():
            return [backend.rpq_nodes(pattern) for _ in range(QUERY_REPEAT)]

        native_s, _ = timed(native)
        auto_s, _ = timed(auto)
        sql_s, _ = timed(via_sql)
        ratio = auto_s / native_s if native_s else float("inf")
        auto_ratios.append(ratio)
        _RECORDS.setdefault("deep", {})[pattern] = {
            "nodes": len(native_res),
            "native_s": native_s,
            "auto_s": auto_s,
            "sql_s": sql_s,
            "auto_over_native": ratio,
        }
        rows.append(
            (
                pattern,
                len(native_res),
                f"{native_s * 1e3:.2f}ms",
                f"{auto_s * 1e3:.2f}ms",
                f"{sql_s * 1e3:.2f}ms",
                f"x{ratio:.2f}",
            )
        )
    print_table(
        f"E16b: closures, auto routing overhead (web{PAGES})",
        ["pattern", "nodes", "kernel", "auto", "sql-cte", "auto/kernel"],
        rows,
    )
    if not SMOKE:
        assert max(auto_ratios) <= 1.10, auto_ratios
    benchmark(lambda: planner.rpq(DEEP[0], strategy="auto"))


def test_e16_lorel_sql_vs_native(benchmark):
    """Filtered clause chains: the SQL join plan vs native enumeration."""
    db = graph_to_oem(generate_movies(MOVIES, seed=23))
    backend = lorel_sql_backend_for(db)
    queries = [
        "select m.Title from DB.Entry.Movie m where m.Year < 1960",
        "select m.Title, c.Actors from DB.Entry.Movie m, m.Cast c",
    ]
    rows = []
    for text in queries:
        query = parse_lorel(text)
        backend.compile(query)  # warm
        native_envs = lorel_bindings(query, db)
        assert backend.bindings(query) == native_envs

        def native():
            return [lorel_bindings(query, db) for _ in range(QUERY_REPEAT)]

        def via_sql():
            return [backend.bindings(query) for _ in range(QUERY_REPEAT)]

        native_s, _ = timed(native)
        sql_s, _ = timed(via_sql)
        speedup = native_s / sql_s if sql_s else float("inf")
        _RECORDS.setdefault("lorel", {})[text] = {
            "bindings": len(native_envs),
            "native_s": native_s,
            "sql_s": sql_s,
            "speedup": speedup,
        }
        rows.append(
            (
                text,
                len(native_envs),
                f"{native_s * 1e3:.2f}ms",
                f"{sql_s * 1e3:.2f}ms",
                f"x{speedup:.1f}",
            )
        )
    print_table(
        f"E16c: Lorel bindings, SQL vs native (movies{MOVIES} OEM)",
        ["query", "bindings", "native", "sql", "speedup"],
        rows,
    )

    write_bench(
        "e16_sql",
        {
            "movies": MOVIES,
            "catalog": list(CATALOG),
            "pages": PAGES,
            "query_repeat": QUERY_REPEAT,
            "timings": _RECORDS,
        },
        Path(__file__).parent / "out",
    )
    query = parse_lorel(queries[0])
    benchmark(lambda: backend.bindings(query))
