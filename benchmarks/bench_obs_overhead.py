"""Observability overhead: profiled entry points vs. their plain twins.

The profile contract (docs/OBSERVABILITY.md) promises that instrumented
evaluation stays within a few percent of the uninstrumented path -- the
counts are derived from the evaluation's own data structures after the
fact, not accumulated inside the hot loops.  This benchmark holds the
line: for each evaluator family, best-of-N wall time of the ``*_profiled``
entry point must stay within ``OVERHEAD_BUDGET`` of the plain one on a
representative workload.

Timing is deliberately defensive: the two variants are timed
*interleaved* (plain, profiled, plain, ...) so clock-frequency drift
hits both equally; each of several independent rounds produces a
best-of-N ratio; the table reports the median round and the assertion
takes the *minimum* round.  A genuine regression (instrumentation in
the hot loop) inflates every round, so the minimum still catches it,
while a single noisy round on a busy machine cannot fail the build.  A
small absolute floor keeps a sub-millisecond baseline from failing on
scheduler jitter.

One caveat, measured and reported rather than hidden: the post-hoc count
derivation costs ~0.1us per distinct visited node.  On a *leaf-heavy,
single-DFA-state* sweep (average out-degree near 1, one automaton state
per node) the plain BFS does so little work per node that this floor can
reach ~8-10% -- the ``rpq-sparse`` row below reports that worst case
without asserting on it.  Any pattern whose closure keeps two or more
states live per node (the queries worth profiling) amortizes the pass
into the noise, which the asserted ``rpq`` row demonstrates.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table

from repro.automata.product import rpq_nodes, rpq_nodes_profiled
from repro.browse import find_value, find_value_profiled
from repro.core.convert import graph_to_oem
from repro.datasets import generate_movies, generate_web
from repro.lorel import evaluate_lorel, evaluate_lorel_profiled, parse_lorel
from repro.obs.export import write_bench
from repro.unql import evaluate_query, evaluate_query_profiled, parse_query

#: profiled / plain wall-time ratio ceiling (the 5% budget)
OVERHEAD_BUDGET = 1.05
#: ignore ratios when the plain path is this fast (timer noise territory)
ABSOLUTE_FLOOR_S = 200e-6
#: independent measurement rounds; the assertion takes the best one
ROUNDS = 5
REPEAT = 12

RPQ_PATTERN = "(link.link)*.keyword"
SPARSE_PATTERN = 'Entry.Movie.(!Movie)*."Allen"'
UNQL_TEXT = r"select \t where {Entry.Movie.Title: \t} in db"
LOREL_TEXT = "select t from DB.Entry.Movie.Title t"


def timed_pair(plain, profiled, repeat=REPEAT):
    """Best-of-``repeat`` seconds for each of two thunks, interleaved."""
    best_plain = best_profiled = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        plain()
        best_plain = min(best_plain, time.perf_counter() - start)
        start = time.perf_counter()
        profiled()
        best_profiled = min(best_profiled, time.perf_counter() - start)
    return best_plain, best_profiled


def measure(plain, profiled, rounds=ROUNDS):
    """(median plain s, median ratio, min ratio) over independent rounds."""
    samples = []
    for _ in range(rounds):
        plain_s, profiled_s = timed_pair(plain, profiled)
        samples.append((plain_s, profiled_s / plain_s if plain_s else 1.0))
    samples.sort()
    plain_median = samples[len(samples) // 2][0]
    ratios = sorted(r for _, r in samples)
    return plain_median, ratios[len(ratios) // 2], ratios[0]


def test_obs_overhead_within_budget(benchmark):
    movies = generate_movies(150, seed=11, reference_fraction=0.2)
    web = generate_web(300, seed=5)
    oem = graph_to_oem(movies)
    unql_query = parse_query(UNQL_TEXT)
    lorel_query = parse_lorel(LOREL_TEXT)

    #: engine -> (plain thunk, profiled thunk, asserted?)
    cases = {
        "rpq": (
            lambda: rpq_nodes(web, RPQ_PATTERN),
            lambda: rpq_nodes_profiled(web, RPQ_PATTERN)[0],
            True,
        ),
        "rpq-sparse": (
            lambda: rpq_nodes(movies, SPARSE_PATTERN),
            lambda: rpq_nodes_profiled(movies, SPARSE_PATTERN)[0],
            False,  # the documented worst case: reported, not asserted
        ),
        "unql": (
            lambda: evaluate_query(unql_query, {"db": movies}),
            lambda: evaluate_query_profiled(unql_query, {"db": movies})[0],
            True,
        ),
        "lorel": (
            lambda: evaluate_lorel(lorel_query, oem),
            lambda: evaluate_lorel_profiled(lorel_query, oem)[0],
            True,
        ),
        "browse": (
            lambda: find_value(movies, "Allen"),
            lambda: find_value_profiled(movies, "Allen")[0],
            True,
        ),
    }

    rows = []
    failures = []
    timings: dict[str, dict[str, float]] = {}
    for name, (plain, profiled, asserted) in cases.items():
        plain_s, ratio_median, ratio_min = measure(plain, profiled)
        timings[name] = {
            "plain_s": plain_s,
            "ratio_median": ratio_median,
            "ratio_min": ratio_min,
        }
        rows.append(
            (
                name,
                f"{plain_s * 1e3:.3f}ms",
                f"{ratio_median:.3f}",
                f"{ratio_min:.3f}",
                "<= 1.05" if asserted else "reported only",
            )
        )
        if asserted and plain_s >= ABSOLUTE_FLOOR_S and ratio_min > OVERHEAD_BUDGET:
            failures.append(f"{name}: {ratio_min:.3f}x (budget {OVERHEAD_BUDGET}x)")
    print_table(
        f"Obs overhead: profiled vs plain "
        f"(budget {OVERHEAD_BUDGET}x on min of {ROUNDS} rounds, best of {REPEAT} each)",
        ["engine", "plain", "ratio med", "ratio min", "budget"],
        rows,
    )
    assert not failures, "profiled paths over budget: " + "; ".join(failures)

    # the exported record carries the counts that explain the timings
    profiles: dict[str, dict[str, object]] = {}
    _, rpq_profile = rpq_nodes_profiled(web, RPQ_PATTERN)
    profiles["rpq"] = rpq_profile.as_dict()
    _, unql_profile = evaluate_query_profiled(
        unql_query, {"db": movies}, query_text=UNQL_TEXT
    )
    profiles["unql"] = unql_profile.as_dict()
    write_bench(
        "obs_overhead",
        {"timings": timings, "profiles": profiles},
        Path(__file__).parent / "out",
    )

    benchmark(lambda: rpq_nodes_profiled(web, RPQ_PATTERN))
