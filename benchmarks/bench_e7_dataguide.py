"""E7 -- DataGuides enable query formulation and optimization.

Claims operationalized (section 5, [22]): the strong DataGuide is small on
regular data, costs one determinization pass to build, and answers path
existence / path targets in time independent of database size.  Expected
shape: guide states grow far slower than data nodes; path-existence via
the guide beats a data traversal by orders of magnitude; the degree-k
representative object is smaller still, at the price of spurious paths
beyond depth k.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table, timed

from repro.automata.product import rpq_nodes
from repro.core.labels import string, sym
from repro.datasets import generate_movies
from repro.schema.dataguide import DataGuide
from repro.schema.representative import representative_object

PATH = (sym("Entry"), sym("Movie"), sym("Cast"), sym("Actors"))


def test_e7_build_cost_and_size(benchmark):
    rows = []
    for entries in (100, 400, 1600):
        g = generate_movies(entries, seed=71)
        build_s, guide = timed(lambda: DataGuide(g), repeat=1)
        ro = representative_object(g, 2)
        rows.append(
            (
                entries,
                g.num_nodes,
                guide.num_states,
                f"{build_s * 1e3:.1f}ms",
                ro.num_nodes,
            )
        )
    print_table(
        "E7: DataGuide and degree-2 RO size vs database size",
        ["entries", "db nodes", "guide states", "guide build", "RO(k=2) nodes"],
        rows,
    )
    # shape: summaries grow much slower than the data
    assert rows[-1][1] / rows[0][1] > 4 * rows[-1][2] / rows[0][2] or (
        rows[-1][2] < rows[-1][1] / 3
    )
    assert rows[-1][4] <= rows[-1][2] * 2  # RO comparable or smaller

    g = generate_movies(400, seed=71)
    benchmark(lambda: DataGuide(g))


def test_e7_path_queries_via_guide(benchmark):
    g = generate_movies(1600, seed=72)
    guide = DataGuide(g)
    pattern = "Entry.Movie.Cast.Actors"

    exists_s, exists = timed(lambda: guide.path_exists(PATH), repeat=5)
    scan_s, scan_hits = timed(lambda: rpq_nodes(g, pattern), repeat=2)
    targets = guide.target_set(PATH)
    assert exists and targets == frozenset(scan_hits)

    absent = PATH + (string("nope"),)
    absent_s, absent_exists = timed(lambda: guide.path_exists(absent), repeat=5)
    absent_scan_s, absent_hits = timed(
        lambda: rpq_nodes(g, pattern + '."nope"'), repeat=2
    )
    assert not absent_exists and not absent_hits

    print_table(
        "E7b: fixed-path queries, guide vs data traversal (1600 entries)",
        ["query", "answer", "via guide", "via traversal", "speedup"],
        [
            (
                pattern,
                f"{len(targets)} nodes",
                f"{exists_s * 1e6:.1f}us",
                f"{scan_s * 1e3:.2f}ms",
                f"x{scan_s / exists_s:.0f}",
            ),
            (
                pattern + '."nope"',
                "absent",
                f"{absent_s * 1e6:.1f}us",
                f"{absent_scan_s * 1e3:.2f}ms",
                f"x{absent_scan_s / absent_s:.0f}",
            ),
        ],
    )
    assert scan_s / exists_s > 50  # orders of magnitude, as claimed
    benchmark(lambda: guide.target_set(PATH))


def test_e7c_rpq_via_dataguide(benchmark):
    """Regular (not just fixed) path queries answered off the summary."""
    from repro.schema.dataguide import rpq_via_dataguide

    g = generate_movies(1600, seed=73)
    guide = DataGuide(g)
    rows = []
    for pattern in [
        "Entry.Movie.(Cast|Director)",
        "Entry._.Title.<string>",
        'Entry.Movie.Cast.#."Allen"',
    ]:
        data_s, data_hits = timed(lambda p=pattern: rpq_nodes(g, p), repeat=2)
        guide_s, guide_hits = timed(
            lambda p=pattern: rpq_via_dataguide(guide, p), repeat=2
        )
        assert guide_hits == frozenset(data_hits), pattern
        rows.append(
            (
                pattern,
                len(data_hits),
                f"{data_s * 1e3:.2f}ms",
                f"{guide_s * 1e3:.2f}ms",
                f"x{data_s / guide_s:.1f}",
            )
        )
    print_table(
        "E7c: full RPQ evaluation, data product vs DataGuide product",
        ["pattern", "hits", "on data", "on guide", "speedup"],
        rows,
    )
    # shape: the guide product wins (the guide is ~7x smaller)
    assert all(float(r[4][1:]) > 1.0 for r in rows)
    benchmark(lambda: rpq_via_dataguide(guide, "Entry.Movie.(Cast|Director)"))
