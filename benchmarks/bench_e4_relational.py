"""E4 -- UnQL restricted to relational data = the relational algebra.

Claim operationalized (section 3): "when restricted to input and output
data that conform to a relational schema, [the UnQL algebra] expresses
exactly the relational (nested relational) algebra".  Random SPJRU terms
are evaluated both by the relational engine and by tree transformations
over the graph encoding; answers must coincide.  Expected shape: the
relational engine wins on raw speed (hash joins vs. value-comparison
nested loops over subtrees), typically by one to two orders of magnitude
-- expressiveness, not performance, is what the encoding preserves.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table, timed

from repro.datasets import generate_catalog, random_algebra_term
from repro.relational.algebra import evaluate, project
from repro.unql.relational_bridge import evaluate_on_trees, tree_to_relation

NUM_TERMS = 25


def test_e4_random_terms_agree_and_cost(benchmark):
    catalog = generate_catalog(num_movies=30, num_actors=10, seed=41)
    agree = 0
    rel_total = 0.0
    tree_total = 0.0
    sample_rows = []
    for seed in range(NUM_TERMS):
        term = random_algebra_term(catalog, seed=seed, depth=3)
        rel_s, relational = timed(lambda: evaluate(term, catalog), repeat=1)
        tree_s, tree_graph = timed(lambda: evaluate_on_trees(term, catalog), repeat=1)
        on_trees = tree_to_relation(tree_graph)
        if relational.rows:
            assert set(on_trees.schema) == set(relational.schema)
            assert project(on_trees, relational.schema) == relational
        else:
            assert not on_trees.rows
        agree += 1
        rel_total += rel_s
        tree_total += tree_s
        if seed < 6:
            sample_rows.append(
                (
                    seed,
                    type(term).__name__,
                    len(relational),
                    f"{rel_s * 1e3:.2f}ms",
                    f"{tree_s * 1e3:.2f}ms",
                )
            )
    print_table(
        "E4: random SPJRU terms, relational vs tree evaluation (first 6 shown)",
        ["seed", "top op", "rows", "relational", "on trees"],
        sample_rows,
    )
    print(
        f"\nE4 summary: {agree}/{NUM_TERMS} terms agree exactly; total time "
        f"relational {rel_total * 1e3:.1f}ms vs trees {tree_total * 1e3:.1f}ms "
        f"(x{tree_total / rel_total:.0f} slower on trees)"
    )
    assert agree == NUM_TERMS
    assert tree_total > rel_total  # the engine wins on speed, as expected

    term = random_algebra_term(catalog, seed=3, depth=3)
    benchmark(lambda: evaluate_on_trees(term, catalog))
