"""E6 -- graph schemas enable query optimization.

Claim operationalized (section 5, [20]): running the query automaton over
the schema first prunes impossible queries without touching data, and the
schema is tiny next to the database.  Expected shape: for queries the
schema rules out, pruned evaluation is orders of magnitude faster than
data traversal and returns the identical (empty) answer; for satisfiable
queries the overhead of the schema check is negligible.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table, timed

from repro.automata.product import rpq_nodes
from repro.datasets import generate_movies
from repro.schema.inference import infer_schema
from repro.schema.prune import pruned_rpq_nodes

QUERIES = [
    ("present: titles", "Entry.Movie.Title.<string>"),
    ("present: deep Allen", 'Entry.Movie.Cast.#."Allen"'),
    ("absent: BoxOffice", "Entry.Movie.BoxOffice"),
    ("absent: deep Salary", "#.Salary.<int>"),
    ("absent: wrong nesting", "Movie.Entry.Title"),
]


def test_e6_schema_pruning(benchmark):
    g = generate_movies(800, seed=61)
    schema = infer_schema(g)
    assert schema.conforms(g)
    print(
        f"\nE6 setup: database {g.num_edges} edges; inferred schema "
        f"{schema.num_nodes} nodes / {schema.num_edges} predicate edges"
    )
    rows = []
    for name, pattern in QUERIES:
        plain_s, plain_hits = timed(lambda p=pattern: rpq_nodes(g, p), repeat=2)
        pruned_s, pruned_hits = timed(
            lambda p=pattern: pruned_rpq_nodes(g, schema, p), repeat=2
        )
        assert pruned_hits == plain_hits, name
        rows.append(
            (
                name,
                len(plain_hits),
                f"{plain_s * 1e3:.2f}ms",
                f"{pruned_s * 1e3:.2f}ms",
                f"x{plain_s / pruned_s:.1f}" if pruned_s else "-",
            )
        )
    print_table(
        "E6: path queries with and without schema pruning",
        ["query", "hits", "no schema", "with schema", "speedup"],
        rows,
    )
    # shape: absent-path queries get large speedups; present ones stay close
    absent = [r for r in rows if r[0].startswith("absent")]
    for row in absent:
        assert row[1] == 0
        assert float(row[4][1:]) > 3.0, row
    present = [r for r in rows if r[0].startswith("present")]
    for row in present:
        assert float(row[4][1:]) > 0.5, row  # at most ~2x overhead

    benchmark(lambda: pruned_rpq_nodes(g, schema, "#.Salary.<int>"))


def test_e6_schema_is_small(benchmark):
    sizes = []
    for entries in (100, 400, 1600):
        g = generate_movies(entries, seed=62)
        schema = infer_schema(g)
        sizes.append((entries, g.num_nodes, schema.num_nodes,
                      f"{g.num_nodes / schema.num_nodes:.0f}x"))
    print_table(
        "E6b: schema size vs database size",
        ["entries", "db nodes", "schema nodes", "compression"],
        sizes,
    )
    # shape: compression grows with database size (regular data)
    assert sizes[-1][1] / sizes[-1][2] > sizes[0][1] / sizes[0][2]

    g = generate_movies(400, seed=62)
    benchmark(lambda: infer_schema(g))
