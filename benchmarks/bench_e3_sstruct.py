"""E3 -- structural recursion: total on cycles, linear in edges.

Claims operationalized (sections 3 and 4): the recursion restrictions make
UnQL computations well-defined on cyclic graphs, and the bulk evaluation
is a single pass over the edges ("a basic graph transformation
technique").  Expected shape: runtime grows linearly with edge count, the
result on a cyclic graph is bisimilar to the recursion's unfolding
semantics, and deep restructurings (relabel / collapse / drop) all run at
the same linear cost.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table, timed

from repro.core.bisim import bisimilar
from repro.core.labels import sym
from repro.datasets import generate_web
from repro.unql import collapse_edges, drop_edges, relabel, srec, srec_tree
from repro.unql.sstruct import keep_edge

RELABEL = lambda lab: sym(str(lab.value).upper()) if lab.is_symbol else lab


def test_e3_linear_scaling(benchmark):
    rows = []
    times = []
    for pages in [100, 200, 400, 800]:
        web = generate_web(pages, seed=31)
        seconds, out = timed(lambda: relabel(web, RELABEL), repeat=2)
        times.append((web.num_edges, seconds))
        rows.append(
            (
                pages,
                web.num_edges,
                out.num_edges,
                f"{seconds * 1e3:.1f}ms",
                f"{seconds / web.num_edges * 1e6:.2f}us",
            )
        )
    print_table(
        "E3: relabel (srec) on cyclic web graphs",
        ["pages", "in edges", "out edges", "time", "time/edge"],
        rows,
    )
    # shape: per-edge cost roughly flat (within 4x across an 8x size range)
    per_edge = [s / e for e, s in times]
    assert max(per_edge) < 4 * min(per_edge)

    web = generate_web(400, seed=31)
    benchmark(lambda: relabel(web, RELABEL))


def test_e3_cycle_safety_vs_unfolding(benchmark):
    """The bulk result agrees with the unfolding semantics (finite check:
    both unfolded to the same depth are bisimilar)."""
    web = generate_web(30, seed=32)
    assert web.has_cycle()
    body = lambda label, view: keep_edge(RELABEL(label))
    bulk = srec(web, body)
    depth = 8
    reference = srec_tree(web.unfold(depth), body)
    assert bisimilar(bulk.unfold(depth), reference.unfold(depth))
    print("\nE3b: bulk srec on a cyclic graph agrees with the unfolding "
          f"semantics to depth {depth} (graph: {web.num_edges} edges)")
    benchmark(lambda: srec(web, body))


def test_e3_restructuring_suite(benchmark):
    web = generate_web(300, seed=33)
    ops = [
        ("relabel all", lambda: relabel(web, RELABEL)),
        ("collapse 'link'", lambda: collapse_edges(web, lambda l, v: l == sym("link"))),
        ("drop 'keyword'", lambda: drop_edges(web, lambda l, v: l == sym("keyword"))),
    ]
    rows = []
    for name, fn in ops:
        seconds, out = timed(fn, repeat=2)
        rows.append((name, web.num_edges, out.num_edges, f"{seconds * 1e3:.1f}ms"))
    print_table(
        "E3c: deep restructurings, one srec pass each",
        ["operation", "in edges", "out edges", "time"],
        rows,
    )
    benchmark(ops[2][1])
