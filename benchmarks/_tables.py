"""Shared helpers for the experiment benchmarks.

Each ``bench_*.py`` regenerates one experiment of EXPERIMENTS.md: it runs
the measured sweep, prints a labeled table (visible with ``pytest
benchmarks/ -s`` and recorded in EXPERIMENTS.md), asserts the *shape*
claims (who wins, roughly by how much), and registers one or two
pytest-benchmark timings for the headline operation.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

__all__ = ["timed", "print_table"]


def timed(fn: Callable[[], object], repeat: int = 3) -> tuple[float, object]:
    """Best-of-``repeat`` wall time of ``fn`` in seconds, plus its result."""
    best = float("inf")
    result: object = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result


def print_table(title: str, header: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Print one experiment table in a stable fixed-width layout."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(header)
    ]
    print(f"\n== {title} ==")
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    print("  ".join("-" * w for w in widths))
    for row in cells:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
