"""F1 -- Figure 1: the example movie database.

Regenerates the paper's only figure: builds the exact graph, verifies
every structural feature the figure shows (both cast representations, the
1.2E6 credit, the integer-labeled episode array, the References cycle),
renders it, and times the figure's flagship queries.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table, timed

from repro.automata.product import rpq_nodes
from repro.browse import find_value
from repro.core import render, string, sym
from repro.core.labels import real
from repro.datasets import figure1
from repro.unql import fix_bacall, unql


def test_f1_structure_and_render(benchmark):
    g = figure1()

    checks = [
        ("Entry edges", len([e for e in g.edges_from(g.root) if e.label == sym("Entry")]), 3),
        ("Movie entries", len(rpq_nodes(g, "Entry.Movie")), 2),
        ("TV Show entries", len(rpq_nodes(g, "Entry.`TV Show`")), 1),
        ("direct cast strings (repr A)", len(rpq_nodes(g, "Entry.Movie.Cast.<string>")), 2),
        ("Credit/Actors cast (repr B)", len(rpq_nodes(g, 'Entry.Movie.Cast.Actors."Allen"')), 1),
        ("1.2E6 credit edges", sum(1 for e in g.edges() if e.label == real(1.2e6)), 1),
        ("episode array entries", len(rpq_nodes(g, "Entry.`TV Show`.Episode.<int>")), 3),
        ("cyclic (References pair)", int(g.has_cycle()), 1),
    ]
    print_table("F1: Figure 1 structural inventory", ["feature", "measured", "figure"], checks)
    for name, measured, expected in checks:
        assert measured == expected, name

    print("\n" + render(g))

    # the figure's flagship query: is Allen below a Movie without another
    # Movie edge in between?
    def flagship():
        return unql(
            r'select {found: 1} where {Entry.Movie.(!Movie)*: {_: "Allen"}} in db',
            db=g,
        )

    result = benchmark(flagship)
    assert result.out_degree(result.root) > 0

    # and the famous restructuring: the Bacall fix
    fixed = fix_bacall(g, string("Bacall"), string("Bergman"), sym("Cast"))
    assert find_value(fixed, "Bacall") == []
    assert len(find_value(fixed, "Bergman")) == 1


def test_f1_query_suite_timings(benchmark):
    g = figure1()
    benchmark(lambda: rpq_nodes(g, '#."Casablanca"'))
    queries = [
        ("titles", "Entry._.Title"),
        ("find Casablanca", '#."Casablanca"'),
        ("Allen constrained", 'Entry.Movie.(!Movie)*."Allen"'),
        ("follow the cycle", "Entry.Movie.(References|`Is referenced in`)*"),
    ]
    rows = []
    for name, pattern in queries:
        seconds, hits = timed(lambda p=pattern: rpq_nodes(g, p), repeat=5)
        rows.append((name, pattern, len(hits), f"{seconds * 1e6:.0f}us"))
    print_table("F1: query timings on Figure 1", ["query", "pattern", "hits", "time"], rows)
    assert all(r[2] > 0 for r in rows)
