"""E5 -- query decomposition into independent parallel sub-queries.

Claim operationalized (section 4, Suciu VLDB '96): a path query over a
graph segmented into sites decomposes into per-site sub-queries with one
synchronization per superstep.  Expected shape: answers identical to
centralized evaluation at every site count; total work equal to the
centralized work; makespan (parallel cost) shrinking as sites are added --
more for a partition that spreads the frontier (hash) at the price of
messages, less for a locality-preserving one (bfs) which saves messages.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table

from repro.automata.product import rpq_nodes
from repro.datasets import generate_web
from repro.distributed import centralized_work, distributed_rpq, partition_graph

PATTERN = "(link|xref)*"


def test_e5_decomposition_sweep(benchmark):
    web = generate_web(600, seed=51)
    # add cross references so the frontier fans out
    answer = rpq_nodes(web, PATTERN)
    rows = []
    for strategy in ("bfs", "hash"):
        for sites in (1, 2, 4, 8, 16):
            dist = partition_graph(web, sites, strategy=strategy)
            result, stats = distributed_rpq(dist, PATTERN)
            assert result == answer, (strategy, sites)
            base = centralized_work(dist, PATTERN)
            assert stats.total_work == base
            rows.append(
                (
                    strategy,
                    sites,
                    f"{dist.locality():.2f}",
                    stats.total_work,
                    stats.makespan,
                    f"x{stats.speedup:.2f}",
                    stats.messages,
                    stats.supersteps,
                )
            )
    print_table(
        f"E5: decomposed evaluation of {PATTERN!r} on a 600-page web",
        ["partition", "sites", "locality", "total work", "makespan", "speedup", "messages", "supersteps"],
        rows,
    )
    # shape assertions
    by_key = {(r[0], r[1]): r for r in rows}
    # hash spreads the frontier: strictly better speedup at 16 sites...
    assert float(by_key[("hash", 16)][5][1:]) > float(by_key[("hash", 1)][5][1:])
    # ...but pays in messages relative to bfs
    assert by_key[("hash", 16)][6] > by_key[("bfs", 16)][6]
    # single site degenerates to centralized: no messages
    assert by_key[("bfs", 1)][6] == 0

    dist = partition_graph(web, 8, strategy="hash")
    benchmark(lambda: distributed_rpq(dist, PATTERN))


def test_e5b_decomposed_structural_recursion(benchmark):
    """The actual subject of [35]: structural recursion decomposes with a
    communication-free parallel phase (template instantiation is per-edge
    independent); only the gluing pass is shared."""
    from repro.core.bisim import bisimilar
    from repro.core.labels import sym
    from repro.distributed.srec_decompose import distributed_srec
    from repro.unql import srec
    from repro.unql.sstruct import keep_edge

    def relabel_body(label, _view):
        return keep_edge(
            sym(str(label.value).upper()) if label.is_symbol else label
        )

    web = generate_web(250, seed=52)
    reference = srec(web, relabel_body)
    rows = []
    for sites in (1, 2, 4, 8, 16):
        dist = partition_graph(web, sites, strategy="hash")
        out, stats = distributed_srec(dist, relabel_body)
        assert bisimilar(out, reference)
        rows.append(
            (
                sites,
                stats.total_work,
                stats.parallel_work,
                f"x{stats.speedup:.2f}",
            )
        )
    print_table(
        "E5b: decomposed structural recursion (relabel, 250-page web)",
        ["sites", "edges transformed", "busiest site", "parallel speedup"],
        rows,
    )
    # shape: the parallel phase scales near-linearly (it has no messages)
    speedups = [float(r[3][1:]) for r in rows]
    assert speedups[-1] > 10.0
    assert all(b >= a * 0.9 for a, b in zip(speedups, speedups[1:]))

    dist = partition_graph(web, 8, strategy="hash")
    benchmark(lambda: distributed_srec(dist, relabel_body))
