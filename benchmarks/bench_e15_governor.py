"""E15 -- the query service: admission throughput, shedding, durability.

Three questions about the serving layer (docs/SERVICE.md):

* **admission throughput** -- the governor is a pure state machine on
  the hot path of every query; admit+release cycles must be cheap
  enough to disappear (target: >10k decisions/s even in pure Python);
* **shed-under-load curve** -- offered load beyond ``max_inflight +
  max_queue`` must be shed, served work must stay flat, and the queue
  must never exceed its bound: overload degrades *predictably*;
* **crash-safe save cost** -- rename-atomic durable saves pay fsyncs;
  measure the per-save tax against ``durable=False`` and show
  :class:`~repro.storage.GroupCommit` amortizing N saves' durability
  into one journal fsync.

``BENCH_SMOKE=1`` shrinks the sweep for CI and skips the ratio
assertions (shared-runner timings are too noisy to gate on).
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table, timed

from repro.datasets import generate_movies
from repro.obs.export import write_bench
from repro.obs.metrics import MetricsRegistry
from repro.resilience import SimulatedClock
from repro.service import AdmissionGovernor, InProcessHarness, QueryService
from repro.storage import GraphStore, GroupCommit

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
ADMIT_CYCLES = 2_000 if SMOKE else 50_000
BURSTS = [8, 16, 32] if SMOKE else [8, 16, 32, 64, 128, 256]
SAVES = 5 if SMOKE else 40
ENTRIES = 15 if SMOKE else 40

_RECORDS: dict = {}


def _service(**kw) -> QueryService:
    kw.setdefault("clock", SimulatedClock())
    kw.setdefault("metrics", MetricsRegistry())
    return QueryService(generate_movies(ENTRIES, seed=23), **kw)


def test_e15_admission_throughput(benchmark):
    """E15a: admit+release decision cycles per second."""
    gov = AdmissionGovernor(
        8, 16, clock=SimulatedClock(), metrics=MetricsRegistry()
    )

    def cycle_all():
        for i in range(ADMIT_CYCLES):
            gov.release(gov.admit(f"q{i}"))

    elapsed, _ = timed(cycle_all)
    rate = ADMIT_CYCLES / elapsed if elapsed else float("inf")
    _RECORDS["admission"] = {
        "cycles": ADMIT_CYCLES,
        "seconds": elapsed,
        "admits_per_s": rate,
    }
    print_table(
        "E15a: admission governor throughput (admit+release cycles)",
        ["cycles", "time", "decisions/s"],
        [(ADMIT_CYCLES, f"{elapsed * 1e3:.1f}ms", f"{rate:,.0f}")],
    )
    if not SMOKE:
        assert rate > 10_000  # the hot path must disappear
    benchmark(lambda: gov.release(gov.admit("bench")))


def test_e15_shed_under_load(benchmark):
    """E15b: offered bursts vs served/shed -- the degradation curve."""
    rows = []
    curve = []
    max_inflight, max_queue = 4, 8
    for offered in BURSTS:
        svc = _service(max_inflight=max_inflight, max_queue=max_queue)
        harness = InProcessHarness(svc)
        max_depth = 0

        def watch(task, step_count):
            nonlocal max_depth
            max_depth = max(max_depth, svc.governor.queue_depth)

        harness.on_step = watch
        elapsed, _ = timed(
            lambda: (
                harness.submit_all(
                    [
                        {"id": i, "op": "rpq", "query": "Entry.Movie.Title"}
                        for i in range(offered)
                    ]
                ),
                harness.run(),
            ),
            repeat=1,
        )
        responses = harness.responses
        ok = sum(1 for r in responses.values() if r["status"] == "ok")
        shed = sum(1 for r in responses.values() if r["status"] == "overloaded")
        assert ok + shed == offered  # one typed response each, always
        assert max_depth <= max_queue  # the bound held under the burst
        curve.append(
            {"offered": offered, "served": ok, "shed": shed,
             "max_queue_depth": max_depth, "seconds": elapsed}
        )
        rows.append(
            (offered, ok, shed, max_depth, f"{elapsed * 1e3:.1f}ms")
        )
        harness.close()
    _RECORDS["shed_curve"] = {
        "max_inflight": max_inflight,
        "max_queue": max_queue,
        "points": curve,
    }
    print_table(
        f"E15b: shed-under-load (capacity {max_inflight}+{max_queue} queue)",
        ["offered", "served", "shed", "peak queue", "time"],
        rows,
    )
    # served work is capped by capacity: beyond the knee it stays flat
    served = [p["served"] for p in curve]
    cap = max_inflight + max_queue
    for point in curve:
        if point["offered"] >= cap:
            assert point["served"] == cap
    assert all(s <= cap for s in served)

    svc = _service(max_inflight=max_inflight, max_queue=max_queue)
    harness = InProcessHarness(svc)

    def one_burst():
        harness.submit_all(
            [{"id": i, "op": "rpq", "query": "Entry.Movie.Title"} for i in range(16)]
        )
        harness.run()

    benchmark(one_burst)


def test_e15_service_overhead(benchmark):
    """E15c: the serving tax -- harness query vs direct kernel call."""
    from repro.automata.product import rpq_nodes

    svc = _service()
    harness = InProcessHarness(svc)
    query = "Entry.Movie.Title"
    repeat = 20 if SMOKE else 200

    def served():
        for i in range(repeat):
            harness.run_one({"id": i, "op": "rpq", "query": query})

    def direct():
        for _ in range(repeat):
            rpq_nodes(svc.frozen, query, plan_cache=svc.plan_cache)

    served_s, _ = timed(served)
    direct_s, _ = timed(direct)
    per_query_tax = (served_s - direct_s) / repeat
    _RECORDS["overhead"] = {
        "calls": repeat,
        "served_s": served_s,
        "direct_s": direct_s,
        "tax_per_query_s": per_query_tax,
    }
    print_table(
        f"E15c: service overhead over the bare kernel ({repeat} calls)",
        ["path", "time", "per call"],
        [
            ("direct kernel", f"{direct_s * 1e3:.1f}ms", f"{direct_s / repeat * 1e6:.0f}us"),
            ("served (admission+checkpoints)", f"{served_s * 1e3:.1f}ms",
             f"{served_s / repeat * 1e6:.0f}us"),
        ],
    )
    benchmark(lambda: harness.run_one({"id": 999, "op": "rpq", "query": query}))


def test_e15_crash_safe_save_cost(benchmark, tmp_path):
    """E15d: durability pricing -- per-save fsync vs none vs group commit."""
    graph = generate_movies(ENTRIES, seed=23)
    store = GraphStore(graph)

    def durable_saves():
        for i in range(SAVES):
            store.save(tmp_path / f"durable-{i}.graph", durable=True)

    def fast_saves():
        for i in range(SAVES):
            store.save(tmp_path / f"fast-{i}.graph", durable=False)

    def group_commit_saves():
        gc = GroupCommit(tmp_path / "batch")
        for i in range(SAVES):
            gc.add(graph, f"snap-{i}.graph")
        gc.flush()

    durable_s, _ = timed(durable_saves, repeat=1)
    fast_s, _ = timed(fast_saves, repeat=1)
    group_s, _ = timed(group_commit_saves, repeat=1)

    # count the fsyncs each strategy actually pays
    counts = {}
    real_fsync = os.fsync
    for name, fn in (
        ("durable", durable_saves),
        ("fast", fast_saves),
        ("group", group_commit_saves),
    ):
        n = 0

        def counting_fsync(fd):
            nonlocal n
            n += 1
            real_fsync(fd)

        os.fsync = counting_fsync
        try:
            fn()
        finally:
            os.fsync = real_fsync
        counts[name] = n

    _RECORDS["crash_safe_save"] = {
        "saves": SAVES,
        "durable_s": durable_s,
        "fast_s": fast_s,
        "group_commit_s": group_s,
        "fsyncs": counts,
    }
    print_table(
        f"E15d: {SAVES} crash-safe saves (movies{ENTRIES})",
        ["strategy", "time", "fsyncs", "per save"],
        [
            ("atomic, per-save fsync", f"{durable_s * 1e3:.1f}ms",
             counts["durable"], f"{durable_s / SAVES * 1e3:.2f}ms"),
            ("atomic, no fsync", f"{fast_s * 1e3:.1f}ms",
             counts["fast"], f"{fast_s / SAVES * 1e3:.2f}ms"),
            ("group commit (1 journal fsync)", f"{group_s * 1e3:.1f}ms",
             counts["group"], f"{group_s / SAVES * 1e3:.2f}ms"),
        ],
    )
    # the durability arithmetic is deterministic even when timings are not:
    # per-save durability costs 2 fsyncs (temp + directory); group commit
    # pays exactly one for the whole batch
    assert counts["durable"] == 2 * SAVES
    assert counts["fast"] == 0
    assert counts["group"] == 1

    write_bench(
        "e15_governor",
        {
            "entries": ENTRIES,
            "smoke": SMOKE,
            "records": _RECORDS,
        },
        Path(__file__).parent / "out",
    )
    benchmark(lambda: store.save(tmp_path / "bench.graph", durable=True))
