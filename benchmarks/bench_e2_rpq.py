"""E2 -- regular path queries: automaton product vs. naive enumeration.

Claim operationalized (section 3): path regexes make arbitrary-length path
constraints tractable.  The product construction visits each (node, state)
pair once; naive path enumeration explodes with branching and never
terminates on cycles without an artificial bound.  Expected shape: the
product wins by orders of magnitude as depth grows, and remains correct on
cyclic data where the bounded baseline under-approximates.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table, timed

from repro.automata.plan_cache import PlanCache
from repro.automata.product import naive_rpq, rpq_nodes, rpq_nodes_profiled
from repro.datasets import generate_movies, generate_web
from repro.obs.export import write_bench
from repro.obs.metrics import MetricsRegistry

PATTERN = 'Entry.Movie.(!Movie)*."Allen"'


def test_e2_product_vs_naive(benchmark):
    rows = []
    records = {}
    cache = PlanCache(registry=MetricsRegistry())
    for entries in [20, 60, 180]:
        g = generate_movies(entries, seed=23, reference_fraction=0.3)
        fg = g.freeze()
        cache.get(PATTERN)  # warm: measure the kernel's steady state
        bound = 8
        product_s, product_hits = timed(lambda: rpq_nodes(g, PATTERN))
        frozen_s, frozen_hits = timed(
            lambda: rpq_nodes(fg, PATTERN, plan_cache=cache)
        )
        naive_s, naive_hits = timed(lambda: naive_rpq(g, PATTERN, max_length=bound), repeat=1)
        assert frozen_hits == product_hits
        assert naive_hits <= product_hits  # bounded baseline under-approximates
        _, profile = rpq_nodes_profiled(g, PATTERN)
        records[f"movies{entries}"] = {
            "product_s": product_s,
            "frozen_s": frozen_s,
            "naive_s": naive_s,
            "profile": profile.as_dict(),
        }
        rows.append(
            (
                entries,
                g.num_edges,
                len(product_hits),
                f"{product_s * 1e3:.2f}ms",
                f"{frozen_s * 1e3:.2f}ms",
                f"{naive_s * 1e3:.2f}ms",
                f"x{naive_s / product_s:.0f}" if product_s else "-",
            )
        )
    print_table(
        f"E2: {PATTERN!r}, product vs naive (bound 8)",
        ["entries", "edges", "hits", "product", "frozen+cached", "naive", "naive/product"],
        rows,
    )
    # shape: the product wins, increasingly with size
    ratios = [float(r[6][1:]) for r in rows]
    assert ratios[-1] > 5.0
    assert ratios[-1] >= ratios[0]

    write_bench("e2_rpq", {"timings": records}, Path(__file__).parent / "out")

    g = generate_movies(180, seed=23, reference_fraction=0.3)
    benchmark(lambda: rpq_nodes(g, PATTERN))


def test_e2_termination_on_cycles(benchmark):
    """On a cyclic web graph the product terminates; the naive baseline
    can only explore to its bound."""
    web = generate_web(200, seed=5)
    pattern = "link*.keyword"
    product_s, hits = timed(lambda: rpq_nodes(web, pattern))
    bounded_s, bounded_hits = timed(lambda: naive_rpq(web, pattern, max_length=5), repeat=1)
    print_table(
        "E2b: cyclic web graph, link*.keyword",
        ["method", "hits", "time"],
        [
            ("product (complete)", len(hits), f"{product_s * 1e3:.2f}ms"),
            ("naive bound=5 (partial)", len(bounded_hits), f"{bounded_s * 1e3:.2f}ms"),
        ],
    )
    assert bounded_hits <= hits
    assert len(hits) > len(bounded_hits)  # the bound misses answers
    benchmark(lambda: rpq_nodes(web, pattern))
