"""E13 -- the fast-path query kernel: where each optimization pays.

Four ablations over the E2 RPQ workload (docs/PERFORMANCE.md explains
the design; EXPERIMENTS.md records the tables):

* **frozen vs dict** -- the same precompiled plan over ``Graph``
  (dict-of-lists adjacency, per-call tuple views) and its
  ``freeze()`` CSR snapshot;
* **pruned vs full** -- the frozen layout with label pruning on
  (scan only partitions matching the DFA state's live labels) and
  forcibly off (every out-edge scanned, as the seed did);
* **cached vs cold** -- pattern strings resolved through a warm
  :class:`~repro.automata.plan_cache.PlanCache` vs recompiled
  (parse + NFA + determinize) on every call;
* **batched vs looped** -- one tagged multi-source traversal
  (``rpq_nodes_many``) vs one product BFS per source, the shape of
  the Lorel evaluator's per-binding calls before the rewire.

The headline assertion is the combined kernel: frozen + pruned +
cached must beat the seed path (dict graph, per-call recompile, full
scans) by >= 2x on a bundled dataset.  ``BENCH_SMOKE=1`` shrinks the
sweep for CI and skips the ratio assertions (shared-runner timings are
too noisy to gate on).
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table, timed

from repro.automata.plan_cache import PlanCache
from repro.automata.product import compile_rpq, rpq_nodes, rpq_nodes_many
from repro.datasets import generate_movies, generate_web
from repro.obs.export import write_bench
from repro.obs.metrics import MetricsRegistry

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
ENTRIES = 40 if SMOKE else 180
QUERY_REPEAT = 5 if SMOKE else 40

#: The E2 workload patterns: exact chains (fully prunable), alternation,
#: and the negated-closure query whose ``!Movie`` guard exercises the
#: full-scan fallback mid-pattern.
PATTERNS = [
    "Entry.Movie.Title",
    "Entry.Movie.(Cast|Director)",
    "Entry._.References._.Title",
    'Entry.Movie.(!Movie)*."Allen"',
]

_RECORDS: dict = {}


def _movies():
    return generate_movies(ENTRIES, seed=23, reference_fraction=0.3)


def _unpruned(pattern):
    """A fresh plan with label pruning disabled (every guard reported
    non-exact), reproducing the seed's scan-every-edge behavior."""
    dfa = compile_rpq(pattern)
    dfa.live_exact_labels = lambda state: None
    return dfa


def test_e13_frozen_vs_dict(benchmark):
    g = _movies()
    fg = g.freeze()
    rows = []
    for pattern in PATTERNS:
        plan = _unpruned(pattern)  # isolate the layout: no pruning either side
        dict_s, dict_hits = timed(lambda: rpq_nodes(g, plan))
        frozen_s, frozen_hits = timed(lambda: rpq_nodes(fg, plan))
        assert frozen_hits == dict_hits
        _RECORDS.setdefault("frozen_vs_dict", {})[pattern] = {
            "dict_s": dict_s,
            "frozen_s": frozen_s,
        }
        rows.append(
            (
                pattern,
                len(dict_hits),
                f"{dict_s * 1e3:.2f}ms",
                f"{frozen_s * 1e3:.2f}ms",
                f"x{dict_s / frozen_s:.1f}" if frozen_s else "-",
            )
        )
    print_table(
        f"E13a: CSR snapshot vs dict adjacency (movies{ENTRIES}, unpruned plans)",
        ["pattern", "hits", "dict", "frozen", "dict/frozen"],
        rows,
    )
    plan = _unpruned(PATTERNS[0])
    benchmark(lambda: rpq_nodes(fg, plan))


def test_e13_pruned_vs_full(benchmark):
    g = _movies()
    fg = g.freeze()
    rows = []
    for pattern in PATTERNS:
        pruned_plan = compile_rpq(pattern)
        full_plan = _unpruned(pattern)
        pruned_s, pruned_hits = timed(lambda: rpq_nodes(fg, pruned_plan))
        full_s, full_hits = timed(lambda: rpq_nodes(fg, full_plan))
        assert pruned_hits == full_hits
        _RECORDS.setdefault("pruned_vs_full", {})[pattern] = {
            "full_s": full_s,
            "pruned_s": pruned_s,
        }
        rows.append(
            (
                pattern,
                len(pruned_hits),
                f"{full_s * 1e3:.2f}ms",
                f"{pruned_s * 1e3:.2f}ms",
                f"x{full_s / pruned_s:.1f}" if pruned_s else "-",
            )
        )
    print_table(
        f"E13b: label-pruned vs full-scan traversal (movies{ENTRIES}, frozen)",
        ["pattern", "hits", "full", "pruned", "full/pruned"],
        rows,
    )
    if not SMOKE:
        # exact-chain patterns must benefit from skipping dead partitions
        chain = _RECORDS["pruned_vs_full"]["Entry.Movie.Title"]
        assert chain["pruned_s"] < chain["full_s"]
    pruned_plan = compile_rpq(PATTERNS[0])
    benchmark(lambda: rpq_nodes(fg, pruned_plan))


def test_e13_cached_vs_cold(benchmark):
    g = _movies()
    fg = g.freeze()

    def cold():
        return [rpq_nodes(fg, p) for p in PATTERNS for _ in range(QUERY_REPEAT)]

    cache = PlanCache(registry=MetricsRegistry())

    def warm():
        return [
            rpq_nodes(fg, p, plan_cache=cache)
            for p in PATTERNS
            for _ in range(QUERY_REPEAT)
        ]

    warm()  # populate the cache: the steady state being measured
    cold_s, cold_res = timed(cold)
    warm_s, warm_res = timed(warm)
    assert cold_res == warm_res
    _RECORDS["cached_vs_cold"] = {
        "calls": len(PATTERNS) * QUERY_REPEAT,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cache": cache.stats(),
    }
    print_table(
        f"E13c: plan cache, {len(PATTERNS) * QUERY_REPEAT} calls over {len(PATTERNS)} patterns",
        ["mode", "time", "cold/warm"],
        [
            ("cold (recompile per call)", f"{cold_s * 1e3:.2f}ms", ""),
            (
                "warm (LRU plan cache)",
                f"{warm_s * 1e3:.2f}ms",
                f"x{cold_s / warm_s:.1f}" if warm_s else "-",
            ),
        ],
    )
    if not SMOKE:
        assert warm_s < cold_s
    benchmark(warm)


def test_e13_batched_vs_looped(benchmark):
    g = _movies()
    fg = g.freeze()
    sources = sorted(rpq_nodes(fg, "Entry.Movie"))
    pattern = '(!Movie)*."Allen"'
    plan = compile_rpq(pattern)

    def looped():
        return {src: rpq_nodes(fg, plan, start=src) for src in sources}

    def batched():
        return rpq_nodes_many(fg, plan, sources)

    looped_s, looped_res = timed(looped)
    batched_s, batched_res = timed(batched)
    assert batched_res == looped_res
    _RECORDS["batched_vs_looped"] = {
        "sources": len(sources),
        "looped_s": looped_s,
        "batched_s": batched_s,
    }
    print_table(
        f"E13d: multi-source {pattern!r} from {len(sources)} movie nodes",
        ["mode", "time", "looped/batched"],
        [
            ("looped (one BFS per source)", f"{looped_s * 1e3:.2f}ms", ""),
            (
                "batched (tagged frontier)",
                f"{batched_s * 1e3:.2f}ms",
                f"x{looped_s / batched_s:.1f}" if batched_s else "-",
            ),
        ],
    )
    benchmark(batched)


def test_e13_combined_kernel_speedup(benchmark):
    """The acceptance gate: the full kernel (freeze + prune + cache)
    vs the seed path (dict graph, string recompile per call)."""
    g = _movies()
    web = generate_web(ENTRIES, seed=7)
    rows = []
    datasets = {"movies": (g, PATTERNS), "web": (web, ["link*.keyword", "link.link.title"])}
    for name, (graph, patterns) in datasets.items():
        def seed_path():
            return [rpq_nodes(graph, p) for p in patterns for _ in range(QUERY_REPEAT)]

        def kernel_path():
            fg = graph.freeze()  # snapshot cost charged to the fast path
            cache = PlanCache(registry=MetricsRegistry())
            return [
                rpq_nodes(fg, p, plan_cache=cache)
                for p in patterns
                for _ in range(QUERY_REPEAT)
            ]

        seed_s, seed_res = timed(seed_path)
        kernel_s, kernel_res = timed(kernel_path)
        assert kernel_res == seed_res
        speedup = seed_s / kernel_s if kernel_s else float("inf")
        _RECORDS.setdefault("combined", {})[name] = {
            "calls": len(patterns) * QUERY_REPEAT,
            "seed_s": seed_s,
            "kernel_s": kernel_s,
            "speedup": speedup,
        }
        rows.append(
            (
                name,
                len(patterns) * QUERY_REPEAT,
                f"{seed_s * 1e3:.2f}ms",
                f"{kernel_s * 1e3:.2f}ms",
                f"x{speedup:.1f}",
            )
        )
    print_table(
        "E13e: combined kernel (freeze+prune+cache) vs seed dict path",
        ["dataset", "calls", "seed", "kernel", "speedup"],
        rows,
    )
    if not SMOKE:
        # acceptance: >= 2x on at least one bundled dataset
        assert max(r["speedup"] for r in _RECORDS["combined"].values()) >= 2.0

    write_bench(
        "e13_kernel",
        {"entries": ENTRIES, "query_repeat": QUERY_REPEAT, "timings": _RECORDS},
        Path(__file__).parent / "out",
    )

    fg = g.freeze()
    cache = PlanCache(registry=MetricsRegistry())
    benchmark(lambda: rpq_nodes(fg, PATTERNS[0], plan_cache=cache))
