"""E12 -- disk layout and clustering for directly-stored data.

Claim operationalized (section 4): "disk layout and clustering, together
with appropriate indexing, is also important" when semistructured data is
stored directly.  Expected shape: DFS clustering beats random placement on
traversal page faults by an order of magnitude at small cache sizes, and
the gap narrows as the buffer pool grows; serialization round-trips are
linear and faithful.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table, timed

from repro.core.bisim import bisimilar
from repro.datasets import generate_acedb, generate_movies
from repro.storage import GraphStore, dumps, loads, traversal_page_faults


def test_e12_clustering_page_faults(benchmark):
    db = generate_acedb(300, seed=121, max_depth=8)
    rows = []
    stores = {
        clustering: GraphStore(db, clustering=clustering, page_size=512, seed=1)
        for clustering in ("dfs", "bfs", "random")
    }
    for cache_pages in (4, 16, 64, 256):
        fault_counts = {
            name: traversal_page_faults(store, cache_pages=cache_pages, order="dfs")
            for name, store in stores.items()
        }
        rows.append(
            (
                cache_pages,
                fault_counts["dfs"],
                fault_counts["bfs"],
                fault_counts["random"],
                f"x{fault_counts['random'] / fault_counts['dfs']:.1f}",
            )
        )
    print_table(
        f"E12: DFS-scan page faults by clustering ({stores['dfs'].num_pages} pages)",
        ["cache pages", "dfs layout", "bfs layout", "random layout", "random/dfs"],
        rows,
    )
    # shape: dfs wins everywhere; hugely at small caches, converging as the
    # cache approaches the store size
    assert float(rows[0][4][1:]) > 5.0
    assert float(rows[-1][4][1:]) <= float(rows[0][4][1:])

    store = stores["dfs"]
    benchmark(lambda: traversal_page_faults(store, cache_pages=16, order="dfs"))


def test_e12_serialization_round_trip(benchmark):
    rows = []
    for entries in (100, 400, 1600):
        g = generate_movies(entries, seed=122)
        dump_s, data = timed(lambda: dumps(g), repeat=2)
        load_s, back = timed(lambda: loads(data), repeat=2)
        assert bisimilar(g, back)
        rows.append(
            (
                entries,
                g.num_edges,
                f"{len(data) / 1024:.0f}KiB",
                f"{len(data) / g.num_edges:.1f}B/edge",
                f"{dump_s * 1e3:.1f}ms",
                f"{load_s * 1e3:.1f}ms",
            )
        )
    print_table(
        "E12b: binary serialization round trip (bisimilar, verified)",
        ["entries", "edges", "bytes", "density", "dump", "load"],
        rows,
    )
    g = generate_movies(400, seed=122)
    benchmark(lambda: loads(dumps(g)))
