"""Ablations -- the design choices DESIGN.md calls out, measured.

* **A1: lazy determinization.**  The RPQ product can run over raw NFA
  states (one configuration per (node, nfa state)) or over the lazy DFA
  (one per (node, subset state), with memoized truth vectors).  Expected:
  the DFA visits fewer configurations and amortizes predicate evaluation,
  winning on star-heavy patterns.
* **A2: path-index depth.**  Deeper indexes cover more fixed-path queries
  but cost more to build and store.  Expected: coverage saturates at the
  data's typical path depth, build cost grows past it -- the knob has a
  sweet spot, justifying the default of 4.
* **A3: optimizer on/off.**  The UnQL fixed-path index resolution
  (section 4) against plain evaluation on the same queries.
"""

import sys
from collections import deque
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table, timed

from repro.automata.nfa import build_nfa
from repro.automata.product import compile_rpq, rpq_nodes
from repro.automata.regex import parse_path_regex
from repro.datasets import generate_movies, generate_web
from repro.index import GraphIndexes, PathIndex
from repro.unql import unql


def nfa_product(graph, nfa):
    """The undeterminized product: configurations are (node, nfa state)."""
    results = set()
    start = [(graph.root, q) for q in nfa.initial()]
    seen = set(start)
    queue = deque(start)
    visited = 0
    if any(q in nfa.accepting for _, q in start):
        results.add(graph.root)
    while queue:
        node, state = queue.popleft()
        visited += 1
        for edge in graph.edges_from(node):
            for predicate, target in nfa.transitions[state]:
                if not predicate.matches(edge.label):
                    continue
                for q in nfa.eps_closure([target]):
                    config = (edge.dst, q)
                    if config in seen:
                        continue
                    seen.add(config)
                    if q in nfa.accepting:
                        results.add(edge.dst)
                    queue.append(config)
    return results, visited


def test_a1_lazy_dfa_vs_nfa_product(benchmark):
    web = generate_web(400, seed=201)
    patterns = ["link.link.link", "(link|xref)*", "link*.keyword.<string>", "#.url"]
    rows = []
    for pattern in patterns:
        nfa = build_nfa(parse_path_regex(pattern))
        dfa_s, dfa_hits = timed(lambda p=pattern: rpq_nodes(web, compile_rpq(p)), repeat=2)
        nfa_s, (nfa_hits, visited) = timed(lambda n=nfa: nfa_product(web, n), repeat=2)
        assert dfa_hits == nfa_hits, pattern
        rows.append(
            (
                pattern,
                len(dfa_hits),
                f"{dfa_s * 1e3:.1f}ms",
                f"{nfa_s * 1e3:.1f}ms",
                f"x{nfa_s / dfa_s:.1f}",
            )
        )
    print_table(
        "A1: lazy DFA product vs raw NFA product (400-page web)",
        ["pattern", "hits", "lazy DFA", "NFA", "NFA/DFA"],
        rows,
    )
    # shape: the DFA never loses badly, and wins on the starred patterns
    starred = [r for r in rows if "*" in r[0] or "#" in r[0]]
    assert any(float(r[4][1:]) > 1.0 for r in starred)

    benchmark(lambda: rpq_nodes(web, "(link|xref)*"))


def test_a2_path_index_depth(benchmark):
    g = generate_movies(300, seed=202)
    workload = [
        "Entry", "Entry.Movie", "Entry.Movie.Title", "Entry.Movie.Cast",
        "Entry.Movie.Cast.Actors", "Entry.Movie.Cast.Actors",  # depth 4
        "Entry.Movie.Title",
    ]
    from repro.core.labels import sym

    paths = [tuple(sym(s) for s in q.split(".")) for q in workload]
    rows = []
    for depth in (1, 2, 3, 4, 6):
        build_s, index = timed(lambda d=depth: PathIndex(g, max_depth=d), repeat=1)
        covered = sum(1 for p in paths if index.covers(p))
        rows.append(
            (
                depth,
                index.num_paths,
                f"{build_s * 1e3:.1f}ms",
                f"{covered}/{len(paths)}",
            )
        )
    print_table(
        "A2: path-index depth ablation",
        ["max depth", "indexed paths", "build", "workload covered"],
        rows,
    )
    # shape: coverage saturates at the workload depth (4); cost keeps rising
    assert rows[3][3] == f"{len(paths)}/{len(paths)}"
    assert rows[-1][1] > rows[3][1]

    benchmark(lambda: PathIndex(g, max_depth=4))


def test_a3_unql_optimizer_on_off(benchmark):
    g = generate_movies(600, seed=203)
    indexes = GraphIndexes(g).build_all()
    queries = [
        ("satisfiable fixed path", r"select \t where {Entry.Movie.Title: \t} in db"),
        ("prunable", r"select \t where {Entry.Ghost.Title: \t} in db"),
    ]
    rows = []
    from repro.core.bisim import bisimilar

    for name, q in queries:
        plain_s, plain = timed(lambda q=q: unql(q, db=g), repeat=2)
        fast_s, fast = timed(lambda q=q: unql(q, indexes=indexes, db=g), repeat=2)
        assert bisimilar(plain, fast)
        rows.append(
            (name, f"{plain_s * 1e3:.1f}ms", f"{fast_s * 1e3:.1f}ms",
             f"x{plain_s / fast_s:.1f}")
        )
    print_table(
        "A3: UnQL index optimizations on/off (600 entries)",
        ["query", "optimizer off", "optimizer on", "speedup"],
        rows,
    )
    assert all(float(r[3][1:]) >= 0.9 for r in rows)  # never a regression
    assert float(rows[1][3][1:]) > 2.0  # pruning wins clearly

    benchmark(lambda: unql(queries[0][1], indexes=indexes, db=g))
