"""E17 -- true parallel distributed RPQ over a shared-memory crawl snapshot.

Two sweeps over a multi-million-edge synthetic crawl
(:func:`~repro.datasets.generate_crawl`: power-law out-degree,
host-locality, hub-skewed cross references):

* **speedup vs workers** -- wall time of a :class:`~repro.distributed.
  ParallelRpqPool` (spawned OS-process sites over one shared CSR
  segment) against the centralized single-process kernel, for 1/2/4
  workers.  Answers are asserted bit-identical to ``rpq_nodes`` every
  run.  The headline gate: the host-local pattern at 4 workers must be
  >= 2x faster than the centralized kernel.  On a single-core runner
  that margin comes from the dense worker plan (flat transition table +
  bucket-level label pruning, no dict probes) -- the per-worker curve
  then *degrades* with worker count as boundary messages grow, which is
  exactly the honest story: decomposition overhead is measurable, and
  hardware parallelism is what turns it back into scaling.
* **message volume vs strategy** -- the same query under ``hash`` /
  ``label`` / ``greedy`` partitioning: cut fraction, boundary messages,
  supersteps, straggler ratio.  Locality-aware strategies must message
  less than the locality-blind hash baseline.

``BENCH_SMOKE=1`` shrinks the crawl and the worker sweep for CI and
skips the ratio gates (shared-runner timings are too noisy to gate on).
``E17_WORKERS`` caps the worker sweep (e.g. ``E17_WORKERS=2``).
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table, timed

from repro.automata.product import rpq_nodes
from repro.datasets import generate_crawl
from repro.distributed import ParallelRpqPool, build_partition

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
PAGES = 20_000 if SMOKE else 1_000_000
REPEAT = 1 if SMOKE else 2
_worker_cap = int(os.environ.get("E17_WORKERS", "0") or 0)
WORKERS = [k for k in ([1, 2] if SMOKE else [1, 2, 4]) if not _worker_cap or k <= _worker_cap]

#: The measured patterns: a host-local closure (cross-host edges are
#: never ``link``, so boundary traffic stays near the partition cut) and
#: a mixed closure that rides the hub-skewed ``ref`` edges everywhere.
HEADLINE = "link*.cite"
PATTERNS = [HEADLINE, "(link|ref)*.cite"]

_RECORDS: dict = {}
_GRAPH = None


def _crawl():
    global _GRAPH
    if _GRAPH is None:
        _GRAPH = generate_crawl(PAGES, seed=1)
    return _GRAPH


def test_e17_speedup_vs_workers(benchmark):
    fg = _crawl()
    baselines = {}
    for pattern in PATTERNS:
        base_s, base_nodes = timed(lambda: rpq_nodes(fg, pattern), repeat=REPEAT)
        baselines[pattern] = (base_s, base_nodes)
    rows = []
    for k in WORKERS:
        with ParallelRpqPool(fg, k, strategy="greedy") as pool:
            for pattern in PATTERNS:
                base_s, base_nodes = baselines[pattern]
                par_s, result = timed(lambda: pool.run(pattern), repeat=REPEAT)
                # the acceptance property: bit-identical answers, always
                assert set(result.nodes) == base_nodes
                speedup = base_s / par_s if par_s else float("inf")
                _RECORDS.setdefault("speedup", {}).setdefault(pattern, {})[str(k)] = {
                    "centralized_s": base_s,
                    "parallel_s": par_s,
                    "speedup": speedup,
                    "supersteps": result.stats.supersteps,
                    "messages": result.stats.messages,
                    "straggler_ratio": result.stats.straggler_ratio,
                }
                rows.append(
                    (
                        pattern,
                        k,
                        f"{base_s:.2f}s",
                        f"{par_s:.2f}s",
                        f"x{speedup:.2f}",
                        result.stats.supersteps,
                        result.stats.messages,
                        f"{result.stats.straggler_ratio:.2f}",
                    )
                )
    print_table(
        f"E17a: parallel RPQ vs centralized kernel (crawl {PAGES} pages, "
        f"{fg.num_edges} edges, {os.cpu_count()} cores)",
        ["pattern", "workers", "centralized", "parallel", "speedup", "steps", "msgs", "straggler"],
        rows,
    )
    if not SMOKE and 4 in WORKERS:
        # acceptance: >= 2x at 4 workers on the headline pattern
        assert _RECORDS["speedup"][HEADLINE]["4"]["speedup"] >= 2.0

    with ParallelRpqPool(fg, WORKERS[-1], strategy="greedy") as pool:
        benchmark(lambda: pool.run(HEADLINE))


def test_e17_message_volume_vs_strategy():
    fg = _crawl()
    pattern = PATTERNS[-1]
    rows = []
    for strategy in ("hash", "label", "greedy"):
        part = build_partition(fg, max(WORKERS), strategy)
        with ParallelRpqPool(
            fg, max(WORKERS), partition=part, inline=True
        ) as pool:
            run_s, result = timed(lambda: pool.run(pattern), repeat=1)
        _RECORDS.setdefault("strategies", {})[strategy] = {
            "cut_fraction": part.stats.cut_fraction,
            "balance": part.stats.balance,
            "messages": result.stats.messages,
            "supersteps": result.stats.supersteps,
            "straggler_ratio": result.stats.straggler_ratio,
            "inline_s": run_s,
        }
        rows.append(
            (
                strategy,
                f"{part.stats.cut_fraction:.3f}",
                f"{part.stats.balance:.2f}",
                result.stats.messages,
                result.stats.supersteps,
                f"{result.stats.straggler_ratio:.2f}",
            )
        )
    print_table(
        f"E17b: partition strategy vs boundary traffic ({pattern!r}, "
        f"{max(WORKERS)} sites, inline driver)",
        ["strategy", "cut", "balance", "messages", "steps", "straggler"],
        rows,
    )
    strategies = _RECORDS["strategies"]
    if not SMOKE:
        # locality-aware partitioning must beat the hash baseline on
        # both the static cut and the dynamic message volume
        assert strategies["greedy"]["cut_fraction"] < strategies["hash"]["cut_fraction"]
        assert strategies["greedy"]["messages"] < strategies["hash"]["messages"]
        assert strategies["label"]["messages"] < strategies["hash"]["messages"]

    from repro.obs.export import write_bench

    write_bench(
        "e17_parallel",
        {
            "pages": PAGES,
            "edges": _crawl().num_edges,
            "workers": WORKERS,
            "cores": os.cpu_count(),
            "repeat": REPEAT,
            "timings": _RECORDS,
        },
        Path(__file__).parent / "out",
    )
