r"""E8 -- translating a UnQL fragment onto a relational structure.

Claim operationalized (section 4, [19]): the binding phase of a UnQL query
compiles to relational algebra over the (node-id, label, node-id) edge
relation.  Expected shape: identical binding sets everywhere; the native
graph evaluator wins on queries that traverse little of the graph
(it is demand-driven), while the relational route pays a fixed encoding +
join cost but scales predictably; ``#`` queries are the relational
route's worst case (a full transitive closure).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table, timed

from repro.core.labels import Label
from repro.datasets import generate_movies
from repro.relational.translate import translate_bindings
from repro.unql.evaluator import query_bindings
from repro.unql.parser import parse_query

QUERIES = [
    ("fixed path", r"select \t where {Entry.Movie.Title: \t} in db"),
    ("two members", r"select \t where {Entry.Movie: {Title: \t, Year: \y}} in db"),
    ("wildcard step", r"select \t where {Entry._.Title: \t} in db"),
    ("label variable", r"select \L where {Entry.Movie: {\L: \v}} in db"),
    ("closure (#)", r"select \t where {#: {Director: \t}} in db"),
]


def native_rows(query, graph):
    out = set()
    for env in query_bindings(query, {"db": graph}):
        out.add(
            tuple(
                env[v].value if isinstance(env[v], Label) else env[v]
                for v in sorted(env)
            )
        )
    return out


def test_e8_native_vs_translated(benchmark):
    g = generate_movies(120, seed=81)
    rows = []
    for name, text in QUERIES:
        query = parse_query(text)
        native_s, native = timed(lambda: native_rows(query, g), repeat=2)
        trans_s, translated = timed(
            lambda: set(translate_bindings(query, g).rows), repeat=1
        )
        assert native == translated, name
        rows.append(
            (
                name,
                len(native),
                f"{native_s * 1e3:.2f}ms",
                f"{trans_s * 1e3:.2f}ms",
                f"x{trans_s / native_s:.1f}",
            )
        )
    print_table(
        "E8: UnQL bindings, native graph evaluation vs relational translation",
        ["query", "bindings", "native", "translated", "translated/native"],
        rows,
    )
    # shape: answers equal everywhere (asserted above); the closure query
    # is the relational route's worst case
    ratios = {r[0]: float(r[4][1:]) for r in rows}
    assert ratios["closure (#)"] >= max(ratios["fixed path"], 1.0)

    query = parse_query(QUERIES[0][1])
    benchmark(lambda: translate_bindings(query, g))
