"""E14 -- index-accelerated planning: what each routing decision buys.

Four ablations over the PR-3 fast-path kernel, which is the *baseline*
everywhere (frozen CSR snapshot, label-pruned traversal, warm plan
cache) -- E14 measures only what the planner adds on top:

* **routing vs kernel** -- selective queries through
  :meth:`~repro.planner.QueryPlanner.rpq` (``auto``: path index, then
  DataGuide product, then masked kernel) vs the same warm kernel;
* **guide mask** -- the kernel with the guide-derived pruning mask vs
  without, on patterns whose wildcard/negation guards defeat exact
  label pruning (the mask is the only finite live-set there);
* **Lorel pushdown** -- where-predicates resolved through the OEM value
  groups seeding the binding stage, vs post-filtering;
* **statistics reordering** -- frequency-driven clause costs vs the
  shape heuristic on a query whose rare clause the heuristic cannot see.

The acceptance gate: the planner beats the PR-3 kernel by >= 1.5x on at
least two selective workloads.  ``BENCH_SMOKE=1`` shrinks the sweep and
skips the ratio assertions (shared CI runners are too noisy to gate on).
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table, timed

from repro.automata.plan_cache import PlanCache
from repro.automata.product import rpq_nodes
from repro.core.convert import graph_to_oem
from repro.datasets import generate_movies, generate_web
from repro.lorel import parse_lorel, reorder_from_clauses
from repro.lorel.evaluator import lorel_bindings
from repro.obs.export import write_bench
from repro.obs.metrics import MetricsRegistry
from repro.planner import QueryPlanner, oem_indexes_for

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
ENTRIES = 40 if SMOKE else 180
PAGES = 40 if SMOKE else 200
QUERY_REPEAT = 5 if SMOKE else 40

#: The selective RPQ workloads: fixed paths the index answers in one
#: lookup, and root-origin patterns the guide answers without touching
#: the data graph.
SELECTIVE = {
    "movies": ["Entry.Movie.Title", "Entry.Movie.Year", "Entry._.Title"],
    "web": ["title", "link.link.title", "link.keyword"],
}

_RECORDS: dict = {}


def _datasets():
    return {
        "movies": generate_movies(ENTRIES, seed=23, reference_fraction=0.3),
        "web": generate_web(PAGES, seed=7),
    }


def test_e14_routing_vs_kernel(benchmark):
    """The headline: planner-routed selective queries vs the warm kernel."""
    rows = []
    speedups = []
    planner = None
    for name, g in _datasets().items():
        fg = g.freeze()
        cache = PlanCache(registry=MetricsRegistry())
        planner = QueryPlanner(fg)
        for pattern in SELECTIVE[name]:
            planner.rpq(pattern)  # warm: plans, index/guide, masks

            def kernel():
                return [
                    rpq_nodes(fg, pattern, plan_cache=cache)
                    for _ in range(QUERY_REPEAT)
                ]

            def routed():
                return [planner.rpq(pattern) for _ in range(QUERY_REPEAT)]

            kernel_s, kernel_res = timed(kernel)
            routed_s, routed_res = timed(routed)
            assert routed_res == kernel_res
            speedup = kernel_s / routed_s if routed_s else float("inf")
            speedups.append(speedup)
            _RECORDS.setdefault("routing", {})[f"{name}:{pattern}"] = {
                "hits": len(kernel_res[0]),
                "kernel_s": kernel_s,
                "routed_s": routed_s,
                "speedup": speedup,
            }
            rows.append(
                (
                    name,
                    pattern,
                    len(kernel_res[0]),
                    f"{kernel_s * 1e3:.2f}ms",
                    f"{routed_s * 1e3:.2f}ms",
                    f"x{speedup:.1f}",
                )
            )
    print_table(
        f"E14a: planner routing vs warm kernel ({QUERY_REPEAT} calls each)",
        ["dataset", "pattern", "hits", "kernel", "planner", "speedup"],
        rows,
    )
    if not SMOKE:
        # acceptance: >= 1.5x on at least two selective workloads
        assert sum(s >= 1.5 for s in speedups) >= 2, speedups
    pattern = SELECTIVE["web"][0]
    benchmark(lambda: planner.rpq(pattern))


def test_e14_guide_mask(benchmark):
    """The masked kernel vs the unmasked one, where exact pruning fails."""
    g = _datasets()["movies"]
    planner = QueryPlanner(g)
    patterns = ["Entry._.References._.Title", 'Entry.Movie.(!Movie)*."Allen"']
    rows = []
    for pattern in patterns:
        planner.rpq(pattern, strategy="mask")  # warm plan + mask

        def masked():
            return [
                planner.rpq(pattern, strategy="mask") for _ in range(QUERY_REPEAT)
            ]

        def unmasked():
            return [
                planner.rpq(pattern, strategy="kernel") for _ in range(QUERY_REPEAT)
            ]

        unmasked_s, unmasked_res = timed(unmasked)
        masked_s, masked_res = timed(masked)
        assert masked_res == unmasked_res
        _RECORDS.setdefault("guide_mask", {})[pattern] = {
            "hits": len(masked_res[0]),
            "unmasked_s": unmasked_s,
            "masked_s": masked_s,
        }
        rows.append(
            (
                pattern,
                len(masked_res[0]),
                f"{unmasked_s * 1e3:.2f}ms",
                f"{masked_s * 1e3:.2f}ms",
                f"x{unmasked_s / masked_s:.1f}" if masked_s else "-",
            )
        )
    print_table(
        f"E14b: guide-masked vs unmasked kernel (movies{ENTRIES})",
        ["pattern", "hits", "unmasked", "masked", "unmasked/masked"],
        rows,
    )
    benchmark(lambda: planner.rpq(patterns[0], strategy="mask"))


def test_e14_lorel_pushdown(benchmark):
    """Index-seeded bindings vs post-filtering on selective where-clauses."""
    db = graph_to_oem(_datasets()["movies"])
    indexes = oem_indexes_for(db)  # built once, amortized like the planner
    queries = [
        "select m.Title from DB.Entry.Movie m where m.Year < 1925",
        "select m.Year from DB.Entry.Movie m where m.Title like '%Paris%'",
    ]
    rows = []
    speedups = []
    for text in queries:
        query = parse_lorel(text)

        def seeded():
            return [
                sorted(map(repr, lorel_bindings(query, db, indexes=indexes)))
                for _ in range(QUERY_REPEAT)
            ]

        def postfiltered():
            return [
                sorted(map(repr, lorel_bindings(query, db)))
                for _ in range(QUERY_REPEAT)
            ]

        plain_s, plain_res = timed(postfiltered)
        seeded_s, seeded_res = timed(seeded)
        assert seeded_res == plain_res
        speedup = plain_s / seeded_s if seeded_s else float("inf")
        speedups.append(speedup)
        _RECORDS.setdefault("pushdown", {})[text] = {
            "bindings": len(plain_res[0]),
            "postfilter_s": plain_s,
            "seeded_s": seeded_s,
            "speedup": speedup,
        }
        rows.append(
            (
                text,
                len(plain_res[0]),
                f"{plain_s * 1e3:.2f}ms",
                f"{seeded_s * 1e3:.2f}ms",
                f"x{speedup:.1f}",
            )
        )
    print_table(
        f"E14c: index-seeded vs post-filtered Lorel (movies{ENTRIES} OEM)",
        ["query", "bindings", "postfilter", "seeded", "speedup"],
        rows,
    )
    if not SMOKE:
        assert max(speedups) >= 1.5, speedups
    query = parse_lorel(queries[0])
    benchmark(lambda: lorel_bindings(query, db, indexes=indexes))


def test_e14_stats_reordering(benchmark):
    """Frequency-driven clause order vs the shape heuristic.

    The two from clauses are shape-identical (two exact steps each), so
    the heuristic keeps the broad ``Movie`` clause first; the statistics
    see that ``Documentary`` matches nothing, bind it first, and empty
    the environment set before any Movie is expanded.
    """
    db = graph_to_oem(_datasets()["movies"])
    indexes = oem_indexes_for(db)
    text = (
        "select d.Title from DB.Entry.Movie m, DB.Entry.Documentary d "
        "where m.Year < 1997"
    )
    query = parse_lorel(text)
    heuristic = reorder_from_clauses(query)
    informed = reorder_from_clauses(query, stats=indexes.stats)

    def run(ordered):
        return [
            sorted(map(repr, lorel_bindings(ordered, db))) for _ in range(QUERY_REPEAT)
        ]

    heuristic_s, heuristic_res = timed(lambda: run(heuristic))
    informed_s, informed_res = timed(lambda: run(informed))
    assert informed_res == heuristic_res
    speedup = heuristic_s / informed_s if informed_s else float("inf")
    _RECORDS["reordering"] = {
        "heuristic_order": [c.alias for c in heuristic.from_clauses],
        "informed_order": [c.alias for c in informed.from_clauses],
        "heuristic_s": heuristic_s,
        "informed_s": informed_s,
        "speedup": speedup,
    }
    print_table(
        f"E14d: statistics-driven clause reordering (movies{ENTRIES} OEM)",
        ["cost model", "order", "time", "speedup"],
        [
            ("shape heuristic", "->".join(_RECORDS["reordering"]["heuristic_order"]), f"{heuristic_s * 1e3:.2f}ms", ""),
            ("frequencies", "->".join(_RECORDS["reordering"]["informed_order"]), f"{informed_s * 1e3:.2f}ms", f"x{speedup:.1f}"),
        ],
    )
    if not SMOKE:
        assert informed_s < heuristic_s

    write_bench(
        "e14_planner",
        {
            "entries": ENTRIES,
            "pages": PAGES,
            "query_repeat": QUERY_REPEAT,
            "timings": _RECORDS,
        },
        Path(__file__).parent / "out",
    )
    benchmark(lambda: run(informed))
