"""E1 -- the section 1.3 browsing queries: scan vs. index.

Claim operationalized: the three schema-free browsing queries are
answerable, and the section-4 indexes turn them from full scans into
near-constant lookups.  Expected shape: indexed wins on every query, by a
factor that grows with database size.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table, timed

from repro.browse import (
    find_attribute_names,
    find_integers_greater_than,
    find_value,
    find_value_profiled,
)
from repro.datasets import generate_movies
from repro.index import GraphIndexes
from repro.obs.export import write_bench

SIZES = [100, 400, 1600]


def test_e1_browsing_scan_vs_index(benchmark):
    rows = []
    records = {}
    for size in SIZES:
        g = generate_movies(size, seed=11)
        indexes = GraphIndexes(g).build_all()
        for name, scan_fn, idx_fn in [
            (
                "find 'Bogart'",
                lambda g=g: find_value(g, "Bogart"),
                lambda g=g, i=indexes: find_value(g, "Bogart", indexes=i),
            ),
            (
                "ints > 2^10",
                lambda g=g: find_integers_greater_than(g, 2**10),
                lambda g=g, i=indexes: find_integers_greater_than(g, 2**10, indexes=i),
            ),
            (
                "attrs 'act%'",
                lambda g=g: find_attribute_names(g, "act%"),
                lambda g=g, i=indexes: find_attribute_names(g, "act%", indexes=i),
            ),
        ]:
            scan_s, scan_hits = timed(scan_fn)
            idx_s, idx_hits = timed(idx_fn)
            assert {str(h) for h in scan_hits} == {str(h) for h in idx_hits}
            rows.append(
                (
                    size,
                    g.num_edges,
                    name,
                    len(scan_hits),
                    f"{scan_s * 1e3:.2f}ms",
                    f"{idx_s * 1e3:.2f}ms",
                    f"x{scan_s / idx_s:.1f}" if idx_s else "-",
                )
            )
            records[f"{size}/{name}"] = {
                "scan_s": scan_s,
                "indexed_s": idx_s,
                "hits": len(scan_hits),
            }
        # operation counts next to the timings they explain (scan vs index)
        _, scan_profile = find_value_profiled(g, "Bogart")
        _, idx_profile = find_value_profiled(g, "Bogart", indexes=indexes)
        records[f"{size}/profiles"] = {
            "scan": scan_profile.as_dict(),
            "indexed": idx_profile.as_dict(),
        }
    write_bench(
        "e1_browsing", {"timings": records}, Path(__file__).parent / "out"
    )
    print_table(
        "E1: browsing queries, scan vs indexed",
        ["entries", "edges", "query", "hits", "scan", "indexed", "speedup"],
        rows,
    )
    # shape: at the largest size the index wins every query
    largest = [r for r in rows if r[0] == SIZES[-1]]
    for row in largest:
        assert float(row[6][1:]) > 1.0, row

    g = generate_movies(SIZES[-1], seed=11)
    indexes = GraphIndexes(g).build_all()
    benchmark(lambda: find_value(g, "Bogart", indexes=indexes))
