"""E9 -- relational and object-oriented databases encode in the model.

Claim operationalized (section 2): "it is straightforward to encode
relational and object-oriented databases in this model, although in the
latter case one must take care to deal with the issue of object-identity."
Expected shape: round trips are exact (relational) / identity-preserving
(OO, including reference cycles); encoding cost is linear in data size.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table, timed

from repro.core.oo_encode import OoDatabase, graph_to_oo, oo_to_graph
from repro.datasets import generate_catalog
from repro.relational.algebra import project
from repro.relational.encode import graph_to_relational, relational_to_graph


def build_oo(num_people: int) -> OoDatabase:
    db = OoDatabase()
    person = db.define_class("Person", ("name", "friend"))
    people = [db.new_object(person).set("name", f"p{i}") for i in range(num_people)]
    for i, who in enumerate(people):  # a friendship ring: one big cycle
        who.set("friend", people[(i + 1) % num_people])
    return db


def test_e9_relational_round_trip(benchmark):
    rows = []
    for movies in (50, 200, 800):
        catalog = generate_catalog(num_movies=movies, num_actors=30, seed=91)
        enc_s, g = timed(lambda: relational_to_graph(catalog), repeat=1)
        dec_s, back = timed(lambda: graph_to_relational(g), repeat=1)
        for name, rel in catalog.items():
            assert project(back[name], rel.schema) == rel
        total_rows = sum(len(r) for r in catalog.values())
        rows.append(
            (movies, total_rows, g.num_edges, f"{enc_s * 1e3:.1f}ms", f"{dec_s * 1e3:.1f}ms")
        )
    print_table(
        "E9: relational catalog <-> graph round trip (exact)",
        ["movies", "total rows", "graph edges", "encode", "decode"],
        rows,
    )
    # shape: linear-ish scaling (16x data -> less than 64x time)
    catalog = generate_catalog(num_movies=200, num_actors=30, seed=91)
    benchmark(lambda: graph_to_relational(relational_to_graph(catalog)))


def test_e9_oo_identity_round_trip(benchmark):
    rows = []
    for people in (20, 80, 320):
        oo = build_oo(people)
        enc_s, g = timed(lambda: oo_to_graph(oo), repeat=1)
        assert g.has_cycle()  # the friendship ring survives encoding
        dec_s, back = timed(lambda: graph_to_oo(g), repeat=1)
        ring = back.extents["Person"]
        assert len(ring) == people
        # identity: walking `friend` num_people times returns to the start
        cursor = ring[0]
        for _ in range(people):
            cursor = cursor.values["friend"]
        assert cursor is ring[0]
        rows.append(
            (people, g.num_edges, f"{enc_s * 1e3:.2f}ms", f"{dec_s * 1e3:.2f}ms")
        )
    print_table(
        "E9b: OO database with a reference ring <-> graph (identity preserved)",
        ["objects", "graph edges", "encode", "decode"],
        rows,
    )
    oo = build_oo(160)
    benchmark(lambda: graph_to_oo(oo_to_graph(oo)))
