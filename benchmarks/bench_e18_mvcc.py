"""E18 -- MVCC writes: incremental maintenance, group commit, recovery.

Three claims about the write path (docs/DURABILITY.md):

* **incremental index maintenance wins** -- a mixed read/write workload
  served by delta-refreshed indexes and DataGuide must beat
  rebuild-on-stale by >=5x (the acceptance floor; the gap grows with
  database size because refresh cost tracks the delta, not the data);
* **group commit amortizes the fsync** -- N deferred-sync commits plus
  one ``sync()`` cost exactly 1 WAL fsync where per-commit sync costs
  N; the assertion is on deterministic fsync *counts*, not timings;
* **recovery is linear in the log, constant after a checkpoint** --
  reopen time grows with WAL records and collapses once a checkpoint
  folds them.

``BENCH_SMOKE=1`` shrinks the sweep for CI and skips the ratio
assertions (shared-runner timings are too noisy to gate on).
"""

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table, timed

from repro.datasets import generate_movies
from repro.index import GraphIndexes
from repro.obs.export import write_bench
from repro.schema.dataguide import DataGuide
from repro.storage import VersionedGraphStore
from repro.storage.serializer import STORAGE_METRICS

SMOKE = os.environ.get("BENCH_SMOKE") == "1"
ENTRIES = 10 if SMOKE else 40
ROUNDS = 5 if SMOKE else 30
GROUP_SIZES = [1, 4, 8] if SMOKE else [1, 4, 16, 64]
WAL_LENGTHS = [16, 64] if SMOKE else [64, 256, 1024]

_RECORDS: dict = {}


def _fresh_store(tmp_path: Path, name: str, **kw) -> VersionedGraphStore:
    kw.setdefault("durable", False)
    kw.setdefault("checkpoint_every", None)  # benches control folding
    return VersionedGraphStore.create(
        tmp_path / name, generate_movies(ENTRIES, seed=23), **kw
    )


def _write_round(store: VersionedGraphStore, k: int) -> None:
    batch = store.batch()
    movie = batch.new_node()
    title = batch.new_node()
    batch.add_edge(store.graph.root, "Movie", movie)
    batch.add_edge(movie, "Title", title)
    batch.add_edge(title, f"T{k}", title)
    batch.commit()


def _read_round(indexes: GraphIndexes, guide: DataGuide) -> int:
    from repro.core.labels import sym

    hits = len(indexes.path.lookup((sym("Movie"), sym("Title"))) or ())
    hits += indexes.label.count(sym("Movie"))
    hits += guide.num_states
    return hits


def test_e18_incremental_vs_rebuild(benchmark, tmp_path):
    """E18a: mixed read/write -- delta refresh vs rebuild-on-stale."""
    incremental = _fresh_store(tmp_path, "inc")
    rebuild = _fresh_store(tmp_path, "reb")

    def run_incremental() -> int:
        total = 0
        incremental.indexes.build_all()
        guide = incremental.guide
        for k in range(ROUNDS):
            _write_round(incremental, k)
            total += _read_round(incremental.indexes, incremental.guide)
        assert incremental.guide is guide  # maintained, never rebuilt
        return total

    def run_rebuild() -> int:
        total = 0
        for k in range(ROUNDS):
            _write_round(rebuild, k)
            cold = GraphIndexes(rebuild.graph, path_depth=4).build_all()
            total += _read_round(cold, DataGuide(rebuild.graph))
        return total

    inc_s, inc_hits = timed(run_incremental, repeat=1)
    reb_s, reb_hits = timed(run_rebuild, repeat=1)
    speedup = reb_s / inc_s if inc_s else float("inf")
    _RECORDS["mixed_workload"] = {
        "rounds": ROUNDS,
        "incremental_s": inc_s,
        "rebuild_s": reb_s,
        "speedup": speedup,
    }
    print_table(
        f"E18a: {ROUNDS} write+read rounds (movies{ENTRIES})",
        ["strategy", "time", "per round"],
        [
            ("incremental refresh", f"{inc_s * 1e3:.1f}ms", f"{inc_s / ROUNDS * 1e3:.2f}ms"),
            ("rebuild on stale", f"{reb_s * 1e3:.1f}ms", f"{reb_s / ROUNDS * 1e3:.2f}ms"),
        ],
    )
    # both strategies answered identically (same final round, same hits)
    assert inc_hits > 0 and reb_hits > 0
    assert incremental.indexes.path._paths == GraphIndexes(
        incremental.graph, path_depth=4
    ).build_all().path._paths
    if not SMOKE:
        assert speedup >= 5.0, f"incremental only {speedup:.1f}x over rebuild"
    incremental.close()
    rebuild.close()

    store = _fresh_store(tmp_path, "bench")
    store.indexes.build_all()
    counter = iter(range(10_000_000))
    benchmark(lambda: _write_round(store, next(counter)))
    store.close()


def test_e18_group_commit_fsync_curve(benchmark, tmp_path):
    """E18b: fsync amortization -- deterministic counts, not timings."""
    rows = []
    curve = []
    for n in GROUP_SIZES:
        per_commit = _fresh_store(tmp_path, f"sync-{n}", durable=True)
        before = STORAGE_METRICS.counter("wal_syncs").value
        for k in range(n):
            batch = per_commit.batch()
            batch.new_node()
            batch.commit(sync=True)
        per_commit_fsyncs = STORAGE_METRICS.counter("wal_syncs").value - before
        per_commit.close()

        grouped = _fresh_store(tmp_path, f"group-{n}", durable=True)
        before = STORAGE_METRICS.counter("wal_syncs").value
        for k in range(n):
            batch = grouped.batch()
            batch.new_node()
            batch.commit(sync=False)
        grouped.sync()  # THE durability point for the whole group
        grouped_fsyncs = STORAGE_METRICS.counter("wal_syncs").value - before
        assert grouped.acked_version == n
        grouped.close()

        # the arithmetic is exact: N acks cost N fsyncs alone, 1 together
        assert per_commit_fsyncs == n
        assert grouped_fsyncs == 1
        curve.append(
            {"commits": n, "per_commit_fsyncs": per_commit_fsyncs,
             "grouped_fsyncs": grouped_fsyncs}
        )
        rows.append((n, per_commit_fsyncs, grouped_fsyncs, f"{n}x"))
    _RECORDS["fsync_curve"] = {"points": curve}
    print_table(
        "E18b: group-commit fsync amortization",
        ["commits", "per-commit fsyncs", "grouped fsyncs", "amortization"],
        rows,
    )

    store = _fresh_store(tmp_path, "bench-sync", durable=True)

    def deferred_commit():
        batch = store.batch()
        batch.new_node()
        batch.commit(sync=False)

    benchmark(deferred_commit)
    store.sync()
    store.close()


def test_e18_recovery_time_vs_wal_length(benchmark, tmp_path):
    """E18c: reopen cost grows with the log, collapses after checkpoint."""
    rows = []
    curve = []
    for length in WAL_LENGTHS:
        directory = tmp_path / f"wal-{length}"
        store = VersionedGraphStore.create(
            directory, generate_movies(ENTRIES, seed=23),
            durable=False, checkpoint_every=None,
        )
        for k in range(length):
            _write_round(store, k)
        store.close()

        def reopen():
            with VersionedGraphStore(directory, durable=False) as s:
                assert s.recovery.replayed_records == length
                return s.version

        replay_s, version = timed(reopen, repeat=1 if SMOKE else 3)
        assert version == length

        with VersionedGraphStore(directory, durable=False) as s:
            s.checkpoint()

        def reopen_folded():
            with VersionedGraphStore(directory, durable=False) as s:
                assert s.recovery.replayed_records == 0
                return s.version

        folded_s, _ = timed(reopen_folded, repeat=1 if SMOKE else 3)
        curve.append(
            {"wal_records": length, "replay_s": replay_s, "after_checkpoint_s": folded_s}
        )
        rows.append(
            (length, f"{replay_s * 1e3:.1f}ms", f"{folded_s * 1e3:.1f}ms")
        )
    _RECORDS["recovery_curve"] = {"points": curve}
    print_table(
        "E18c: recovery time vs WAL length",
        ["WAL records", "replay reopen", "post-checkpoint reopen"],
        rows,
    )
    if not SMOKE:
        # replay work is linear-ish: the longest log costs measurably more
        # than the shortest, and folding beats replaying the longest log
        assert curve[-1]["replay_s"] > curve[0]["replay_s"]
        assert curve[-1]["after_checkpoint_s"] < curve[-1]["replay_s"]

    write_bench(
        "e18_mvcc",
        {
            "entries": ENTRIES,
            "smoke": SMOKE,
            "records": _RECORDS,
        },
        Path(__file__).parent / "out",
    )
    directory = tmp_path / f"wal-{WAL_LENGTHS[0]}"
    benchmark(lambda: VersionedGraphStore(directory, durable=False).close())
