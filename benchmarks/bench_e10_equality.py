"""E10 -- the hierarchy of equivalence notions on graphs.

Claims operationalized (sections 2 and 5): object identity aside, the
candidate equalities order strictly as

    bisimilar  =>  mutually similar  =>  path/automata equivalent

(bisimulation is UnQL's value equality; mutual simulation is the §5 schema
relationship run both ways; path equivalence is the DataGuide notion).
Both inclusions are strict, witnessed by counterexamples below -- and the
second one is subtle: hypothesis *refuted* the reversed ordering during
development (path-equivalent graphs need not simulate each other, because
path languages forget branching).  Costs differ too: bisimulation by
partition refinement is near-linear, path equivalence pays
determinization, simulation is the quadratic fixpoint.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _tables import print_table, timed

from repro.core.bisim import bisimilar, reduce_graph
from repro.core.builder import from_obj
from repro.core.graph import Graph
from repro.core.labels import sym
from repro.datasets import generate_movies
from repro.schema.dataguide import paths_equivalent
from repro.schema.simulation import graph_simulation


def mutually_similar(g1: Graph, g2: Graph) -> bool:
    fwd = (g1.root, g2.root) in graph_simulation(g1, g2)
    bwd = (g2.root, g1.root) in graph_simulation(g2, g1)
    return fwd and bwd


def test_e10_hierarchy_and_costs(benchmark):
    g = generate_movies(60, seed=101)
    variants = {
        "identical copy": g.copy(),
        "bisimulation quotient": reduce_graph(g),
        "one relabeled edge": g.map_labels(
            lambda lab: sym("Directed_by") if lab == sym("Director") else lab
        ),
    }
    rows = []
    for name, other in variants.items():
        bisim_s, is_bisim = timed(lambda o=other: bisimilar(g, o), repeat=1)
        path_s, is_path = timed(lambda o=other: paths_equivalent(g, o), repeat=1)
        sim_s, is_sim = timed(lambda o=other: mutually_similar(g, o), repeat=1)
        # the hierarchy: bisim => mutually similar => path-equivalent
        if is_bisim:
            assert is_sim
        if is_sim:
            assert is_path
        rows.append(
            (
                name,
                is_bisim,
                is_path,
                is_sim,
                f"{bisim_s * 1e3:.1f}ms",
                f"{path_s * 1e3:.1f}ms",
                f"{sim_s * 1e3:.1f}ms",
            )
        )
    print_table(
        "E10: equality notions on a 60-entry movie database",
        ["pair", "bisim", "path-eq", "mut-sim", "t(bisim)", "t(path)", "t(sim)"],
        rows,
    )
    # strictness witnesses
    # 1. path-equivalent but NOT mutually similar (branching forgotten):
    split = from_obj({"a": [{"b": None}, {"c": None}]})
    merged = from_obj({"a": {"b": None, "c": None}})
    assert paths_equivalent(split, merged)
    assert not mutually_similar(split, merged)  # merged's a-child beats both
    assert not bisimilar(split, merged)
    # 2. mutually similar but NOT bisimilar (the classic similarity gap):
    p = from_obj({"a": {"b": None, "c": None}})
    q = from_obj({"a": [{"b": None}, {"b": None, "c": None}]})
    assert mutually_similar(p, q)
    assert not bisimilar(p, q)
    assert paths_equivalent(p, q)
    print("\nE10 witnesses: both inclusions of"
          " bisim => mutual-sim => path-eq are strict")

    other = variants["bisimulation quotient"]
    benchmark(lambda: bisimilar(g, other))


def test_e10_cost_scaling(benchmark):
    rows = []
    for entries in (30, 120, 480):
        g = generate_movies(entries, seed=102)
        q = reduce_graph(g)
        b_s, _ = timed(lambda: bisimilar(g, q), repeat=1)
        p_s, _ = timed(lambda: paths_equivalent(g, q), repeat=1)
        rows.append((entries, g.num_nodes, f"{b_s * 1e3:.1f}ms", f"{p_s * 1e3:.1f}ms"))
    print_table(
        "E10b: equality-check cost vs size (graph vs its quotient)",
        ["entries", "nodes", "bisimulation", "path equivalence"],
        rows,
    )
    g = generate_movies(120, seed=102)
    q = reduce_graph(g)
    benchmark(lambda: bisimilar(g, q))
