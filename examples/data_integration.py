"""Data integration through a common semistructured substrate (section 1.2).

Run::

    python examples/data_integration.py

The Tsimmis motivation: "none of the existing data models is all-embracing
... OEM offers a highly flexible data structure that may be used to capture
most kinds of data".  This example ingests a relational catalog, an
object-oriented database with cyclic references, and JSON-shaped
self-describing data into the one graph model, queries them uniformly, and
extracts the structured part back out as relations.
"""

from repro.core import OoDatabase, bisimilar, from_obj, oo_to_graph, tree
from repro.core.labels import sym
from repro.datasets import generate_catalog
from repro.relational.encode import relational_to_graph
from repro.schema.to_relational import extract_tables
from repro.unql import unql


def main() -> None:
    # -- source 1: a relational database ------------------------------------
    catalog = generate_catalog(num_movies=6, num_actors=5, seed=3)
    relational_side = relational_to_graph(catalog)
    print(f"relational source: {len(catalog)} tables -> "
          f"{relational_side.num_edges} graph edges")

    # -- source 2: an object database with identity and cycles ---------------
    oo = OoDatabase()
    person = oo.define_class("Person", ("name", "collaborator"))
    movie = oo.define_class("Film", ("title", "lead"))
    allen = oo.new_object(person).set("name", "Allen")
    keaton = oo.new_object(person).set("name", "Keaton")
    allen.set("collaborator", keaton)
    keaton.set("collaborator", allen)  # a reference cycle
    oo.new_object(movie).set("title", "Annie Hall").set("lead", keaton)
    oo_side = oo_to_graph(oo)
    print(f"object source: {len(oo.all_objects())} objects -> "
          f"{oo_side.num_edges} graph edges (cyclic: {oo_side.has_cycle()})")

    # -- source 3: self-describing JSON-shaped data ---------------------------
    json_side = tree(
        {"review": [{"film": "Annie Hall", "stars": 5},
                    {"film": "movie3", "stars": 3}]}
    )
    print(f"json source: {json_side.num_edges} graph edges")

    # -- integrate: one graph, three named regions -----------------------------
    merged = (
        from_obj(None)
        .union(_wrap("warehouse", relational_side))
        .union(_wrap("objects", oo_side))
        .union(_wrap("reviews", json_side))
    )
    print(f"\nintegrated database: {merged.num_nodes} nodes, "
          f"{merged.num_edges} edges")

    # -- query across sources with one language --------------------------------
    print("\nfilm titles across ALL three sources (one UnQL query):")
    result = unql(
        r'select {title: \t} where {#.(title|Title|film): \t} in db', db=merged
    )
    titles = sorted(
        str(e.label.value)
        for node in result.successors(result.root, sym("title"))
        for e in result.edges_from(node)
    )
    print("  ", titles)

    # -- the passage back to structure (section 5) ------------------------------
    report = extract_tables(merged)
    print("\nstructured part recovered as relations:")
    for name, rel in sorted(report.tables.items()):
        print(f"   {name}: {len(rel)} rows over {rel.schema}")
    movies_back = report.tables.get("Movies")
    assert movies_back is not None and len(movies_back) == len(catalog["Movies"])

    # sanity: integration did not distort the relational region
    region = unql(r"select \t where {warehouse: \t} in db", db=merged)
    assert bisimilar(region, relational_side)
    print("\nround-trip check: the warehouse region is bisimilar to its source")


def _wrap(name: str, graph):
    from repro.core.graph import Graph

    return Graph.singleton(name, graph)


if __name__ == "__main__":
    main()
