"""A Tsimmis-style mediator: fusion + views + dynamically-fetched data.

Run::

    python examples/mediator.py

Combines three of the paper's integration threads in one working system:

* two overlapping movie sources are *fused* by title (object fusion,
  section 2 / [32]);
* a *view catalog* (section 3 / [4]) publishes restructured, stable
  virtual collections over the fused database;
* one source region is *external* and fetched lazily on first traversal
  (section 4 / [28]) -- the mediator never loads what no query touches.
"""

from repro.core import from_obj, reduce_graph, render
from repro.core.fusion import fuse_graphs
from repro.core.labels import sym
from repro.storage.external import ExternalGraph
from repro.unql import unql
from repro.unql.views import ViewCatalog


def main() -> None:
    # -- source A: a local catalog ---------------------------------------------
    local = from_obj(
        {
            "Movie": [
                {"Title": "Casablanca", "Year": 1942},
                {"Title": "Vertigo", "Year": 1958},
            ]
        }
    )

    # -- source B: a remote review site, fetched on demand ----------------------
    def fetch(key: str):
        print(f"   [fetching external region {key!r}]")
        return from_obj(
            {
                "Movie": [
                    {"Title": "Casablanca", "Stars": 5},
                    {"Title": "Gilda", "Stars": 4},
                ]
            }
        )

    remote_stub = from_obj(None)
    ExternalGraph.add_stub(remote_stub, remote_stub.root, "reviews-site")
    remote = ExternalGraph(remote_stub, fetch)
    print("mediator booted; external fetches so far:", remote.fetch_count)

    # -- integrate: force the remote (a real mediator would do this per
    # query; one fetch is the whole remote source here) -------------------------
    remote.reachable()
    fused = fuse_graphs(
        [local, remote.snapshot()],
        "Movie",
        ["Title"],
        source_names=["catalog", "reviews"],
    )
    # fusion merges *objects*; merging value-duplicate subtrees (both
    # sources said Title: "Casablanca") is bisimulation's job:
    fused = reduce_graph(fused)
    print(f"fused database: {fused.num_nodes} nodes ({remote.fetch_count} fetch)")

    # -- publish views over the fusion -----------------------------------------
    catalog = ViewCatalog(db=fused)
    catalog.define(
        "rated",
        r"select {Movie: {Title: \t, Year: \y, Stars: \s}} "
        r"where {_.Movie: {Title: \t, Year: \y, Stars: \s}} in db",
    )
    catalog.define(
        "titles",
        r"select {Title: \t} where {Movie.Title: \t} in rated",
    )
    catalog.materialize_all()

    print("\nthe `rated` view (movies known to BOTH sources, merged):")
    print(render(catalog["rated"].graph))
    out = catalog.query(r"select \t where {Title: \t} in titles")
    rated_titles = sorted(
        str(e.label.value) for e in out.edges_from(out.root)
    )
    print("titles with both a year and a star rating:", rated_titles)
    assert rated_titles == ["Casablanca"]

    # -- a query that ignores the views and spans everything --------------------
    everything = unql(r"select {t: \t} where {#.Title: \t} in db", db=fused)
    print(
        "all titles across the federation:",
        sorted(
            str(e.label.value)
            for node in everything.successors(everything.root, sym("t"))
            for e in everything.edges_from(node)
        ),
    )


if __name__ == "__main__":
    main()
