"""Failure injection: querying data that lives on a 1997 network.

Run::

    python examples/fault_injection.py

Section 4's external data ([28]) and distributed evaluation ([35]) both
assume someone else's machine answers.  This example injects the three
classic failures -- transient noise, a permanent outage, a dead site --
and shows the resilience layer's three answers: retry until exact,
degrade to a reported lower bound, and stop hammering what is down.

Every failure here is *scheduled*: the FaultInjector is a pure function
of its seed, so re-running this script replays the identical outage.
"""

from repro.automata.product import rpq_nodes, rpq_nodes_partial
from repro.core.builder import from_obj
from repro.distributed import distributed_rpq_resilient, partition_graph
from repro.resilience import (
    CircuitBreaker,
    EventLog,
    FaultInjector,
    RetryPolicy,
    SimulatedClock,
)
from repro.storage.external import ExternalGraph


def build_catalog():
    """A local movie catalog whose detail pages live on the (1997) web."""
    g = from_obj({"Entry": [{"Id": i} for i in range(5)]})
    for i, node in enumerate(sorted(rpq_nodes(g, "Entry"))):
        detail = g.new_node()
        g.add_edge(node, "Detail", detail)
        ExternalGraph.add_stub(g, detail, f"page-{i}")
    return g


def fetch_page(key: str):
    i = int(key.rsplit("-", 1)[1])
    return from_obj({"Movie": {"Title": f"Movie #{i}", "Year": 1940 + i}})


def main() -> None:
    print("=== 1. Transient noise: retries make the answer exact ===")
    clock = SimulatedClock()
    events = EventLog(clock)
    injector = FaultInjector(seed=7, fail_rate=0.3, clock=clock)
    ext = ExternalGraph(
        build_catalog(),
        injector.wrap_fetcher(fetch_page),
        policy=RetryPolicy(max_attempts=6, base_delay=0.05),
        on_failure="partial",
        clock=clock,
        events=events,
    )
    result = rpq_nodes_partial(ext, "Entry.Detail.Movie.Title")
    print(f"   every fetch fails 30% of the time (seed 7)")
    print(f"   titles found: {len(result.value)} of 5, exact: {result.exact}")
    print(f"   fetch attempts: {injector.total_calls} for {ext.fetch_count} pages"
          f" ({result.completeness.retries} retries)")
    print(f"   simulated backoff time: {clock.slept:.2f}s (wall time: none)")
    assert result.exact and len(result.value) == 5

    print("\n=== 2. Permanent outage: a reported lower bound, not a crash ===")
    clock = SimulatedClock()
    injector = FaultInjector(seed=7, outages={"page-4"}, clock=clock)
    ext = ExternalGraph(
        build_catalog(),
        injector.wrap_fetcher(fetch_page),
        policy=RetryPolicy(max_attempts=4, base_delay=0.05),
        breaker=CircuitBreaker(3, 60.0, clock=clock),
        on_failure="partial",
        clock=clock,
    )
    result = rpq_nodes_partial(ext, "Entry.Detail.Movie.Title")
    report = result.completeness
    print(f"   page-4's server is gone; the query still answers:")
    print(f"   titles found: {len(result.value)} of 5 (the rest still answer)")
    print(f"   {report.describe()}")
    print(f"   contacts with the dead server: {injector.calls('page-4')} "
          f"(breaker threshold 3, then it stops asking)")
    assert report.is_lower_bound and report.failed_keys() == {"page-4"}
    assert injector.calls("page-4") <= 3

    print("\n=== 3. A dead site in a distributed query ===")
    g = build_catalog()
    dist = partition_graph(g, 4, strategy="hash")
    injector = FaultInjector(seed=0, outages={"site:2"})
    results, stats, report = distributed_rpq_resilient(
        dist,
        "Entry.Id",
        injector=injector,
        policy=RetryPolicy(max_attempts=4, base_delay=0.05),
        failure_threshold=3,
    )
    print(f"   4 sites, site 2 permanently down")
    print(f"   matched {len(results)} node(s) in {stats.supersteps} superstep(s)")
    print(f"   {report.describe()}")
    # the oracle: the same query over the graph with site 2 amputated
    oracle = rpq_nodes(dist.without_sites({2}), "Entry.Id")
    print(f"   equals centralized evaluation minus site 2: {results == oracle}")
    assert results == oracle

    print("\nSame seeds, same failures, same answers -- chaos as a regression test.")


if __name__ == "__main__":
    main()
