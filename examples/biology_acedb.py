"""ACeDB-style biological data: loose schemas and arbitrary-depth trees.

Run::

    python examples/biology_acedb.py

Reproduces the paper's second motivation (section 1.1): a database whose
schema "imposes only loose constraints on the data" and whose
containment trees have no depth bound, queried with the tools schema-first
systems lack.
"""

from repro.automata.product import rpq_nodes
from repro.datasets import acedb_schema, generate_acedb
from repro.schema.dataguide import DataGuide
from repro.schema.prune import pruned_rpq_nodes, schema_reachable_states
from repro.storage import GraphStore, traversal_page_faults
from repro.unql import unql


def main() -> None:
    db = generate_acedb(120, seed=7, max_depth=9)
    schema = acedb_schema()
    print(f"ACeDB-like database: {db.num_nodes} nodes, {db.num_edges} edges")
    print(f"conforms to the loose schema: {schema.conforms(db)}")

    print("\n=== Trees of arbitrary depth ===")
    for depth in range(1, 8):
        pattern = "Locus.Clone" + ".Contains" * depth
        count = len(rpq_nodes(db, pattern))
        print(f"clones at containment depth {depth}: {count}")
        if count == 0:
            break
    deep = rpq_nodes(db, "Locus.Clone.Contains+.Length.<int>")
    print(f"length values at ANY containment depth: {len(deep)} "
          "(a query no fixed-depth schema language can write)")

    print("\n=== Loose schema in action ===")
    loci = rpq_nodes(db, "Locus")
    with_pheno = rpq_nodes(db, "Locus.Phenotype")
    with_ref = rpq_nodes(db, "Locus.Reference")
    print(f"loci: {len(loci)}; with Phenotype: {len(with_pheno)}; "
          f"with Reference: {len(with_ref)} -- no attribute is mandatory")

    print("\n=== Schema-based pruning (section 5) ===")
    bogus = "Locus.Salary"
    print(f"schema admits '{bogus}'? "
          f"{bool(schema_reachable_states(schema, bogus))} "
          "-> query answered empty with zero data traversal")
    assert pruned_rpq_nodes(db, schema, bogus) == set()

    print("\n=== UnQL over biological data ===")
    result = unql(
        r'select {gene: \n} where '
        r'{Locus: {Locus_name: \n, Phenotype: "lethal"}} in db',
        db=db,
    )
    print(f"lethal loci found: {result.out_degree(result.root)}")

    print("\n=== Browsing via the DataGuide ===")
    guide = DataGuide(db)
    from repro.core.labels import sym

    print(f"DataGuide states: {guide.num_states} (database: {db.num_nodes})")
    print("what can follow Locus.Reference?",
          [str(l.value) for l in guide.labels_after((sym('Locus'), sym('Reference')))])

    print("\n=== Clustering matters (section 4) ===")
    for clustering in ("dfs", "random"):
        store = GraphStore(db, clustering=clustering, page_size=512)
        faults = traversal_page_faults(store, cache_pages=8, order="dfs")
        print(f"{clustering:>6} layout: {store.num_pages} pages, "
              f"{faults} page faults on a full DFS scan")


if __name__ == "__main__":
    main()
