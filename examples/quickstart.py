"""Quickstart: the paper's Figure 1, queried every way the tutorial shows.

Run::

    python examples/quickstart.py

Walks through: building/rendering the movie database, the three browsing
queries of section 1.3, a UnQL select with a general path expression, the
"Bacall" restructuring fix of section 3, and the same data queried through
Lorel over OEM.
"""

from repro.browse import find_attribute_names, find_integers_greater_than, find_value
from repro.core import graph_to_oem, render, string, sym
from repro.datasets import figure1
from repro.lorel import lorel, lorel_rows
from repro.unql import fix_bacall, unql


def main() -> None:
    db = figure1()
    print("=== Figure 1: the example movie database ===")
    print(render(db))
    print(f"\n{db.num_nodes} nodes, {db.num_edges} edges, cyclic: {db.has_cycle()}")

    print("\n=== Section 1.3: browsing without a schema ===")
    print("Where is the string 'Casablanca'?")
    for hit in find_value(db, "Casablanca"):
        print(f"   {hit}")
    print("Integers greater than 2^16?")
    hits = find_integers_greater_than(db, 2**16)
    print(f"   {[h.edge.label.value for h in hits] or 'none in Figure 1'}")
    print("Attribute names starting with 'Cast'?")
    for hit in find_attribute_names(db, "Cast%"):
        print(f"   {hit.edge.label.value!r} at path {hit}")

    print("\n=== Section 3: UnQL select with path constraints ===")
    query = r'select {found: 1} where {Entry.Movie.(!Movie)*: {_: "Allen"}} in db'
    print(f"   {query}")
    result = unql(query, db=db)
    print(f"   Allen below a Movie (never crossing another Movie edge): "
          f"{result.out_degree(result.root)} match(es)")

    titles = unql(r"select {Title: \t} where {Entry._.Title: \t} in db", db=db)
    print("   all titles:", render(titles).splitlines()[1:])

    print("\n=== Section 3: deep restructuring -- fixing the Bacall error ===")
    print("   before:", [str(h) for h in find_value(db, "Bacall")])
    fixed = fix_bacall(db, string("Bacall"), string("Bergman"), sym("Cast"))
    print("   after fix:", [str(h) for h in find_value(fixed, "Bacall")] or "gone")
    print("   Bergman now:", [str(h) for h in find_value(fixed, "Bergman")])

    print("\n=== The same data through Lorel (OEM model) ===")
    oem = graph_to_oem(db)
    answer = lorel(
        'select m.Title from DB.Entry.Movie m where m.Cast.# = "Allen"', oem
    )
    print("   movies in which Allen acted:", lorel_rows(answer))


if __name__ == "__main__":
    main()
