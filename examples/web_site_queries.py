"""Querying the Web as a database (the paper's first motivation).

Run::

    python examples/web_site_queries.py

Generates a cyclic synthetic web site, then exercises the structural query
machinery the paper says IR-style web search lacks: regular path queries,
graph datalog reachability, schema discovery, and distributed decomposed
evaluation across sites.
"""

from repro.automata.product import rpq_nodes, rpq_witnesses
from repro.datalog import run_on_graph
from repro.datasets import generate_web
from repro.distributed import centralized_work, distributed_rpq, partition_graph
from repro.index import GraphIndexes
from repro.schema.dataguide import DataGuide
from repro.schema.inference import infer_schema


def main() -> None:
    web = generate_web(300, seed=42)
    print(f"web site: {web.num_nodes} nodes, {web.num_edges} edges, "
          f"cyclic: {web.has_cycle()}")

    print("\n=== Regular path queries over link structure ===")
    two_clicks = rpq_nodes(web, "link.link")
    print(f"pages within exactly two clicks of the home page: {len(two_clicks)}")
    with_keyword = rpq_nodes(web, 'link*.keyword."database"')
    print(f"reachable pages tagged 'database': {len(with_keyword)}")
    witnesses = rpq_witnesses(web, 'link.link.link.url')
    example = next(iter(witnesses.values()), ())
    print("a shortest 3-click witness path:",
          " -> ".join(str(e.label.value) for e in example))

    print("\n=== Graph datalog: unbounded search with conditions ===")
    reachable = run_on_graph(
        """
        reach(X) :- root(X).
        reach(Y) :- reach(X), edge(X, L, Y), L != "keyword".
        """,
        web,
        "reach",
    )
    print(f"nodes reachable without ever following a keyword edge: {len(reachable)}")

    print("\n=== Discovered structure ===")
    guide = DataGuide(web)
    print(f"DataGuide: {guide.num_states} states vs {web.num_nodes} data nodes")
    print("labels available after link.link:",
          [str(l.value) for l in guide.labels_after(
              tuple(e.label for e in example[:2]))][:6])
    schema = infer_schema(web)
    print(f"inferred schema: {schema.num_nodes} nodes; conforms: "
          f"{schema.conforms(web)}")

    print("\n=== Distributed decomposition (section 4, Suciu) ===")
    indexes = GraphIndexes(web)
    _ = indexes.label  # warm the label index for fair comparison
    for sites in (2, 4, 8):
        dist = partition_graph(web, sites, strategy="bfs")
        result, stats = distributed_rpq(dist, "(link)*")
        base = centralized_work(dist, "(link)*")
        print(
            f"{sites} sites: answer={len(result)} pages, total work "
            f"{stats.total_work} (= centralized {base}), makespan "
            f"{stats.makespan}, speedup x{stats.speedup:.2f}, "
            f"{stats.messages} messages in {stats.supersteps} supersteps"
        )


if __name__ == "__main__":
    main()
