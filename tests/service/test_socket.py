"""Socket end-to-end: the asyncio front-end over real TCP (loopback).

The deterministic chaos lives in ``test_server.py``; these tests only
prove the thin asyncio skin -- framing over a real stream, one session
per connection, concurrent queries on one connection, session-table
shedding of excess connections -- using ephemeral loopback ports.
"""

import asyncio

from repro.datasets import generate_movies
from repro.obs.metrics import MetricsRegistry
from repro.service import (
    AsyncQueryServer,
    FrameDecoder,
    QueryService,
    encode_frame,
    request_over_socket,
)


def run_against_server(requests: "list[dict]", **service_kw) -> "list[dict]":
    service_kw.setdefault("metrics", MetricsRegistry())

    async def scenario() -> "list[dict]":
        service = QueryService(generate_movies(15, seed=4), **service_kw)
        server = AsyncQueryServer(service)
        await server.start()
        try:
            return await request_over_socket("127.0.0.1", server.bound_port, requests)
        finally:
            await server.stop()

    return asyncio.run(scenario())


def test_single_query_roundtrip() -> None:
    responses = run_against_server(
        [{"id": 1, "op": "rpq", "query": "Entry.Movie.Title"}]
    )
    assert len(responses) == 1
    assert responses[0]["status"] == "ok"
    assert len(responses[0]["result"]) > 0


def test_pipelined_requests_one_connection() -> None:
    responses = run_against_server(
        [
            {"id": 1, "op": "ping"},
            {"id": 2, "op": "rpq", "query": "Entry.Movie.Title"},
            {"id": 3, "op": "lorel", "query": "select m.Title from DB.Entry.Movie m"},
            {"id": 4, "op": "stats"},
        ]
    )
    by_id = {r["id"]: r for r in responses}
    assert set(by_id) == {1, 2, 3, 4}
    assert all(r["status"] == "ok" for r in responses)


def test_bad_query_then_connection_still_usable() -> None:
    responses = run_against_server(
        [
            {"id": 1, "op": "rpq", "query": "((("},
            {"id": 2, "op": "ping"},
        ]
    )
    by_id = {r["id"]: r for r in responses}
    assert by_id[1]["status"] == "error"
    assert by_id[2]["status"] == "ok"


def test_protocol_error_drops_connection_with_typed_frame() -> None:
    async def scenario() -> dict:
        service = QueryService(generate_movies(5, seed=1), metrics=MetricsRegistry())
        server = AsyncQueryServer(service)
        await server.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.bound_port
            )
            bad = b"\xff\xffnot json"
            writer.write(len(bad).to_bytes(4, "big") + bad)
            await writer.drain()
            decoder = FrameDecoder()
            frames: list[dict] = []
            while not frames:
                data = await reader.read(65536)
                if not data:
                    break
                frames.extend(decoder.feed(data))
            # server closes the broken connection after the error frame
            assert await reader.read(65536) == b""
            writer.close()
            return frames[0]
        finally:
            await server.stop()

    frame = asyncio.run(scenario())
    assert frame["status"] == "error"
    assert frame["error_type"] == "ProtocolError"


def test_session_table_sheds_excess_connections() -> None:
    async def scenario() -> dict:
        service = QueryService(
            generate_movies(5, seed=1), max_sessions=1, metrics=MetricsRegistry()
        )
        server = AsyncQueryServer(service)
        await server.start()
        try:
            r1, w1 = await asyncio.open_connection("127.0.0.1", server.bound_port)
            w1.write(encode_frame({"id": 1, "op": "ping"}))
            await w1.drain()
            decoder = FrameDecoder()
            first: list[dict] = []
            while not first:
                first.extend(decoder.feed(await r1.read(65536)))
            assert first[0]["status"] == "ok"

            # the second connection is over the session cap
            r2, w2 = await asyncio.open_connection("127.0.0.1", server.bound_port)
            decoder2 = FrameDecoder()
            shed: list[dict] = []
            while not shed:
                data = await r2.read(65536)
                if not data:
                    break
                shed.extend(decoder2.feed(data))
            w1.close()
            w2.close()
            return shed[0]
        finally:
            await server.stop()

    frame = asyncio.run(scenario())
    assert frame["status"] == "overloaded"
    assert frame["reason"] == "sessions_full"


def test_concurrent_slow_queries_share_the_loop() -> None:
    # '#' walks everything reachable -- slow enough to interleave
    responses = run_against_server(
        [{"id": i, "op": "rpq", "query": "#"} for i in range(4)],
        max_inflight=2,
        max_queue=4,
    )
    assert len(responses) == 4
    assert all(r["status"] == "ok" for r in responses)
    results = [tuple(r["result"]) for r in responses]
    assert len(set(results)) == 1  # identical answers regardless of order
