"""Chaos suite for the query service: the acceptance contract.

Every test drives the *same* :class:`QueryService` core the asyncio
front-end uses, through the deterministic in-process harness on a
simulated clock -- so "the deadline expires between superstep 3 and 4"
is arranged exactly, not raced.  The server's contract under test:
every request gets exactly one typed response (``ok`` / ``partial`` /
``deadline`` / ``overloaded`` / ``error``), the server never crashes,
and it never queues unboundedly.
"""

import pytest

from repro.automata.product import rpq_nodes
from repro.core.graph import Graph
from repro.datasets import generate_movies
from repro.obs.metrics import MetricsRegistry
from repro.resilience import FaultInjector, SimulatedClock
from repro.service import InProcessHarness, Overloaded, QueryService


def chain_graph(length: int = 60) -> Graph:
    """A ``next``-chain: ``next*`` takes exactly ``length`` supersteps."""
    g = Graph()
    nodes = [g.new_node() for _ in range(length + 1)]
    g.set_root(nodes[0])
    for a, b in zip(nodes, nodes[1:]):
        g.add_edge(a, "next", b)
    return g


def service(graph=None, **kw) -> QueryService:
    kw.setdefault("clock", SimulatedClock())
    # a private registry per test: counter assertions must not see the
    # shared process-wide SERVICE_METRICS accumulating across the suite
    kw.setdefault("metrics", MetricsRegistry())
    return QueryService(graph if graph is not None else generate_movies(20, seed=11), **kw)


# -- the happy path, every engine --------------------------------------------------


class TestEngines:
    def test_rpq_matches_library(self) -> None:
        svc = service()
        harness = InProcessHarness(svc)
        response = harness.run_one({"id": 1, "op": "rpq", "query": "Entry.Movie.Title"})
        assert response["status"] == "ok"
        assert response["result"] == sorted(rpq_nodes(svc.graph, "Entry.Movie.Title"))
        assert response["ops"] > 0 and response["supersteps"] >= 3

    def test_lorel(self) -> None:
        harness = InProcessHarness(service())
        response = harness.run_one(
            {"id": 1, "op": "lorel", "query": "select m.Title from DB.Entry.Movie m"}
        )
        assert response["status"] == "ok"
        assert len(response["result"]) > 0

    def test_unql(self) -> None:
        harness = InProcessHarness(service())
        response = harness.run_one(
            {"id": 1, "op": "unql",
             "query": r"select \t where {Entry: {Movie: {Title: \t}}} in db"}
        )
        assert response["status"] == "ok"

    def test_find(self) -> None:
        svc = service()
        harness = InProcessHarness(svc)
        response = harness.run_one({"id": 1, "op": "find", "query": "Title"})
        assert response["status"] == "ok"

    def test_ping_and_stats_bypass_admission(self) -> None:
        # governor with zero capacity to queue: control ops still answer
        harness = InProcessHarness(service(max_inflight=1, max_queue=0))
        assert harness.run_one({"id": 1, "op": "ping"})["result"] == "pong"
        stats = harness.run_one({"id": 2, "op": "stats"})["result"]
        assert stats["graph"]["nodes"] > 0
        assert stats["governor"]["max_inflight"] == 1
        assert "service_requests" in stats["metrics"]

    def test_bad_query_is_typed_error_not_crash(self) -> None:
        harness = InProcessHarness(service())
        response = harness.run_one({"id": 1, "op": "rpq", "query": "((("})
        assert response["status"] == "error"
        assert response["error_type"]
        # the connection (session) survives; the next query runs fine
        assert harness.run_one({"id": 2, "op": "ping"})["status"] == "ok"

    def test_invalid_request_is_typed_error(self) -> None:
        harness = InProcessHarness(service())
        response = harness.run_one({"id": 3, "op": "teleport"})
        assert response["status"] == "error"
        assert response["error_type"] == "ProtocolError"


# -- deadlines ---------------------------------------------------------------------


class TestDeadlines:
    def test_deadline_expires_mid_traversal(self) -> None:
        clock = SimulatedClock()
        svc = service(chain_graph(60), clock=clock)
        # each superstep costs 0.02 simulated seconds; 0.1s of deadline
        # admits ~5 of the 60 supersteps the chain needs
        harness = InProcessHarness(svc, advance_per_step=0.02)
        response = harness.run_one(
            {"id": 1, "op": "rpq", "query": "next*", "deadline": 0.1}
        )
        assert response["status"] == "deadline"
        report = response["completeness"]
        assert report["complete"] is False
        assert report["failures"][0]["kind"] == "deadline"
        assert report["lost"] >= 1  # the dropped frontier is reported
        # the partial answer is a non-empty lower bound, not the full chain
        assert 0 < len(response["result"]) < 61

    def test_partial_result_is_monotone_lower_bound(self) -> None:
        clock = SimulatedClock()
        svc = service(chain_graph(60), clock=clock)
        harness = InProcessHarness(svc, advance_per_step=0.02)
        response = harness.run_one(
            {"id": 1, "op": "rpq", "query": "next*", "deadline": 0.1}
        )
        exact = rpq_nodes(svc.graph, "next*")
        assert set(response["result"]) <= exact

    def test_deadline_lapsed_in_queue_fails_first_checkpoint(self) -> None:
        clock = SimulatedClock()
        svc = service(chain_graph(40), clock=clock, max_inflight=1, max_queue=2)
        harness = InProcessHarness(svc, advance_per_step=0.05)
        # the slow query occupies the only slot for 40 * 0.05 = 2.0s;
        # the queued one has 0.2s of deadline and must fail *without
        # scanning a single edge*
        slow = harness.submit({"id": 1, "op": "rpq", "query": "next*"})
        stale = harness.submit(
            {"id": 2, "op": "rpq", "query": "next*", "deadline": 0.2}
        )
        assert slow is not stale
        responses = harness.run()
        assert responses[1]["status"] == "ok"
        assert responses[2]["status"] == "deadline"
        assert responses[2]["result"] == []  # no work was done stale

    def test_no_deadline_runs_to_completion(self) -> None:
        svc = service(chain_graph(60))
        harness = InProcessHarness(svc, advance_per_step=1000.0)  # time is irrelevant
        response = harness.run_one({"id": 1, "op": "rpq", "query": "next*"})
        assert response["status"] == "ok"
        assert len(response["result"]) == 61


# -- budgets -----------------------------------------------------------------------


class TestBudgets:
    def test_budget_exhaustion_returns_partial(self) -> None:
        svc = service(chain_graph(60))
        harness = InProcessHarness(svc)
        response = harness.run_one(
            {"id": 1, "op": "rpq", "query": "next*", "budget": 10}
        )
        assert response["status"] == "partial"
        assert response["reason"] == "budget"
        assert response["completeness"]["failures"][0]["kind"] == "budget"
        assert 0 < len(response["result"]) < 61

    def test_sufficient_budget_is_exact(self) -> None:
        svc = service(chain_graph(30))
        harness = InProcessHarness(svc)
        response = harness.run_one(
            {"id": 1, "op": "rpq", "query": "next*", "budget": 10_000}
        )
        assert response["status"] == "ok"
        assert len(response["result"]) == 31


# -- cooperative cancellation ------------------------------------------------------


class TestCancellation:
    def test_cancel_mid_query(self) -> None:
        svc = service(chain_graph(60))
        cancelled_at = []

        def chaos(task, step_count):
            if step_count == 5 and not cancelled_at:
                cancelled_at.append(step_count)
                ack = harness.cancel(task.request_id)
                assert ack["status"] == "ok"
                assert ack["result"] == {"cancelled": True}

        harness = InProcessHarness(svc, on_step=chaos)
        response = harness.run_one({"id": 7, "op": "rpq", "query": "next*"})
        assert cancelled_at == [5]
        assert response["status"] == "partial"
        assert response["reason"] == "cancelled"
        assert response["completeness"]["failures"][0]["kind"] == "cancelled"
        assert 0 < len(response["result"]) < 61

    def test_cancel_unknown_target_acks_false(self) -> None:
        harness = InProcessHarness(service())
        ack = harness.cancel(999)
        assert ack["status"] == "ok" and ack["result"] == {"cancelled": False}

    def test_disconnect_cancels_live_queries(self) -> None:
        svc = service(chain_graph(60))
        harness = InProcessHarness(svc)
        harness.submit({"id": 1, "op": "rpq", "query": "next*"})
        flagged = svc.disconnect(harness.session)
        assert flagged == 1
        responses = harness.run()
        assert responses[1]["status"] == "partial"
        assert responses[1]["reason"] == "cancelled"

    def test_cancel_after_completion_is_a_clean_no(self) -> None:
        harness = InProcessHarness(service())
        harness.run_one({"id": 1, "op": "rpq", "query": "Entry"})
        assert harness.cancel(1)["result"] == {"cancelled": False}


# -- overload shedding -------------------------------------------------------------


class TestOverload:
    def test_burst_sheds_typed_beyond_bounds(self) -> None:
        svc = service(chain_graph(20), max_inflight=2, max_queue=2)
        harness = InProcessHarness(svc)
        tasks = harness.submit_all(
            [{"id": i, "op": "rpq", "query": "next*"} for i in range(8)]
        )
        assert len(tasks) == 8
        # sheds answered instantly -- no work, no queue growth
        shed_now = [t for t in tasks if t.done]
        assert len(shed_now) == 4
        for t in shed_now:
            assert t.response["status"] == "overloaded"
            assert t.response["reason"] == "queue_full"
            assert t.response["retry_after"] > 0
        responses = harness.run()
        statuses = sorted(r["status"] for r in responses.values())
        assert statuses == ["ok"] * 4 + ["overloaded"] * 4
        snap = svc.governor.snapshot()
        assert snap["shed"] == 4 and snap["inflight"] == 0

    def test_bounded_queue_under_sustained_load(self) -> None:
        svc = service(chain_graph(10), max_inflight=1, max_queue=2)
        harness = InProcessHarness(svc)
        max_depth = 0

        def watch(task, step_count):
            nonlocal max_depth
            max_depth = max(max_depth, svc.governor.queue_depth)

        harness.on_step = watch
        harness.submit_all(
            [{"id": i, "op": "rpq", "query": "next*"} for i in range(30)]
        )
        responses = harness.run()
        assert len(responses) == 30  # one typed response each, always
        assert max_depth <= 2
        ok = sum(1 for r in responses.values() if r["status"] == "ok")
        shed = sum(1 for r in responses.values() if r["status"] == "overloaded")
        assert ok == 3 and shed == 27

    def test_session_table_sheds_at_cap(self) -> None:
        svc = service(max_sessions=2)
        svc.connect()
        svc.connect()
        with pytest.raises(Overloaded) as exc_info:
            svc.connect()
        assert exc_info.value.reason == "sessions_full"

    def test_released_slot_admits_next_waiter(self) -> None:
        svc = service(chain_graph(10), max_inflight=1, max_queue=1)
        harness = InProcessHarness(svc)
        harness.submit_all(
            [{"id": 1, "op": "rpq", "query": "next*"},
             {"id": 2, "op": "rpq", "query": "next*"}]
        )
        responses = harness.run()
        assert responses[1]["status"] == "ok" and responses[2]["status"] == "ok"


# -- fault injection and the breaker ----------------------------------------------


class TestWorkerFaults:
    def test_injected_fault_is_typed_error(self) -> None:
        clock = SimulatedClock()
        injector = FaultInjector(seed=3, flaky={"worker:rpq": 1}, clock=clock)
        harness = InProcessHarness(service(clock=clock, injector=injector))
        first = harness.run_one({"id": 1, "op": "rpq", "query": "Entry"})
        assert first["status"] == "error"
        assert first["error_type"] == "InjectedFault"
        second = harness.run_one({"id": 2, "op": "rpq", "query": "Entry"})
        assert second["status"] == "ok"  # the fault was transient

    def test_permanent_outage_trips_breaker(self) -> None:
        clock = SimulatedClock()
        injector = FaultInjector(seed=3, outages={"worker:rpq"}, clock=clock)
        svc = service(
            clock=clock, injector=injector, breaker_threshold=3, breaker_cooldown=60.0
        )
        harness = InProcessHarness(svc)
        responses = [
            harness.run_one({"id": i, "op": "rpq", "query": "Entry"})
            for i in range(1, 7)
        ]
        assert [r["error_type"] for r in responses[:3]] == ["InjectedFault"] * 3
        # breaker now open: the dead worker is not contacted again
        assert [r["error_type"] for r in responses[3:]] == ["CircuitOpenError"] * 3
        assert injector.calls("worker:rpq") == 3  # the documented trip bound
        assert svc.stats()["breakers"]["rpq"] == "open"

    def test_breaker_half_open_probe_recovers(self) -> None:
        clock = SimulatedClock()
        injector = FaultInjector(seed=3, flaky={"worker:rpq": 3}, clock=clock)
        svc = service(
            clock=clock, injector=injector, breaker_threshold=3, breaker_cooldown=5.0
        )
        harness = InProcessHarness(svc)
        for i in range(3):
            harness.run_one({"id": i, "op": "rpq", "query": "Entry"})
        assert svc.stats()["breakers"]["rpq"] == "open"
        clock.sleep(6.0)  # past the cooldown: one probe is admitted
        probe = harness.run_one({"id": 10, "op": "rpq", "query": "Entry"})
        assert probe["status"] == "ok"
        assert svc.stats()["breakers"]["rpq"] == "closed"

    def test_faulty_engine_does_not_poison_others(self) -> None:
        clock = SimulatedClock()
        injector = FaultInjector(seed=3, outages={"worker:rpq"}, clock=clock)
        harness = InProcessHarness(
            service(clock=clock, injector=injector, breaker_threshold=1)
        )
        assert harness.run_one({"id": 1, "op": "rpq", "query": "Entry"})["status"] == "error"
        assert harness.run_one({"id": 2, "op": "find", "query": "Title"})["status"] == "ok"


# -- the acceptance scenario -------------------------------------------------------


class TestEndToEnd:
    def test_all_four_typed_outcomes_in_one_run(self) -> None:
        """The ISSUE acceptance test: admission, shed, deadline, cancel --
        four typed responses out of one server instance, no crash, no
        unbounded queue."""
        clock = SimulatedClock()
        svc = service(
            chain_graph(60), clock=clock, max_inflight=2, max_queue=1
        )
        harness = InProcessHarness(svc, advance_per_step=0.01)

        def chaos(task, step_count):
            if step_count == 4:
                harness.cancel(2, request_id=100)

        harness.on_step = chaos
        harness.submit_all(
            [
                {"id": 1, "op": "rpq", "query": "next*"},                      # ok
                {"id": 2, "op": "rpq", "query": "next*"},                      # cancelled
                {"id": 3, "op": "rpq", "query": "next*", "deadline": 0.05},    # deadline
                {"id": 4, "op": "rpq", "query": "next*"},                      # shed
            ]
        )
        responses = harness.run()

        assert responses[1]["status"] == "ok"
        assert len(responses[1]["result"]) == 61
        assert responses[2]["status"] == "partial"
        assert responses[2]["reason"] == "cancelled"
        assert responses[3]["status"] == "deadline"
        assert responses[4]["status"] == "overloaded"
        assert responses[100]["result"] == {"cancelled": True}

        # the server survived in a clean state
        snap = svc.governor.snapshot()
        assert snap["inflight"] == 0 and snap["queue_depth"] == 0
        assert snap["shed"] == 1
        # and every decision is visible in the metrics
        stats = harness.run_one({"id": 200, "op": "stats"})["result"]
        counters = stats["metrics"]
        assert counters["service_ok"] >= 1
        assert counters["service_partial"] >= 1
        assert counters["service_deadline"] >= 1
        assert counters["service_overloaded"] >= 1
        assert counters["service_cancelled"] >= 1

    def test_deterministic_replay(self) -> None:
        """Same inputs, same interleaving, byte-identical responses."""

        def run() -> dict:
            clock = SimulatedClock()
            svc = service(chain_graph(40), clock=clock, max_inflight=2, max_queue=1)
            harness = InProcessHarness(svc, advance_per_step=0.01)
            harness.submit_all(
                [{"id": i, "op": "rpq", "query": "next*",
                  "deadline": 0.1 + 0.05 * i} for i in range(6)]
            )
            return harness.run()

        assert run() == run()

    def test_tracer_spans_cover_serving(self) -> None:
        from repro.obs import Tracer

        clock = SimulatedClock()
        tracer = Tracer(clock=clock)
        harness = InProcessHarness(service(clock=clock, tracer=tracer))
        harness.run_one({"id": 1, "op": "rpq", "query": "Entry.Movie.Title"})
        spans = tracer.find("serve")
        assert len(spans) == 1
        assert spans[0].attributes["status"] == "ok"
        assert spans[0].attributes["checkpoints"] >= 1
