"""Wire-protocol tests: framing, fragmentation, typed refusal."""

import json

import pytest

from repro.service import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    ProtocolError,
    encode_frame,
    validate_request,
)


def test_roundtrip_single_frame() -> None:
    obj = {"id": 1, "op": "ping"}
    decoder = FrameDecoder()
    assert list(decoder.feed(encode_frame(obj))) == [obj]
    assert decoder.pending_bytes == 0


def test_frame_is_length_prefixed_compact_json() -> None:
    frame = encode_frame({"b": 2, "a": 1})
    length = int.from_bytes(frame[:4], "big")
    assert length == len(frame) - 4
    assert json.loads(frame[4:]) == {"a": 1, "b": 2}
    assert frame[4:] == b'{"a":1,"b":2}'  # sorted keys, no spaces


def test_byte_at_a_time_fragmentation() -> None:
    objs = [{"id": i, "op": "ping"} for i in range(3)]
    wire = b"".join(encode_frame(o) for o in objs)
    decoder = FrameDecoder()
    out = []
    for i in range(len(wire)):
        out.extend(decoder.feed(wire[i : i + 1]))
    assert out == objs


def test_many_frames_in_one_read() -> None:
    objs = [{"id": i, "op": "ping"} for i in range(5)]
    wire = b"".join(encode_frame(o) for o in objs)
    assert list(FrameDecoder().feed(wire)) == objs


def test_oversized_length_prefix_refused_immediately() -> None:
    huge = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
    with pytest.raises(ProtocolError):
        list(FrameDecoder().feed(huge))


def test_undecodable_payload_refused() -> None:
    bad = b"\xff\xfe not json"
    wire = len(bad).to_bytes(4, "big") + bad
    with pytest.raises(ProtocolError):
        list(FrameDecoder().feed(wire))


def test_non_object_payload_refused() -> None:
    payload = b"[1,2,3]"
    wire = len(payload).to_bytes(4, "big") + payload
    with pytest.raises(ProtocolError):
        list(FrameDecoder().feed(wire))


def test_encode_refuses_oversized_object() -> None:
    with pytest.raises(ProtocolError):
        encode_frame({"id": 1, "op": "rpq", "query": "x" * (MAX_FRAME_BYTES + 1)})


@pytest.mark.parametrize(
    "request_obj",
    [
        {"id": 1, "op": "rpq", "query": "Entry"},
        {"id": 2, "op": "lorel", "query": "select m from DB.Entry m"},
        {"id": 3, "op": "unql", "query": "select \\t where {Entry: \\t} in db"},
        {"id": 4, "op": "find", "query": "Casablanca"},
        {"id": 5, "op": "ping"},
        {"id": 6, "op": "stats"},
        {"id": 7, "op": "cancel", "target": 1},
        {"id": 8, "op": "rpq", "query": "Entry", "deadline": 0.5, "budget": 100},
    ],
)
def test_validate_accepts(request_obj: dict) -> None:
    assert validate_request(request_obj) is request_obj


@pytest.mark.parametrize(
    "request_obj",
    [
        {},
        {"id": 1},
        {"id": 1, "op": "teleport"},
        {"op": "ping"},
        {"id": "one", "op": "ping"},
        {"id": True, "op": "rpq", "query": "Entry"},  # bool is not an id
        {"id": 1, "op": "rpq"},  # query op without query
        {"id": 1, "op": "rpq", "query": 7},
        {"id": 1, "op": "cancel"},  # cancel without target
        {"id": 1, "op": "cancel", "target": "2"},
        {"id": 1, "op": "rpq", "query": "E", "deadline": 0},
        {"id": 1, "op": "rpq", "query": "E", "deadline": -1.5},
        {"id": 1, "op": "rpq", "query": "E", "budget": 0},
        {"id": 1, "op": "rpq", "query": "E", "budget": 1.5},
        {"id": 1, "op": "rpq", "query": "E", "budget": True},
    ],
)
def test_validate_refuses(request_obj: dict) -> None:
    with pytest.raises(ProtocolError):
        validate_request(request_obj)
