"""Admission governor tests: bounded slots, bounded queue, typed sheds."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.resilience import (
    BudgetExhausted,
    DeadlineExceeded,
    QueryCancelled,
    SimulatedClock,
)
from repro.service import AdmissionGovernor, Overloaded, QueryControl


def governor(**kw) -> AdmissionGovernor:
    kw.setdefault("clock", SimulatedClock())
    # a private registry per test: snapshot() reads counters, and the
    # shared default registry accumulates across the whole process
    kw.setdefault("metrics", MetricsRegistry())
    return AdmissionGovernor(kw.pop("max_inflight", 2), kw.pop("max_queue", 2), **kw)


class TestAdmission:
    def test_admits_up_to_max_inflight(self) -> None:
        gov = governor()
        t1, t2 = gov.admit("a"), gov.admit("b")
        assert t1.admitted and t2.admitted
        assert gov.inflight == 2 and gov.queue_depth == 0

    def test_queues_fifo_beyond_inflight(self) -> None:
        gov = governor()
        running = [gov.admit("a"), gov.admit("b")]
        waiting = [gov.admit("c"), gov.admit("d")]
        assert not waiting[0].admitted and not waiting[1].admitted
        assert gov.queue_depth == 2
        gov.release(running[0])
        assert waiting[0].admitted and not waiting[1].admitted  # FIFO
        gov.release(running[1])
        assert waiting[1].admitted

    def test_sheds_typed_when_both_full(self) -> None:
        gov = governor()
        for key in "abcd":
            gov.admit(key)
        with pytest.raises(Overloaded) as exc_info:
            gov.admit("e")
        assert exc_info.value.reason == "queue_full"
        assert exc_info.value.retry_after > 0
        # Shedding is stateless: inflight and queue are unchanged.
        assert gov.inflight == 2 and gov.queue_depth == 2

    def test_never_queues_unboundedly(self) -> None:
        gov = governor(max_inflight=1, max_queue=3)
        gov.admit("run")
        shed = 0
        for i in range(50):
            try:
                gov.admit(f"q{i}")
            except Overloaded:
                shed += 1
        assert gov.queue_depth == 3  # hard bound, no matter the offered load
        assert shed == 47

    def test_zero_queue_sheds_at_capacity(self) -> None:
        gov = governor(max_inflight=1, max_queue=0)
        gov.admit("a")
        with pytest.raises(Overloaded):
            gov.admit("b")

    def test_release_is_idempotent(self) -> None:
        gov = governor()
        t = gov.admit("a")
        gov.release(t)
        gov.release(t)
        assert gov.inflight == 0
        assert gov.snapshot()["released"] == 1

    def test_releasing_queued_ticket_removes_it(self) -> None:
        gov = governor(max_inflight=1, max_queue=2)
        running = gov.admit("a")
        waiter = gov.admit("b")
        gov.release(waiter)  # client gave up while queued
        assert gov.queue_depth == 0
        gov.release(running)
        assert not waiter.admitted  # a released waiter is never promoted

    def test_released_waiter_skipped_on_promotion(self) -> None:
        gov = governor(max_inflight=1, max_queue=2)
        running = gov.admit("a")
        gone, survivor = gov.admit("b"), gov.admit("c")
        gone.released = True  # simulates the async cancel race
        gov.release(running)
        assert survivor.admitted and not gone.admitted

    def test_on_admit_callback_fires_at_promotion(self) -> None:
        gov = governor(max_inflight=1, max_queue=1)
        running = gov.admit("a")
        waiter = gov.admit("b")
        fired = []
        waiter.on_admit = lambda: fired.append(True)
        gov.release(running)
        assert fired == [True]

    def test_snapshot_accounting(self) -> None:
        gov = governor()
        tickets = [gov.admit(k) for k in "abcd"]
        with pytest.raises(Overloaded):
            gov.admit("e")
        for t in tickets:
            gov.release(t)
        snap = gov.snapshot()
        assert snap["admitted"] == 4  # 2 direct + 2 promoted
        assert snap["queued"] == 2
        assert snap["shed"] == 1
        assert snap["released"] == 4
        assert snap["inflight"] == 0 and snap["queue_depth"] == 0

    def test_constructor_validation(self) -> None:
        with pytest.raises(ValueError):
            AdmissionGovernor(0, 1)
        with pytest.raises(ValueError):
            AdmissionGovernor(1, -1)


class TestQueryControl:
    def test_deadline_starts_at_admission_not_dequeue(self) -> None:
        clock = SimulatedClock()
        gov = governor(max_inflight=1, max_queue=1, clock=clock)
        running = gov.admit("slow")
        waiter = gov.admit("stale", deadline=0.5)
        clock.sleep(1.0)  # the queue wait eats the whole deadline
        gov.release(running)
        assert waiter.admitted
        with pytest.raises(DeadlineExceeded):
            waiter.control.checkpoint(0)

    def test_checkpoint_order_cancel_deadline_budget(self) -> None:
        clock = SimulatedClock()
        control = QueryControl("k", clock=clock, deadline=0.1, budget=5)
        control.cancel()
        clock.sleep(1.0)
        # all three conditions hold; cancel wins deterministically
        with pytest.raises(QueryCancelled):
            control.checkpoint(100)

    def test_budget_counts_accumulated_ops(self) -> None:
        control = QueryControl("k", clock=SimulatedClock(), budget=10)
        control.checkpoint(4)
        control.checkpoint(6)  # exactly at budget: still fine
        with pytest.raises(BudgetExhausted) as exc_info:
            control.checkpoint(1)
        assert exc_info.value.spent == 11 and exc_info.value.budget == 10

    def test_remaining_tracks_clock(self) -> None:
        clock = SimulatedClock()
        control = QueryControl("k", clock=clock, deadline=2.0)
        clock.sleep(0.5)
        assert control.remaining() == pytest.approx(1.5)
        assert QueryControl("k", clock=clock).remaining() == float("inf")

    def test_defaults_flow_from_governor(self) -> None:
        gov = governor(default_deadline=1.0, default_budget=7)
        t = gov.admit("a")
        assert t.control.deadline == 1.0 and t.control.budget == 7
        explicit = gov.admit("b", deadline=0.25, budget=3)
        assert explicit.control.deadline == 0.25 and explicit.control.budget == 3

    def test_invalid_limits_rejected(self) -> None:
        with pytest.raises(ValueError):
            QueryControl("k", deadline=0)
        with pytest.raises(ValueError):
            QueryControl("k", budget=-1)
