"""The service write path: ``apply`` requests and snapshot isolation.

ISSUE 10's service-layer contract: writes go through admission control
like any query, a reader admitted before a write answers from the
snapshot it pinned at admission (readers are never blocked by -- or
torn by -- writers), and a write acknowledged ``ok`` is durable in the
store directory across a close/reopen.
"""

from pathlib import Path

import pytest

from repro.automata.product import rpq_nodes
from repro.core.graph import Graph
from repro.datasets import generate_movies
from repro.obs.metrics import MetricsRegistry
from repro.resilience import SimulatedClock
from repro.service import InProcessHarness, QueryService
from repro.service.errors import ProtocolError
from repro.service.protocol import validate_request
from repro.storage import VersionedGraphStore


def store_service(tmp_path: Path, **kw):
    store = VersionedGraphStore.create(
        tmp_path / "store", generate_movies(10, seed=11), durable=False
    )
    kw.setdefault("clock", SimulatedClock())
    kw.setdefault("metrics", MetricsRegistry())
    return store, QueryService(store=store, **kw)


def add_movie_request(rid: int, root: int, title: str, **extra) -> dict:
    return {
        "id": rid,
        "op": "apply",
        "mutations": [
            {"kind": "node", "name": "m"},
            {"kind": "node", "name": "t"},
            {"kind": "edge", "src": root, "label": "Movie", "dst": "m"},
            {"kind": "edge", "src": "m", "label": "Title", "dst": "t"},
            {"kind": "edge", "src": "t", "label": {"kind": "string", "value": title}, "dst": "t"},
        ],
        **extra,
    }


class TestApply:
    def test_apply_commits_and_reports_names(self, tmp_path: Path) -> None:
        store, svc = store_service(tmp_path)
        with store:
            harness = InProcessHarness(svc)
            response = harness.run_one(add_movie_request(1, store.graph.root, "Gilda"))
            assert response["status"] == "ok"
            result = response["result"]
            assert result["version"] == 1 and result["acked"] == 1
            assert set(result["nodes"]) == {"m", "t"}
            movie = result["nodes"]["m"]
            assert store.graph.has_node(movie)

    def test_new_data_is_queryable_after_apply(self, tmp_path: Path) -> None:
        store, svc = store_service(tmp_path)
        with store:
            harness = InProcessHarness(svc)
            before = harness.run_one({"id": 1, "op": "rpq", "query": "Entry.Movie.Title"})
            harness.run_one(add_movie_request(2, store.graph.root, "Gilda"))
            # the new movie hangs off the root under "Movie", not "Entry";
            # query it by its own path
            after = harness.run_one({"id": 3, "op": "rpq", "query": "Movie.Title"})
            assert after["status"] == "ok"
            assert len(after["result"]) == 1
            assert before["result"] == sorted(
                rpq_nodes(store.view().graph, "Entry.Movie.Title")
            )

    def test_read_only_service_refuses_typed(self) -> None:
        svc = QueryService(
            generate_movies(5, seed=2), clock=SimulatedClock(), metrics=MetricsRegistry()
        )
        harness = InProcessHarness(svc)
        response = harness.run_one(add_movie_request(1, 0, "Nope"))
        assert response["status"] == "error"
        assert response["error_type"] == "ReadOnly"

    def test_bad_mutation_is_typed_error_service_survives(self, tmp_path: Path) -> None:
        store, svc = store_service(tmp_path)
        with store:
            harness = InProcessHarness(svc)
            response = harness.run_one(
                {
                    "id": 1,
                    "op": "apply",
                    "mutations": [
                        {"kind": "edge", "src": 99_999, "label": "x", "dst": 99_999}
                    ],
                }
            )
            assert response["status"] == "error"
            assert store.version == 0  # nothing committed
            # the service is alive and the store is still writable
            ok = harness.run_one(add_movie_request(2, store.graph.root, "Laura"))
            assert ok["status"] == "ok" and store.version == 1

    def test_deferred_sync_reports_the_ack_horizon(self, tmp_path: Path) -> None:
        store = VersionedGraphStore.create(
            tmp_path / "store", generate_movies(6, seed=4), durable=True
        )
        svc = QueryService(store=store, clock=SimulatedClock(), metrics=MetricsRegistry())
        with store:
            harness = InProcessHarness(svc)
            root = store.graph.root
            deferred = harness.run_one(add_movie_request(1, root, "One", sync=False))
            assert deferred["result"]["version"] == 1
            assert deferred["result"]["acked"] == 0  # written, not yet durable
            synced = harness.run_one(add_movie_request(2, root, "Two", sync=True))
            assert synced["result"]["acked"] == 2  # the group fsync covered both

    def test_apply_is_durable_across_reopen(self, tmp_path: Path) -> None:
        store, svc = store_service(tmp_path)
        harness = InProcessHarness(svc)
        response = harness.run_one(add_movie_request(1, store.graph.root, "Notorious"))
        movie = response["result"]["nodes"]["m"]
        store.close()
        with VersionedGraphStore(tmp_path / "store", durable=False) as reopened:
            assert reopened.version == 1
            assert reopened.graph.has_node(movie)

    def test_stats_reports_the_store(self, tmp_path: Path) -> None:
        store, svc = store_service(tmp_path)
        with store:
            harness = InProcessHarness(svc)
            harness.run_one(add_movie_request(1, store.graph.root, "Rope"))
            stats = harness.run_one({"id": 2, "op": "stats"})["result"]
            assert stats["store"]["version"] == 1
            assert stats["store"]["nodes"] == store.graph.num_nodes


class TestSnapshotIsolation:
    def test_reader_admitted_before_write_sees_its_snapshot(self, tmp_path: Path) -> None:
        """Readers are never blocked by writers -- and never see them.

        A query admitted at version 0 runs interleaved with a write that
        lands mid-flight; the query must answer exactly for version 0,
        and a query admitted afterwards must see version 1.
        """
        store, svc = store_service(tmp_path)
        with store:
            harness = InProcessHarness(svc)
            baseline = sorted(rpq_nodes(store.view().graph, "Movie.Title"))
            reader = harness.submit({"id": 1, "op": "rpq", "query": "Movie.Title"})
            assert not reader.done  # admitted, pinned at v0, not yet run
            harness.submit(add_movie_request(2, store.graph.root, "Vertigo"))
            harness.run()  # round-robin: the write lands while the read steps
            assert harness.responses[2]["status"] == "ok"
            assert store.version == 1
            read = harness.responses[1]
            assert read["status"] == "ok"
            assert read["result"] == baseline  # v0 exactly: isolation held
            fresh = harness.run_one({"id": 3, "op": "rpq", "query": "Movie.Title"})
            assert len(fresh["result"]) == len(baseline) + 1

    def test_every_engine_serves_from_the_pinned_view(self, tmp_path: Path) -> None:
        store, svc = store_service(tmp_path)
        with store:
            harness = InProcessHarness(svc)
            readers = harness.submit_all(
                [
                    {"id": 1, "op": "rpq", "query": "Movie.Title"},
                    {"id": 2, "op": "lorel", "query": "select m.Title from DB.Movie m"},
                    {"id": 3, "op": "find", "query": "Title"},
                ]
            )
            assert all(not r.done for r in readers)
            harness.submit(add_movie_request(4, store.graph.root, "Rebecca"))
            harness.run()
            assert harness.responses[4]["status"] == "ok"
            # the rpq and lorel readers pinned v0: no "Rebecca" anywhere
            assert harness.responses[1]["result"] == []
            assert harness.responses[2]["result"] == []

    def test_old_views_survive_many_commits(self, tmp_path: Path) -> None:
        store, svc = store_service(tmp_path)
        with store:
            v0 = svc.current_view()
            edges0 = v0.frozen.num_edges
            harness = InProcessHarness(svc)
            for rid in range(1, 6):
                harness.run_one(add_movie_request(rid, store.graph.root, f"T{rid}"))
            assert store.version == 5
            assert v0.version == 0 and v0.frozen.num_edges == edges0


class TestProtocol:
    def test_apply_requires_nonempty_mutation_list(self) -> None:
        with pytest.raises(ProtocolError):
            validate_request({"id": 1, "op": "apply", "mutations": []})
        with pytest.raises(ProtocolError):
            validate_request({"id": 1, "op": "apply"})
        with pytest.raises(ProtocolError):
            validate_request(
                {"id": 1, "op": "apply", "mutations": [{"kind": "frob"}]}
            )
        with pytest.raises(ProtocolError):
            validate_request(
                {"id": 1, "op": "apply", "mutations": [{"kind": "node"}], "sync": "yes"}
            )

    def test_valid_apply_passes(self) -> None:
        request = {
            "id": 1,
            "op": "apply",
            "mutations": [{"kind": "node", "name": "n"}],
            "sync": False,
        }
        assert validate_request(request) is request

    def test_service_requires_store_xor_graph(self, tmp_path: Path) -> None:
        store = VersionedGraphStore.create(tmp_path / "s", Graph(), durable=False)
        with store:
            with pytest.raises(ValueError):
                QueryService(generate_movies(2), store=store)
            with pytest.raises(ValueError):
                QueryService()
