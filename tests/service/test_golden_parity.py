"""Golden parity: a profiled query through the server IS the library call.

The obs suite pins exact operation counts for the library's profiled
entry points (``tests/obs/test_golden_profiles.py``).  The server must
not perturb them: a client asking for ``"profile": true`` has to get a
:class:`~repro.obs.QueryProfile` *byte-identical* (as canonical JSON)
to what a direct library call produces -- same engine, same counts, no
service-side cache or wrapper leaking into the measurement.  That is
why the server's profiled paths bypass its plan cache.
"""

import pytest

from repro.automata.product import rpq_nodes_profiled
from repro.browse import find_value_profiled
from repro.core.convert import graph_to_oem
from repro.core.frozen import freeze
from repro.datasets import generate_movies
from repro.lorel import evaluate_lorel_profiled, parse_lorel
from repro.obs.export import to_json
from repro.service import InProcessHarness, QueryService
from repro.unql import evaluate_query_profiled, parse_query


@pytest.fixture()
def graph():
    return generate_movies(15, seed=4)


@pytest.fixture()
def harness(graph):
    h = InProcessHarness(QueryService(graph))
    yield h
    h.close()


def assert_byte_identical(server_profile: dict, library_profile: dict) -> None:
    assert to_json(server_profile) == to_json(library_profile)


def test_rpq_profile_parity(graph, harness) -> None:
    query = "Entry.Movie.Title"
    response = harness.run_one(
        {"id": 1, "op": "rpq", "query": query, "profile": True}
    )
    assert response["status"] == "ok"
    results, profile = rpq_nodes_profiled(freeze(graph), query)
    assert response["result"] == sorted(results)
    assert_byte_identical(response["profile"], profile.as_dict())


def test_rpq_profile_parity_unaffected_by_warm_plan_cache(graph, harness) -> None:
    """Unprofiled traffic warms the service plan cache; a later profiled
    run of the same pattern must still report cold-compile counts."""
    query = "Entry.Movie.Title"
    for i in range(3):
        harness.run_one({"id": i, "op": "rpq", "query": query})
    response = harness.run_one(
        {"id": 10, "op": "rpq", "query": query, "profile": True}
    )
    _, profile = rpq_nodes_profiled(freeze(graph), query)
    assert_byte_identical(response["profile"], profile.as_dict())


def test_lorel_profile_parity(graph, harness) -> None:
    query = "select m.Title from DB.Entry.Movie m"
    response = harness.run_one(
        {"id": 1, "op": "lorel", "query": query, "profile": True}
    )
    assert response["status"] == "ok"
    _, profile = evaluate_lorel_profiled(
        parse_lorel(query), graph_to_oem(graph), query_text=query
    )
    assert_byte_identical(response["profile"], profile.as_dict())


def test_unql_profile_parity(graph, harness) -> None:
    query = r"select \t where {Entry: {Movie: {Title: \t}}} in db"
    response = harness.run_one(
        {"id": 1, "op": "unql", "query": query, "profile": True}
    )
    assert response["status"] == "ok"
    _, profile = evaluate_query_profiled(
        parse_query(query), {"db": graph, "DB": graph}, query_text=query
    )
    assert_byte_identical(response["profile"], profile.as_dict())


def test_find_profile_parity(graph, harness) -> None:
    response = harness.run_one(
        {"id": 1, "op": "find", "query": "Title", "profile": True}
    )
    assert response["status"] == "ok"
    _, profile = find_value_profiled(graph, "Title", None)
    assert_byte_identical(response["profile"], profile.as_dict())


def test_profiled_and_plain_answers_agree(graph, harness) -> None:
    query = "Entry.Movie.Title"
    plain = harness.run_one({"id": 1, "op": "rpq", "query": query})
    profiled = harness.run_one(
        {"id": 2, "op": "rpq", "query": query, "profile": True}
    )
    assert plain["result"] == profiled["result"]
