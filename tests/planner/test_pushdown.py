"""Tests for Lorel predicate pushdown through the OEM value groups.

The contract: :func:`pushdown_candidates` may only *shrink* the binding
work -- the evaluator still applies the full where clause -- so with and
without indexes every query answers identically, and the candidate sets
themselves are exact for the conjuncts in isolation.  Staleness is the
other half: a mutated database must never serve old candidate sets.
"""

import gc
import weakref

from repro.core.oem import OemDatabase
from repro.lorel import lorel, lorel_rows, parse_lorel
from repro.lorel.parser import parse_lorel as _parse
from repro.planner import OemIndexes, oem_indexes_for, pushdown_candidates
from repro.planner.pushdown import conjuncts_of, fixed_symbol_path

DATA = {
    "Entry": [
        {"Movie": {"Title": "Casablanca", "Year": 1942}},
        {"Movie": {"Title": "Heat", "Year": 1995}},
        {"Movie": {"Title": "Ran", "Year": 1985}},
    ]
}

QUERIES = [
    "select m.Title from DB.Entry.Movie m where m.Year < 1950",
    "select m.Title from DB.Entry.Movie m where 1990 <= m.Year",
    "select m.Title from DB.Entry.Movie m where m.Title like '%a%'",
    "select m.Title from DB.Entry.Movie m where m.Year > 1950 and m.Title like 'H%'",
    "select m.Title from DB.Entry.Movie m where m.Year > 1950 or m.Title = 'Ran'",
    "select m.Year from DB.Entry.Movie m where exists m.Title",
]


def db_of(obj=None) -> OemDatabase:
    return OemDatabase.from_obj(obj if obj is not None else DATA)


def rows(db, text, **kw):
    return sorted(map(repr, lorel_rows(lorel(text, db, **kw))))


def test_fixed_symbol_path_shapes():
    assert fixed_symbol_path(None) == ()
    q = _parse("select m.x from DB.a m where m.Year < 1")
    (conjunct,) = list(conjuncts_of(q.where))
    assert fixed_symbol_path(conjunct.left.path) == ("Year",)
    q = _parse("select m.x from DB.a m where m.A.B = 1")
    (conjunct,) = list(conjuncts_of(q.where))
    assert fixed_symbol_path(conjunct.left.path) == ("A", "B")
    q = _parse("select m.x from DB.a m where m.# = 1")
    (conjunct,) = list(conjuncts_of(q.where))
    assert fixed_symbol_path(conjunct.left.path) is None


def test_atoms_where_runs_once_per_distinct_value():
    db = db_of(
        {"Item": [{"v": 7}, {"v": 7}, {"v": 7}, {"v": 8}, {"v": "x"}]}
    )
    indexes = OemIndexes(db)
    calls = []

    def test(value):
        calls.append(value)
        return value == 7

    hits = indexes.atoms_where(test)
    assert len(hits) == 3
    assert len(calls) == indexes.num_distinct_values
    assert len(calls) < 5  # fewer evaluations than atoms


def test_sources_via_reverse_walk():
    db = db_of()
    indexes = OemIndexes(db)
    years = indexes.atoms_where(lambda v: v == 1942)
    movies = indexes.sources_via(years, ("Year",))
    assert len(movies) == 1
    entries = indexes.sources_via(years, ("Movie", "Year"))
    assert len(entries) >= 1
    assert indexes.sources_via(years, ("Nope",)) == set()


def test_candidates_cover_both_orientations_and_like():
    db = db_of()
    for text, expected_titles in [
        ("select m.Title from DB.Entry.Movie m where m.Year < 1950", 1),
        ("select m.Title from DB.Entry.Movie m where 1990 <= m.Year", 1),
        ("select m.Title from DB.Entry.Movie m where m.Title like '%an%'", 2),
    ]:
        query = parse_lorel(text)
        indexes = oem_indexes_for(db)
        candidates = pushdown_candidates(query, indexes)
        assert set(candidates) == {"m"}
        assert len(candidates["m"]) == expected_titles, text


def test_conjuncts_intersect_on_one_alias():
    db = db_of()
    query = parse_lorel(
        "select m.Title from DB.Entry.Movie m "
        "where m.Year > 1950 and m.Title like 'H%'"
    )
    indexes = oem_indexes_for(db)
    candidates = pushdown_candidates(query, indexes)
    assert len(candidates["m"]) == 1  # Heat alone satisfies both
    assert indexes.hits >= 2


def test_disjunctions_and_exists_are_not_pushed():
    db = db_of()
    indexes = oem_indexes_for(db)
    for text in (
        "select m.Title from DB.Entry.Movie m where m.Year > 1950 or m.Title = 'Ran'",
        "select m.Year from DB.Entry.Movie m where exists m.Title",
        "select m.Title from DB.Entry.Movie m where not m.Year > 1950",
    ):
        assert pushdown_candidates(parse_lorel(text), indexes) == {}


def test_misses_counted_for_unpushable_comparisons():
    db = db_of()
    indexes = oem_indexes_for(db)
    query = parse_lorel("select m.Title from DB.Entry.Movie m where m.# = 1942")
    before = indexes.misses
    assert pushdown_candidates(query, indexes) == {}
    assert indexes.misses == before + 1


def test_indexed_equals_postfiltered_on_every_query():
    db = db_of()
    for text in QUERIES:
        assert rows(db, text, use_indexes=True) == rows(
            db, text, use_indexes=False
        ), text


def test_staleness_rebuild_on_mutation():
    db = db_of()
    first = oem_indexes_for(db)
    assert oem_indexes_for(db) is first  # cached while unchanged
    before = rows(db, QUERIES[0])
    entry = db.new_complex()
    db.add_child(db.lookup_name("DB"), "Entry", entry)
    movie = db.new_complex()
    db.add_child(entry, "Movie", movie)
    db.add_child(movie, "Title", db.new_atomic("Rio Bravo"))
    db.add_child(movie, "Year", db.new_atomic(1948))
    assert first.is_stale()
    second = oem_indexes_for(db)
    assert second is not first
    after = rows(db, QUERIES[0])
    assert len(after) == len(before) + 1
    # stale indexes passed directly are ignored, never wrong
    assert pushdown_candidates(parse_lorel(QUERIES[0]), first) == {}


def test_index_cache_does_not_pin_databases():
    db = db_of()
    oem_indexes_for(db)
    ref = weakref.ref(db)
    del db
    gc.collect()
    assert ref() is None
