"""Tests for :class:`repro.planner.GraphStatistics` and the
statistics-driven Lorel clause reordering it feeds.

The estimator is only ever used to *rank* clauses, so the tests pin the
orderings that matter (absent < rare < common < wildcard < star) and the
exact counts the frequencies are built from -- plus the invariant that
reordering under any cost model never changes a Lorel answer.
"""

from repro.automata.regex import parse_path_regex
from repro.core.builder import from_obj
from repro.core.frozen import freeze
from repro.core.labels import integer, string, sym
from repro.core.oem import OemDatabase
from repro.lorel import lorel, lorel_rows, parse_lorel, reorder_from_clauses
from repro.lorel.optimizer import clause_cost
from repro.planner import GraphStatistics

DATA = {
    "Entry": [
        {"Movie": {"Title": "Casablanca", "Year": 1942}},
        {"Movie": {"Title": "Heat", "Year": 1995}},
        {"Movie": {"Title": "Ran", "Year": 1985}},
        {"TVShow": {"Title": "Twin Peaks"}},
    ]
}


def stats_of(obj) -> GraphStatistics:
    return GraphStatistics.from_frozen(freeze(from_obj(obj)))


def test_from_frozen_counts_every_edge_label():
    stats = stats_of(DATA)
    g = from_obj(DATA)
    assert stats.num_nodes == g.num_nodes
    assert stats.num_edges == g.num_edges
    assert stats.count(sym("Movie")) == 3
    assert stats.count(sym("TVShow")) == 1
    assert stats.count(sym("Title")) == 4
    assert stats.count(sym("Nope")) == 0
    assert stats.count(string("Casablanca")) == 1
    assert sum(stats.label_counts.values()) == g.num_edges


def test_from_oem_counts_symbols_and_values():
    db = OemDatabase.from_obj(DATA)
    stats = GraphStatistics.from_oem(db)
    assert stats.count(sym("Movie")) == 3
    assert stats.count(sym("Year")) == 3
    # atoms land in value_counts, not label_counts
    assert stats.count(string("Heat")) == 0
    assert stats.value_counts[string("Heat")] == 1
    assert stats.value_counts[integer(1942)] == 1
    assert 0.0 < stats.selectivity(integer(1942)) < 1.0
    assert stats.selectivity(string("Nope")) == 0.0


def test_matching_count_handles_globs_and_negation():
    stats = stats_of(DATA)
    movie = parse_path_regex("Movie")
    anything = parse_path_regex("_")
    not_movie = parse_path_regex("!Movie")
    assert stats.matching_count(movie.predicate) == 3
    assert stats.matching_count(anything.predicate) == stats.num_edges
    assert (
        stats.matching_count(not_movie.predicate)
        == stats.num_edges - 3
    )


def test_cardinality_orders_absent_rare_common_wildcard_star():
    stats = stats_of(DATA)
    absent = stats.cardinality(parse_path_regex("Nope"))
    rare = stats.cardinality(parse_path_regex("TVShow"))
    common = stats.cardinality(parse_path_regex("Title"))
    wildcard = stats.cardinality(parse_path_regex("_"))
    star = stats.cardinality(parse_path_regex("#"))  # `#` is the any-path closure
    assert absent == 0.0
    assert absent < rare < common < wildcard < star


def test_cardinality_shapes():
    stats = stats_of(DATA)
    concat = stats.cardinality(parse_path_regex("Entry.Movie"))
    assert concat == stats.count(sym("Entry")) * 3 / stats.num_edges
    alt = stats.cardinality(parse_path_regex("(Movie|TVShow)"))
    assert alt == 4.0
    opt = stats.cardinality(parse_path_regex("Movie?"))
    assert opt == 1.0 + 3.0
    assert stats.cardinality(None) == 1.0


def test_clause_cost_uses_stats_when_given():
    stats = stats_of(DATA)
    path = parse_path_regex("TVShow")
    assert clause_cost(path) == 1.0  # shape heuristic: exact step
    assert clause_cost(path, stats) == 1.0  # frequency: one TVShow edge
    assert clause_cost(parse_path_regex("Movie"), stats) == 3.0
    assert clause_cost(parse_path_regex("Nope"), stats) == 0.0


def test_stats_reorder_puts_rare_clause_first_and_keeps_answers():
    db = OemDatabase.from_obj(DATA)
    stats = GraphStatistics.from_oem(db)
    text = (
        "select t.Title, s.Title from DB.Entry.Movie t, DB.Entry.TVShow s"
    )
    query = parse_lorel(text)
    # the shape heuristic ties (both clauses are 3 exact steps) and keeps
    # the given order; frequencies see TVShow (1) < Movie (3) and flip it
    assert [c.alias for c in reorder_from_clauses(query).from_clauses] == ["t", "s"]
    reordered = reorder_from_clauses(query, stats=stats)
    assert [c.alias for c in reordered.from_clauses] == ["s", "t"]
    assert sorted(
        map(repr, lorel_rows(lorel(text, db, use_indexes=True)))
    ) == sorted(map(repr, lorel_rows(lorel(text, db, use_indexes=False, optimize=False))))


def test_as_dict_reports_extents_only_when_given():
    stats = stats_of(DATA)
    assert "guide_states" not in stats.as_dict()
    with_guide = GraphStatistics(1, 0, {}, extent_sizes=[2, 3])
    described = with_guide.as_dict()
    assert described["guide_states"] == 2
    assert described["guide_extent_total"] == 5
