"""Property tests: the planner is *observationally invisible*.

Whatever route the planner picks -- path index, DataGuide product,
guide-masked kernel, plain kernel -- the answer must equal the direct
kernel on the same snapshot, over arbitrary graphs and every guard
shape (exact, alternation, closure, wildcard ``#``/``_``, negation,
globs).  Same for Lorel: the index-seeded evaluator must equal the
post-filtering one on arbitrary databases and where-clause bounds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.product import rpq_nodes, rpq_witnesses
from repro.core.graph import Graph
from repro.core.oem import OemDatabase
from repro.lorel import lorel, lorel_rows
from repro.planner import QueryPlanner

#: Guard shapes including the unbounded live sets (``#``, ``_``, ``!a``,
#: globs) where the guide mask is the only finite pruning available.
PATTERNS = [
    "a",
    "a.b",
    "a*",
    "(a|b)*",
    "a.b*",
    "#.a",
    "_.b",
    "!a",
    "(a.b)+",
    "a.(!b)*.a",
    "%a",
    "a.#",
]


@st.composite
def small_graphs(draw):
    n = draw(st.integers(2, 6))
    g = Graph()
    nodes = [g.new_node() for _ in range(n)]
    g.set_root(nodes[0])
    for _ in range(draw(st.integers(1, 10))):
        g.add_edge(
            draw(st.sampled_from(nodes)),
            draw(st.sampled_from(["a", "b", "c", "ca"])),
            draw(st.sampled_from(nodes)),
        )
    return g


@given(small_graphs(), st.sampled_from(PATTERNS))
@settings(max_examples=150, deadline=None)
def test_prop_planner_routes_equal_direct_kernel(g, pattern):
    planner = QueryPlanner(g)
    expected = rpq_nodes(planner.graph, pattern)
    for strategy in ("auto", "mask", "kernel"):
        assert planner.rpq(pattern, strategy=strategy) == expected, strategy
    if planner.guide is not None:
        assert planner.rpq(pattern, strategy="guide") == expected


@given(small_graphs(), st.sampled_from(PATTERNS))
@settings(max_examples=100, deadline=None)
def test_prop_masked_witnesses_equal_unmasked(g, pattern):
    planner = QueryPlanner(g)
    assert planner.witnesses(pattern) == rpq_witnesses(planner.graph, pattern)


@given(small_graphs(), st.sampled_from(PATTERNS))
@settings(max_examples=100, deadline=None)
def test_prop_profiled_routes_equal_direct_kernel(g, pattern):
    planner = QueryPlanner(g)
    expected = rpq_nodes(planner.graph, pattern)
    results, profile = planner.rpq_profiled(pattern)
    assert results == expected
    assert profile.results == len(expected)
    witnesses, _ = planner.witnesses_profiled(pattern)
    assert witnesses == rpq_witnesses(planner.graph, pattern)


@st.composite
def movie_dbs(draw):
    titles = ["Casablanca", "Heat", "Ran", "Alien", "Brazil"]
    entries = []
    for _ in range(draw(st.integers(1, 5))):
        movie = {
            "Title": draw(st.sampled_from(titles)),
            "Year": draw(st.integers(1930, 2000)),
        }
        if draw(st.booleans()):
            movie["Rating"] = draw(st.floats(0, 10, allow_nan=False))
        entries.append({"Movie": movie})
    return OemDatabase.from_obj({"Entry": entries})


LOREL_TEMPLATES = [
    "select m.Title from DB.Entry.Movie m where m.Year < {bound}",
    "select m.Title from DB.Entry.Movie m where {bound} <= m.Year",
    "select m.Year from DB.Entry.Movie m where m.Title like '%a%'",
    "select m.Title from DB.Entry.Movie m "
    "where m.Year > {bound} and m.Title like '%n%'",
    "select m.Title from DB.Entry.Movie m "
    "where m.Year > {bound} or m.Title = 'Heat'",
    "select m.Title, m.Year from DB.Entry.Movie m",
]


@given(movie_dbs(), st.sampled_from(LOREL_TEMPLATES), st.integers(1930, 2000))
@settings(max_examples=100, deadline=None)
def test_prop_index_seeded_lorel_equals_postfiltered(db, template, bound):
    text = template.format(bound=bound)
    seeded = sorted(map(repr, lorel_rows(lorel(text, db, use_indexes=True))))
    plain = sorted(map(repr, lorel_rows(lorel(text, db, use_indexes=False))))
    unoptimized = sorted(
        map(repr, lorel_rows(lorel(text, db, use_indexes=False, optimize=False)))
    )
    assert seeded == plain == unoptimized
