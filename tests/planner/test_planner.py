"""Unit tests for the query planner's strategy routing.

Every route -- path index, DataGuide product, guide-masked kernel,
plain kernel -- must return the same answer; the strategies differ only
in what they read.  The ablation knobs (``strategy=...``) must raise
when forced onto an inapplicable route, and the profiled twins must say
*which* route answered through their ``extras``.
"""

import pytest

from repro.automata.product import rpq_nodes, rpq_witnesses
from repro.browse import find_value, where_is
from repro.core.builder import from_obj
from repro.core.frozen import freeze
from repro.planner import QueryPlanner, planner_for

MOVIES = {
    "Entry": [
        {
            "Movie": {
                "Title": "Casablanca",
                "Director": "Curtiz",
                "Year": 1942,
                "Cast": {"Actor": "Bogart", "Actress": "Bergman"},
            }
        },
        {"Movie": {"Title": "Heat", "Director": "Mann", "Year": 1995}},
        {"TVShow": {"Title": "Twin Peaks", "Episodes": 30}},
    ]
}

PATTERNS = [
    "Entry",
    "Entry.Movie.Title",
    "Entry.#.Title",
    "Entry.%how.Title",
    "Entry.(Movie|TVShow)",
    "Entry.Movie.(!Title)",
    "#",
    "Entry.Movie.Cast._",
]


@pytest.fixture()
def planner():
    return planner_for(from_obj(MOVIES))


def test_all_strategies_agree(planner):
    for pattern in PATTERNS:
        expected = rpq_nodes(planner.graph, pattern)
        for strategy in ("auto", "mask", "kernel"):
            assert planner.rpq(pattern, strategy=strategy) == expected, (
                pattern,
                strategy,
            )
        if planner.guide is not None:
            assert planner.rpq(pattern, strategy="guide") == expected, pattern


def test_index_strategy_answers_fixed_paths(planner):
    hit = planner.rpq("Entry.Movie.Title", strategy="index")
    assert hit == rpq_nodes(planner.graph, "Entry.Movie.Title")


def test_index_strategy_rejects_non_fixed_patterns(planner):
    with pytest.raises(ValueError, match="not index-coverable"):
        planner.rpq("Entry.#.Title", strategy="index")


def test_unknown_strategy_rejected(planner):
    with pytest.raises(ValueError, match="unknown strategy"):
        planner.rpq("Entry", strategy="warp")


def test_guide_strategy_raises_when_over_budget():
    p = QueryPlanner(from_obj(MOVIES), guide_max_states=1)
    assert p.guide is None
    with pytest.raises(ValueError, match="no DataGuide"):
        p.rpq("Entry", strategy="guide")
    # ...but auto still answers, through the unmasked kernel
    assert p.rpq("Entry.#.Title") == rpq_nodes(p.graph, "Entry.#.Title")
    assert p.mask_for("Entry.#.Title") is None


def test_non_root_start_takes_the_kernel(planner):
    fg = planner.graph
    root_movies = planner.rpq("Entry.Movie")
    for origin in root_movies:
        assert planner.rpq("Title", start=origin) == rpq_nodes(
            fg, "Title", start=origin
        )
        assert planner.witnesses("#", start=origin) == rpq_witnesses(
            fg, "#", start=origin
        )


def test_witnesses_identical_to_unmasked(planner):
    for pattern in PATTERNS:
        assert planner.witnesses(pattern) == rpq_witnesses(planner.graph, pattern), (
            pattern
        )


def test_masks_are_memoized_in_the_plan_cache(planner):
    first = planner.mask_for("Entry.#.Title")
    assert first is not None
    assert planner.mask_for("Entry.#.Title") is first
    assert planner.plan_cache.stats()["prunings"] >= 1


def test_planner_for_memoizes_per_snapshot():
    fg = freeze(from_obj(MOVIES))
    assert planner_for(fg) is planner_for(fg)
    # a different snapshot gets its own planner
    assert planner_for(freeze(from_obj(MOVIES))) is not planner_for(fg)


def test_profiled_extras_mark_the_answering_route(planner):
    results, profile = planner.rpq_profiled("Entry.Movie.Title")
    assert results == rpq_nodes(planner.graph, "Entry.Movie.Title")
    assert profile.extras == {"index_answered": 1}
    assert profile.engine == "planner-rpq"
    assert profile.results == len(results)

    results, profile = planner.rpq_profiled("Entry.#.Title")
    assert results == rpq_nodes(planner.graph, "Entry.#.Title")
    assert profile.extras == {"guide_answered": 1}

    witnesses, profile = planner.witnesses_profiled("Entry.#.Title")
    assert witnesses == rpq_witnesses(planner.graph, "Entry.#.Title")
    assert profile.engine == "planner-rpq-witnesses"
    assert profile.extras["guide_pruned_partitions"] > 0


def test_profiled_kernel_route_reports_mask_strength():
    p = QueryPlanner(from_obj(MOVIES))
    # no guide -> kernel route inside rpq_profiled reports zero pruning
    p._guide_failed = True
    results, profile = p.rpq_profiled("Entry.#.Title")
    assert results == rpq_nodes(p.graph, "Entry.#.Title")
    assert profile.extras == {"guide_pruned_partitions": 0}


def test_browse_delegation_matches_scan(planner):
    g = from_obj(MOVIES)
    scanned = find_value(g, "Casablanca")
    via_planner = planner.find_value("Casablanca")
    assert [str(f) for f in via_planner] == [str(f) for f in scanned]
    assert planner.where_is("Casablanca") == where_is(g, "Casablanca")
    # the delegation went through the planner's value index
    assert planner.indexes.accounting()["value"]["hits"] >= 1


def test_describe_is_json_ready(planner):
    planner.rpq("Entry.Movie.Title")
    described = planner.describe()
    assert described["guide_available"] is True
    assert described["guide_states"] > 0
    assert described["statistics"]["edges"] == planner.graph.num_edges
    import json

    json.dumps(described)  # must not raise
