"""The dense kernel plan and the public kernel API surface.

:func:`~repro.automata.product.compile_dense` materializes the lazy DFA
over a snapshot's interned alphabet with a *deterministic* state
numbering (BFS, labels in ascending id order) -- that is what lets a
plan be pickled to worker processes that never saw the parent's
visitation order.  The decomposition modules consume the kernel through
the public names (``product_bfs``, ``ordered_edge_indices``) rather
than private underscore imports; the import test pins that surface.
"""

import pickle

import pytest

from repro.automata import (
    DensePlan,
    PlanTooLarge,
    compile_dense,
    ordered_edge_indices,
    product_bfs,
    rpq_nodes,
)
from repro.datasets import generate_web

PATTERNS = ["link*", "(link|keyword)*", "link.link", "_*.keyword", "(!link)*"]


def dense_rpq(fg, plan, start):
    """Reference single-site evaluation driven only by the plan."""
    start_pos = fg._pos(start)
    seen = {(start_pos, plan.start)}
    stack = [(start_pos, plan.start)]
    out = {start} if plan.is_accepting(plan.start) else set()
    offsets, targets, label_ids = fg.offsets, fg.targets, fg.label_ids
    while stack:
        pos, state = stack.pop()
        for i in range(offsets[pos], offsets[pos + 1]):
            nxt = plan.step(state, label_ids[i])
            if nxt < 0:
                continue
            dst = targets[i]
            dst_pos = dst if fg.index is None else fg.index[dst]
            if (dst_pos, nxt) in seen:
                continue
            seen.add((dst_pos, nxt))
            if plan.is_accepting(nxt):
                out.add(dst)
            stack.append((dst_pos, nxt))
    return out


@pytest.mark.parametrize("pattern", PATTERNS)
def test_dense_plan_agrees_with_lazy_kernel(pattern):
    fg = generate_web(80, seed=9).freeze()
    plan = compile_dense(pattern, fg.labels_seq)
    assert dense_rpq(fg, plan, fg.root) == rpq_nodes(fg, pattern)


def test_plan_is_deterministic_and_picklable():
    fg = generate_web(30, seed=4).freeze()
    a = compile_dense("(link|keyword)*", fg.labels_seq)
    b = compile_dense("(link|keyword)*", fg.labels_seq)
    assert a.trans == b.trans and a.accepting == b.accepting
    thawed = pickle.loads(pickle.dumps(a))
    assert isinstance(thawed, DensePlan)
    assert thawed.trans == a.trans
    assert thawed.accepting == a.accepting
    assert thawed.num_states == a.num_states
    assert thawed.num_labels == a.num_labels


def test_plan_shape_invariants():
    fg = generate_web(30, seed=4).freeze()
    plan = compile_dense("link*", fg.labels_seq)
    assert plan.num_labels == len(fg.labels_seq)
    assert len(plan.trans) == plan.num_states * plan.num_labels
    assert len(plan.accepting) == plan.num_states
    assert all(-1 <= t < plan.num_states for t in plan.trans)
    assert plan.start == 0


def test_plan_too_large_raises():
    fg = generate_web(30, seed=4).freeze()
    with pytest.raises(PlanTooLarge):
        compile_dense("(link|keyword)*", fg.labels_seq, max_states=1)


def test_public_kernel_api_is_importable_without_underscores():
    # the decomposition modules depend on these names being public
    assert callable(product_bfs)
    assert callable(ordered_edge_indices)
    from repro.automata import product

    assert not hasattr(product, "_product_bfs")
    assert not hasattr(product, "_ordered_edge_indices")
