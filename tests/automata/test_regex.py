"""Tests for path-regex parsing and label predicates."""

import pytest

from repro.automata.regex import (
    AltRE,
    AtomRE,
    ConcatRE,
    EpsilonRE,
    OptRE,
    PlusRE,
    RegexSyntaxError,
    StarRE,
    any_label,
    exact,
    glob_string,
    glob_symbol,
    negated,
    parse_path_regex,
    type_test,
)
from repro.core.labels import LabelKind, boolean, integer, real, string, sym


class TestPredicates:
    def test_exact_symbol(self):
        p = exact("Movie")
        assert p.matches(sym("Movie"))
        assert not p.matches(string("Movie"))
        assert not p.matches(sym("TV"))

    def test_exact_data(self):
        assert exact(string("Casablanca")).matches(string("Casablanca"))
        assert exact(1942).matches(integer(1942))

    def test_glob_symbol(self):
        p = glob_symbol("act%")
        assert p.matches(sym("actors"))
        assert p.matches(sym("act"))
        assert not p.matches(sym("Actors"))  # case-sensitive
        assert not p.matches(string("actors"))

    def test_glob_string(self):
        p = glob_string("%Casa%")
        assert p.matches(string("Casablanca"))
        assert not p.matches(sym("Casablanca"))

    def test_any(self):
        p = any_label()
        for lab in (sym("x"), string("y"), integer(1), real(0.5), boolean(True)):
            assert p.matches(lab)

    def test_type_test(self):
        p = type_test(LabelKind.INT)
        assert p.matches(integer(7))
        assert not p.matches(real(7.0))
        assert not p.matches(sym("seven"))

    def test_negated(self):
        p = negated(exact("Movie"))
        assert not p.matches(sym("Movie"))
        assert p.matches(sym("TV"))
        assert p.matches(string("Movie"))

    def test_predicates_hashable(self):
        assert len({exact("a"), exact("a"), any_label()}) == 2

    def test_exact_label_accessor(self):
        assert exact("Movie").exact_label == sym("Movie")
        with pytest.raises(ValueError):
            any_label().exact_label


class TestParser:
    def test_single_name(self):
        node = parse_path_regex("Movie")
        assert isinstance(node, AtomRE)
        assert node.predicate == exact("Movie")

    def test_dotted_path(self):
        node = parse_path_regex("Entry.Movie.Title")
        assert isinstance(node, ConcatRE)

    def test_alternation(self):
        node = parse_path_regex("Movie|TV")
        assert isinstance(node, AltRE)

    def test_star_plus_opt(self):
        assert isinstance(parse_path_regex("Movie*"), StarRE)
        assert isinstance(parse_path_regex("Movie+"), PlusRE)
        assert isinstance(parse_path_regex("Movie?"), OptRE)

    def test_hash_is_any_star(self):
        node = parse_path_regex("#")
        assert isinstance(node, StarRE)
        assert isinstance(node.inner, AtomRE)
        assert node.inner.predicate == any_label()

    def test_underscore_is_any(self):
        node = parse_path_regex("_")
        assert node.predicate == any_label()

    def test_negation(self):
        node = parse_path_regex("!Movie")
        assert node.predicate == negated(exact("Movie"))

    def test_quoted_string(self):
        node = parse_path_regex('"Casablanca"')
        assert node.predicate == exact(string("Casablanca"))

    def test_quoted_glob(self):
        node = parse_path_regex('"%Casa%"')
        assert node.predicate == glob_string("%Casa%")

    def test_symbol_glob(self):
        node = parse_path_regex("act%")
        assert node.predicate == glob_symbol("act%")

    def test_numbers(self):
        assert parse_path_regex("42").predicate == exact(42)
        assert parse_path_regex("-3").predicate == exact(-3)
        assert parse_path_regex("2.5").predicate == exact(2.5)

    def test_type_tests(self):
        assert parse_path_regex("<int>").predicate == type_test(LabelKind.INT)
        assert parse_path_regex("<string>").predicate == type_test(LabelKind.STRING)

    def test_parens_and_precedence(self):
        # a.(b|c)* parses the star over the alternation
        node = parse_path_regex("a.(b|c)*")
        assert isinstance(node, ConcatRE)
        assert isinstance(node.right, StarRE)
        assert isinstance(node.right.inner, AltRE)

    def test_alternation_binds_looser_than_concat(self):
        node = parse_path_regex("a.b|c")
        assert isinstance(node, AltRE)
        assert isinstance(node.left, ConcatRE)

    def test_empty_parens_is_epsilon(self):
        assert isinstance(parse_path_regex("()"), EpsilonRE)

    def test_whitespace_tolerated(self):
        node = parse_path_regex(" Entry . Movie ")
        assert isinstance(node, ConcatRE)

    def test_escaped_quote_in_string(self):
        node = parse_path_regex(r'"say \"hi\""')
        assert node.predicate == exact(string('say "hi"'))

    @pytest.mark.parametrize(
        "bad",
        ["", "(", "a.", "a|", "!(a.b)", "<nope>", '"unterminated', "a)b", "&"],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(RegexSyntaxError):
            parse_path_regex(bad)

    def test_movie_example_from_paper(self):
        # "Allen below Movie without passing another Movie edge"
        node = parse_path_regex('Movie.(!Movie)*."Allen"')
        assert isinstance(node, ConcatRE)

    def test_atoms_enumeration(self):
        node = parse_path_regex("a.(b|c)*.d")
        atom_strs = sorted(str(p) for p in node.atoms())
        assert atom_strs == ["`a`", "`b`", "`c`", "`d`"]
