"""Tests for RPQ evaluation on graphs (the product construction)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.product import compile_rpq, naive_rpq, rpq_nodes, rpq_witnesses
from repro.core.builder import from_obj
from repro.core.graph import Graph
from repro.core.labels import string, sym


def movie_graph() -> Graph:
    return from_obj(
        {
            "Entry": [
                {"Movie": {"Title": "Casablanca", "Cast": ["Bogart", "Bacall"]}},
                {"Movie": {"Title": "Play it again, Sam", "Director": "Allen"}},
            ]
        }
    )


class TestRpqNodes:
    def test_fixed_path(self):
        g = movie_graph()
        hits = rpq_nodes(g, "Entry.Movie.Title")
        assert len(hits) == 2  # both title nodes

    def test_empty_pattern_matches_root(self):
        g = movie_graph()
        assert rpq_nodes(g, "()") == {g.root}

    def test_hash_reaches_everything(self):
        g = movie_graph()
        assert rpq_nodes(g, "#") == g.reachable()

    def test_find_string_anywhere(self):
        g = movie_graph()
        hits = rpq_nodes(g, '#."Casablanca"')
        assert len(hits) == 1

    def test_cyclic_graph_terminates(self):
        g = Graph()
        a, b = g.new_node(), g.new_node()
        g.set_root(a)
        g.add_edge(a, "next", b)
        g.add_edge(b, "next", a)
        hits = rpq_nodes(g, "next*")
        assert hits == {a, b}

    def test_negated_label_constraint(self):
        # Allen reachable below Movie without crossing another Movie edge.
        g = from_obj(
            {
                "Movie": {
                    "Cast": "Allen",
                    "Sequel": {"Movie": {"Cast": "Allen"}},
                }
            }
        )
        direct = rpq_nodes(g, 'Movie.(!Movie)*."Allen"')
        assert len(direct) == 1  # only the outer movie's Allen leaf

    def test_start_override(self):
        g = movie_graph()
        (entry_edge, *_) = g.edges_from(g.root)
        hits = rpq_nodes(g, "Movie.Title", start=entry_edge.dst)
        assert len(hits) == 1

    def test_alternation_over_attributes(self):
        g = movie_graph()
        hits = rpq_nodes(g, "Entry.Movie.(Cast|Director)")
        assert len(hits) == 3

    def test_compile_accepts_precompiled(self):
        dfa = compile_rpq("Entry.Movie")
        g = movie_graph()
        assert rpq_nodes(g, dfa) == rpq_nodes(g, "Entry.Movie")


class TestWitnesses:
    def test_witness_spells_matching_path(self):
        g = movie_graph()
        wit = rpq_witnesses(g, 'Entry.Movie.Title."Casablanca"')
        ((node, path),) = wit.items()
        spelled = [e.label for e in path]
        assert spelled == [
            sym("Entry"),
            sym("Movie"),
            sym("Title"),
            string("Casablanca"),
        ]
        assert path[-1].dst == node

    def test_witness_for_root_is_empty(self):
        g = movie_graph()
        assert rpq_witnesses(g, "#")[g.root] == ()

    def test_witness_is_shortest(self):
        g = Graph()
        r, mid, leaf = g.new_node(), g.new_node(), g.new_node()
        g.set_root(r)
        g.add_edge(r, "a", leaf)          # short way
        g.add_edge(r, "a", mid)
        g.add_edge(mid, "a", leaf)        # long way
        wit = rpq_witnesses(g, "a+")
        assert len(wit[leaf]) == 1

    def test_witness_on_cycle(self):
        g = Graph()
        a = g.new_node()
        g.set_root(a)
        g.add_edge(a, "loop", a)
        wit = rpq_witnesses(g, "loop.loop.loop")
        assert len(wit[a]) == 3


class TestNaiveBaseline:
    def test_agrees_with_product_on_trees(self):
        g = movie_graph()
        for pattern in ["Entry.Movie.Title", "#", "Entry._.Cast", "Entry.Movie.(Cast|Director)"]:
            assert naive_rpq(g, pattern, max_length=8) == rpq_nodes(g, pattern)

    def test_bounded_on_cycles(self):
        g = Graph()
        a = g.new_node()
        g.set_root(a)
        g.add_edge(a, "n", a)
        assert naive_rpq(g, "n*", max_length=5) == {a}

    def test_max_length_zero_checks_only_origin(self):
        g = movie_graph()
        assert naive_rpq(g, "()", max_length=0) == {g.root}
        assert naive_rpq(g, "Entry", max_length=0) == set()

    def test_deep_chain_does_not_recurse(self):
        """A 50k-deep chain: the explicit-stack DFS must not hit the
        interpreter recursion limit (the old implementation did)."""
        depth = 50_000
        g = Graph()
        head = g.new_node()
        g.set_root(head)
        cur = head
        for _ in range(depth):
            nxt = g.new_node()
            g.add_edge(cur, "next", nxt)
            cur = nxt
        hits = naive_rpq(g, "next*", max_length=depth)
        assert len(hits) == depth + 1
        assert hits == rpq_nodes(g, "next*")


@st.composite
def small_graphs(draw):
    n = draw(st.integers(2, 5))
    g = Graph()
    nodes = [g.new_node() for _ in range(n)]
    g.set_root(nodes[0])
    for _ in range(draw(st.integers(1, 7))):
        g.add_edge(
            draw(st.sampled_from(nodes)),
            draw(st.sampled_from("ab")),
            draw(st.sampled_from(nodes)),
        )
    return g


@given(
    small_graphs(),
    st.sampled_from(["a", "a.b", "a*", "(a|b)*", "a.b*", "#.a", "!a", "(a.b)+"]),
)
@settings(max_examples=120, deadline=None)
def test_prop_product_agrees_with_naive_up_to_bound(g, pattern):
    """On arbitrary small graphs the product matches naive enumeration,
    restricted to nodes whose shortest witness fits the naive bound."""
    bound = 6
    naive = naive_rpq(g, pattern, max_length=bound)
    product = rpq_nodes(g, pattern)
    # naive can only under-approximate (missing long witnesses)
    assert naive <= product
    witnesses = rpq_witnesses(g, pattern)
    for node, path in witnesses.items():
        if len(path) <= bound:
            assert node in naive
