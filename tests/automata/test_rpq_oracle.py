"""Randomized oracle: the product construction vs. naive path enumeration.

:func:`~repro.automata.product.naive_rpq` answers a regular path query by
enumerating label paths and testing each against the NFA -- slow, but
simple enough to trust.  Over seeded random graphs (cycles included) and
a pool of regex patterns, the product construction must agree with it:

* **soundness of the bound**: every node the naive evaluation finds
  within its length bound is in the product answer (always, for any
  bound);
* **exact agreement**: when the bound covers the longest *shortest*
  witness (computed from :func:`~repro.automata.product.rpq_witnesses`),
  the two answers are set-equal.

The graphs are small (<= 8 nodes, <= 12 edges) and the bound is capped,
so the exponential baseline stays fast; the seeds are fixed, so a failure
reproduces exactly.
"""

import random

import pytest

from repro.automata.product import naive_rpq, rpq_nodes, rpq_witnesses
from repro.core.graph import Graph

#: enumeration depth the naive baseline can afford on branchy graphs
MAX_BOUND = 12

PATTERNS = [
    "a",
    "a.b",
    "a|b",
    "a*",
    "(a|b)*",
    "a.(b|c)*",
    "(a.b)*.c",
    "_.a",
    "_*.c",
    "a?.b+",
    "(!a)*.c",
]


def random_graph(rng: random.Random) -> Graph:
    g = Graph()
    nodes = [g.new_node() for _ in range(rng.randint(1, 8))]
    g.set_root(nodes[0])
    for _ in range(rng.randint(0, 12)):
        g.add_edge(
            rng.choice(nodes), rng.choice(["a", "b", "c"]), rng.choice(nodes)
        )
    return g


@pytest.mark.parametrize("seed", range(40))
def test_product_agrees_with_naive_enumeration(seed):
    rng = random.Random(seed)
    graph = random_graph(rng)
    for pattern in PATTERNS:
        product = rpq_nodes(graph, pattern)
        witnesses = rpq_witnesses(graph, pattern)
        assert set(witnesses) == product  # witnesses cover exactly the answer
        longest = max((len(path) for path in witnesses.values()), default=0)
        if longest > MAX_BOUND:
            continue  # the baseline cannot afford this case; skip, don't weaken
        naive = naive_rpq(graph, pattern, max_length=max(longest, 1))
        assert naive == product, (
            f"seed={seed} pattern={pattern!r}: naive={sorted(naive)} "
            f"product={sorted(product)}"
        )


@pytest.mark.parametrize("seed", range(40, 60))
def test_naive_is_a_lower_bound_for_any_length(seed):
    rng = random.Random(seed)
    graph = random_graph(rng)
    pattern = rng.choice(PATTERNS)
    bound = rng.randint(0, 4)
    naive = naive_rpq(graph, pattern, max_length=bound)
    assert naive <= rpq_nodes(graph, pattern), (
        f"seed={seed} pattern={pattern!r} bound={bound}: naive found a node "
        "the product construction missed"
    )
