"""Concurrency stress for :class:`PlanCache`.

The server shares one cache between every worker task, and before the
lock landed a concurrent burst could corrupt the LRU ``OrderedDict``
mid-``move_to_end`` or lose counter increments (``Counter.inc`` is a
plain read-modify-write).  These tests hammer a small cache from many
threads and then audit the invariants the accounting is supposed to
keep: bounded size, exact hit+miss totals, a size gauge that matches
reality, and prunings that never outlive their plan entry.
"""

import threading

from repro.automata.plan_cache import PLAN_METRICS, PlanCache

THREADS = 8
ROUNDS = 400


def _hammer(cache: PlanCache, seed: int, patterns: "list[str]", errors: "list[BaseException]") -> None:
    try:
        state = seed
        for i in range(ROUNDS):
            state = (state * 1103515245 + 12345) % (1 << 31)  # per-thread LCG
            pattern = patterns[state % len(patterns)]
            plan, _hit = cache.lookup(pattern)
            assert plan is not None
            if i % 7 == 0:
                cache.store_pruning(pattern, snapshot_id=seed, mask=(seed, i))
                cache.pruning_for(pattern, snapshot_id=seed)
            if i % 13 == 0:
                cache.stats()
                len(cache)
                pattern in cache
    except BaseException as exc:  # pragma: no cover - only on regression
        errors.append(exc)


def test_many_threads_do_not_corrupt_lru_or_metrics() -> None:
    registry_name = "stress_cache"
    cache = PlanCache(capacity=16, name=registry_name)
    # More distinct patterns than capacity, so eviction churns constantly.
    patterns = [f"A{'.B' * (i % 5)}.L{i}" for i in range(48)]

    errors: "list[BaseException]" = []
    threads = [
        threading.Thread(target=_hammer, args=(cache, seed, patterns, errors))
        for seed in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert errors == []

    stats = cache.stats()
    # Bounded: never grew past capacity, and the gauge tells the truth.
    assert stats["size"] <= stats["capacity"] == 16
    assert stats["size"] == len(cache)
    assert PLAN_METRICS.gauge(f"{registry_name}_size").value == len(cache)
    # Exact accounting: every lookup was either a hit or a miss, and no
    # increment was lost to a read-modify-write race.
    assert stats["hits"] + stats["misses"] == THREADS * ROUNDS
    # Each eviction removed exactly one plan.
    assert stats["misses"] - stats["evictions"] == stats["size"]
    # The LRU survived: every cached plan still resolves as a hit.
    for pattern in list(cache._plans):
        _plan, hit = cache.lookup(pattern)
        assert hit


def test_concurrent_clear_is_safe() -> None:
    cache = PlanCache(capacity=8, name="stress_clear_cache")
    patterns = [f"X.Y{i}" for i in range(24)]
    stop = threading.Event()
    errors: "list[BaseException]" = []

    def churn() -> None:
        try:
            i = 0
            while not stop.is_set():
                cache.lookup(patterns[i % len(patterns)])
                i += 1
        except BaseException as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    def wipe() -> None:
        try:
            for _ in range(200):
                cache.clear()
        except BaseException as exc:  # pragma: no cover - only on regression
            errors.append(exc)

    workers = [threading.Thread(target=churn) for _ in range(4)]
    wiper = threading.Thread(target=wipe)
    for t in workers:
        t.start()
    wiper.start()
    wiper.join()
    stop.set()
    for t in workers:
        t.join()

    assert errors == []
    assert len(cache) <= 8
    # After a final clear the pruning table is empty too -- no leaks of
    # masks whose plan entry is gone.
    cache.clear()
    assert cache.stats()["prunings"] == 0


def test_reentrant_build_does_not_deadlock() -> None:
    """A ``build`` callback may consult the same cache (RLock contract)."""
    cache = PlanCache(capacity=4, name="stress_reentrant_cache")

    def build():
        inner, _ = cache.lookup("A.B")  # re-enters lookup under the lock
        assert inner is not None
        from repro.automata.dfa import LazyDfa
        from repro.automata.nfa import build_nfa
        from repro.automata.regex import parse_path_regex

        return LazyDfa(build_nfa(parse_path_regex("A.C")))

    plan, hit = cache.lookup("A.C", build)
    assert plan is not None and not hit
    assert "A.B" in cache and "A.C" in cache
