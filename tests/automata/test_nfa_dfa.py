"""Tests for Thompson NFAs and the lazy DFA, including equivalence props."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.dfa import LazyDfa
from repro.automata.nfa import build_nfa
from repro.automata.regex import (
    AltRE,
    AtomRE,
    ConcatRE,
    EpsilonRE,
    StarRE,
    exact,
    parse_path_regex,
)
from repro.core.labels import string, sym


def labels(*names: str):
    return [sym(n) for n in names]


def accepts(pattern: str, *names: str) -> bool:
    return build_nfa(parse_path_regex(pattern)).matches(labels(*names))


class TestNfaMatching:
    def test_single_atom(self):
        assert accepts("a", "a")
        assert not accepts("a", "b")
        assert not accepts("a")
        assert not accepts("a", "a", "a")

    def test_concat(self):
        assert accepts("a.b", "a", "b")
        assert not accepts("a.b", "b", "a")

    def test_alternation(self):
        assert accepts("a|b", "a")
        assert accepts("a|b", "b")
        assert not accepts("a|b", "c")

    def test_star(self):
        assert accepts("a*")
        assert accepts("a*", "a", "a", "a")
        assert not accepts("a*", "b")

    def test_plus(self):
        assert not accepts("a+")
        assert accepts("a+", "a")
        assert accepts("a+", "a", "a")

    def test_opt(self):
        assert accepts("a?")
        assert accepts("a?", "a")
        assert not accepts("a?", "a", "a")

    def test_hash_matches_anything(self):
        assert accepts("#")
        assert accepts("#", "x", "y", "z")

    def test_negation_constrains_path(self):
        # The paper's example: below Movie, reach Allen without another Movie.
        pattern = 'Movie.(!Movie)*."Allen"'
        nfa = build_nfa(parse_path_regex(pattern))
        ok = [sym("Movie"), sym("Cast"), string("Allen")]
        bad = [sym("Movie"), sym("Movie"), string("Allen")]
        assert nfa.matches(ok)
        assert not nfa.matches(bad)

    def test_epsilon_regex(self):
        assert accepts("()")
        assert not accepts("()", "a")

    def test_string_vs_symbol(self):
        nfa = build_nfa(parse_path_regex('"Allen"'))
        assert nfa.matches([string("Allen")])
        assert not nfa.matches([sym("Allen")])

    def test_complex_nesting(self):
        assert accepts("(a.b)*.c", "c")
        assert accepts("(a.b)*.c", "a", "b", "c")
        assert accepts("(a.b)*.c", "a", "b", "a", "b", "c")
        assert not accepts("(a.b)*.c", "a", "c")


class TestLazyDfa:
    def test_dfa_agrees_on_basics(self):
        dfa = LazyDfa(build_nfa(parse_path_regex("a.b|c*")))
        assert dfa.matches(labels("a", "b"))
        assert dfa.matches(labels())
        assert dfa.matches(labels("c", "c"))
        assert not dfa.matches(labels("a"))

    def test_dead_state_detected(self):
        dfa = LazyDfa(build_nfa(parse_path_regex("a")))
        state = dfa.step(dfa.start, sym("z"))
        assert dfa.is_dead(state)

    def test_states_materialize_lazily(self):
        dfa = LazyDfa(build_nfa(parse_path_regex("a.b.c.d")))
        before = dfa.num_materialized_states
        dfa.matches(labels("a", "b", "c", "d"))
        assert dfa.num_materialized_states > before

    def test_truth_vector_memoized_across_runs(self):
        dfa = LazyDfa(build_nfa(parse_path_regex("a*.b")))
        assert dfa.matches(labels("a", "a", "b"))
        n = dfa.num_materialized_states
        assert dfa.matches(labels("a", "b"))
        assert dfa.num_materialized_states == n  # nothing new needed


# ---------------------------------------------------------------------------
# Property: NFA and DFA accept the same language (sampled).


@st.composite
def regexes(draw, depth: int = 3):
    if depth == 0:
        return AtomRE(exact(draw(st.sampled_from("ab"))))
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return AtomRE(exact(draw(st.sampled_from("ab"))))
    if kind == 1:
        return EpsilonRE()
    if kind == 2:
        return ConcatRE(draw(regexes(depth=depth - 1)), draw(regexes(depth=depth - 1)))
    if kind == 3:
        return AltRE(draw(regexes(depth=depth - 1)), draw(regexes(depth=depth - 1)))
    return StarRE(draw(regexes(depth=depth - 1)))


@given(regexes(), st.lists(st.sampled_from("ab"), max_size=6))
@settings(max_examples=150, deadline=None)
def test_prop_nfa_dfa_equivalent(regex, word):
    nfa = build_nfa(regex)
    dfa = LazyDfa(nfa)
    seq = labels(*word)
    assert nfa.matches(seq) == dfa.matches(seq)


@given(regexes(), st.lists(st.sampled_from("ab"), max_size=6))
@settings(max_examples=100, deadline=None)
def test_prop_star_of_regex_accepts_repetitions(regex, word):
    starred = build_nfa(StarRE(regex))
    base = build_nfa(regex)
    seq = labels(*word)
    if base.matches(seq):
        assert starred.matches(seq)
        assert starred.matches(seq + seq)
    assert starred.matches([])
