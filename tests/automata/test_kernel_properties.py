"""Property tests for the fast-path kernel: frozen snapshots, plan
caching, and batched multi-source evaluation must be *observationally
identical* to the plain dict-of-lists paths they accelerate.

Three families, each over arbitrary small graphs and a pattern sample
that exercises every DFA guard shape (exact labels, alternation,
closures, wildcard ``#``, negation ``!a`` -- the last two force the
pruned traversal onto its full-scan fallback):

* freeze round-trip: every public RPQ entry point agrees between a
  ``Graph`` and its :meth:`~repro.core.graph.Graph.freeze` snapshot,
  including the exact profiled operation counts;
* batched-vs-looped: ``rpq_nodes_many`` equals one ``rpq_nodes`` call
  per source, on both layouts;
* plan-cache hot-vs-cold: answers are independent of whether the plan
  came from a cache hit, a cache miss, or a fresh compile.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.plan_cache import PlanCache
from repro.automata.product import (
    rpq_nodes,
    rpq_nodes_many,
    rpq_nodes_profiled,
    rpq_witnesses,
    rpq_witnesses_profiled,
)
from repro.core.graph import Graph
from repro.obs.metrics import MetricsRegistry

#: Every guard shape the pruned product kernel must handle: exact labels
#: (prunable), alternation/closure mixes, and the non-exact guards
#: (``#``, ``_``, ``!a``) that force the full-scan fallback.
PATTERNS = [
    "a",
    "a.b",
    "a*",
    "(a|b)*",
    "a.b*",
    "#.a",
    "_.b",
    "!a",
    "(a.b)+",
    "a.(!b)*.a",
]


@st.composite
def small_graphs(draw):
    n = draw(st.integers(2, 6))
    g = Graph()
    nodes = [g.new_node() for _ in range(n)]
    g.set_root(nodes[0])
    for _ in range(draw(st.integers(1, 10))):
        g.add_edge(
            draw(st.sampled_from(nodes)),
            draw(st.sampled_from("abc")),
            draw(st.sampled_from(nodes)),
        )
    return g


@given(small_graphs(), st.sampled_from(PATTERNS))
@settings(max_examples=150, deadline=None)
def test_prop_freeze_round_trip_agreement(g, pattern):
    fg = g.freeze()
    assert rpq_nodes(fg, pattern) == rpq_nodes(g, pattern)
    assert rpq_witnesses(fg, pattern) == rpq_witnesses(g, pattern)
    assert fg.reachable() == g.reachable()


@given(small_graphs(), st.sampled_from(PATTERNS))
@settings(max_examples=100, deadline=None)
def test_prop_freeze_preserves_profiled_counts(g, pattern):
    """The pruned kernel may skip edges only when a full scan would have
    stepped them into the dead state -- so every operation count the
    profile reports must match the dict-of-lists traversal exactly."""
    dict_nodes, dict_profile = rpq_nodes_profiled(g, pattern)
    frozen_nodes, frozen_profile = rpq_nodes_profiled(g.freeze(), pattern)
    assert frozen_nodes == dict_nodes
    assert frozen_profile.as_dict() == dict_profile.as_dict()
    dict_wit, dict_wprof = rpq_witnesses_profiled(g, pattern)
    frozen_wit, frozen_wprof = rpq_witnesses_profiled(g.freeze(), pattern)
    assert frozen_wit == dict_wit
    assert frozen_wprof.as_dict() == dict_wprof.as_dict()


@given(small_graphs(), st.sampled_from(PATTERNS))
@settings(max_examples=100, deadline=None)
def test_prop_batched_equals_looped(g, pattern):
    sources = list(g.nodes())
    looped = {src: rpq_nodes(g, pattern, start=src) for src in sources}
    assert rpq_nodes_many(g, pattern, sources) == looped
    assert rpq_nodes_many(g.freeze(), pattern, sources) == looped


@given(small_graphs(), st.sampled_from(PATTERNS))
@settings(max_examples=100, deadline=None)
def test_prop_batched_dedupes_sources(g, pattern):
    src = g.root
    many = rpq_nodes_many(g, pattern, [src, src, src])
    assert many == {src: rpq_nodes(g, pattern, start=src)}


@given(small_graphs(), st.sampled_from(PATTERNS))
@settings(max_examples=100, deadline=None)
def test_prop_plan_cache_hot_equals_cold(g, pattern):
    cache = PlanCache(registry=MetricsRegistry())
    fresh = rpq_nodes(g, pattern)
    cold = rpq_nodes(g, pattern, plan_cache=cache)
    hot = rpq_nodes(g, pattern, plan_cache=cache)
    assert fresh == cold == hot
    # the cached plan serves the frozen layout too
    assert rpq_nodes(g.freeze(), pattern, plan_cache=cache) == fresh


@given(small_graphs(), st.sampled_from(PATTERNS))
@settings(max_examples=60, deadline=None)
def test_prop_shared_plan_across_graphs(g, pattern):
    """One cached plan serves many graphs: the LazyDfa memo tables only
    grow, so earlier queries can never change a later answer."""
    cache = PlanCache(registry=MetricsRegistry())
    other = Graph()
    r = other.new_node()
    other.set_root(r)
    other.add_edge(r, "a", other.new_node())
    first = rpq_nodes(other, pattern, plan_cache=cache)
    assert rpq_nodes(g, pattern, plan_cache=cache) == rpq_nodes(g, pattern)
    assert rpq_nodes(other, pattern, plan_cache=cache) == first
