"""Tests for the bounded LRU plan cache and its metrics accounting."""

import pytest

from repro.automata.dfa import LazyDfa
from repro.automata.nfa import build_nfa
from repro.automata.plan_cache import DEFAULT_PLAN_CACHE, PlanCache, cached_compile
from repro.automata.product import rpq_nodes, rpq_nodes_profiled
from repro.automata.regex import parse_path_regex
from repro.core.builder import from_obj
from repro.obs.metrics import MetricsRegistry


def movie_graph():
    return from_obj(
        {
            "Entry": [
                {"Movie": {"Title": "Casablanca", "Year": 1942}},
                {"Movie": {"Title": "Play it again, Sam", "Director": "Allen"}},
            ]
        }
    )


class TestLookup:
    def test_miss_then_hit_returns_same_plan(self):
        cache = PlanCache(registry=MetricsRegistry())
        plan, hit = cache.lookup("Entry.Movie")
        assert not hit
        again, hit2 = cache.lookup("Entry.Movie")
        assert hit2
        assert again is plan

    def test_get_is_lookup_without_flag(self):
        cache = PlanCache(registry=MetricsRegistry())
        assert cache.get("a.b") is cache.get("a.b")

    def test_build_callback_used_on_miss_only(self):
        cache = PlanCache(registry=MetricsRegistry())
        calls = []

        def build():
            calls.append(1)
            return LazyDfa(build_nfa(parse_path_regex("a|b")))

        plan = cache.get("custom-key", build)
        assert cache.get("custom-key", build) is plan
        assert len(calls) == 1

    def test_contains_and_len(self):
        cache = PlanCache(registry=MetricsRegistry())
        assert "x" not in cache
        cache.get("x")
        assert "x" in cache
        assert len(cache) == 1

    def test_cached_plan_answers_like_fresh_compile(self):
        g = movie_graph()
        cache = PlanCache(registry=MetricsRegistry())
        cold = rpq_nodes(g, "Entry.Movie.Title", plan_cache=cache)
        hot = rpq_nodes(g, "Entry.Movie.Title", plan_cache=cache)
        assert cold == hot == rpq_nodes(g, "Entry.Movie.Title")


class TestEviction:
    def test_lru_evicts_oldest_past_capacity(self):
        cache = PlanCache(capacity=2, registry=MetricsRegistry())
        cache.get("a")
        cache.get("b")
        cache.get("c")
        assert "a" not in cache
        assert "b" in cache and "c" in cache

    def test_hit_refreshes_recency(self):
        cache = PlanCache(capacity=2, registry=MetricsRegistry())
        cache.get("a")
        cache.get("b")
        cache.get("a")  # a is now most recent
        cache.get("c")  # evicts b, not a
        assert "a" in cache
        assert "b" not in cache

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0, registry=MetricsRegistry())

    def test_clear_keeps_counter_history(self):
        cache = PlanCache(registry=MetricsRegistry())
        cache.get("a")
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["size"] == 0
        assert stats["hits"] == 1
        assert stats["misses"] == 1


class TestMetrics:
    def test_counters_and_size_gauge(self):
        registry = MetricsRegistry()
        cache = PlanCache(capacity=2, name="t", registry=registry)
        cache.get("a")
        cache.get("a")
        cache.get("b")
        cache.get("c")  # evicts a
        snapshot = registry.as_dict()
        assert snapshot["t_hits"] == 1
        assert snapshot["t_misses"] == 3
        assert snapshot["t_evictions"] == 1
        assert snapshot["t_size"] == 2

    def test_stats_snapshot(self):
        cache = PlanCache(capacity=3, name="s", registry=MetricsRegistry())
        cache.get("a")
        assert cache.stats() == {
            "capacity": 3,
            "size": 1,
            "hits": 0,
            "misses": 1,
            "evictions": 0,
            "prunings": 0,
        }


class TestProfiledAccounting:
    def test_cold_run_charges_all_states_hot_run_charges_none(self):
        """A hit hands back a plan whose states earlier queries paid for,
        so the second identical profiled run reports dfa_states == 0."""
        g = movie_graph()
        cache = PlanCache(registry=MetricsRegistry())
        cold_nodes, cold_profile = rpq_nodes_profiled(
            g, "Entry.Movie.Title", plan_cache=cache
        )
        assert cold_profile.as_dict()["dfa_states"] > 0
        hot_nodes, hot_profile = rpq_nodes_profiled(
            g, "Entry.Movie.Title", plan_cache=cache
        )
        assert hot_nodes == cold_nodes
        assert hot_profile.as_dict()["dfa_states"] == 0
        # everything else about the traversal is identical
        cold_counts = cold_profile.as_dict()
        hot_counts = hot_profile.as_dict()
        for key in ("nodes_visited", "edges_expanded", "product_pairs"):
            assert cold_counts[key] == hot_counts[key]

    def test_uncached_profiled_runs_report_identically(self):
        g = movie_graph()
        _, first = rpq_nodes_profiled(g, "Entry.Movie.Title")
        _, second = rpq_nodes_profiled(g, "Entry.Movie.Title")
        assert first.as_dict() == second.as_dict()


def test_cached_compile_uses_default_cache():
    plan = cached_compile("ZZZ.test.pattern")
    assert "ZZZ.test.pattern" in DEFAULT_PLAN_CACHE
    assert cached_compile("ZZZ.test.pattern") is plan
