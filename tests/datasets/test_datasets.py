"""Tests for the dataset generators, including Figure 1's exact structure."""

import pytest

from repro.automata.product import rpq_nodes
from repro.browse import find_value
from repro.core.labels import real, string, sym
from repro.datasets import (
    acedb_schema,
    figure1,
    generate_acedb,
    generate_catalog,
    generate_movies,
    generate_web,
    random_algebra_term,
)
from repro.relational.algebra import evaluate


class TestFigure1:
    def test_three_entries(self):
        g = figure1()
        entries = [e for e in g.edges_from(g.root) if e.label == sym("Entry")]
        assert len(entries) == 3

    def test_two_movies_one_show(self):
        g = figure1()
        assert len(rpq_nodes(g, "Entry.Movie")) == 2
        assert len(rpq_nodes(g, "Entry.`TV Show`")) == 1

    def test_both_cast_representations(self):
        g = figure1()
        # representation A: Cast directly holds actor strings
        direct = rpq_nodes(g, 'Entry.Movie.Cast."Bogart"')
        assert direct
        # representation B: Cast -> Credit/Actors
        indirect = rpq_nodes(g, 'Entry.Movie.Cast.Actors."Allen"')
        assert indirect

    def test_the_egregious_error_is_present(self):
        assert find_value(figure1(), "Bacall")

    def test_credit_value(self):
        g = figure1()
        hits = [
            e
            for e in g.edges()
            if e.label == real(1.2e6)
        ]
        assert len(hits) == 1

    def test_episode_array_integer_labels(self):
        g = figure1()
        episodes = rpq_nodes(g, "Entry.`TV Show`.Episode")
        (ep,) = episodes
        labels = sorted(e.label.value for e in g.edges_from(ep))
        assert labels == [1, 2, 3]

    def test_reference_cycle(self):
        g = figure1()
        assert g.has_cycle()
        # following References then "Is referenced in" returns to the start
        back = rpq_nodes(g, "Entry.Movie.References.`Is referenced in`")
        assert back == rpq_nodes(g, "Entry.Movie.References.`Is referenced in`.References.`Is referenced in`")

    def test_allen_directed_and_acted(self):
        g = figure1()
        assert rpq_nodes(g, 'Entry.Movie.Director."Allen"')
        assert rpq_nodes(g, 'Entry.Movie.Cast.Actors."Allen"')


class TestGenerateMovies:
    def test_deterministic(self):
        from repro.core.bisim import bisimilar

        assert bisimilar(generate_movies(20, seed=5), generate_movies(20, seed=5))

    def test_entry_count(self):
        g = generate_movies(30, seed=1)
        entries = [e for e in g.edges_from(g.root) if e.label == sym("Entry")]
        assert len(entries) == 30

    def test_heterogeneous_casts(self):
        g = generate_movies(60, seed=2)
        direct = rpq_nodes(g, "Entry.Movie.Cast.<string>")
        indirect = rpq_nodes(g, "Entry.Movie.Cast.Actors")
        assert direct and indirect  # both representations occur

    def test_cycles_from_references(self):
        g = generate_movies(80, seed=3, reference_fraction=0.5)
        assert g.has_cycle()

    def test_titles_found_by_browsing(self):
        g = generate_movies(10, seed=4)
        titles = rpq_nodes(g, "Entry._.Title.<string>")
        assert titles


class TestGenerateWeb:
    def test_all_pages_reachable(self):
        g = generate_web(50, seed=1)
        pages = rpq_nodes(g, "link*")
        # every page node is link-reachable from the home page
        urls = rpq_nodes(g, "link*.url")
        assert len(urls) == 50

    def test_cyclic(self):
        assert generate_web(40, seed=2).has_cycle()

    def test_deterministic(self):
        from repro.core.bisim import bisimilar

        assert bisimilar(generate_web(15, seed=9), generate_web(15, seed=9))

    def test_keyword_text_present(self):
        g = generate_web(30, seed=3)
        assert rpq_nodes(g, "link*.keyword.<string>")

    def test_validates_args(self):
        with pytest.raises(ValueError):
            generate_web(0)


class TestGenerateAcedb:
    def test_conforms_to_loose_schema(self):
        g = generate_acedb(25, seed=1)
        assert acedb_schema().conforms(g)

    def test_arbitrary_depth_trees(self):
        g = generate_acedb(60, seed=2, max_depth=10)
        deep = rpq_nodes(g, "Locus.Clone.Contains.Contains.Contains")
        assert deep  # depth beyond any fixed schema

    def test_loose_attributes(self):
        g = generate_acedb(40, seed=3)
        loci = rpq_nodes(g, "Locus")
        with_ref = rpq_nodes(g, "Locus.Reference")
        assert 0 < len(with_ref) < len(loci)  # only some have references

    def test_shared_map_nodes(self):
        g = generate_acedb(40, seed=4)
        maps_via_locus = rpq_nodes(g, "Locus.Maps_to")
        maps_direct = rpq_nodes(g, "Map")
        assert maps_via_locus <= maps_direct  # Maps_to shares the Map nodes

    def test_validates_args(self):
        with pytest.raises(ValueError):
            generate_acedb(0)


class TestRelationalGenerators:
    def test_catalog_shapes(self):
        catalog = generate_catalog(20, 10, seed=1)
        assert set(catalog) == {"Movies", "Casts", "Directors"}
        assert len(catalog["Movies"]) == 20
        assert catalog["Casts"].schema == ("title", "actor")

    def test_random_terms_evaluate(self):
        catalog = generate_catalog(15, 8, seed=2)
        for seed in range(10):
            term = random_algebra_term(catalog, seed=seed)
            result = evaluate(term, catalog)  # must not raise
            assert result.schema

    def test_terms_deterministic(self):
        catalog = generate_catalog(10, 5, seed=0)
        assert random_algebra_term(catalog, seed=7) == random_algebra_term(
            catalog, seed=7
        )
