"""The streaming crawl generator: determinism, shape, and equivalence.

``stream_crawl_edges`` exists so E17 can build multi-million-edge
snapshots without a graph object; these tests pin what that shortcut
must preserve: the stream is a pure function of its parameters, it is
legal ``from_edge_stream`` input (source-nondecreasing), and freezing
the stream directly is byte-identical to loading it into a
:class:`~repro.core.graph.Graph` and freezing that.
"""

from repro.automata import rpq_nodes
from repro.core.graph import Graph
from repro.datasets import generate_crawl, stream_crawl_edges

N = 3000


def test_stream_is_deterministic():
    a = list(stream_crawl_edges(N, seed=7))
    b = list(stream_crawl_edges(N, seed=7))
    assert a == b


def test_different_seeds_differ():
    assert list(stream_crawl_edges(N, seed=1)) != list(stream_crawl_edges(N, seed=2))


def test_stream_is_source_nondecreasing():
    last = -1
    for src, _label, dst in stream_crawl_edges(N, seed=3):
        assert src >= last
        assert 0 <= dst < N
        last = src


def test_labels_are_the_documented_three():
    labels = {label for _s, label, _d in stream_crawl_edges(N, seed=5)}
    assert labels <= {"link", "ref", "cite"}
    assert "link" in labels  # chains alone guarantee link edges


def test_frozen_stream_equals_frozen_graph():
    edges = list(stream_crawl_edges(N, seed=11))
    fg = generate_crawl(N, seed=11)
    g = Graph()
    for _ in range(N):
        g.new_node()
    g.set_root(0)
    for src, label, dst in edges:
        g.add_edge(src, label, dst)
    via_graph = g.freeze()
    assert list(fg.offsets) == list(via_graph.offsets)
    assert list(fg.targets) == list(via_graph.targets)
    assert list(fg.label_ids) == list(via_graph.label_ids)
    assert fg.labels_seq == via_graph.labels_seq
    assert fg.root == via_graph.root == 0


def test_every_page_reachable_from_the_hub():
    fg = generate_crawl(N, seed=13)
    assert len(rpq_nodes(fg, "_*")) == N


def test_edge_count_tracks_mean_degree():
    fg = generate_crawl(N, seed=17, mean_extra_degree=2.0)
    # one chain edge per non-entry page + hub fan-out + power-law extras:
    # the mean must land near (1 + mean_extra_degree) per page
    per_page = fg.num_edges / N
    assert 1.5 < per_page < 4.5


def test_local_fraction_controls_cross_host_labels():
    local = sum(
        1 for _s, label, _d in stream_crawl_edges(N, seed=19, local_fraction=1.0)
        if label != "link"
    )
    mixed = sum(
        1 for _s, label, _d in stream_crawl_edges(N, seed=19, local_fraction=0.3)
        if label != "link"
    )
    assert local == 0  # fully local crawls never emit ref/cite
    assert mixed > 0
