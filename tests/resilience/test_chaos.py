"""Chaos suite: queries under injected failures (the acceptance tests).

Two regimes, both driven by a seeded :class:`FaultInjector` so every run
replays the same failure schedule:

* **transient noise** (30% per-contact failure): retries must make every
  E1 browsing query and E2 path query over external data come out
  *exact* -- same answer as the fault-free run, ``complete=True``;
* **permanent outage**: the answer degrades to a sound lower bound, the
  :class:`Completeness` report names exactly what was lost, and the
  circuit breaker stops contacting the dead dependency after its
  documented trip threshold.
"""

import pytest

from repro.automata.product import rpq_nodes, rpq_nodes_partial
from repro.browse import (
    find_attribute_names_partial,
    find_integers_greater_than_partial,
    find_value_partial,
)
from repro.core.builder import from_obj
from repro.core.graph import Graph
from repro.distributed import distributed_rpq, distributed_rpq_resilient, partition_graph
from repro.resilience import (
    CircuitBreaker,
    EventLog,
    FaultInjector,
    RetryPolicy,
    SimulatedClock,
)
from repro.storage.external import ExternalGraph

NUM_REGIONS = 6


def build_base() -> Graph:
    """A catalog whose per-movie detail pages live externally."""
    g = from_obj({"Entry": [{"Id": i} for i in range(NUM_REGIONS)]})
    entries = sorted(rpq_nodes(g, "Entry"))
    for i, node in enumerate(entries):
        detail = g.new_node()
        g.add_edge(node, "Detail", detail)
        ExternalGraph.add_stub(g, detail, f"page-{i}")
    return g


def fetch_page(key: str) -> Graph:
    i = int(key.rsplit("-", 1)[1])
    return from_obj({"Movie": {"Title": f"T{i}", "Year": 1900 + i}})


def chaotic_external(
    *,
    seed: int = 7,
    fail_rate: float = 0.3,
    outages=(),
    max_attempts: int = 6,
    threshold: int = 8,
    on_failure: str = "partial",
):
    # the default breaker threshold sits above max_attempts: transient
    # noise inside one fetch's retry budget must not trip it; outage
    # tests pass a tighter threshold explicitly
    clock = SimulatedClock()
    events = EventLog(clock)
    injector = FaultInjector(
        seed=seed, fail_rate=fail_rate, outages=outages, clock=clock
    )
    ext = ExternalGraph(
        build_base(),
        injector.wrap_fetcher(fetch_page),
        policy=RetryPolicy(max_attempts=max_attempts, base_delay=0.01),
        breaker=CircuitBreaker(threshold, 1000.0, clock=clock, events=events),
        on_failure=on_failure,
        clock=clock,
        events=events,
    )
    return ext, injector, events


def calm_external():
    """The fault-free oracle: same data, nothing injected."""
    return ExternalGraph(build_base(), fetch_page)


class TestTransientFailures:
    """30% injected failure per fetch: retries make every answer exact."""

    def test_e2_rpq_exact_under_noise(self):
        ext, injector, _ = chaotic_external()
        result = rpq_nodes_partial(ext, "Entry.Detail.Movie.Title")
        assert result.exact
        assert result.completeness.complete
        # node allocation is deterministic, so the answer sets are equal
        assert result.value == rpq_nodes(calm_external(), "Entry.Detail.Movie.Title")
        assert len(result.value) == NUM_REGIONS
        # noise actually happened and retries actually absorbed it
        assert injector.total_calls > ext.fetch_count
        assert result.completeness.retries > 0

    def test_e1_find_value_exact_under_noise(self):
        ext, _, _ = chaotic_external()
        result = find_value_partial(ext, "T3")
        assert result.exact
        assert [str(f) for f in result.value] == [
            str(f) for f in find_value_partial(calm_external(), "T3").value
        ]

    def test_e1_integers_exact_under_noise(self):
        ext, _, _ = chaotic_external()
        result = find_integers_greater_than_partial(ext, 1902)
        assert result.exact
        calm = find_integers_greater_than_partial(calm_external(), 1902)
        assert [str(f) for f in result.value] == [str(f) for f in calm.value]
        assert len(result.value) == 3  # years 1903..1905

    def test_e1_attribute_names_exact_under_noise(self):
        ext, _, _ = chaotic_external()
        result = find_attribute_names_partial(ext, "Tit%")
        assert result.exact
        assert len(result.value) == NUM_REGIONS

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_exactness_across_seeds(self, seed):
        """No lucky seed: several schedules, all absorbed by retries."""
        ext, _, _ = chaotic_external(seed=seed)
        result = rpq_nodes_partial(ext, "Entry.Detail.Movie.Year")
        assert result.exact
        assert len(result.value) == NUM_REGIONS

    def test_distributed_exact_under_noise(self):
        g = build_base()  # any plain graph works for the distributed engine
        dist = partition_graph(g, 4)
        injector = FaultInjector(seed=11, fail_rate=0.3)
        results, _, report = distributed_rpq_resilient(
            dist,
            "Entry.Id",
            injector=injector,
            policy=RetryPolicy(max_attempts=6, base_delay=0.01),
        )
        assert report.complete
        baseline, _ = distributed_rpq(dist, "Entry.Id")
        assert results == baseline


class TestPermanentOutage:
    """A dead dependency: partial answer, named loss, bounded contact."""

    def test_partial_answer_names_the_lost_region(self):
        ext, _, _ = chaotic_external(fail_rate=0.0, outages={"page-2"})
        result = rpq_nodes_partial(ext, "Entry.Detail.Movie.Title")
        report = result.completeness
        assert not result.exact
        assert report.is_lower_bound
        assert report.failed_keys() == {"page-2"}
        assert report.lost == 1
        # everything else still answered: a lower bound, not a crash
        assert len(result.value) == NUM_REGIONS - 1

    def test_describe_is_presentable(self):
        ext, _, _ = chaotic_external(fail_rate=0.0, outages={"page-2"})
        ext.reachable()
        text = ext.completeness().describe()
        assert "PARTIAL" in text and "page-2" in text

    def test_breaker_bounds_contact_with_dead_source(self):
        """The documented trip bound: threshold contacts, then silence."""
        threshold = 3
        ext, injector, events = chaotic_external(
            fail_rate=0.0,
            outages={"page-1"},
            max_attempts=10,  # retry budget far beyond the breaker's patience
            threshold=threshold,
        )
        ext.reachable()
        assert injector.calls("page-1") == threshold
        assert events.count("trip") == 1
        # asking again short-circuits: the dead source is never re-contacted
        ext.retry_failed()
        ext.reachable()
        assert injector.calls("page-1") == threshold
        record = ext.completeness().failures[0]
        assert record.attempts == 0  # the breaker blocked before any attempt
        assert "CircuitOpenError" in record.error

    def test_fail_fast_mode_raises_instead(self):
        ext, _, _ = chaotic_external(
            fail_rate=0.0, outages={"page-0"}, on_failure="raise"
        )
        from repro.resilience import RetriesExhausted

        with pytest.raises(RetriesExhausted):
            ext.reachable()

    def test_noise_plus_outage_compose(self):
        """30% noise on live regions, one region dead: exactly one loss."""
        ext, _, _ = chaotic_external(seed=13, fail_rate=0.3, outages={"page-4"})
        result = rpq_nodes_partial(ext, "Entry.Detail.Movie.Title")
        assert result.completeness.failed_keys() == {"page-4"}
        assert len(result.value) == NUM_REGIONS - 1

    def test_recovery_after_outage_ends(self):
        """retry_failed + a healed source turn a partial answer exact."""
        ext, injector, _ = chaotic_external(fail_rate=0.0, outages={"page-5"})
        ext.reachable()
        assert not ext.completeness().complete
        injector.outages = frozenset()  # the outage ends
        injector.clock.sleep(1000.0)  # breaker cooldown elapses -> half-open
        assert ext.retry_failed() == 1
        ext.reachable()
        report = ext.completeness()
        assert report.complete
        assert report.succeeded == NUM_REGIONS


class TestDistributedOutage:
    def test_single_dead_site_partial_with_trip_bound(self):
        g = build_base()
        dist = partition_graph(g, 4)
        threshold = 3
        injector = FaultInjector(seed=0, outages={"site:1"})
        results, _, report = distributed_rpq_resilient(
            dist,
            "Entry.Id.#",
            injector=injector,
            policy=RetryPolicy(max_attempts=10, base_delay=0.01),
            failure_threshold=threshold,
        )
        assert not report.complete
        assert report.failed_keys() == {"site:1"}
        assert injector.calls("site:1") == threshold
        # sound lower bound: evaluating the amputated graph agrees
        assert results == rpq_nodes(dist.without_sites({1}), "Entry.Id.#")
