"""Unit tests for the deterministic fault injector."""

import pytest

from repro.resilience import FaultInjector, InjectedFault, SimulatedClock


def outcomes(injector, key, n):
    """The pass/fail sequence of the first ``n`` contacts with ``key``."""
    out = []
    for _ in range(n):
        try:
            injector.check(key)
            out.append("ok")
        except InjectedFault:
            out.append("fail")
    return out


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = FaultInjector(seed=42, fail_rate=0.5)
        b = FaultInjector(seed=42, fail_rate=0.5)
        assert outcomes(a, "page", 50) == outcomes(b, "page", 50)

    def test_different_seeds_differ(self):
        a = FaultInjector(seed=1, fail_rate=0.5)
        b = FaultInjector(seed=2, fail_rate=0.5)
        assert outcomes(a, "page", 50) != outcomes(b, "page", 50)

    def test_keys_have_independent_schedules(self):
        inj = FaultInjector(seed=3, fail_rate=0.5)
        assert outcomes(inj, "page-a", 50) != outcomes(inj, "page-b", 50)


class TestSchedules:
    def test_zero_rate_never_fails(self):
        inj = FaultInjector(seed=0, fail_rate=0.0)
        assert outcomes(inj, "page", 30) == ["ok"] * 30

    def test_full_rate_always_fails(self):
        inj = FaultInjector(seed=0, fail_rate=1.0)
        assert outcomes(inj, "page", 30) == ["fail"] * 30

    def test_fail_rate_is_roughly_honored(self):
        inj = FaultInjector(seed=9, fail_rate=0.3)
        seq = outcomes(inj, "page", 500)
        rate = seq.count("fail") / len(seq)
        assert 0.2 < rate < 0.4

    def test_outage_is_permanent(self):
        inj = FaultInjector(outages={"dead"})
        assert outcomes(inj, "dead", 10) == ["fail"] * 10
        assert outcomes(inj, "alive", 3) == ["ok"] * 3

    def test_flaky_then_succeed(self):
        inj = FaultInjector(flaky={"warming-up": 3})
        assert outcomes(inj, "warming-up", 6) == ["fail"] * 3 + ["ok"] * 3

    def test_call_counting(self):
        inj = FaultInjector(outages={"dead"})
        outcomes(inj, "dead", 4)
        outcomes(inj, "alive", 2)
        assert inj.calls("dead") == 4
        assert inj.calls("alive") == 2
        assert inj.calls("never") == 0
        assert inj.total_calls == 6


class TestLatency:
    def test_latency_accrues_on_simulated_clock(self):
        clock = SimulatedClock()
        inj = FaultInjector(latency=0.2, clock=clock)
        outcomes(inj, "slow", 5)
        assert clock.slept == pytest.approx(1.0)

    def test_latency_jitter_bounded_and_deterministic(self):
        clock = SimulatedClock()
        inj = FaultInjector(seed=5, latency=0.2, latency_jitter=0.1, clock=clock)
        outcomes(inj, "slow", 10)
        assert 1.0 <= clock.slept <= 3.0
        clock2 = SimulatedClock()
        inj2 = FaultInjector(seed=5, latency=0.2, latency_jitter=0.1, clock=clock2)
        outcomes(inj2, "slow", 10)
        assert clock2.slept == clock.slept

    def test_failures_still_cost_latency(self):
        clock = SimulatedClock()
        inj = FaultInjector(latency=0.5, outages={"dead"}, clock=clock)
        outcomes(inj, "dead", 2)
        assert clock.slept == pytest.approx(1.0)


class TestWrapping:
    def test_wrap_fetcher(self):
        inj = FaultInjector(flaky={"k": 1})
        fetched = []

        def fetcher(key):
            fetched.append(key)
            return f"<{key}>"

        guarded = inj.wrap_fetcher(fetcher)
        with pytest.raises(InjectedFault):
            guarded("k")
        assert fetched == []  # the fault fires before the real fetch
        assert guarded("k") == "<k>"
        assert fetched == ["k"]

    def test_wrap_fixed_key(self):
        inj = FaultInjector(outages={"site:0"})
        guarded = inj.wrap(lambda x: x + 1, "site:0")
        with pytest.raises(InjectedFault):
            guarded(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(fail_rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector(latency=-1.0)
