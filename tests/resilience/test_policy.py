"""Unit tests for retry policies, deadlines, and circuit breakers."""

import pytest

from repro.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    EventLog,
    RetriesExhausted,
    RetryPolicy,
    SimulatedClock,
    call_with_retry,
)


class TestRetryPolicy:
    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0)
        delays = [policy.delay(i) for i in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.25)
        a = policy.delay(1, "stub-a")
        assert a == policy.delay(1, "stub-a")  # same key, same delay
        assert 0.75 <= a <= 1.25
        assert policy.delay(1, "stub-a") != policy.delay(1, "stub-b")

    def test_none_policy_is_single_attempt(self):
        assert RetryPolicy.none().max_attempts == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)


class TestDeadline:
    def test_expires_on_simulated_clock(self):
        clock = SimulatedClock()
        deadline = Deadline(1.0, clock)
        assert not deadline.expired
        clock.sleep(0.6)
        assert deadline.remaining() == pytest.approx(0.4)
        clock.sleep(0.6)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded):
            deadline.check("query")

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Deadline(0.0, SimulatedClock())


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=10.0):
        clock = SimulatedClock()
        return CircuitBreaker(threshold, cooldown, clock=clock, key="dep"), clock

    def test_trips_after_consecutive_failures(self):
        breaker, _ = self.make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_failure_streak(self):
        breaker, _ = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # streak broken: 2 + 2, never 3

    def test_half_open_probe_success_closes(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.sleep(5.0)
        assert breaker.state == "half-open"
        assert breaker.allow()  # the one probe
        assert not breaker.allow()  # only one
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock.sleep(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert not breaker.allow()  # cooldown restarted


class TestCallWithRetry:
    def test_flaky_then_succeed(self):
        clock = SimulatedClock()
        events = EventLog(clock)
        calls = [0]

        def flaky():
            calls[0] += 1
            if calls[0] < 3:
                raise OSError("boom")
            return "ok"

        result, attempts = call_with_retry(
            flaky,
            key="dep",
            policy=RetryPolicy(max_attempts=5, base_delay=0.1, jitter=0.0),
            clock=clock,
            events=events,
        )
        assert result == "ok" and attempts == 3
        assert events.count("retry") == 2
        assert events.count("fetch-latency") == 1
        assert clock.slept == pytest.approx(0.1 + 0.2)  # exponential backoff

    def test_exhaustion_chains_last_error(self):
        clock = SimulatedClock()

        def always():
            raise OSError("down")

        with pytest.raises(RetriesExhausted) as info:
            call_with_retry(
                always,
                key="dep",
                policy=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
                clock=clock,
            )
        assert info.value.attempts == 3
        assert isinstance(info.value.__cause__, OSError)

    def test_breaker_blocks_without_calling(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(1, 100.0, clock=clock)
        breaker.record_failure()
        calls = [0]

        def fn():
            calls[0] += 1

        with pytest.raises(CircuitOpenError):
            call_with_retry(fn, key="dep", breaker=breaker, clock=clock)
        assert calls[0] == 0

    def test_deadline_cuts_backoff_short(self):
        clock = SimulatedClock()
        deadline = Deadline(0.5, clock)

        def always():
            raise OSError("down")

        with pytest.raises(DeadlineExceeded):
            call_with_retry(
                always,
                key="dep",
                policy=RetryPolicy(max_attempts=10, base_delay=1.0, jitter=0.0),
                deadline=deadline,
                clock=clock,
            )
        # failed once, then refused to sleep 1.0s against a 0.5s budget
        assert clock.slept == 0.0

    def test_non_retryable_propagates_raw(self):
        def typo():
            raise KeyError("bug, not fault")

        with pytest.raises(KeyError):
            call_with_retry(
                typo,
                key="dep",
                policy=RetryPolicy(max_attempts=5),
                clock=SimulatedClock(),
                retryable=(OSError,),
            )
