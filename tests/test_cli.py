"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import load_database, main
from repro.datasets import figure1
from repro.storage import dumps


@pytest.fixture()
def json_db(tmp_path):
    path = tmp_path / "db.json"
    path.write_text(
        json.dumps(
            {
                "Entry": [
                    {"Movie": {"Title": "Casablanca", "Year": 1942}},
                    {"Movie": {"Title": "Vertigo", "Year": 1958}},
                ]
            }
        )
    )
    return str(path)


@pytest.fixture()
def binary_db(tmp_path):
    path = tmp_path / "fig1.ssd"
    path.write_bytes(dumps(figure1()))
    return str(path)


class TestLoadDatabase:
    def test_json(self, json_db):
        g = load_database(json_db)
        assert g.num_edges > 0

    def test_binary(self, binary_db):
        g = load_database(binary_db)
        assert g.has_cycle()


class TestCommands:
    def test_render(self, json_db, capsys):
        assert main(["render", json_db]) == 0
        out = capsys.readouterr().out
        assert "Casablanca" in out

    def test_dot(self, json_db, capsys):
        assert main(["dot", json_db]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "Movie" in out

    def test_query(self, json_db, capsys):
        code = main(
            ["query", json_db, r"select {Title: \t} where {Entry.Movie.Title: \t} in db"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Casablanca" in out and "Vertigo" in out

    def test_lorel(self, json_db, capsys):
        code = main(
            ["lorel", json_db, "select m.Title from DB.Entry.Movie m where m.Year < 1950"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Casablanca" in out and "Vertigo" not in out

    def test_datalog(self, json_db, tmp_path, capsys):
        program = tmp_path / "reach.dl"
        program.write_text(
            "reach(X) :- root(X).\nreach(Y) :- reach(X), edge(X, L, Y).\n"
        )
        assert main(["datalog", json_db, str(program), "reach"]) == 0
        out = capsys.readouterr().out
        assert out.count("(") >= 5

    def test_find_hit_and_miss(self, json_db, capsys):
        assert main(["find", json_db, "Casablanca"]) == 0
        assert "Title" in capsys.readouterr().out
        assert main(["find", json_db, "Nothing Here"]) == 1

    def test_find_parses_numbers(self, json_db, capsys):
        assert main(["find", json_db, "1942"]) == 0
        assert "Year" in capsys.readouterr().out

    def test_paths(self, json_db, capsys):
        assert main(["paths", json_db, "3"]) == 0
        out = capsys.readouterr().out
        assert "`Entry`.`Movie`.`Title`" in out

    def test_schema(self, json_db, capsys):
        assert main(["schema", json_db]) == 0
        out = capsys.readouterr().out
        assert "inferred schema" in out
        assert "<int>" in out  # years generalized to a type test

    def test_stats(self, binary_db, capsys):
        assert main(["stats", binary_db]) == 0
        out = capsys.readouterr().out
        assert "cyclic: True" in out
        assert "labels[symbol]" in out

    def test_stats_json_carries_parallel_metrics(self, binary_db, capsys):
        assert main(["stats", binary_db, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "parallel" in payload

    def test_distributed(self, json_db, capsys):
        code = main(
            ["distributed", json_db, "Entry.Movie.Title", "--workers", "2", "--inline"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "matched 2 node(s)" in out
        assert "partition: cut" in out

    def test_distributed_json(self, json_db, capsys):
        code = main(
            [
                "distributed", json_db, "_*", "--workers", "3",
                "--strategy", "hash", "--inline", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["complete"] is True
        assert payload["partition"]["sites"] == 3
        assert payload["run"]["supersteps"] >= 1

    def test_error_paths_are_clean(self, json_db, capsys):
        assert main(["query", json_db, "select nonsense ((("]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["render", "/nonexistent/file.json"]) == 2

    def test_module_entry_point(self, json_db):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "stats", json_db],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "nodes:" in proc.stdout


class TestTraverseCommand:
    def test_traverse_replace(self, json_db, capsys):
        code = main(
            ["traverse", json_db, "traverse db replace Movie => Film"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Film" in out and "Movie" not in out

    def test_traverse_error(self, json_db, capsys):
        assert main(["traverse", json_db, "traverse db explode x"]) == 2
        assert "error:" in capsys.readouterr().err
