"""Tests for the tagged-union label type (section 2's ``type label``)."""

import pytest

from repro.core.labels import (
    Label,
    LabelKind,
    boolean,
    integer,
    label_of,
    real,
    string,
    sym,
)


class TestConstruction:
    def test_symbol(self):
        lab = sym("Movie")
        assert lab.kind is LabelKind.SYMBOL
        assert lab.value == "Movie"

    def test_string(self):
        lab = string("Casablanca")
        assert lab.kind is LabelKind.STRING
        assert lab.value == "Casablanca"

    def test_integer(self):
        assert integer(42).value == 42

    def test_real_coerces_int_to_float(self):
        lab = real(3)
        assert isinstance(lab.value, float)
        assert lab.value == 3.0

    def test_boolean(self):
        assert boolean(True).value is True

    def test_int_label_rejects_bool_value(self):
        # bool is a subtype of int in Python; the model keeps them apart.
        with pytest.raises(TypeError):
            Label(LabelKind.INT, True)

    def test_string_label_rejects_int(self):
        with pytest.raises(TypeError):
            Label(LabelKind.STRING, 7)

    def test_symbol_rejects_non_string(self):
        with pytest.raises(TypeError):
            Label(LabelKind.SYMBOL, 3)


class TestEquality:
    def test_symbol_differs_from_string_with_same_text(self):
        # The attribute name Movie and the data value "Movie" are distinct.
        assert sym("Movie") != string("Movie")

    def test_same_kind_same_value_equal(self):
        assert sym("Title") == sym("Title")
        assert integer(1) == integer(1)

    def test_hashable_and_usable_as_dict_key(self):
        d = {sym("a"): 1, string("a"): 2}
        assert d[sym("a")] == 1
        assert d[string("a")] == 2

    def test_int_and_real_labels_differ(self):
        assert integer(1) != real(1.0)


class TestPredicates:
    def test_symbol_predicates(self):
        lab = sym("Cast")
        assert lab.is_symbol
        assert not lab.is_base
        assert not lab.is_string

    def test_base_predicates(self):
        assert string("x").is_base
        assert string("x").is_string
        assert integer(0).is_int
        assert real(1.5).is_real
        assert boolean(False).is_bool

    def test_switching_on_kind(self):
        # The "self-describing" idiom: dynamic dispatch on the label kind.
        def describe(lab: Label) -> str:
            if lab.is_symbol:
                return "attribute"
            if lab.is_int:
                return "number"
            return "other"

        assert describe(sym("Title")) == "attribute"
        assert describe(integer(3)) == "number"
        assert describe(string("s")) == "other"


class TestOrdering:
    def test_sort_is_deterministic_across_kinds(self):
        labels = [sym("b"), string("a"), integer(5), boolean(True), real(0.5)]
        once = sorted(labels)
        again = sorted(reversed(labels))
        assert once == again

    def test_within_kind_ordering(self):
        assert integer(1) < integer(2)
        assert string("a") < string("b")
        assert sym("Cast") < sym("Title")

    def test_kinds_are_grouped(self):
        ordered = sorted([sym("a"), integer(10), string("z")])
        kinds = [lab.kind for lab in ordered]
        assert kinds == [LabelKind.INT, LabelKind.STRING, LabelKind.SYMBOL]


class TestLabelOf:
    def test_label_of_int(self):
        assert label_of(3) == integer(3)

    def test_label_of_bool_before_int(self):
        assert label_of(True) == boolean(True)
        assert label_of(True).kind is LabelKind.BOOL

    def test_label_of_float(self):
        assert label_of(1.2e6) == real(1.2e6)

    def test_label_of_str_is_string_data_not_symbol(self):
        assert label_of("Casablanca") == string("Casablanca")

    def test_label_of_label_is_identity(self):
        lab = sym("Movie")
        assert label_of(lab) is lab

    def test_label_of_rejects_other_types(self):
        with pytest.raises(TypeError):
            label_of([1, 2])

    def test_repr_distinguishes_symbols(self):
        assert repr(sym("Movie")) == "`Movie`"
        assert repr(string("Movie")) == "'Movie'"
