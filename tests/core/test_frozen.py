"""Tests for the frozen CSR snapshot (the fast-path read layout)."""

import pytest

from repro.core.builder import from_obj
from repro.core.frozen import FrozenGraph, freeze
from repro.core.graph import Graph, GraphError
from repro.core.labels import integer, string, sym


def movie_graph() -> Graph:
    return from_obj(
        {
            "Entry": [
                {"Movie": {"Title": "Casablanca", "Year": 1942}},
                {"Movie": {"Title": "Play it again, Sam", "Director": "Allen"}},
            ]
        }
    )


def cyclic_graph() -> Graph:
    g = Graph()
    a, b, c = g.new_node(), g.new_node(), g.new_node()
    g.set_root(a)
    g.add_edge(a, "next", b)
    g.add_edge(b, "next", c)
    g.add_edge(c, "back", a)
    g.add_edge(a, "skip", c)
    return g


class TestReadApiMirror:
    def test_nodes_and_counts(self):
        g = movie_graph()
        fg = g.freeze()
        assert list(fg.nodes()) == list(g.nodes())
        assert fg.num_nodes == g.num_nodes
        assert fg.num_edges == g.num_edges
        assert fg.root == g.root
        assert fg.has_root

    def test_edges_from_preserves_order_and_values(self):
        g = movie_graph()
        fg = g.freeze()
        for node in g.nodes():
            assert fg.edges_from(node) == g.edges_from(node)

    def test_edges_enumeration(self):
        g = cyclic_graph()
        fg = g.freeze()
        assert list(fg.edges()) == list(g.edges())

    def test_degrees(self):
        g = movie_graph()
        fg = g.freeze()
        for node in g.nodes():
            assert fg.out_degree(node) == g.out_degree(node)
        nodes = list(g.nodes())[:3]
        assert fg.total_out_degree(nodes) == g.total_out_degree(nodes)

    def test_successors_with_and_without_label(self):
        g = movie_graph()
        fg = g.freeze()
        for node in g.nodes():
            assert list(fg.successors(node)) == list(g.successors(node))
            for label in g.labels_from(node):
                assert list(fg.successors(node, label)) == list(
                    g.successors(node, label)
                )
            assert list(fg.successors(node, sym("NoSuchLabel"))) == []

    def test_labels(self):
        g = movie_graph()
        fg = g.freeze()
        assert fg.all_labels() == g.all_labels()
        for node in g.nodes():
            assert fg.labels_from(node) == g.labels_from(node)

    def test_reachable(self):
        g = cyclic_graph()
        orphan = g.new_node()
        g.add_edge(orphan, "dangling", orphan)
        fg = g.freeze()
        assert fg.reachable() == g.reachable()
        assert fg.reachable(orphan) == g.reachable(orphan)
        # the cached root set must be a private copy
        first = fg.reachable()
        first.clear()
        assert fg.reachable() == g.reachable()

    def test_bfs_edges(self):
        g = cyclic_graph()
        fg = g.freeze()
        assert list(fg.bfs_edges()) == list(g.bfs_edges())

    def test_unknown_node_raises(self):
        fg = movie_graph().freeze()
        with pytest.raises(GraphError):
            fg.edges_from(10_000)
        with pytest.raises(GraphError):
            fg.out_degree(-1)

    def test_rootless_graph(self):
        g = Graph()
        a = g.new_node()
        g.add_edge(a, "x", g.new_node())
        fg = FrozenGraph(g)
        assert not fg.has_root
        with pytest.raises(GraphError):
            _ = fg.root


class TestSparseIds:
    def test_non_dense_node_ids(self):
        """A hole in the id space must route through the explicit
        node-id index instead of the dense id==position fast path."""
        g = Graph()
        a, hole, b, c = (g.new_node() for _ in range(4))
        g.set_root(a)
        g.add_edge(a, "x", b)
        g.add_edge(b, "y", c)
        del g._adj[hole]  # simulate a collected node: ids 0, 2, 3
        fg = g.freeze()
        assert fg.index is not None
        assert fg.has_node(c) and not fg.has_node(hole)
        for node in g.nodes():
            assert fg.edges_from(node) == g.edges_from(node)
        assert fg.reachable() == g.reachable()
        with pytest.raises(GraphError):
            fg.edges_from(hole)

    def test_dense_ids_skip_the_index(self):
        fg = movie_graph().freeze()
        assert fg.index is None
        assert not fg.has_node(fg.num_nodes)


class TestLabelPartitions:
    def test_edges_with_label(self):
        g = movie_graph()
        fg = g.freeze()
        title_edges = [e for e in g.edges() if e.label == sym("Title")]
        assert list(fg.edges_with_label(sym("Title"))) == title_edges
        assert fg.edges_with_label(sym("NoSuchLabel")) == ()
        assert list(fg.edges_with_label(integer(1942))) == [
            e for e in g.edges() if e.label == integer(1942)
        ]

    def test_partitions_cover_all_edges(self):
        g = cyclic_graph()
        fg = g.freeze()
        covered = sorted(i for part in fg.partitions for b in part.values() for i in b)
        assert covered == list(range(fg.num_edges))


class TestFreezeThaw:
    def test_freeze_is_idempotent(self):
        fg = movie_graph().freeze()
        assert fg.freeze() is fg
        assert freeze(fg) is fg

    def test_thaw_round_trip(self):
        g = cyclic_graph()
        thawed = g.freeze().thaw()
        assert thawed.root == g.root
        assert list(thawed.nodes()) == list(g.nodes())
        for node in g.nodes():
            assert thawed.edges_from(node) == g.edges_from(node)

    def test_snapshot_is_independent_of_later_mutation(self):
        g = movie_graph()
        fg = g.freeze()
        edges_before = fg.num_edges
        g.add_edge(g.root, "Later", g.new_node())
        assert fg.num_edges == edges_before
        assert g.num_edges == edges_before + 1

    def test_string_values_intern_distinctly(self):
        g = Graph()
        r = g.new_node()
        g.set_root(r)
        g.add_edge(r, string("x"), g.new_node())
        g.add_edge(r, sym("x"), g.new_node())
        fg = g.freeze()
        assert len(fg.labels_seq) == 2
        assert list(fg.edges_with_label(string("x"))) != list(
            fg.edges_with_label(sym("x"))
        )
