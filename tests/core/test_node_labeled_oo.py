"""Tests for the node-labeled variant and the OO database encoding."""

import pytest

from repro.core.bisim import bisimilar
from repro.core.graph import Graph
from repro.core.labels import sym
from repro.core.node_labeled import (
    NODE_LABEL_MARKER,
    NodeLabeledGraph,
    from_edge_labeled,
    to_edge_labeled,
)
from repro.core.oo_encode import OoDatabase, graph_to_oo, oo_to_graph


def sample_nl() -> NodeLabeledGraph:
    nl = NodeLabeledGraph()
    root = nl.new_node("db")
    movie = nl.new_node("movie-1")
    title = nl.new_node()
    nl.set_root(root)
    nl.add_edge(root, "Movie", movie)
    nl.add_edge(movie, "Title", title)
    return nl


class TestNodeLabeled:
    def test_node_labels(self):
        nl = sample_nl()
        assert nl.node_label(nl.root) == sym("db")

    def test_to_edge_labeled_adds_marker_edges(self):
        g = to_edge_labeled(sample_nl())
        markers = [e for e in g.edges() if e.label == NODE_LABEL_MARKER]
        assert len(markers) == 2  # two labeled nodes

    def test_round_trip_preserves_labels_and_shape(self):
        nl = sample_nl()
        back = from_edge_labeled(to_edge_labeled(nl))
        assert back.node_label(back.root) == sym("db")
        (movie_edge,) = back.edges_from(back.root)
        assert movie_edge.label == sym("Movie")
        assert back.node_label(movie_edge.dst) == sym("movie-1")
        assert back.num_nodes == nl.num_nodes

    def test_union_keeps_shared_root_label(self):
        a, b = sample_nl(), sample_nl()
        u = a.union(b)
        assert u.node_label(u.root) == sym("db")

    def test_union_loses_conflicting_root_label(self):
        # The defect the paper points out: there is no canonical label for
        # the union root when the operands disagree.
        a = NodeLabeledGraph()
        a.set_root(a.new_node("x"))
        b = NodeLabeledGraph()
        b.set_root(b.new_node("y"))
        assert a.union(b).node_label(a.union(b).root) is None

    def test_union_merges_edges(self):
        a, b = sample_nl(), sample_nl()
        u = a.union(b)
        assert len(u.edges_from(u.root)) == 2

    def test_plain_graph_round_trips_with_unlabeled_nodes(self):
        g = Graph.singleton("a", Graph.singleton("b"))
        nl = from_edge_labeled(g)
        assert nl.node_label(nl.root) is None
        assert bisimilar(to_edge_labeled(nl), g)


def build_oo() -> OoDatabase:
    db = OoDatabase()
    person = db.define_class("Person", ("name", "friend"))
    movie = db.define_class("Movie", ("title", "cast", "year"))
    bogart = db.new_object(person).set("name", "Bogart")
    bacall = db.new_object(person).set("name", "Bacall")
    bogart.set("friend", bacall)
    bacall.set("friend", bogart)  # a reference cycle
    m = db.new_object(movie)
    m.set("title", "Casablanca")
    m.set("year", 1942)
    m.set("cast", [bogart, bacall])
    return db


class TestOoEncoding:
    def test_extents_become_class_edges(self):
        g = oo_to_graph(build_oo())
        labels = {e.label for e in g.edges_from(g.root)}
        assert labels == {sym("Movie"), sym("Person")}

    def test_reference_cycle_preserved(self):
        assert oo_to_graph(build_oo()).has_cycle()

    def test_identity_becomes_sharing(self):
        db = OoDatabase()
        cls = db.define_class("C", ("ref",))
        shared = db.new_object(cls)
        a = db.new_object(cls).set("ref", shared)
        b = db.new_object(cls).set("ref", shared)
        g = oo_to_graph(db)
        # the shared object's node has two incoming "ref" edges
        ref_targets = [e.dst for e in g.edges() if e.label == sym("ref")]
        assert len(ref_targets) == 2
        assert len(set(ref_targets)) == 1

    def test_round_trip_objects_and_values(self):
        back = graph_to_oo(oo_to_graph(build_oo()))
        (m,) = back.extents["Movie"]
        assert m.values["title"] == "Casablanca"
        assert m.values["year"] == 1942
        names = sorted(p.values["name"] for p in back.extents["Person"])
        assert names == ["Bacall", "Bogart"]

    def test_round_trip_preserves_identity(self):
        back = graph_to_oo(oo_to_graph(build_oo()))
        (m,) = back.extents["Movie"]
        cast = m.values["cast"]
        bogart = next(p for p in back.extents["Person"] if p.values["name"] == "Bogart")
        assert any(member is bogart for member in cast)
        # and the friendship cycle survives
        assert bogart.values["friend"].values["friend"] is bogart

    def test_missing_attributes_tolerated(self):
        db = OoDatabase()
        cls = db.define_class("Loose", ("a", "b"))
        db.new_object(cls).set("a", 1)  # b never set: ACeDB-style looseness
        back = graph_to_oo(oo_to_graph(db))
        (obj,) = back.extents["Loose"]
        assert obj.values == {"a": 1}

    def test_set_unknown_attribute_raises(self):
        db = OoDatabase()
        cls = db.define_class("C", ("x",))
        with pytest.raises(ValueError):
            db.new_object(cls).set("nope", 1)

    def test_double_round_trip_stable(self):
        g1 = oo_to_graph(build_oo())
        g2 = oo_to_graph(graph_to_oo(g1))
        assert bisimilar(g1, g2)
