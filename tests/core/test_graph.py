"""Tests for the edge-labeled rooted graph (section 2's ``type tree``)."""

import pytest

from repro.core.graph import Graph, GraphError, disjoint_union
from repro.core.labels import integer, string, sym


def chain(*labels):
    """Helper: a root -> ... path graph with the given symbol labels."""
    g = Graph()
    node = g.new_node()
    g.set_root(node)
    for lab in labels:
        nxt = g.new_node()
        g.add_edge(node, lab, nxt)
        node = nxt
    return g


def cycle_graph(n: int, label: str = "next") -> Graph:
    """Helper: a directed n-cycle rooted anywhere on the cycle."""
    g = Graph()
    nodes = [g.new_node() for _ in range(n)]
    g.set_root(nodes[0])
    for i in range(n):
        g.add_edge(nodes[i], label, nodes[(i + 1) % n])
    return g


class TestBasics:
    def test_new_node_ids_are_fresh(self):
        g = Graph()
        assert g.new_node() != g.new_node()

    def test_add_edge_str_is_symbol(self):
        g = Graph()
        a, b = g.new_node(), g.new_node()
        edge = g.add_edge(a, "Movie", b)
        assert edge.label == sym("Movie")

    def test_add_edge_scalar_is_base_label(self):
        g = Graph()
        a, b = g.new_node(), g.new_node()
        assert g.add_edge(a, 3, b).label == integer(3)
        assert g.add_edge(a, string("x"), b).label == string("x")

    def test_add_edge_unknown_node_raises(self):
        g = Graph()
        a = g.new_node()
        with pytest.raises(GraphError):
            g.add_edge(a, "x", 999)
        with pytest.raises(GraphError):
            g.add_edge(999, "x", a)

    def test_root_unset_raises(self):
        g = Graph()
        with pytest.raises(GraphError):
            _ = g.root

    def test_set_root_unknown_raises(self):
        with pytest.raises(GraphError):
            Graph().set_root(5)

    def test_counts(self):
        g = chain("a", "b", "c")
        assert g.num_nodes == 4
        assert g.num_edges == 3

    def test_edges_from_unknown_raises(self):
        with pytest.raises(GraphError):
            Graph().edges_from(0)

    def test_successors_filtered_by_label(self):
        g = Graph()
        r, a, b = g.new_node(), g.new_node(), g.new_node()
        g.set_root(r)
        g.add_edge(r, "x", a)
        g.add_edge(r, "y", b)
        assert list(g.successors(r, sym("x"))) == [a]
        assert set(g.successors(r)) == {a, b}

    def test_all_labels(self):
        g = chain("a", "b")
        assert g.all_labels() == {sym("a"), sym("b")}


class TestTraversal:
    def test_reachable_ignores_disconnected(self):
        g = chain("a")
        g.new_node()  # orphan
        assert len(g.reachable()) == 2

    def test_reachable_on_cycle_terminates(self):
        g = cycle_graph(5)
        assert len(g.reachable()) == 5

    def test_bfs_edges_yields_every_reachable_edge_once(self):
        g = cycle_graph(4)
        edges = list(g.bfs_edges())
        assert len(edges) == 4
        assert len(set(edges)) == 4

    def test_is_tree_true_for_chain(self):
        assert chain("a", "b").is_tree()

    def test_is_tree_false_for_shared_node(self):
        g = Graph()
        r, a, b = g.new_node(), g.new_node(), g.new_node()
        g.set_root(r)
        g.add_edge(r, "x", a)
        g.add_edge(r, "y", b)
        g.add_edge(a, "z", b)  # b now has two parents
        assert not g.is_tree()

    def test_has_cycle(self):
        assert cycle_graph(3).has_cycle()
        assert not chain("a", "b").has_cycle()

    def test_self_loop_is_cycle(self):
        g = Graph()
        r = g.new_node()
        g.set_root(r)
        g.add_edge(r, "loop", r)
        assert g.has_cycle()


class TestConstructors:
    def test_empty(self):
        g = Graph.empty()
        assert g.num_edges == 0
        assert g.out_degree(g.root) == 0

    def test_singleton_default_leaf(self):
        g = Graph.singleton("Title")
        (edge,) = g.edges_from(g.root)
        assert edge.label == sym("Title")
        assert g.out_degree(edge.dst) == 0

    def test_singleton_with_child(self):
        child = Graph.singleton(string("Casablanca"))
        g = Graph.singleton("Title", child)
        (edge,) = g.edges_from(g.root)
        (inner,) = g.edges_from(edge.dst)
        assert inner.label == string("Casablanca")

    def test_union_merges_root_edges(self):
        u = Graph.singleton("a").union(Graph.singleton("b"))
        labels = {e.label for e in u.edges_from(u.root)}
        assert labels == {sym("a"), sym("b")}

    def test_union_does_not_mutate_operands(self):
        g1, g2 = Graph.singleton("a"), Graph.singleton("b")
        n1, n2 = g1.num_nodes, g2.num_nodes
        g1.union(g2)
        assert (g1.num_nodes, g2.num_nodes) == (n1, n2)

    def test_union_preserves_cycles(self):
        u = cycle_graph(3).union(Graph.singleton("x"))
        assert u.has_cycle()


class TestSurgery:
    def test_copy_is_isomorphic(self):
        g = cycle_graph(3)
        c = g.copy()
        assert c.num_nodes == 3
        assert c.num_edges == 3
        assert c.has_cycle()

    def test_copy_drops_unreachable(self):
        g = chain("a")
        g.new_node()
        assert g.copy().num_nodes == 2

    def test_subgraph_reroots(self):
        g = chain("a", "b", "c")
        (edge,) = g.edges_from(g.root)
        sub = g.subgraph(edge.dst)
        assert sub.num_edges == 2
        (first,) = sub.edges_from(sub.root)
        assert first.label == sym("b")

    def test_subgraph_restores_original_root(self):
        g = chain("a", "b")
        (edge,) = g.edges_from(g.root)
        g.subgraph(edge.dst)
        assert (next(iter(g.edges_from(g.root)))).label == sym("a")

    def test_map_labels(self):
        g = chain("a", "b")
        upper = g.map_labels(
            lambda lab: sym(lab.value.upper()) if lab.is_symbol else lab
        )
        assert {e.label for e in upper.edges()} == {sym("A"), sym("B")}

    def test_unfold_depth_limits_tree(self):
        g = cycle_graph(1)  # self loop
        t = g.unfold(4)
        assert not t.has_cycle()
        assert t.num_edges == 4

    def test_unfold_of_tree_is_same_shape(self):
        g = chain("a", "b")
        t = g.unfold(10)
        assert t.num_edges == 2

    def test_degree_histogram(self):
        g = chain("a", "b")
        hist = dict(g.degree_histogram())
        assert hist == {1: 2, 0: 1}


class TestDisjointUnion:
    def test_mappings_are_disjoint(self):
        g1, g2 = chain("a"), chain("b")
        arena, (m1, m2) = disjoint_union([g1, g2])
        assert set(m1.values()).isdisjoint(m2.values())
        assert arena.num_nodes == 4

    def test_arena_preserves_edges(self):
        g1 = chain("a")
        arena, (m1,) = disjoint_union([g1])
        (edge,) = arena.edges_from(m1[g1.root])
        assert edge.label == sym("a")
