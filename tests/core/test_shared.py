"""Shared-memory snapshot lifecycle, round-trips, and leak accounting."""

import pickle
from array import array

import pytest

from repro.automata import rpq_nodes
from repro.core.frozen import FrozenGraph
from repro.core.graph import Graph
from repro.core.shared import (
    SharedSnapshotError,
    attach,
    flatten_partitions,
    live_segments,
    pack,
)
from repro.datasets import generate_web


def cyclic_graph() -> Graph:
    g = Graph()
    a, b, c, d = (g.new_node() for _ in range(4))
    g.set_root(a)
    g.add_edge(a, "next", b)
    g.add_edge(b, "next", c)
    g.add_edge(c, "back", a)
    g.add_edge(a, "skip", c)
    g.add_edge(c, "next", d)
    return g


class TestRoundTrip:
    def test_vectors_and_metadata_survive(self):
        fg = cyclic_graph().freeze()
        with pack(fg) as snap:
            other = attach(snap.descriptor)
            try:
                view = other.graph
                assert list(view.offsets) == list(fg.offsets)
                assert list(view.targets) == list(fg.targets)
                assert list(view.label_ids) == list(fg.label_ids)
                assert view.labels_seq == fg.labels_seq
                assert view.root == fg.root
                assert view.num_nodes == fg.num_nodes
                assert view.num_edges == fg.num_edges
            finally:
                other.close()

    def test_rpq_over_attached_view_matches_original(self):
        fg = generate_web(60, seed=3).freeze()
        with pack(fg) as snap:
            other = attach(snap.descriptor)
            try:
                for pattern in ("link*", "(link|keyword)*", "link.link"):
                    assert rpq_nodes(other.graph, pattern) == rpq_nodes(fg, pattern)
            finally:
                other.close()

    def test_partitions_rebuild_lazily_and_exactly(self):
        fg = generate_web(30, seed=1).freeze()
        with pack(fg) as snap:
            other = attach(snap.descriptor)
            try:
                view = other.graph
                for pos in range(fg.num_nodes):
                    got = {lid: list(b) for lid, b in view.partitions[pos].items()}
                    want = {lid: list(b) for lid, b in fg.partitions[pos].items()}
                    assert got == want
            finally:
                other.close()

    def test_flatten_partitions_round_trips(self):
        fg = cyclic_graph().freeze()
        pb_off, plid, pstart, pidx = flatten_partitions(fg)
        assert len(pb_off) == fg.num_nodes + 1
        assert len(pidx) == fg.num_edges  # every edge in exactly one bucket
        rebuilt = []
        for pos in range(fg.num_nodes):
            part = {}
            for j in range(pb_off[pos], pb_off[pos + 1]):
                part[plid[j]] = list(pidx[pstart[j] : pstart[j + 1]])
            rebuilt.append(part)
        assert rebuilt == [
            {lid: list(b) for lid, b in part.items()} for part in fg.partitions
        ]

    def test_descriptor_pickles(self):
        fg = cyclic_graph().freeze()
        with pack(fg) as snap:
            thawed = pickle.loads(pickle.dumps(snap.descriptor))
            assert thawed == snap.descriptor
            other = attach(thawed)
            try:
                assert rpq_nodes(other.graph, "next*") == rpq_nodes(fg, "next*")
            finally:
                other.close()

    def test_frozen_graph_convenience_methods(self):
        fg = cyclic_graph().freeze()
        snap = fg.to_shared()
        try:
            view = FrozenGraph.from_shared(snap.descriptor)
            assert rpq_nodes(view, "next*") == rpq_nodes(fg, "next*")
            view._ext["shared"].close()
        finally:
            snap.close()
            snap.unlink()

    def test_sparse_snapshot_round_trips(self):
        # a hole in the id space forces node_ids + index to travel too
        g = Graph()
        a, hole, b, c = (g.new_node() for _ in range(4))
        g.set_root(a)
        g.add_edge(a, "x", b)
        g.add_edge(b, "y", c)
        del g._adj[hole]  # simulate a collected node: ids 0, 2, 3
        fg = g.freeze()
        assert fg.index is not None
        with pack(fg) as snap:
            other = attach(snap.descriptor)
            try:
                view = other.graph
                assert list(view.node_ids) == list(fg.node_ids)
                assert view.index == fg.index
            finally:
                other.close()


class TestExtras:
    def test_extras_ride_the_segment(self):
        fg = cyclic_graph().freeze()
        site_of = array("q", [0, 1, 0, 1])
        with pack(fg, extras={"site_of": site_of}) as snap:
            other = attach(snap.descriptor)
            try:
                assert list(other.field("site_of")) == [0, 1, 0, 1]
                assert snap.descriptor.extras == ("site_of",)
            finally:
                other.close()

    def test_extra_name_collision_rejected(self):
        fg = cyclic_graph().freeze()
        with pytest.raises(ValueError, match="collides"):
            pack(fg, extras={"targets": array("q", [0])})

    def test_extra_type_rejected(self):
        fg = cyclic_graph().freeze()
        with pytest.raises(TypeError, match="array"):
            pack(fg, extras={"weights": [1, 2, 3]})


class TestLifecycle:
    def test_owner_must_unlink_registry(self):
        fg = cyclic_graph().freeze()
        snap = pack(fg)
        assert snap.name in live_segments()
        snap.close()
        assert snap.name in live_segments()  # close alone is not enough
        snap.unlink()
        assert snap.name not in live_segments()
        snap.unlink()  # idempotent

    def test_context_manager_closes_and_unlinks(self):
        fg = cyclic_graph().freeze()
        with pack(fg) as snap:
            name = snap.name
            assert name in live_segments()
        assert name not in live_segments()
        assert snap.closed

    def test_attacher_cannot_unlink(self):
        fg = cyclic_graph().freeze()
        with pack(fg) as snap:
            other = attach(snap.descriptor)
            with pytest.raises(SharedSnapshotError, match="owner|packing"):
                other.unlink()
            other.close()

    def test_field_after_close_raises(self):
        fg = cyclic_graph().freeze()
        with pack(fg) as snap:
            other = attach(snap.descriptor)
            other.close()
            other.close()  # idempotent
            with pytest.raises(SharedSnapshotError, match="closed"):
                other.field("targets")

    def test_attach_after_unlink_raises(self):
        fg = cyclic_graph().freeze()
        snap = pack(fg)
        descriptor = snap.descriptor
        snap.close()
        snap.unlink()
        with pytest.raises(SharedSnapshotError, match="does not exist"):
            attach(descriptor)

    def test_truncated_segment_rejected(self):
        fg = cyclic_graph().freeze()
        with pack(fg) as snap:
            fields = snap.descriptor.fields
            lying = type(snap.descriptor)(
                name=snap.descriptor.name,
                fields=fields + (("ghost", 0, 10_000_000),),
                labels=snap.descriptor.labels,
                num_nodes=snap.descriptor.num_nodes,
                num_edges=snap.descriptor.num_edges,
                root=snap.descriptor.root,
                source_version=snap.descriptor.source_version,
                dense=snap.descriptor.dense,
            )
            with pytest.raises(SharedSnapshotError, match="bytes"):
                attach(lying)
