"""Tests for object fusion across databases (section 2, [32])."""

import pytest

from repro.automata.product import rpq_nodes
from repro.core.builder import from_obj
from repro.core.fusion import FusionError, fuse_graphs, fuse_objects
from repro.core.labels import sym


def source_a():
    return from_obj(
        {"Movie": [
            {"Title": "Casablanca", "Year": 1942},
            {"Title": "Vertigo", "Year": 1958},
        ]}
    )


def source_b():
    return from_obj(
        {"Movie": [
            {"Title": "Casablanca", "Director": "Curtiz"},
            {"Title": "Gilda", "Director": "Vidor"},
        ]}
    )


class TestFuseObjects:
    def test_same_key_objects_merge(self):
        g = from_obj(
            {"Movie": [
                {"Title": "Casablanca", "Year": 1942},
                {"Title": "Casablanca", "Director": "Curtiz"},
            ]}
        )
        fused = fuse_objects(g, "Movie", (sym("Title"),))
        movies = rpq_nodes(fused, "Movie")
        assert len(movies) == 1
        (movie,) = movies
        labels = {str(e.label.value) for e in fused.edges_from(movie)}
        assert labels == {"Title", "Year", "Director"}

    def test_different_keys_stay_apart(self):
        fused = fuse_objects(source_a(), "Movie", (sym("Title"),))
        assert len(rpq_nodes(fused, "Movie")) == 2

    def test_keyless_objects_untouched(self):
        g = from_obj(
            {"Movie": [{"Title": "Casablanca"}, {"Untitled": True}]}
        )
        fused = fuse_objects(g, "Movie", (sym("Title"),))
        assert len(rpq_nodes(fused, "Movie")) == 2

    def test_ambiguous_key_raises(self):
        g = from_obj({"Movie": {"Title": ["A", "B"]}})
        with pytest.raises(FusionError):
            fuse_objects(g, "Movie", (sym("Title"),))

    def test_duplicate_edges_deduped(self):
        g = from_obj(
            {"Movie": [
                {"Title": "Casablanca", "Year": 1942},
                {"Title": "Casablanca", "Year": 1942},
            ]}
        )
        fused = fuse_objects(g, "Movie", (sym("Title"),))
        (movie,) = rpq_nodes(fused, "Movie")
        year_edges = [e for e in fused.edges_from(movie) if e.label == sym("Year")]
        # the two Year subtrees are distinct nodes but equal values; the
        # *edges* to them both survive (value-level dedup is bisimulation's
        # job); the key edges dedup because they map to the same target.
        assert 1 <= len(year_edges) <= 2


class TestFuseGraphs:
    def test_cross_source_fusion(self):
        fused = fuse_graphs(
            [source_a(), source_b()],
            "Movie",
            ["Title"],
            source_names=["imdb", "library"],
        )
        # Casablanca fused across sources: one node with Year AND Director
        casablanca = [
            n
            for n in rpq_nodes(fused, "_.Movie")
            if any(
                e.label == sym("Year") for e in fused.edges_from(n)
            )
            and any(e.label == sym("Director") for e in fused.edges_from(n))
        ]
        assert len(casablanca) == 1
        # non-shared movies remain separate
        assert len(rpq_nodes(fused, "_.Movie")) == 3

    def test_fused_object_visible_from_both_regions(self):
        fused = fuse_graphs([source_a(), source_b()], "Movie", ["Title"])
        via_a = rpq_nodes(fused, 'src0.Movie.Title."Casablanca"')
        via_b = rpq_nodes(fused, 'src1.Movie.Title."Casablanca"')
        assert via_a == via_b  # literally the same node now

    def test_name_count_mismatch(self):
        with pytest.raises(FusionError):
            fuse_graphs([source_a()], "Movie", ["Title"], source_names=["a", "b"])

    def test_compound_key(self):
        a = from_obj({"Person": {"Name": "Smith", "Born": 1900, "Job": "actor"}})
        b = from_obj({"Person": {"Name": "Smith", "Born": 1950, "Job": "director"}})
        fused = fuse_graphs([a, b], "Person", ["Name"])
        # same name: fuses (single-attribute key)
        assert len(rpq_nodes(fused, "_.Person")) == 1
        # with the compound key (Name, Born) they stay apart... but our key
        # is a path to ONE scalar; compound keys are expressed by fusing on
        # a derived key attribute instead -- document via this sanity check
        fused2 = fuse_graphs([a, b], "Person", ["Born"])
        assert len(rpq_nodes(fused2, "_.Person")) == 2
