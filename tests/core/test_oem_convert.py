"""Tests for the OEM variant and the conversions between model variants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bisim import bisimilar
from repro.core.builder import from_obj
from repro.core.convert import graph_to_oem, oem_to_graph
from repro.core.graph import Graph
from repro.core.labels import string, sym
from repro.core.oem import OemDatabase, OemError


def movie_oem() -> OemDatabase:
    db = OemDatabase()
    root = db.new_complex()
    movie = db.new_complex()
    db.add_child(root, "Movie", movie)
    db.add_child(movie, "Title", db.new_atomic("Casablanca"))
    db.add_child(movie, "Cast", db.new_atomic("Bogart"))
    db.add_child(movie, "Cast", db.new_atomic("Bacall"))
    db.set_name("DB", root)
    return db


class TestOemDatabase:
    def test_atomic_objects(self):
        db = OemDatabase()
        oid = db.new_atomic("hello")
        assert db.get(oid).is_atomic
        assert db.get(oid).atom == "hello"

    def test_complex_objects_and_children(self):
        db = movie_oem()
        root = db.lookup_name("DB")
        (movie,) = db.children(root, "Movie")
        assert sorted(db.get(c).atom for c in db.children(movie, "Cast")) == [
            "Bacall",
            "Bogart",
        ]

    def test_atomic_cannot_have_children(self):
        db = OemDatabase()
        a = db.new_atomic(1)
        with pytest.raises(OemError):
            db.add_child(a, "x", db.new_complex())

    def test_unknown_oid_raises(self):
        db = OemDatabase()
        with pytest.raises(OemError):
            db.get(99)

    def test_unknown_name_raises(self):
        with pytest.raises(OemError):
            OemDatabase().lookup_name("nope")

    def test_bad_atomic_value_rejected(self):
        with pytest.raises(OemError):
            OemDatabase().new_atomic([1, 2])

    def test_cycles_allowed(self):
        db = OemDatabase()
        a, b = db.new_complex(), db.new_complex()
        db.add_child(a, "ref", b)
        db.add_child(b, "backref", a)
        assert db.reachable(a) == {a, b}

    def test_validate_detects_dangling(self):
        db = OemDatabase()
        a = db.new_complex()
        db.get(a).children.append(("bad", 777))
        with pytest.raises(OemError):
            db.validate()

    def test_from_obj(self):
        db = OemDatabase.from_obj({"Title": "Casablanca"}, name="M")
        oid = db.lookup_name("M")
        (child,) = db.children(oid, "Title")
        assert db.get(child).atom == "Casablanca"

    def test_labels(self):
        db = movie_oem()
        (movie,) = db.children(db.lookup_name("DB"), "Movie")
        assert db.get(movie).labels() == {"Title", "Cast"}


class TestOemToGraph:
    def test_atomic_becomes_scalar_singleton(self):
        db = OemDatabase()
        db.set_name("DB", db.new_atomic(42))
        g = oem_to_graph(db)
        (edge,) = g.edges_from(g.root)
        assert edge.label.value == 42
        assert edge.label.is_int

    def test_complex_becomes_symbol_edges(self):
        g = oem_to_graph(movie_oem())
        (edge,) = g.edges_from(g.root)
        assert edge.label == sym("Movie")

    def test_shared_oid_becomes_shared_node(self):
        db = OemDatabase()
        root, shared = db.new_complex(), db.new_atomic("v")
        db.add_child(root, "x", shared)
        db.add_child(root, "y", shared)
        db.set_name("DB", root)
        g = oem_to_graph(db)
        targets = {e.dst for e in g.edges_from(g.root)}
        assert len(targets) == 1

    def test_cyclic_oem_converts(self):
        db = OemDatabase()
        a, b = db.new_complex(), db.new_complex()
        db.add_child(a, "References", b)
        db.add_child(b, "IsReferencedIn", a)
        db.set_name("DB", a)
        g = oem_to_graph(db)
        assert g.has_cycle()

    def test_multiple_names_make_synthetic_root(self):
        db = OemDatabase()
        db.set_name("A", db.new_atomic(1))
        db.set_name("B", db.new_atomic(2))
        g = oem_to_graph(db)
        labels = {e.label for e in g.edges_from(g.root)}
        assert labels == {sym("A"), sym("B")}

    def test_named_entry_selection(self):
        db = OemDatabase()
        db.set_name("A", db.new_atomic(1))
        db.set_name("B", db.new_atomic(2))
        g = oem_to_graph(db, name="B")
        (edge,) = g.edges_from(g.root)
        assert edge.label.value == 2


class TestGraphToOem:
    def test_scalar_round_trip(self):
        g = from_obj({"Title": "Casablanca"})
        db = graph_to_oem(g)
        root = db.lookup_name("DB")
        (title,) = db.children(root, "Title")
        assert db.get(title).atom == "Casablanca"

    def test_round_trip_bisimilar(self):
        g = from_obj({"Movie": {"Title": "Casablanca", "Year": 1942}})
        again = oem_to_graph(graph_to_oem(g))
        assert bisimilar(g, again)

    def test_cycle_round_trip(self):
        g = Graph()
        a, b = g.new_node(), g.new_node()
        g.set_root(a)
        g.add_edge(a, "References", b)
        g.add_edge(b, "Back", a)
        again = oem_to_graph(graph_to_oem(g))
        assert again.has_cycle()
        assert bisimilar(g, again)

    def test_non_oem_base_edge_uses_marker(self):
        # A base-labeled edge among others can't be OEM-atomic; it is
        # preserved under the @data marker.
        g = Graph()
        r, leaf1, leaf2 = g.new_node(), g.new_node(), g.new_node()
        g.set_root(r)
        g.add_edge(r, "name", leaf1)
        g.add_edge(r, string("stray"), leaf2)
        db = graph_to_oem(g)
        root = db.lookup_name("DB")
        (data,) = db.children(root, "@data")
        assert db.get(data).atom == "stray"


@st.composite
def oem_shaped_objects(draw, depth: int = 3):
    """Nested data whose graph encoding is exactly OEM-shaped."""
    if depth == 0:
        return draw(st.one_of(st.integers(-3, 3), st.sampled_from(["a", "b"])))
    keys = draw(st.lists(st.sampled_from(["k1", "k2", "k3"]), max_size=3, unique=True))
    if not keys:
        return draw(st.one_of(st.integers(-3, 3), st.sampled_from(["a", "b"])))
    return {k: draw(oem_shaped_objects(depth=depth - 1)) for k in keys}


@given(oem_shaped_objects())
@settings(max_examples=50, deadline=None)
def test_prop_oem_round_trip(obj):
    g = from_obj(obj)
    assert bisimilar(g, oem_to_graph(graph_to_oem(g)))
