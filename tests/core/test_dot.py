"""Tests for the Graphviz DOT export."""

from repro.core.builder import from_obj
from repro.core.graph import Graph, to_dot
from repro.core.labels import string


class TestToDot:
    def test_structure(self):
        g = from_obj({"Movie": {"Title": "Casablanca"}})
        dot = to_dot(g)
        assert dot.startswith("digraph semistructured {")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == g.num_edges

    def test_root_marked(self):
        g = from_obj({"a": 1})
        dot = to_dot(g)
        assert f"n{g.root} [shape=doublecircle];" in dot

    def test_symbols_vs_data_rendering(self):
        g = Graph()
        r, a, b = g.new_node(), g.new_node(), g.new_node()
        g.set_root(r)
        g.add_edge(r, "Movie", a)          # symbol: bare
        g.add_edge(r, string("Movie"), b)  # data: quoted
        dot = to_dot(g)
        assert 'label="Movie"' in dot
        assert "label=\"'Movie'\"" in dot

    def test_quotes_escaped(self):
        g = from_obj({"say": 'he said "hi"'})
        dot = to_dot(g)
        assert '\\"hi\\"' in dot

    def test_cycles_render(self):
        g = Graph()
        n = g.new_node()
        g.set_root(n)
        g.add_edge(n, "loop", n)
        dot = to_dot(g)
        assert f"n{n} -> n{n}" in dot

    def test_unreachable_omitted(self):
        g = from_obj({"a": 1})
        orphan = g.new_node()
        dot = to_dot(g)
        assert f"n{orphan} " not in dot

    def test_custom_name(self):
        assert to_dot(from_obj(None), name="fig1").startswith("digraph fig1")
