"""Tests for bisimulation equality, including hypothesis property tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bisim import (
    bisimilar,
    bisimilar_nodes,
    bisimulation_classes,
    coarsest_partition,
    reduce_graph,
)
from repro.core.builder import from_obj
from repro.core.graph import Graph
from repro.core.labels import string, sym


def cyclic_pair():
    """Two different-size graphs with the same infinite unfolding a-a-a..."""
    g1 = Graph()
    n = g1.new_node()
    g1.set_root(n)
    g1.add_edge(n, "a", n)

    g2 = Graph()
    x, y = g2.new_node(), g2.new_node()
    g2.set_root(x)
    g2.add_edge(x, "a", y)
    g2.add_edge(y, "a", x)
    return g1, g2


class TestBisimilar:
    def test_empty_graphs_bisimilar(self):
        assert bisimilar(Graph.empty(), Graph.empty())

    def test_label_mismatch_not_bisimilar(self):
        assert not bisimilar(Graph.singleton("a"), Graph.singleton("b"))

    def test_symbol_vs_string_not_bisimilar(self):
        assert not bisimilar(
            Graph.singleton(sym("a")), Graph.singleton(string("a"))
        )

    def test_duplicate_edges_are_set_collapsed(self):
        # {a: {}} U {a: {}} = {a: {}} -- edges are a *set*.
        g = Graph.singleton("a").union(Graph.singleton("a"))
        assert bisimilar(g, Graph.singleton("a"))

    def test_edge_order_is_irrelevant(self):
        g1 = Graph.singleton("a").union(Graph.singleton("b"))
        g2 = Graph.singleton("b").union(Graph.singleton("a"))
        assert bisimilar(g1, g2)

    def test_self_loop_equals_two_cycle(self):
        g1, g2 = cyclic_pair()
        assert bisimilar(g1, g2)

    def test_cycle_not_bisimilar_to_finite_chain(self):
        g1, _ = cyclic_pair()
        finite = from_obj({"a": {"a": {"a": None}}})
        assert not bisimilar(g1, finite)

    def test_depth_difference_detected(self):
        g1 = from_obj({"a": {"b": None}})
        g2 = from_obj({"a": {"b": {"c": None}}})
        assert not bisimilar(g1, g2)

    def test_shared_vs_duplicated_subtree(self):
        # Sharing a subtree is not observable: DAG == tree expansion.
        shared = Graph()
        r, mid, leaf = shared.new_node(), shared.new_node(), shared.new_node()
        shared.set_root(r)
        shared.add_edge(r, "x", mid)
        shared.add_edge(r, "y", mid)
        shared.add_edge(mid, "z", leaf)
        expanded = from_obj({"x": {"z": None}, "y": {"z": None}})
        assert bisimilar(shared, expanded)


class TestPartition:
    def test_partition_groups_equivalent_leaves(self):
        g = from_obj({"a": None, "b": None})
        classes = bisimulation_classes(g)
        sizes = sorted(len(c) for c in classes)
        # two leaves collapse into one class; root alone.
        assert sizes == [1, 2]

    def test_bisimilar_nodes_within_graph(self):
        g = Graph()
        r, a, b = g.new_node(), g.new_node(), g.new_node()
        g.set_root(r)
        g.add_edge(r, "x", a)
        g.add_edge(r, "x", b)
        assert bisimilar_nodes(g, a, b)
        assert not bisimilar_nodes(g, r, a)

    def test_partition_of_cycle_collapses_rotations(self):
        g = Graph()
        nodes = [g.new_node() for _ in range(4)]
        g.set_root(nodes[0])
        for i in range(4):
            g.add_edge(nodes[i], "n", nodes[(i + 1) % 4])
        partition = coarsest_partition(g)
        assert len(set(partition.values())) == 1


class TestReduce:
    def test_reduce_collapses_duplicate_leaves(self):
        g = from_obj({"a": None, "b": None})
        reduced = reduce_graph(g)
        assert reduced.num_nodes == 2  # root + single shared leaf

    def test_reduce_preserves_value(self):
        g = from_obj({"Movie": {"Title": "Casablanca", "Year": 1942}})
        assert bisimilar(g, reduce_graph(g))

    def test_reduce_two_cycle_to_self_loop(self):
        _, g2 = cyclic_pair()
        reduced = reduce_graph(g2)
        assert reduced.num_nodes == 1
        assert reduced.has_cycle()

    def test_reduce_is_idempotent(self):
        g = from_obj({"a": {"c": None}, "b": {"c": None}})
        once = reduce_graph(g)
        twice = reduce_graph(once)
        assert once.num_nodes == twice.num_nodes
        assert bisimilar(once, twice)


# ---------------------------------------------------------------------------
# Property tests


@st.composite
def nested_objects(draw, max_depth: int = 3):
    """JSON-shaped trees over a small label alphabet."""
    if max_depth == 0:
        return draw(st.sampled_from(["v1", "v2", 1, 2, None]))
    keys = draw(st.lists(st.sampled_from("abcd"), max_size=3, unique=True))
    return {k: draw(nested_objects(max_depth=max_depth - 1)) for k in keys}


@st.composite
def random_graphs(draw, max_nodes: int = 6):
    """Arbitrary rooted edge-labeled graphs, cycles included."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    g = Graph()
    nodes = [g.new_node() for _ in range(n)]
    g.set_root(nodes[0])
    edge_count = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(edge_count):
        src = draw(st.sampled_from(nodes))
        dst = draw(st.sampled_from(nodes))
        lab = draw(st.sampled_from("ab"))
        g.add_edge(src, lab, dst)
    return g


@given(nested_objects())
@settings(max_examples=60, deadline=None)
def test_prop_bisimilarity_reflexive(obj):
    g = from_obj(obj)
    assert bisimilar(g, g)
    assert bisimilar(g, g.copy())


@given(random_graphs())
@settings(max_examples=60, deadline=None)
def test_prop_reduce_preserves_bisimilarity(g):
    assert bisimilar(g, reduce_graph(g))


@given(random_graphs())
@settings(max_examples=60, deadline=None)
def test_prop_reduce_is_minimal(g):
    """No two distinct nodes of a reduced graph are bisimilar."""
    reduced = reduce_graph(g)
    partition = coarsest_partition(reduced, reduced.reachable())
    assert len(set(partition.values())) == len(partition)


@given(random_graphs())
@settings(max_examples=40, deadline=None)
def test_prop_graph_bisimilar_to_deep_unfolding(g):
    """Unfolding beyond the node count cannot be told apart at that depth.

    Full bisimilarity needs infinite unfolding for cyclic graphs, but any
    graph is *depth-k bisimilar* to its depth-k unfolding; we check that by
    unfolding both sides to the same depth and comparing.
    """
    depth = g.num_nodes + 1
    assert bisimilar(g.unfold(depth), g.unfold(depth))
    # and the unfolding of the reduction matches the unfolding of g
    assert bisimilar(g.unfold(depth), reduce_graph(g).unfold(depth))
