"""Tests for ingesting self-describing data and rendering graphs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bisim import bisimilar
from repro.core.builder import BuildError, from_obj, render, to_obj, tree
from repro.core.graph import Graph
from repro.core.labels import integer, string, sym


class TestFromObj:
    def test_scalar_becomes_singleton(self):
        g = from_obj("Casablanca")
        (edge,) = g.edges_from(g.root)
        assert edge.label == string("Casablanca")
        assert g.out_degree(edge.dst) == 0

    def test_none_is_empty_tree(self):
        g = from_obj(None)
        assert g.out_degree(g.root) == 0

    def test_dict_keys_become_symbol_edges(self):
        g = from_obj({"Title": "Casablanca"})
        (edge,) = g.edges_from(g.root)
        assert edge.label == sym("Title")

    def test_list_becomes_integer_labeled_edges(self):
        g = from_obj([10, 20, 30])
        labels = sorted(e.label.value for e in g.edges_from(g.root))
        assert labels == [1, 2, 3]

    def test_list_under_key_becomes_repeated_edges(self):
        # {"Cast": [...]} is the *set* reading: several Cast edges.
        g = from_obj({"Cast": ["Bogart", "Bacall"]})
        casts = [e for e in g.edges_from(g.root) if e.label == sym("Cast")]
        assert len(casts) == 2

    def test_int_dict_key_is_base_label(self):
        g = from_obj({1: "first"})
        (edge,) = g.edges_from(g.root)
        assert edge.label == integer(1)

    def test_rejects_unencodable(self):
        with pytest.raises(BuildError):
            from_obj({"x": object()})

    def test_rejects_bad_key(self):
        with pytest.raises(BuildError):
            from_obj({(1, 2): "x"})

    def test_tree_alias(self):
        assert bisimilar(tree({"a": 1}), from_obj({"a": 1}))


class TestToObj:
    def test_round_trip_scalar(self):
        assert to_obj(from_obj(42)) == 42

    def test_round_trip_dict(self):
        obj = {"Movie": {"Title": "Casablanca", "Year": 1942}}
        assert to_obj(from_obj(obj)) == obj

    def test_round_trip_list(self):
        assert to_obj(from_obj([1, "two", 3.0])) == [1, "two", 3.0]

    def test_repeated_edges_collapse_to_list(self):
        g = from_obj({"Cast": ["Bogart", "Bacall"]})
        assert to_obj(g) == {"Cast": ["Bogart", "Bacall"]}

    def test_empty_is_none(self):
        assert to_obj(from_obj(None)) is None

    def test_cycle_raises(self):
        g = Graph()
        r = g.new_node()
        g.set_root(r)
        g.add_edge(r, "loop", r)
        with pytest.raises(BuildError):
            to_obj(g)

    def test_dag_sharing_is_duplicated(self):
        g = Graph()
        r, shared, leaf = g.new_node(), g.new_node(), g.new_node()
        g.set_root(r)
        g.add_edge(r, "x", shared)
        g.add_edge(r, "y", shared)
        g.add_edge(shared, "v", leaf)
        assert to_obj(g) == {"x": {"v": None}, "y": {"v": None}}


class TestRender:
    def test_render_shows_labels(self):
        text = render(from_obj({"Movie": {"Title": "Casablanca"}}))
        assert "Movie" in text
        assert "'Casablanca'" in text

    def test_render_marks_cycles(self):
        g = Graph()
        r = g.new_node()
        g.set_root(r)
        g.add_edge(r, "References", r)
        assert "*see" in render(g)

    def test_render_depth_cap(self):
        g = Graph()
        prev = g.new_node()
        g.set_root(prev)
        for _ in range(40):
            nxt = g.new_node()
            g.add_edge(prev, "deep", nxt)
            prev = nxt
        text = render(g, max_depth=3)
        assert "..." in text


@st.composite
def json_objects(draw, depth: int = 3):
    if depth == 0:
        return draw(
            st.one_of(
                st.integers(-5, 5),
                st.sampled_from(["x", "y"]),
                st.booleans(),
                st.none(),
            )
        )
    branch = draw(st.integers(0, 2))
    if branch == 0:
        return draw(json_objects(depth=0))
    keys = draw(st.lists(st.sampled_from("pqrs"), max_size=3, unique=True))
    return {k: draw(json_objects(depth=depth - 1)) for k in keys}


@given(json_objects())
@settings(max_examples=60, deadline=None)
def test_prop_round_trip_preserves_value(obj):
    """from_obj/to_obj round-trips every JSON-shaped tree (dicts of scalars
    and dicts; lists are covered separately since they normalize)."""
    g = from_obj(obj)
    back = to_obj(g)
    # Empty dicts decode as None: {} carries no observable structure.
    def normalize(o):
        if isinstance(o, dict):
            return {k: normalize(v) for k, v in o.items()} or None
        return o

    assert back == normalize(obj)


@given(json_objects())
@settings(max_examples=60, deadline=None)
def test_prop_rebuild_is_bisimilar(obj):
    g = from_obj(obj)
    g2 = from_obj(to_obj(g))
    assert bisimilar(g, g2)
