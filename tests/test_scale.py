"""Scale smoke tests: the whole stack at laptop-realistic sizes.

Not micro-benchmarks (those live in benchmarks/) -- these guard against
accidental quadratic blowups by running the main pipelines at sizes where
O(n^2) would visibly hang, with generous wall-clock ceilings.
"""

import time

import pytest

from repro.automata.product import rpq_nodes
from repro.core.bisim import bisimilar, reduce_graph
from repro.datasets import generate_movies, generate_web
from repro.index import GraphIndexes
from repro.schema.dataguide import DataGuide
from repro.schema.inference import infer_schema
from repro.storage import dumps, loads
from repro.unql import relabel, unql
from repro.core.labels import sym


def within(seconds: float):
    """Context manager asserting a wall-clock ceiling."""

    class _Ctx:
        def __enter__(self):
            self.start = time.perf_counter()
            return self

        def __exit__(self, *exc):
            elapsed = time.perf_counter() - self.start
            assert elapsed < seconds, f"took {elapsed:.1f}s, ceiling {seconds}s"
            return False

    return _Ctx()


@pytest.fixture(scope="module")
def big_movies():
    return generate_movies(3000, seed=900)


@pytest.fixture(scope="module")
def big_web():
    return generate_web(2000, seed=900)


class TestScale:
    def test_generation_size(self, big_movies):
        assert big_movies.num_edges > 30_000

    def test_rpq_on_large_graph(self, big_movies):
        with within(15):
            hits = rpq_nodes(big_movies, "Entry.Movie.Cast.#.<string>")
        assert hits

    def test_indexes_build(self, big_movies):
        with within(30):
            GraphIndexes(big_movies).build_all()

    def test_unql_query(self, big_movies):
        with within(30):
            out = unql(
                r"select \t where {Entry.Movie: {Title: \t, Year: \y}} in db, \y > 1980",
                db=big_movies,
            )
        assert out.out_degree(out.root) > 50

    def test_structural_recursion(self, big_web):
        with within(60):
            out = relabel(
                big_web,
                lambda lab: sym(str(lab.value).upper()) if lab.is_symbol else lab,
            )
        assert out.num_edges >= big_web.num_edges

    def test_bisimulation_reduction(self, big_movies):
        with within(60):
            reduced = reduce_graph(big_movies)
        assert reduced.num_nodes < big_movies.num_nodes

    def test_dataguide(self, big_movies):
        with within(30):
            guide = DataGuide(big_movies)
        assert guide.num_states < big_movies.num_nodes

    def test_schema_inference(self, big_movies):
        with within(60):
            schema = infer_schema(big_movies)
        assert schema.num_nodes < 1000

    def test_serialization(self, big_movies):
        with within(30):
            assert bisimilar(loads(dumps(big_movies)), big_movies)
