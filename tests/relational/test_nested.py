"""Tests for the nested-relational extension (nest/unnest, both levels)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.nested import nest, unnest
from repro.relational.relation import Relation, RelationError
from repro.unql.relational_bridge import (
    relation_to_tree,
    tree_nest,
    tree_to_relation,
    tree_unnest,
)


@pytest.fixture()
def casts() -> Relation:
    return Relation(
        ("title", "actor"),
        [
            ("Casablanca", "Bogart"),
            ("Casablanca", "Bacall"),
            ("Annie Hall", "Allen"),
        ],
    )


class TestNest:
    def test_groups_by_keys(self, casts):
        nested = nest(casts, ("title",), "cast")
        assert nested.schema == ("title", "cast")
        assert len(nested) == 2
        by_title = {row[0]: row[1] for row in nested}
        assert by_title["Casablanca"] == frozenset({("Bogart",), ("Bacall",)})

    def test_unnest_inverts_nest(self, casts):
        nested = nest(casts, ("title",), "cast")
        flat = unnest(nested, "cast", ("actor",))
        from repro.relational.algebra import project

        assert project(flat, casts.schema) == casts

    def test_empty_groups_lost_after_unnest(self):
        # the classical caveat: nest of an empty relation has no groups
        r = Relation(("k", "v"), [])
        nested = nest(r, ("k",), "vs")
        assert len(nested) == 0

    def test_nest_everything_keyless(self):
        r = Relation(("a", "b"), [(1, 2), (3, 4)])
        nested = nest(r, (), "all")
        assert len(nested) == 1
        ((group,),) = nested.rows
        assert group == frozenset({(1, 2), (3, 4)})

    def test_errors(self, casts):
        with pytest.raises(RelationError):
            nest(casts, ("title", "actor"), "x")  # nothing left to nest
        with pytest.raises(RelationError):
            nest(casts, ("title",), "title")  # name collision
        with pytest.raises(RelationError):
            nest(casts, ("ghost",), "x")
        with pytest.raises(RelationError):
            unnest(casts, "actor", ("y",))  # not set-valued

    def test_flat_operators_still_work_on_nested(self, casts):
        from repro.relational.algebra import select_eq

        nested = nest(casts, ("title",), "cast")
        one = select_eq(nested, "title", "Casablanca")
        assert len(one) == 1


class TestTreeNest:
    def test_tree_nest_matches_relational(self, casts):
        nested_rel = nest(casts, ("title",), "cast")
        nested_tree = tree_nest(relation_to_tree(casts), ("title",), "cast")
        # compare through unnest (the tree decode of nested values is the
        # inner tuple set)
        flat_back = tree_to_relation(tree_unnest(nested_tree, "cast"))
        from repro.relational.algebra import project

        assert project(flat_back, casts.schema) == casts
        # group count agrees
        tuple_edges = [
            e
            for e in nested_tree.edges_from(nested_tree.root)
        ]
        assert len(tuple_edges) == len(nested_rel)

    def test_tree_unnest_splices_keys(self, casts):
        nested_tree = tree_nest(relation_to_tree(casts), ("title",), "cast")
        flat = tree_to_relation(tree_unnest(nested_tree, "cast"))
        assert set(flat.schema) == {"title", "actor"}
        assert len(flat) == 3

    def test_tree_nest_dedups_members(self):
        r = Relation(("k", "v"), [(1, "a"), (1, "a")])  # Relation dedups anyway
        tree = tree_nest(relation_to_tree(r), ("k",), "vs")
        flat = tree_to_relation(tree_unnest(tree, "vs"))
        assert len(flat) == 1


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.sampled_from("xy"), st.integers(0, 2)),
        min_size=1,
        max_size=10,
        unique=True,
    )
)
@settings(max_examples=60, deadline=None)
def test_prop_unnest_nest_round_trip(rows):
    r = Relation(("a", "b", "c"), rows)
    nested = nest(r, ("a",), "rest")
    flat = unnest(nested, "rest", ("b", "c"))
    from repro.relational.algebra import project

    assert project(flat, r.schema) == r


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.sampled_from("xy")),
        min_size=1,
        max_size=8,
        unique=True,
    )
)
@settings(max_examples=60, deadline=None)
def test_prop_tree_nest_agrees_with_relational(rows):
    r = Relation(("k", "v"), rows)
    tree = tree_nest(relation_to_tree(r), ("k",), "vs")
    flat = tree_to_relation(tree_unnest(tree, "vs"))
    from repro.relational.algebra import project

    assert project(flat, r.schema) == r
