"""Tests for the graph/relation encodings of sections 2 and 3."""

import pytest

from repro.core.bisim import bisimilar
from repro.core.builder import from_obj
from repro.core.graph import Graph
from repro.relational.encode import (
    EDGE_SCHEMA,
    edge_relation_to_graph,
    graph_to_edge_relation,
    graph_to_relational,
    graph_to_typed_relations,
    relational_to_graph,
)
from repro.relational.relation import Relation, RelationError


@pytest.fixture()
def catalog() -> dict:
    return {
        "Movies": Relation(
            ("title", "year"),
            [("Casablanca", 1942), ("Annie Hall", 1977)],
        ),
        "Casts": Relation(
            ("title", "actor"),
            [("Casablanca", "Bogart"), ("Annie Hall", "Allen")],
        ),
    }


class TestEdgeRelation:
    def test_schema_and_row_count(self):
        g = from_obj({"Movie": {"Title": "Casablanca"}})
        rel, root = graph_to_edge_relation(g)
        assert rel.schema == EDGE_SCHEMA
        assert len(rel) == g.num_edges
        assert root == g.root

    def test_kind_column_disambiguates(self):
        from repro.core.labels import string

        g = Graph()
        r, a, b = g.new_node(), g.new_node(), g.new_node()
        g.set_root(r)
        g.add_edge(r, "Movie", a)          # symbol
        g.add_edge(r, string("Movie"), b)  # string data
        rel, _ = graph_to_edge_relation(g)
        kinds = {row[1] for row in rel}
        assert kinds == {"symbol", "string"}

    def test_round_trip_bisimilar(self):
        g = from_obj(
            {"Entry": [{"Movie": {"Title": "Casablanca", "Year": 1942}}]}
        )
        rel, root = graph_to_edge_relation(g)
        back = edge_relation_to_graph(rel, root)
        assert bisimilar(g, back)

    def test_round_trip_cyclic(self):
        g = Graph()
        a, b = g.new_node(), g.new_node()
        g.set_root(a)
        g.add_edge(a, "References", b)
        g.add_edge(b, "Back", a)
        rel, root = graph_to_edge_relation(g)
        back = edge_relation_to_graph(rel, root)
        assert back.has_cycle()
        assert bisimilar(g, back)

    def test_unreachable_edges_dropped(self):
        g = from_obj({"a": 1})
        orphan1, orphan2 = g.new_node(), g.new_node()
        g.add_edge(orphan1, "ghost", orphan2)
        rel, _ = graph_to_edge_relation(g)
        assert all(row[2] != "ghost" for row in rel)

    def test_wrong_schema_rejected(self):
        with pytest.raises(RelationError):
            edge_relation_to_graph(Relation(("a", "b"), []), 0)


class TestTypedRelations:
    def test_one_relation_per_kind(self):
        g = from_obj({"Movie": {"Year": 1942, "Title": "Casablanca"}})
        rels, _ = graph_to_typed_relations(g)
        assert set(rels) == {"symbol", "int", "string"}

    def test_typed_rows_match_wide_rows(self):
        g = from_obj({"Movie": {"Year": 1942}})
        wide, _ = graph_to_edge_relation(g)
        typed, _ = graph_to_typed_relations(g)
        total = sum(len(r) for r in typed.values())
        assert total == len(wide)


class TestRelationalAsGraph:
    def test_tables_become_symbol_edges(self, catalog):
        g = relational_to_graph(catalog)
        from repro.core.labels import sym

        labels = {e.label for e in g.edges_from(g.root)}
        assert labels == {sym("Movies"), sym("Casts")}

    def test_tuples_become_tuple_edges(self, catalog):
        g = relational_to_graph(catalog)
        from repro.core.labels import sym

        (movies_edge,) = [
            e for e in g.edges_from(g.root) if e.label == sym("Movies")
        ]
        tuples = [
            e for e in g.edges_from(movies_edge.dst) if e.label == sym("tuple")
        ]
        assert len(tuples) == 2

    def test_round_trip_exact(self, catalog):
        # Attribute *order* is not observable in the graph model (edge
        # sets are unordered), so schemas come back sorted; compare
        # modulo column order.
        from repro.relational.algebra import project

        back = graph_to_relational(relational_to_graph(catalog))
        assert set(back) == set(catalog)
        for name, rel in catalog.items():
            assert set(back[name].schema) == set(rel.schema)
            assert project(back[name], rel.schema) == rel

    def test_empty_table_round_trips(self):
        catalog = {"Empty": Relation(("a",), [])}
        back = graph_to_relational(relational_to_graph(catalog))
        assert back["Empty"].rows == frozenset()
        # schema of an empty table cannot be recovered from tuples; it
        # degrades to the empty schema, which is the information the
        # graph actually carries.
        assert back["Empty"].schema == ()

    def test_semistructured_graph_rejected(self):
        # A graph where one tuple lacks an attribute is NOT relational.
        g = from_obj(
            {
                "T": [
                    {"tuple": {"a": 1, "b": 2}},
                    {"tuple": {"a": 3}},  # missing b
                ]
            }
        )
        # reshape: from_obj puts "tuple" under dict keys; build manually
        from repro.core.labels import sym

        g2 = Graph()
        root, table = g2.new_node(), g2.new_node()
        g2.set_root(root)
        g2.add_edge(root, "T", table)
        for row in ({"a": 1, "b": 2}, {"a": 3}):
            tnode = g2.new_node()
            g2.add_edge(table, "tuple", tnode)
            for attr, val in row.items():
                vnode, leaf = g2.new_node(), g2.new_node()
                g2.add_edge(tnode, attr, vnode)
                g2.add_edge(vnode, val, leaf)
        with pytest.raises(RelationError):
            graph_to_relational(g2)

    def test_mixed_value_types_round_trip(self):
        catalog = {
            "T": Relation(("flag", "name", "score"), [(True, "x", 1.5), (False, "y", 2.0)])
        }
        back = graph_to_relational(relational_to_graph(catalog))
        assert back["T"] == catalog["T"]
