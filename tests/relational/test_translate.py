r"""Tests: the UnQL->relational translation agrees with native evaluation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import from_obj
from repro.core.graph import Graph
from repro.core.labels import Label
from repro.relational.translate import TranslationError, translate_bindings
from repro.unql.evaluator import query_bindings
from repro.unql.parser import parse_query


def native_rows(query, graph) -> set[tuple]:
    """Native binding environments, flattened to comparable tuples."""
    envs = query_bindings(query, {"db": graph})
    out = set()
    for env in envs:
        row = []
        for var in sorted(env):
            bound = env[var]
            row.append(bound.value if isinstance(bound, Label) else bound)
        out.add(tuple(row))
    return out


def translated_rows(query, graph) -> set[tuple]:
    rel = translate_bindings(query, graph)
    return set(rel.rows)


def db() -> Graph:
    return from_obj(
        {
            "Entry": [
                {"Movie": {"Title": "Casablanca", "Cast": ["Bogart", "Bacall"], "Year": 1942}},
                {"Movie": {"Title": "Sam", "Director": "Ross", "Year": 1972}},
            ]
        }
    )


AGREEING_QUERIES = [
    r"select \t where {Entry.Movie.Title: \t} in db",
    r"select \t where {Entry.Movie: {Title: \t, Year: \y}} in db",
    r"select \t where {Entry._.Title: \t} in db",
    r"select \t where {#: {Title: \t}} in db",
    r"select \t where {Entry.Movie: {Title: \t, Director: \d}} in db",
    r'select \t where {Entry.Movie: {Title: \t, Year: 1942}} in db',
    r"select \L where {Entry.Movie: {\L: \v}} in db",
    r'select \L where {Entry.Movie: {\L: \v}} in db, \L like "D%"',
    r'select \t where {Entry.Movie: {Title: \t}} in db, {Entry.Movie.Year: \y} in db',
]


class TestAgreement:
    @pytest.mark.parametrize("text", AGREEING_QUERIES)
    def test_translation_matches_native(self, text):
        g = db()
        q = parse_query(text)
        assert translated_rows(q, g) == native_rows(q, g)

    def test_on_cyclic_graph(self):
        g = Graph()
        a, b, leaf = g.new_node(), g.new_node(), g.new_node()
        g.set_root(a)
        g.add_edge(a, "next", b)
        g.add_edge(b, "next", a)
        from repro.core.labels import string

        g.add_edge(b, string("v"), leaf)
        q = parse_query(r"select \t where {#: {\L: \t}} in db")
        assert translated_rows(q, g) == native_rows(q, g)

    def test_closure_step(self):
        g = from_obj({"a": {"b": {"c": {"leaf": 1}}}})
        q = parse_query(r"select \t where {a.#.leaf: \t} in db")
        assert translated_rows(q, g) == native_rows(q, g)

    def test_repeated_tree_variable(self):
        # {x: \t, y: \t} requires both edges to reach the same node
        g = Graph()
        r, shared = g.new_node(), g.new_node()
        g.set_root(r)
        g.add_edge(r, "x", shared)
        g.add_edge(r, "y", shared)
        other = g.new_node()
        g.add_edge(r, "y", other)
        q = parse_query(r"select \t where {x: \t, y: \t} in db")
        assert translated_rows(q, g) == native_rows(q, g)
        assert translated_rows(q, g) == {(shared,)}

    def test_comparison_on_label_var(self):
        g = db()
        q = parse_query(r'select \L where {Entry.Movie: {\L: \v}} in db, \L != "Title"')
        assert translated_rows(q, g) == native_rows(q, g)

    def test_empty_result(self):
        g = db()
        q = parse_query(r"select \t where {Entry.Ghost: \t} in db")
        assert translated_rows(q, g) == set()


class TestFragmentLimits:
    def test_alternation_rejected(self):
        q = parse_query(r"select \t where {Entry.(Movie|Show): \t} in db")
        with pytest.raises(TranslationError):
            translate_bindings(q, db())

    def test_negation_rejected(self):
        q = parse_query(r"select \t where {(!Movie)*: \t} in db")
        with pytest.raises(TranslationError):
            translate_bindings(q, db())

    def test_tree_var_condition_rejected(self):
        q = parse_query(r"select \t where {Entry.Movie.Year: \t} in db, \t > 1950")
        with pytest.raises(TranslationError):
            translate_bindings(q, db())

    def test_rebinding_rejected(self):
        q = parse_query(r"select \t where {Entry.Movie: \m} in db, {Title: \t} in \m")
        with pytest.raises(TranslationError):
            translate_bindings(q, db())

    def test_no_bindings_rejected(self):
        q = parse_query("select 1")
        with pytest.raises(TranslationError):
            translate_bindings(q, db())

    def test_typecheck_rejected(self):
        q = parse_query(r"select \v where {Entry.Movie._: \v} in db, isint(\v)")
        with pytest.raises(TranslationError):
            translate_bindings(q, db())


@st.composite
def random_dbs(draw):
    n = draw(st.integers(2, 6))
    g = Graph()
    nodes = [g.new_node() for _ in range(n)]
    g.set_root(nodes[0])
    for _ in range(draw(st.integers(1, 10))):
        g.add_edge(
            draw(st.sampled_from(nodes)),
            draw(st.sampled_from(["a", "b", "c"])),
            draw(st.sampled_from(nodes)),
        )
    return g


@given(
    random_dbs(),
    st.sampled_from(
        [
            r"select \t where {a: \t} in db",
            r"select \t where {a.b: \t} in db",
            r"select \t where {#: {a: \t}} in db",
            r"select \t where {_.b: \t} in db",
            r"select \L where {\L: \t} in db",
            r"select \t where {a: \t, b: \u} in db",
        ]
    ),
)
@settings(max_examples=80, deadline=None)
def test_prop_translation_equals_native(g, text):
    q = parse_query(text)
    assert translated_rows(q, g) == native_rows(q, g)
