"""Tests for relations and the relational algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.algebra import (
    Difference,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    Union,
    difference,
    evaluate,
    expr_schema,
    fixpoint,
    intersection,
    natural_join,
    product,
    project,
    rename,
    select,
    select_eq,
    union,
)
from repro.relational.relation import Relation, RelationError


@pytest.fixture()
def movies() -> Relation:
    return Relation(
        ("title", "year", "director"),
        [
            ("Casablanca", 1942, "Curtiz"),
            ("Play it again, Sam", 1972, "Ross"),
            ("Annie Hall", 1977, "Allen"),
        ],
    )


@pytest.fixture()
def casts() -> Relation:
    return Relation(
        ("title", "actor"),
        [
            ("Casablanca", "Bogart"),
            ("Casablanca", "Bacall"),
            ("Play it again, Sam", "Allen"),
            ("Annie Hall", "Allen"),
        ],
    )


class TestRelation:
    def test_set_semantics_dedups(self):
        r = Relation(("a",), [(1,), (1,), (2,)])
        assert len(r) == 2

    def test_arity_checked(self):
        with pytest.raises(RelationError):
            Relation(("a", "b"), [(1,)])

    def test_duplicate_attrs_rejected(self):
        with pytest.raises(RelationError):
            Relation(("a", "a"), [])

    def test_membership_and_iter(self, movies):
        assert ("Casablanca", 1942, "Curtiz") in movies
        assert len(list(movies)) == 3

    def test_column(self, movies):
        assert sorted(movies.column("year")) == [1942, 1972, 1977]

    def test_unknown_attr(self, movies):
        with pytest.raises(RelationError):
            movies.attr_pos("nope")

    def test_from_dicts_and_as_dicts(self):
        r = Relation.from_dicts(("a", "b"), [{"a": 1, "b": 2}])
        assert r.as_dicts() == [{"a": 1, "b": 2}]

    def test_equality_is_schema_and_rows(self):
        assert Relation(("a",), [(1,)]) == Relation(("a",), [(1,)])
        assert Relation(("a",), [(1,)]) != Relation(("b",), [(1,)])

    def test_index_on(self, casts):
        idx = casts.index_on(("actor",))
        assert len(idx[("Allen",)]) == 2

    def test_pretty_renders(self, movies):
        text = movies.pretty()
        assert "title" in text and "Casablanca" in text


class TestOperators:
    def test_select(self, movies):
        hits = select(movies, lambda row: row["year"] > 1970)
        assert len(hits) == 2

    def test_select_eq(self, movies):
        hits = select_eq(movies, "director", "Allen")
        assert hits.column("title") == ["Annie Hall"]

    def test_project_dedups(self, casts):
        actors = project(casts, ("actor",))
        assert len(actors) == 3

    def test_rename(self, movies):
        r = rename(movies, {"title": "name"})
        assert r.schema == ("name", "year", "director")
        assert len(r) == 3

    def test_natural_join(self, movies, casts):
        joined = natural_join(movies, casts)
        assert joined.schema == ("title", "year", "director", "actor")
        assert len(joined) == 4

    def test_join_without_shared_attrs_is_product(self):
        a = Relation(("x",), [(1,), (2,)])
        b = Relation(("y",), [(3,),])
        assert len(natural_join(a, b)) == 2

    def test_product_rejects_overlap(self, movies):
        with pytest.raises(RelationError):
            product(movies, movies)

    def test_union_difference_intersection(self):
        a = Relation(("x",), [(1,), (2,)])
        b = Relation(("x",), [(2,), (3,)])
        assert sorted(union(a, b).column("x")) == [1, 2, 3]
        assert difference(a, b).column("x") == [1]
        assert intersection(a, b).column("x") == [2]

    def test_union_schema_mismatch(self):
        with pytest.raises(RelationError):
            union(Relation(("x",), []), Relation(("y",), []))

    def test_fixpoint_transitive_closure(self):
        edges = Relation(("src", "dst"), [(1, 2), (2, 3), (3, 4)])

        def step(reach: Relation) -> Relation:
            hop = rename(edges, {"src": "dst", "dst": "far"})
            joined = natural_join(reach, hop)
            return rename(project(joined, ("src", "far")), {"far": "dst"})

        closure = fixpoint(edges, step)
        assert (1, 4) in closure
        assert len(closure) == 6

    def test_fixpoint_on_cycle_terminates(self):
        edges = Relation(("src", "dst"), [(1, 2), (2, 1)])

        def step(reach: Relation) -> Relation:
            hop = rename(edges, {"src": "dst", "dst": "far"})
            return rename(project(natural_join(reach, hop), ("src", "far")), {"far": "dst"})

        closure = fixpoint(edges, step)
        assert (1, 1) in closure and (2, 2) in closure


class TestExpressions:
    def test_evaluate_pipeline(self, movies, casts):
        catalog = {"Movies": movies, "Casts": casts}
        expr = Project(
            Select(Join(Scan("Movies"), Scan("Casts")), "actor", "Allen"),
            ("title",),
        )
        result = evaluate(expr, catalog)
        assert sorted(result.column("title")) == ["Annie Hall", "Play it again, Sam"]

    def test_union_difference_exprs(self, movies):
        catalog = {"M": movies}
        expr = Difference(Union(Scan("M"), Scan("M")), Scan("M"))
        assert len(evaluate(expr, catalog)) == 0

    def test_rename_expr(self, movies):
        out = evaluate(Rename(Scan("M"), "title", "t"), {"M": movies})
        assert "t" in out.schema

    def test_unknown_relation(self):
        with pytest.raises(RelationError):
            evaluate(Scan("missing"), {})

    def test_expr_schema_static(self, movies, casts):
        schemas = {"M": movies.schema, "C": casts.schema}
        expr = Project(Join(Scan("M"), Scan("C")), ("title", "actor"))
        assert expr_schema(expr, schemas) == ("title", "actor")


# -- property tests: algebraic laws ------------------------------------------


rows_strategy = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=8
)


@given(rows_strategy, rows_strategy)
@settings(max_examples=60, deadline=None)
def test_prop_union_commutative(rows_a, rows_b):
    a = Relation(("x", "y"), rows_a)
    b = Relation(("x", "y"), rows_b)
    assert union(a, b) == union(b, a)


@given(rows_strategy, rows_strategy)
@settings(max_examples=60, deadline=None)
def test_prop_join_commutes_up_to_schema_order(rows_a, rows_b):
    a = Relation(("x", "y"), rows_a)
    b = Relation(("y", "z"), rows_b)
    ab = natural_join(a, b)
    ba = natural_join(b, a)
    # same tuples modulo attribute order
    reordered = project(ba, ab.schema)
    assert reordered == ab


@given(rows_strategy)
@settings(max_examples=60, deadline=None)
def test_prop_select_then_project_commute_here(rows):
    r = Relation(("x", "y"), rows)
    one = project(select_eq(r, "x", 1), ("x",))
    other = select_eq(project(r, ("x",)), "x", 1)
    assert one == other
