"""Round-trip properties of the OEM shredding (satellite of E16).

:func:`~repro.relational.encode.oem_to_relations` is the encoding the
SQL backend loads into sqlite, so its round-trip has to be *identity*,
not isomorphism: same oids, same child order (including duplicate
``(label, child)`` pairs), same atom types, same names -- on cyclic
databases and shared subobjects, which ``from_obj`` alone cannot build.
The dump of the relations must also be byte-stable: deterministic row
ordering is what makes the pinned ``.sql`` goldens and the corpus
meaningful.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.oem import OemDatabase
from repro.relational.encode import (
    dump_relations,
    oem_to_relations,
    relations_to_oem,
)

ATOMS = st.sampled_from([0, 1, 2, -3, 1.0, 2.5, True, False, "x", "ab'c", ""])


@st.composite
def oem_databases(draw):
    """Arbitrary OEM shapes: cycles, sharing, duplicate edges, names.

    Built directly on the mutation API so back-edges and multi-parent
    children occur; ``from_obj`` only makes trees.
    """
    db = OemDatabase()
    root = db.new_complex()
    oids = [root]
    for _ in range(draw(st.integers(0, 5))):
        if draw(st.booleans()):
            oids.append(db.new_atomic(draw(ATOMS)))
        else:
            oids.append(db.new_complex())
    complex_oids = [o for o in oids if db.get(o).is_complex]
    for _ in range(draw(st.integers(0, 10))):
        db.add_child(
            draw(st.sampled_from(complex_oids)),
            draw(st.sampled_from(["A", "B", "b b", "'"])),
            draw(st.sampled_from(oids)),
        )
    db.set_name("DB", root)
    if len(oids) > 1 and draw(st.booleans()):
        db.set_name("Other", draw(st.sampled_from(oids)))
    return db


def _image(db):
    """Everything round-trip identity must preserve, as plain data."""
    return (
        {
            oid: (
                ("atom", type(db.get(oid).atom).__name__, db.get(oid).atom)
                if db.get(oid).is_atomic
                else ("complex", tuple(db.get(oid).children))
            )
            for oid in db.oids()
        },
        dict(db.names),
    )


@given(oem_databases())
def test_round_trip_identity(db):
    assert _image(relations_to_oem(oem_to_relations(db))) == _image(db)


@given(oem_databases())
def test_encoding_deterministic(db):
    """Two encodes of one database dump to identical bytes."""
    assert dump_relations(oem_to_relations(db)) == dump_relations(
        oem_to_relations(db)
    )


@given(oem_databases())
@settings(max_examples=25)
def test_round_trip_twice_is_stable(db):
    """Encode(decode(encode(db))) == encode(db): the image is a fixpoint."""
    once = oem_to_relations(db)
    again = oem_to_relations(relations_to_oem(once))
    assert dump_relations(again) == dump_relations(once)


def test_cycle_and_sharing_by_hand():
    """The two shapes the docstring promises, spelled out."""
    db = OemDatabase()
    root = db.new_complex()
    shared = db.new_atomic("s")
    loop = db.new_complex()
    db.add_child(root, "A", shared)
    db.add_child(root, "B", shared)  # shared subobject
    db.add_child(root, "C", loop)
    db.add_child(loop, "back", root)  # cycle
    db.add_child(root, "A", shared)  # duplicate (label, child) pair
    db.set_name("DB", root)
    back = relations_to_oem(oem_to_relations(db))
    assert _image(back) == _image(db)
    assert list(back.get(root).children) == [
        ("A", shared),
        ("B", shared),
        ("C", loop),
        ("A", shared),
    ]


def test_empty_complex_object_survives():
    """A childless complex object must not come back atomic."""
    db = OemDatabase()
    root = db.new_complex()
    empty = db.new_complex()
    db.add_child(root, "E", empty)
    db.set_name("DB", root)
    back = relations_to_oem(oem_to_relations(db))
    assert back.get(empty).is_complex
