r"""Cross-cutting algebraic laws, property-tested.

These are the semantic guarantees a downstream user leans on without
thinking: optimizers never change answers, equivalences are actually
preorders/equivalences, restructurings compose as documented.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bisim import bisimilar, reduce_graph
from repro.core.builder import from_obj
from repro.core.fusion import fuse_objects
from repro.core.graph import Graph
from repro.core.labels import sym
from repro.index import GraphIndexes
from repro.schema.dataguide import paths_equivalent
from repro.schema.inference import infer_schema
from repro.schema.simulation import graph_simulation
from repro.unql import collapse_edges, drop_edges, relabel, unql
from repro.unql.evaluator import evaluate_query
from repro.unql.optimizer import evaluate_with_indexes
from repro.unql.parser import parse_query


@st.composite
def graphs(draw, max_nodes: int = 6):
    n = draw(st.integers(1, max_nodes))
    g = Graph()
    nodes = [g.new_node() for _ in range(n)]
    g.set_root(nodes[0])
    for _ in range(draw(st.integers(0, 10))):
        g.add_edge(
            draw(st.sampled_from(nodes)),
            draw(st.sampled_from(["a", "b", "Title"])),
            draw(st.sampled_from(nodes)),
        )
    return g


QUERIES = st.sampled_from(
    [
        r"select \t where {a: \t} in db",
        r"select \t where {a.b: \t} in db",
        r"select \t where {Title: \t} in db",
        r"select {out: \t} where {#: {a: \t}} in db",
        r"select \L where {\L: \t} in db",
        r"select \t where {a: \t, b: \u} in db",
        r"select \t where {Ghost.a: \t} in db",
    ]
)


@given(graphs(), QUERIES)
@settings(max_examples=100, deadline=None)
def test_prop_optimizer_never_changes_answers(g, text):
    query = parse_query(text)
    plain = evaluate_query(query, {"db": g})
    optimized = evaluate_with_indexes(query, {"db": g}, GraphIndexes(g))
    assert bisimilar(plain, optimized)


@given(graphs(), QUERIES)
@settings(max_examples=60, deadline=None)
def test_prop_queries_respect_bisimulation(g, text):
    """Value-based semantics: bisimilar databases give bisimilar answers."""
    quotient = reduce_graph(g)
    a = unql(text, db=g)
    b = unql(text, db=quotient)
    assert bisimilar(a, b)


@given(graphs(), graphs(), graphs())
@settings(max_examples=40, deadline=None)
def test_prop_simulation_is_a_preorder(g1, g2, g3):
    # reflexive
    assert (g1.root, g1.root) in graph_simulation(g1, g1)
    # transitive on roots
    if (g1.root, g2.root) in graph_simulation(g1, g2) and (
        g2.root,
        g3.root,
    ) in graph_simulation(g2, g3):
        assert (g1.root, g3.root) in graph_simulation(g1, g3)


@given(graphs(), graphs())
@settings(max_examples=50, deadline=None)
def test_prop_equivalence_hierarchy(g1, g2):
    """bisimilar => mutually similar => path-equivalent, always.

    (The converse directions both fail; hypothesis originally *disproved*
    the reversed ordering of the last two -- see the witnesses in
    bench_e10_equality.py.)
    """
    if bisimilar(g1, g2):
        assert (g1.root, g2.root) in graph_simulation(g1, g2)
        assert (g2.root, g1.root) in graph_simulation(g2, g1)
    mutually_similar = (g1.root, g2.root) in graph_simulation(g1, g2) and (
        g2.root,
        g1.root,
    ) in graph_simulation(g2, g1)
    if mutually_similar:
        assert paths_equivalent(g1, g2)


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_prop_inferred_schema_always_conforms(g):
    assert infer_schema(g).conforms(g)
    assert infer_schema(g, k=1).conforms(g)


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_prop_drop_then_drop_is_idempotent(g):
    predicate = lambda lab, view: lab == sym("a")
    once = drop_edges(g, predicate)
    twice = drop_edges(once, predicate)
    assert bisimilar(once, twice)


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_prop_relabel_composes(g):
    to_b = lambda lab: sym("b") if lab == sym("a") else lab
    to_c = lambda lab: sym("c") if lab == sym("b") else lab
    composed = relabel(relabel(g, to_b), to_c)
    direct = relabel(g, lambda lab: to_c(to_b(lab)))
    assert bisimilar(composed, direct)


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_prop_collapse_all_of_missing_label_is_identity(g):
    out = collapse_edges(g, lambda lab, view: lab == sym("zzz-not-there"))
    assert bisimilar(out, g)


@st.composite
def keyed_collections(draw):
    n = draw(st.integers(1, 4))
    items = []
    for i in range(n):
        key = draw(st.sampled_from(["k1", "k2"]))
        items.append({"Key": key, f"attr{i}": i})
    return from_obj({"Item": items})


@given(keyed_collections())
@settings(max_examples=60, deadline=None)
def test_prop_fusion_is_idempotent(g):
    once = fuse_objects(g, "Item", (sym("Key"),))
    twice = fuse_objects(once, "Item", (sym("Key"),))
    assert bisimilar(once, twice)


@given(keyed_collections())
@settings(max_examples=60, deadline=None)
def test_prop_fusion_key_count_bounds_result(g):
    fused = fuse_objects(g, "Item", (sym("Key"),))
    from repro.automata.product import rpq_nodes

    keys = {
        e.label.value
        for n in rpq_nodes(g, "Item.Key")
        for e in g.edges_from(n)
        if e.label.is_base
    }
    assert len(rpq_nodes(fused, "Item")) == len(keys)
