"""Smoke tests over the public API surface: imports, __all__, docstrings.

A production library's contract starts with "everything exported imports
cleanly and is documented"; this file enforces that mechanically for every
subpackage.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.automata",
    "repro.unql",
    "repro.lorel",
    "repro.datalog",
    "repro.relational",
    "repro.index",
    "repro.schema",
    "repro.distributed",
    "repro.storage",
    "repro.browse",
    "repro.datasets",
    "repro.obs",
    "repro.resilience",
]


def all_modules():
    seen = list(PACKAGES)
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                seen.append(f"{pkg_name}.{info.name}")
    return sorted(set(seen))


@pytest.mark.parametrize("name", all_modules())
def test_module_imports_and_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"
    assert len(module.__doc__.strip()) > 40, f"{name} docstring is a stub"


@pytest.mark.parametrize("name", PACKAGES)
def test_package_all_resolves(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    assert exported, f"{name} exports nothing"
    for item in exported:
        assert hasattr(module, item), f"{name}.__all__ lists missing {item!r}"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_callables_have_docstrings(name):
    module = importlib.import_module(name)
    for item in getattr(module, "__all__", []):
        obj = getattr(module, item)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            assert obj.__doc__, f"{name}.{item} lacks a docstring"


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_top_level_convenience():
    # the README quickstart names survive refactors
    for name in ["tree", "render", "bisimilar", "Graph", "sym", "string"]:
        assert hasattr(repro, name)
