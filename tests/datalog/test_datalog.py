"""Tests for the graph-datalog parser, stratification, and evaluation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import from_obj
from repro.core.graph import Graph
from repro.datalog import (
    DatalogError,
    DatalogSyntaxError,
    check_safety,
    evaluate,
    parse_program,
    run_on_graph,
    stratify,
)

REACH = """
reach(X) :- root(X).
reach(Y) :- reach(X), edge(X, L, Y).
"""


class TestParser:
    def test_facts_and_rules(self):
        p = parse_program("p(1). q(X) :- p(X).")
        assert len(p.rules) == 2
        assert p.rules[0].is_fact

    def test_strings_and_numbers(self):
        p = parse_program('likes("alice", 3.5).')
        assert p.rules[0].head.terms[0].value == "alice"
        assert p.rules[0].head.terms[1].value == 3.5

    def test_variables_uppercase(self):
        p = parse_program("q(X, Y) :- e(X, Y).")
        head = p.rules[0].head
        from repro.datalog import Var

        assert all(isinstance(t, Var) for t in head.terms)

    def test_lowercase_idents_are_constants(self):
        p = parse_program("color(red).")
        assert p.rules[0].head.terms[0].value == "red"

    def test_negation(self):
        p = parse_program("q(X) :- e(X, Y), not bad(X).")
        assert p.rules[0].body[1].negated

    def test_comparisons(self):
        p = parse_program('q(X) :- e(X, L, Y), L != "Movie", X < 10.')
        from repro.datalog import Comparison

        assert isinstance(p.rules[0].body[1], Comparison)
        assert isinstance(p.rules[0].body[2], Comparison)

    def test_comments(self):
        p = parse_program("% header\np(1). % trailing\n")
        assert len(p.rules) == 1

    @pytest.mark.parametrize(
        "bad",
        ["", "p(X)", "p(X) :- .", "P(x).", "p() .", "p(X) :- q(X)"],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(DatalogSyntaxError):
            parse_program(bad)


class TestSafetyAndStratification:
    def test_unbound_head_variable(self):
        with pytest.raises(DatalogError):
            check_safety(parse_program("p(X, Y) :- q(X)."))

    def test_unbound_negated_variable(self):
        with pytest.raises(DatalogError):
            check_safety(parse_program("p(X) :- q(X), not r(Y)."))

    def test_unbound_comparison_variable(self):
        with pytest.raises(DatalogError):
            check_safety(parse_program("p(X) :- q(X), Y > 1."))

    def test_safe_program_passes(self):
        check_safety(parse_program("p(X) :- q(X), not r(X), X > 1."))

    def test_strata_ordering(self):
        p = parse_program(
            """
            a(X) :- base(X).
            b(X) :- base(X), not a(X).
            c(X) :- b(X).
            """
        )
        layers = stratify(p)
        flat = {pred: i for i, layer in enumerate(layers) for pred in layer}
        assert flat["a"] < flat["b"] <= flat["c"]

    def test_negation_in_cycle_rejected(self):
        p = parse_program(
            """
            win(X) :- move(X, Y), not win(Y).
            """
        )
        # win depends negatively on itself through recursion
        with pytest.raises(DatalogError):
            stratify(p)

    def test_positive_recursion_ok(self):
        layers = stratify(parse_program(REACH))
        assert {"reach"} in layers


class TestEvaluation:
    def test_reachability(self):
        g = from_obj({"a": {"b": {"c": None}}, "d": None})
        rows = run_on_graph(REACH, g, "reach")
        assert len(rows) == len(g.reachable())

    def test_reachability_on_cycle(self):
        g = Graph()
        a, b = g.new_node(), g.new_node()
        g.set_root(a)
        g.add_edge(a, "n", b)
        g.add_edge(b, "n", a)
        rows = run_on_graph(REACH, g, "reach")
        assert rows == {(a,), (b,)}

    def test_label_constrained_reachability(self):
        # the paper's flavor: reach without crossing a Movie edge
        g = from_obj({"Movie": {"x": None}, "Other": {"y": {"z": None}}})
        rows = run_on_graph(
            """
            reach(X) :- root(X).
            reach(Y) :- reach(X), edge(X, L, Y), L != "Movie".
            """,
            g,
            "reach",
        )
        # root, Other node, y node, z leaf -- never below Movie
        assert len(rows) == 4

    def test_same_generation(self):
        g = from_obj({"l": {"a": None, "b": None}, "r": {"c": None, "d": None}})
        rows = run_on_graph(
            """
            sg(X, X) :- node(X).
            sg(X, Y) :- edge(P, L1, X), edge(Q, L2, Y), sg(P, Q).
            """,
            g,
            "sg",
        )
        # the four leaves' parents are same-generation, so leaves all pair up
        leaves = [r for (r,) in run_on_graph("leafq(X) :- leaf(X).", g, "leafq")]
        for x in leaves:
            for y in leaves:
                assert (x, y) in rows

    def test_negation_stratified(self):
        g = from_obj({"a": {"x": None}, "b": None})
        rows = run_on_graph(
            """
            reach(X) :- root(X).
            reach(Y) :- reach(X), edge(X, L, Y).
            internal(X) :- reach(X), not leaf(X).
            """,
            g,
            "internal",
        )
        # root and the 'a' node are internal; leaves excluded
        assert len(rows) == 2

    def test_edgek_kind_queries(self):
        from repro.core.labels import string

        g = Graph()
        r, x, y = g.new_node(), g.new_node(), g.new_node()
        g.set_root(r)
        g.add_edge(r, "Movie", x)          # symbol
        g.add_edge(r, string("Movie"), y)  # string data
        rows = run_on_graph(
            'strings(L) :- edgek(S, "string", L, D).', g, "strings"
        )
        assert rows == {("Movie",)}

    def test_facts_in_program(self):
        result = evaluate(
            parse_program("p(1). p(2). q(X) :- p(X), X > 1."), {}
        )
        assert result["q"] == {(2,)}

    def test_fact_with_variable_rejected(self):
        with pytest.raises(DatalogError):
            evaluate(parse_program("p(X)."), {})

    def test_naive_and_semi_naive_agree(self):
        g = from_obj({"a": {"b": {"c": {"d": None}}}})
        fast = run_on_graph(REACH, g, "reach", semi_naive=True)
        slow = run_on_graph(REACH, g, "reach", semi_naive=False)
        assert fast == slow

    def test_transitive_closure_program(self):
        edb = {"e": {(1, 2), (2, 3), (3, 4)}}
        result = evaluate(
            parse_program(
                """
                tc(X, Y) :- e(X, Y).
                tc(X, Z) :- tc(X, Y), e(Y, Z).
                """
            ),
            edb,
        )
        assert (1, 4) in result["tc"]
        assert len(result["tc"]) == 6

    def test_constants_in_body_filter(self):
        edb = {"e": {(1, "a", 2), (1, "b", 3)}}
        result = evaluate(
            parse_program('t(Y) :- e(X, "a", Y).'), edb
        )
        assert result["t"] == {(2,)}


@given(
    st.lists(
        st.tuples(st.integers(0, 6), st.integers(0, 6)), min_size=1, max_size=15
    )
)
@settings(max_examples=50, deadline=None)
def test_prop_semi_naive_equals_naive_on_tc(edges):
    edb = {"e": set(edges)}
    program = parse_program(
        """
        tc(X, Y) :- e(X, Y).
        tc(X, Z) :- tc(X, Y), e(Y, Z).
        """
    )
    fast = evaluate(program, edb, semi_naive=True)["tc"]
    slow = evaluate(program, edb, semi_naive=False)["tc"]
    assert fast == slow


class TestGraphlogPathAtoms:
    """Graphlog-style path(X, "regex", Y) builtins ([16])."""

    def test_path_atom_binds_targets(self):
        g = from_obj({"a": {"b": {"c": None}}})
        rows = run_on_graph(
            '''
            hit(Y) :- root(X), path(X, "a.b", Y).
            ''',
            g,
            "hit",
        )
        assert len(rows) == 1

    def test_path_atom_with_star(self):
        g = Graph()
        a, b = g.new_node(), g.new_node()
        g.set_root(a)
        g.add_edge(a, "n", b)
        g.add_edge(b, "n", a)
        rows = run_on_graph('r(Y) :- root(X), path(X, "n*", Y).', g, "r")
        assert rows == {(a,), (b,)}

    def test_path_atom_checks_bound_target(self):
        g = from_obj({"a": {"b": None}})
        rows = run_on_graph(
            '''
            both(X, Y) :- root(X), path(X, "a.b", Y), leaf(Y).
            ''',
            g,
            "both",
        )
        assert len(rows) == 1

    def test_path_atom_composes_with_recursion(self):
        # hop two RPQ steps per recursive application
        g = from_obj({"a": {"a": {"a": {"a": None}}}})
        rows = run_on_graph(
            '''
            even(X) :- root(X).
            even(Y) :- even(X), path(X, "a.a", Y).
            ''',
            g,
            "even",
        )
        assert len(rows) == 3  # depths 0, 2, 4

    def test_unbound_start_rejected(self):
        g = from_obj({"a": None})
        from repro.datalog import DatalogError

        with pytest.raises(DatalogError):
            run_on_graph('p(Y) :- path(X, "a", Y), node(X).', g, "p")

    def test_needs_graph(self):
        from repro.datalog import DatalogError

        program = parse_program('p(Y) :- q(X), path(X, "a", Y).')
        with pytest.raises(DatalogError):
            evaluate(program, {"q": {(1,)}})

    def test_graphlog_negated_label_query(self):
        # the paper's flavor, in datalog clothing: reach Allen below Movie
        # without crossing another Movie edge
        g = from_obj(
            {"Movie": {"Cast": "Allen", "Sequel": {"Movie": {"Cast": "Orson"}}}}
        )
        rows = run_on_graph(
            '''
            hit(Y) :- root(X), path(X, "Movie.(!Movie)*", Y),
                      edgek(Y, "string", "Allen", Z).
            ''',
            g,
            "hit",
        )
        assert len(rows) == 1
