r"""Edge-case tests for the UnQL evaluator: conditions, coercions, errors."""

import pytest

from repro.core.bisim import bisimilar
from repro.core.builder import from_obj, to_obj
from repro.core.graph import Graph
from repro.unql import UnqlRuntimeError, unql


@pytest.fixture()
def db():
    return from_obj(
        {
            "Movie": [
                {"Title": "Casablanca", "Year": 1942, "Rating": 8.5},
                {"Title": "Vertigo", "Year": 1958, "Rating": 8.3},
            ]
        }
    )


class TestConditions:
    def test_var_to_var_comparison(self, db):
        out = unql(
            r"select \t where {Movie: {Title: \t, Year: \a}} in db,"
            r" {Movie.Year: \b} in db, \a < \b",
            db=db,
        )
        values = {e.label.value for e in out.edges_from(out.root)}
        assert values == {"Casablanca"}  # only 1942 < 1958

    def test_chained_conditions_are_conjunctive(self, db):
        out = unql(
            r"select \t where {Movie: {Title: \t, Year: \y}} in db,"
            r" \y > 1900, \y < 1950",
            db=db,
        )
        assert {e.label.value for e in out.edges_from(out.root)} == {"Casablanca"}

    def test_real_vs_int_comparison(self, db):
        out = unql(
            r"select \t where {Movie: {Title: \t, Rating: \r}} in db, \r > 8.4",
            db=db,
        )
        assert {e.label.value for e in out.edges_from(out.root)} == {"Casablanca"}

    def test_mixed_type_equality_fails_quietly(self, db):
        out = unql(
            r'select \t where {Movie: {Title: \t, Year: \y}} in db, \y = "x"',
            db=db,
        )
        assert bisimilar(out, Graph.empty())

    def test_mixed_type_inequality_succeeds(self, db):
        out = unql(
            r'select \t where {Movie: {Title: \t, Year: \y}} in db, \y != "x"',
            db=db,
        )
        assert out.out_degree(out.root) == 2

    def test_like_on_non_string_is_false(self, db):
        out = unql(
            r'select \t where {Movie: {Title: \t, Year: \y}} in db, \y like "19%"',
            db=db,
        )
        assert bisimilar(out, Graph.empty())

    def test_isleaf_on_tree_variable(self):
        g = from_obj({"a": None, "b": {"c": 1}})
        out = unql(
            r"select {leafy: \L} where {\L: \t} in db, isleaf(\t)", db=g
        )
        labels = {
            e.label.value
            for node in out.successors(out.root)
            for e in out.edges_from(node)
        }
        assert labels == {"a"}

    def test_isleaf_on_label_var_is_false(self):
        g = from_obj({"a": None})
        out = unql(r"select 1 where {\L: \t} in db, isleaf(\L)", db=g)
        assert bisimilar(out, Graph.empty())

    def test_comparison_on_complex_tree_fails(self, db):
        # \m binds whole movie objects: no scalar coercion exists
        out = unql(r'select \m where {Movie: \m} in db, \m = "x"', db=db)
        assert bisimilar(out, Graph.empty())


class TestConstructs:
    def test_label_var_as_construct_value(self):
        g = from_obj({"a": 1, "b": 2})
        out = unql(r"select {seen: \L} where {\L: \t} in db", db=g)
        # label values spliced as scalars below `seen`
        values = {
            e.label.value
            for node in out.successors(out.root)
            for e in out.edges_from(node)
        }
        assert values == {"a", "b"}

    def test_tree_var_scalar_as_label(self, db):
        out = unql(r"select {\y: \t} where {Movie: {Title: \t, Year: \y}} in db", db=db)
        labels = {e.label.value for e in out.edges_from(out.root)}
        assert labels == {1942, 1958}

    def test_tree_var_complex_as_label_raises(self, db):
        with pytest.raises(UnqlRuntimeError):
            unql(r"select {\m: 1} where {Movie: \m} in db", db=db)

    def test_empty_construct_tree(self, db):
        out = unql(r"select {} where {Movie.Title: \t} in db", db=db)
        assert bisimilar(out, Graph.empty())

    def test_nested_construct(self, db):
        out = unql(
            r"select {wrap: {inner: {deep: \t}}} where {Movie.Title: \t} in db",
            db=db,
        )
        decoded = to_obj(out)
        assert "wrap" in decoded

    def test_duplicate_answers_collapse_under_bisimulation(self):
        g = from_obj({"x": [{"v": 1}, {"v": 1}]})  # two identical subtrees
        out = unql(r"select {found: 1} where {x.v: \t} in db", db=g)
        # two bindings, but the *value* is one edge set with equal members
        assert bisimilar(out, from_obj({"found": 1}))


class TestErrors:
    def test_unbound_var_in_construct(self, db):
        with pytest.raises(UnqlRuntimeError):
            unql(r"select \ghost where {Movie.Title: \t} in db", db=db)

    def test_unbound_var_in_condition(self, db):
        with pytest.raises(UnqlRuntimeError):
            unql(r"select \t where {Movie.Title: \t} in db, \ghost = 1", db=db)

    def test_rebind_through_label_var_rejected(self):
        g = from_obj({"a": {"b": 1}})
        with pytest.raises(UnqlRuntimeError):
            unql(r"select \t where {\L: \x} in db, {b: \t} in \L", db=g)


class TestRepeatedVariables:
    def test_repeated_tree_var_requires_same_node(self):
        g = Graph()
        r, shared, other = g.new_node(), g.new_node(), g.new_node()
        g.set_root(r)
        g.add_edge(r, "x", shared)
        g.add_edge(r, "y", shared)
        g.add_edge(r, "y", other)
        out = unql(r"select {both: 1} where {x: \t, y: \t} in db", db=g)
        # exactly one env: the shared node
        assert out.out_degree(out.root) == 1

    def test_repeated_label_var_requires_same_label(self):
        g = from_obj({"a": {"a": 1}, "b": {"c": 2}})
        out = unql(r"select {\L: 1} where {\L: {\L: \v}} in db", db=g)
        labels = {e.label.value for e in out.edges_from(out.root)}
        assert labels == {"a"}  # only a.a repeats the label
