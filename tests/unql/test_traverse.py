"""Tests for the traverse restructuring syntax."""

import pytest

from repro.browse import find_value
from repro.core.bisim import bisimilar
from repro.core.builder import from_obj, to_obj
from repro.datasets import figure1
from repro.unql.traverse import TraverseSyntaxError, traverse


@pytest.fixture()
def db():
    return from_obj(
        {"Movie": {"Title": "Casablanca", "Cast": ["Bogart", "Bacall"]}}
    )


class TestReplace:
    def test_global_relabel(self, db):
        out = traverse("traverse db replace Movie => Film", db=db)
        assert "Film" in to_obj(out)

    def test_string_labels(self, db):
        out = traverse('traverse db replace "Bogart" => "Bergman"', db=db)
        assert find_value(out, "Bogart") == []
        assert find_value(out, "Bergman")

    def test_scoped_replace_under(self):
        g = figure1()
        out = traverse(
            'traverse db replace "Bacall" => "Bergman" under Cast', db=g
        )
        assert find_value(out, "Bacall") == []
        assert len(find_value(out, "Bergman")) == 1

    def test_numeric_labels(self):
        g = from_obj([10, 20])  # integer-labeled array edges 1 and 2
        out = traverse("traverse db replace 1 => 99", db=g)
        labels = sorted(e.label.value for e in out.edges_from(out.root))
        assert labels == [2, 99]

    def test_source_untouched(self, db):
        before = db.copy()
        traverse("traverse db replace Movie => Film", db=db)
        assert bisimilar(db, before)


class TestDeleteCollapse:
    def test_delete_drops_subtree(self, db):
        out = traverse("traverse db delete Cast", db=db)
        assert to_obj(out) == {"Movie": {"Title": "Casablanca"}}

    def test_collapse_keeps_children(self):
        g = from_obj({"wrap": {"x": 1, "y": 2}})
        out = traverse("traverse db collapse wrap", db=g)
        assert to_obj(out) == {"x": 1, "y": 2}

    def test_backquoted_symbols(self):
        g = from_obj({"TV Show": {"Title": "Special"}})
        out = traverse("traverse db delete `TV Show`", db=g)
        assert to_obj(out) is None


class TestShortcut:
    def test_shortcut_adds_edges(self):
        g = from_obj({"Part": {"Sub": {"v": 1}}})
        out = traverse("traverse db shortcut Part over Sub", db=g)
        from repro.automata.product import rpq_nodes

        assert rpq_nodes(out, "Part.v")
        assert rpq_nodes(out, "Part.Sub.v")  # original kept


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "traverse",
            "traverse db",
            "traverse db explode x",
            "traverse db replace a",
            "traverse db replace a => ",
            "traverse db replace a => b extra junk",
            "traverse db shortcut a",
            'traverse db replace "unterminated => b',
        ],
    )
    def test_syntax_errors(self, bad, db):
        with pytest.raises(TraverseSyntaxError):
            traverse(bad, db=db)

    def test_unknown_source(self, db):
        with pytest.raises(TraverseSyntaxError):
            traverse("traverse nowhere delete x", db=db)
