r"""Tests for semistructured views (section 3, [4])."""

import pytest

from repro.core.bisim import bisimilar
from repro.core.builder import from_obj
from repro.core.graph import Graph
from repro.unql.views import View, ViewCatalog, ViewError


def movies() -> Graph:
    return from_obj(
        {
            "Entry": [
                {"Movie": {"Title": "Casablanca", "Year": 1942}},
                {"Movie": {"Title": "Annie Hall", "Year": 1977}},
            ]
        }
    )


TITLES_VIEW = r"select {Title: \t} where {Entry.Movie.Title: \t} in db"


class TestView:
    def test_materialize(self):
        view = View("titles", TITLES_VIEW)
        result = view.materialize({"db": movies()})
        assert result.out_degree(result.root) == 2

    def test_unmaterialized_access_raises(self):
        with pytest.raises(ViewError):
            _ = View("v", TITLES_VIEW).graph

    def test_is_stale_detects_source_change(self):
        view = View("titles", TITLES_VIEW)
        db = movies()
        view.materialize({"db": db})
        assert not view.is_stale({"db": db})
        grown = db.union(from_obj({"Entry": {"Movie": {"Title": "Vertigo"}}}))
        assert view.is_stale({"db": grown})

    def test_refresh_reports_change(self):
        view = View("titles", TITLES_VIEW)
        db = movies()
        assert view.refresh({"db": db})  # first materialization counts
        assert not view.refresh({"db": db})  # unchanged source
        grown = db.union(from_obj({"Entry": {"Movie": {"Title": "Vertigo"}}}))
        assert view.refresh({"db": grown})

    def test_irrelevant_change_leaves_view_fresh(self):
        # adding data the view's pattern never touches does not change it
        view = View("titles", TITLES_VIEW)
        db = movies()
        view.materialize({"db": db})
        grown = db.union(from_obj({"Junk": {"ignored": 1}}))
        assert not view.is_stale({"db": grown})


class TestViewCatalog:
    def test_stacked_views(self):
        catalog = ViewCatalog(db=movies())
        catalog.define("titles", TITLES_VIEW)
        catalog.define(
            "wrapped", r"select {Name: \t} where {Title: \t} in titles"
        )
        catalog.materialize_all()
        wrapped = catalog["wrapped"].graph
        assert wrapped.out_degree(wrapped.root) == 2

    def test_query_through_views(self):
        catalog = ViewCatalog(db=movies())
        catalog.define("titles", TITLES_VIEW)
        catalog.materialize_all()
        out = catalog.query(r"select \t where {Title: \t} in titles")
        values = {e.label.value for e in out.edges_from(out.root)}
        assert values == {"Casablanca", "Annie Hall"}

    def test_update_base_propagates(self):
        catalog = ViewCatalog(db=movies())
        catalog.define("titles", TITLES_VIEW)
        catalog.define("wrapped", r"select {Name: \t} where {Title: \t} in titles")
        catalog.materialize_all()
        grown = movies().union(from_obj({"Entry": {"Movie": {"Title": "Vertigo"}}}))
        changed = catalog.update_base("db", grown)
        assert changed == ["titles", "wrapped"]

    def test_name_collisions_rejected(self):
        catalog = ViewCatalog(db=movies())
        catalog.define("titles", TITLES_VIEW)
        with pytest.raises(ViewError):
            catalog.define("titles", TITLES_VIEW)
        with pytest.raises(ViewError):
            catalog.define("db", TITLES_VIEW)

    def test_unknown_base_update_rejected(self):
        with pytest.raises(ViewError):
            ViewCatalog(db=movies()).update_base("nope", movies())

    def test_unknown_view_lookup(self):
        with pytest.raises(ViewError):
            ViewCatalog(db=movies())["ghost"]

    def test_view_restructures(self):
        # the [4] use case: a view that reshapes, not just filters
        catalog = ViewCatalog(db=movies())
        catalog.define(
            "index",
            r"select {ByYear: {\y: {Title: \t}}} "
            r"where {Entry.Movie: {Title: \t, Year: \y}} in db",
        )
        catalog.materialize_all()
        out = catalog.query(r"select \t where {ByYear.1942.Title: \t} in index")
        assert not bisimilar(out, Graph.empty())
