"""Tests for the deep restructuring operations of section 3."""

from repro.core.bisim import bisimilar
from repro.core.builder import from_obj, to_obj
from repro.core.graph import Graph
from repro.core.labels import string, sym
from repro.unql.restructure import (
    collapse_edges,
    drop_edges,
    fix_bacall,
    insert_below,
    keep_only,
    relabel,
    relabel_where,
    short_circuit,
)


def figure1_fragment() -> Graph:
    """The Casablanca entry of Figure 1, with its egregious error."""
    return from_obj(
        {
            "Entry": {
                "Movie": {
                    "Title": "Casablanca",
                    "Cast": ["Bogart", "Bacall"],
                    "Director": "Curtiz",
                }
            }
        }
    )


class TestRelabel:
    def test_uppercase_symbols(self):
        g = from_obj({"a": {"b": 1}})
        out = relabel(
            g, lambda lab: sym(str(lab.value).upper()) if lab.is_symbol else lab
        )
        assert bisimilar(out, from_obj({"A": {"B": 1}}))

    def test_relabel_where_condition_on_subtree(self):
        g = from_obj(
            {"item": {"price": 10}, "itemX": {"cost": 10}}
        )
        out = relabel_where(
            g,
            lambda lab, view: lab.is_symbol and view.has_edge(sym("price")),
            sym("priced_item"),
        )
        top = {str(e.label.value) for e in out.edges_from(out.root)}
        assert top == {"priced_item", "itemX"}

    def test_relabel_on_cycle(self):
        g = Graph()
        n = g.new_node()
        g.set_root(n)
        g.add_edge(n, "old", n)
        out = relabel(g, lambda lab: sym("new"))
        assert out.has_cycle()
        assert {e.label for e in out.edges_from(out.root)} == {sym("new")}


class TestCollapseAndDrop:
    def test_collapse_promotes_children(self):
        g = from_obj({"wrapper": {"x": 1, "y": 2}})
        out = collapse_edges(g, lambda lab, view: lab == sym("wrapper"))
        assert to_obj(out) == {"x": 1, "y": 2}

    def test_drop_removes_subtree(self):
        g = from_obj({"keep": 1, "junk": {"deep": {"deeper": 2}}})
        out = drop_edges(g, lambda lab, view: lab == sym("junk"))
        assert to_obj(out) == {"keep": 1}

    def test_keep_only_is_dual(self):
        g = from_obj({"keep": 1, "junk": 2})
        kept = keep_only(g, lambda lab, view: lab != sym("junk"))
        dropped = drop_edges(g, lambda lab, view: lab == sym("junk"))
        assert bisimilar(kept, dropped)

    def test_drop_with_subtree_condition(self):
        # delete movies that have no Title
        g = from_obj(
            {
                "Movie": {"Title": "Casablanca"},
                "Draft": {"Notes": "untitled"},
            }
        )
        out = drop_edges(
            g,
            lambda lab, view: lab.is_symbol
            and str(lab.value) in ("Movie", "Draft")
            and not view.has_edge(sym("Title")),
        )
        top = {str(e.label.value) for e in out.edges_from(out.root)}
        assert top == {"Movie"}

    def test_collapse_everything_empties(self):
        g = from_obj({"a": {"b": {"c": None}}})
        out = collapse_edges(g, lambda lab, view: True)
        assert bisimilar(out, Graph.empty())


class TestShortCircuit:
    def test_adds_skipping_edge(self):
        g = from_obj({"Part": {"Subpart": {"name": "bolt"}}})
        out = short_circuit(g, sym("Part"), sym("Subpart"))
        # root now reaches the subpart node directly via Part
        part_targets = [e.dst for e in out.edges_from(out.root) if e.label == sym("Part")]
        assert len(part_targets) == 2

    def test_no_duplicate_edges(self):
        g = from_obj({"a": {"b": None}})
        once = short_circuit(g, sym("a"), sym("b"))
        twice = short_circuit(once, sym("a"), sym("b"))
        assert once.num_edges == twice.num_edges

    def test_original_paths_kept(self):
        g = from_obj({"a": {"b": {"v": 1}}})
        out = short_circuit(g, sym("a"), sym("b"))
        from repro.automata.product import rpq_nodes

        assert rpq_nodes(out, "a.b.v")  # old path still there
        assert rpq_nodes(out, "a.v")  # new shortcut

    def test_on_cycle(self):
        g = Graph()
        a, b = g.new_node(), g.new_node()
        g.set_root(a)
        g.add_edge(a, "f", b)
        g.add_edge(b, "s", a)
        out = short_circuit(g, sym("f"), sym("s"))
        # a --f--> a shortcut created
        assert any(
            e.label == sym("f") and e.dst == e.src for e in out.edges()
        )


class TestInsertBelow:
    def test_payload_attached(self):
        g = from_obj({"Movie": {"Title": "Casablanca"}})
        payload = from_obj("checked")
        out = insert_below(g, sym("Movie"), sym("Status"), payload)
        decoded = to_obj(out)
        assert decoded["Movie"]["Status"] == "checked"
        assert decoded["Movie"]["Title"] == "Casablanca"

    def test_applies_at_depth(self):
        g = from_obj({"List": {"Movie": {"T": 1}, "Other": {"Movie": {"T": 2}}}})
        out = insert_below(g, sym("Movie"), sym("Mark"), from_obj(True))
        decoded = to_obj(out)
        assert decoded["List"]["Movie"]["Mark"] is True
        assert decoded["List"]["Other"]["Movie"]["Mark"] is True


class TestFixBacall:
    def test_corrects_only_within_cast(self):
        g = from_obj(
            {
                "Movie": {
                    "Cast": ["Bogart", "Bacall"],
                    "Elsewhere": "Bacall",
                }
            }
        )
        out = fix_bacall(g, string("Bacall"), string("Bergman"), sym("Cast"))
        decoded = to_obj(out)
        assert sorted(decoded["Movie"]["Cast"]) == ["Bergman", "Bogart"]
        assert decoded["Movie"]["Elsewhere"] == "Bacall"

    def test_figure1_fix(self):
        g = figure1_fragment()
        out = fix_bacall(g, string("Bacall"), string("Bergman"), sym("Cast"))
        from repro.browse import find_value

        assert find_value(out, "Bacall") == []
        assert len(find_value(out, "Bergman")) == 1
        # everything else untouched
        assert len(find_value(out, "Bogart")) == 1
        assert len(find_value(out, "Curtiz")) == 1

    def test_idempotent(self):
        g = figure1_fragment()
        once = fix_bacall(g, string("Bacall"), string("Bergman"), sym("Cast"))
        twice = fix_bacall(once, string("Bacall"), string("Bergman"), sym("Cast"))
        assert bisimilar(once, twice)
