"""Tests: the relational algebra on trees equals the algebra on relations.

The executable form of section 3's expressiveness theorem -- the core of
experiment E4.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import generate_catalog, random_algebra_term
from repro.relational.algebra import (
    Difference,
    Join,
    Project,
    Rename,
    Scan,
    Select,
    Union,
    evaluate,
    project,
)
from repro.relational.relation import Relation, RelationError
from repro.unql.relational_bridge import (
    evaluate_on_trees,
    relation_to_tree,
    tree_to_relation,
)


def assert_same(expr, catalog):
    relational = evaluate(expr, catalog)
    on_trees = tree_to_relation(evaluate_on_trees(expr, catalog))
    if not relational.rows:
        # the tree encoding of an empty relation carries no schema (a set
        # of zero tuples has no observable attributes): only emptiness is
        # comparable.
        assert not on_trees.rows
        return
    # tree schemas come back attribute-sorted (edge sets are unordered)
    assert set(on_trees.schema) == set(relational.schema)
    assert project(on_trees, relational.schema) == relational


@pytest.fixture()
def catalog():
    return {
        "Movies": Relation(
            ("title", "year"),
            [("Casablanca", 1942), ("Annie Hall", 1977), ("Sam", 1972)],
        ),
        "Casts": Relation(
            ("title", "actor"),
            [("Casablanca", "Bogart"), ("Annie Hall", "Allen"), ("Sam", "Allen")],
        ),
    }


class TestRoundTrip:
    def test_relation_tree_relation(self, catalog):
        rel = catalog["Movies"]
        back = tree_to_relation(relation_to_tree(rel))
        assert project(back, rel.schema) == rel

    def test_empty_relation(self):
        empty = Relation(("a",), [])
        assert len(tree_to_relation(relation_to_tree(empty))) == 0

    def test_ragged_tree_rejected(self):
        from repro.core.builder import from_obj

        g = from_obj({"tuple": [{"a": 1, "b": 2}, {"a": 3}]})
        with pytest.raises(RelationError):
            tree_to_relation(g)


class TestOperators:
    def test_select(self, catalog):
        assert_same(Select(Scan("Movies"), "year", 1942), catalog)

    def test_select_no_match(self, catalog):
        assert_same(Select(Scan("Movies"), "year", 1800), catalog)

    def test_project(self, catalog):
        assert_same(Project(Scan("Casts"), ("actor",)), catalog)

    def test_project_dedups_on_trees(self, catalog):
        # two Allen rows collapse: tuple subtrees are compared as values
        result = tree_to_relation(
            evaluate_on_trees(Project(Scan("Casts"), ("actor",)), catalog)
        )
        assert len(result) == 2

    def test_rename(self, catalog):
        assert_same(Rename(Scan("Movies"), "title", "name"), catalog)

    def test_union(self, catalog):
        assert_same(Union(Scan("Movies"), Scan("Movies")), catalog)

    def test_difference(self, catalog):
        expr = Difference(Scan("Movies"), Select(Scan("Movies"), "year", 1942))
        assert_same(expr, catalog)

    def test_join(self, catalog):
        assert_same(Join(Scan("Movies"), Scan("Casts")), catalog)

    def test_join_is_product_when_disjoint(self, catalog):
        expr = Join(
            Project(Scan("Movies"), ("year",)), Project(Scan("Casts"), ("actor",))
        )
        assert_same(expr, catalog)

    def test_composed_query(self, catalog):
        # titles of movies in which Allen acted
        expr = Project(
            Select(Join(Scan("Movies"), Scan("Casts")), "actor", "Allen"),
            ("title",),
        )
        assert_same(expr, catalog)


@given(st.integers(0, 200), st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_prop_random_terms_agree(seed, depth):
    catalog = generate_catalog(num_movies=6, num_actors=4, seed=1)
    expr = random_algebra_term(catalog, seed=seed, depth=depth)
    assert_same(expr, catalog)
