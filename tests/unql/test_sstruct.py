"""Tests for structural recursion: bulk semantics, cycles, reference laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bisim import bisimilar
from repro.core.builder import from_obj
from repro.core.graph import Graph
from repro.core.labels import sym
from repro.unql.sstruct import SubtreeView, keep_edge, rec, srec, srec_tree


def identity_body(label, _view):
    return keep_edge(label)


def upper_body(label, _view):
    if label.is_symbol:
        return keep_edge(sym(str(label.value).upper()))
    return keep_edge(label)


class TestSrecBasics:
    def test_identity_on_tree(self):
        g = from_obj({"Movie": {"Title": "Casablanca"}})
        assert bisimilar(srec(g, identity_body), g)

    def test_relabel_on_tree(self):
        g = from_obj({"a": {"b": None}})
        out = srec(g, upper_body)
        assert bisimilar(out, from_obj({"A": {"B": None}}))

    def test_empty_graph(self):
        out = srec(Graph.empty(), identity_body)
        assert out.out_degree(out.root) == 0

    def test_drop_all(self):
        g = from_obj({"a": {"b": None}, "c": None})
        out = srec(g, lambda label, view: Graph.empty())
        assert bisimilar(out, Graph.empty())

    def test_collapse_splices_children(self):
        g = from_obj({"wrap": {"x": None, "y": None}})
        out = srec(
            g,
            lambda label, view: rec() if label == sym("wrap") else keep_edge(label),
        )
        assert bisimilar(out, from_obj({"x": None, "y": None}))

    def test_duplicate_each_edge(self):
        g = from_obj({"a": None})
        out = srec(
            g, lambda label, view: keep_edge(label).union(keep_edge(sym("copy")))
        )
        labels = {e.label for e in out.edges_from(out.root)}
        assert labels == {sym("a"), sym("copy")}

    def test_constant_embedding(self):
        payload = from_obj({"note": "hi"})
        g = from_obj({"a": {"b": None}})
        out = srec(
            g,
            lambda label, view: Graph.singleton(label, payload.copy())
            if label == sym("b")
            else keep_edge(label),
        )
        # b's subtree replaced by the payload
        assert bisimilar(
            out, from_obj({"a": {"b": {"note": "hi"}}})
        )


class TestSrecOnCycles:
    def test_identity_on_self_loop(self):
        g = Graph()
        n = g.new_node()
        g.set_root(n)
        g.add_edge(n, "a", n)
        out = srec(g, identity_body)
        assert out.has_cycle()
        assert bisimilar(out, g)

    def test_relabel_on_cycle(self):
        g = Graph()
        a, b = g.new_node(), g.new_node()
        g.set_root(a)
        g.add_edge(a, "x", b)
        g.add_edge(b, "y", a)
        out = srec(g, upper_body)
        expected = Graph()
        a2, b2 = expected.new_node(), expected.new_node()
        expected.set_root(a2)
        expected.add_edge(a2, "X", b2)
        expected.add_edge(b2, "Y", a2)
        assert bisimilar(out, expected)

    def test_collapse_on_cycle_terminates(self):
        # collapsing every edge of a cycle gives the empty tree (nothing
        # observable remains -- only an epsilon cycle).
        g = Graph()
        n = g.new_node()
        g.set_root(n)
        g.add_edge(n, "loop", n)
        out = srec(g, lambda label, view: rec())
        assert bisimilar(out, Graph.empty())

    def test_mixed_cycle_collapse(self):
        # keep `a`, collapse `skip`: root -skip-> m -a-> root  ==> root -a-> root
        g = Graph()
        r, m = g.new_node(), g.new_node()
        g.set_root(r)
        g.add_edge(r, "skip", m)
        g.add_edge(m, "a", r)
        out = srec(
            g,
            lambda label, view: rec() if label == sym("skip") else keep_edge(label),
        )
        loop = Graph()
        n = loop.new_node()
        loop.set_root(n)
        loop.add_edge(n, "a", n)
        assert bisimilar(out, loop)

    def test_linear_cost_on_cycles(self):
        # every input edge instantiates exactly one template: output size
        # is O(edges), not O(paths).
        g = Graph()
        nodes = [g.new_node() for _ in range(50)]
        g.set_root(nodes[0])
        for i in range(50):
            g.add_edge(nodes[i], "n", nodes[(i + 1) % 50])
            g.add_edge(nodes[i], "m", nodes[(i * 7 + 3) % 50])
        out = srec(g, identity_body)
        # one template per input edge, each contributing O(1) output edges
        # (identity templates duplicate each edge once through the
        # epsilon-closure), so the output stays linear in the input.
        assert out.num_edges <= 3 * g.num_edges


class TestHorizontalConditions:
    def test_view_has_edge(self):
        g = from_obj(
            {"Movie": {"Title": "Casablanca"}, "Draft": {"NoTitle": 1}}
        )

        def body(label, view: SubtreeView):
            if label.is_symbol and view.has_edge(sym("Title")):
                return keep_edge(label)
            if label.is_base:
                return keep_edge(label)
            return Graph.empty()

        out = srec(g, body)
        top = {e.label for e in out.edges_from(out.root)}
        assert top == {sym("Movie")}

    def test_view_exists_within(self):
        g = from_obj({"deep": {"x": {"y": {"needle": 1}}}})
        view = SubtreeView(g, g.root)
        assert view.exists_within(lambda lab: lab == sym("needle"), depth=4)
        assert not view.exists_within(lambda lab: lab == sym("needle"), depth=2)

    def test_view_child_and_leaf(self):
        g = from_obj({"a": {"b": None}})
        view = SubtreeView(g, g.root)
        child = view.child(sym("a"))
        assert child is not None
        assert child.child(sym("b")).is_leaf()
        assert view.child(sym("zzz")) is None

    def test_view_to_graph_is_copy(self):
        g = from_obj({"a": {"b": None}})
        sub = SubtreeView(g, g.root).child(sym("a")).to_graph()
        assert bisimilar(sub, from_obj({"b": None}))


class TestAgainstReferenceSemantics:
    def test_tree_reference_agrees_simple(self):
        g = from_obj({"a": {"b": None, "c": 3}, "d": None})
        assert bisimilar(srec(g, identity_body), srec_tree(g, identity_body))
        assert bisimilar(srec(g, upper_body), srec_tree(g, upper_body))


# -- property tests ----------------------------------------------------------


@st.composite
def tree_objs(draw, depth: int = 3):
    if depth == 0:
        return None
    keys = draw(st.lists(st.sampled_from("abc"), max_size=3, unique=True))
    return {k: draw(tree_objs(depth=depth - 1)) for k in keys} or None


def bodies():
    return st.sampled_from(
        [
            identity_body,
            upper_body,
            lambda label, view: rec() if label == sym("a") else keep_edge(label),
            lambda label, view: Graph.empty() if label == sym("b") else keep_edge(label),
            lambda label, view: keep_edge(label).union(keep_edge(sym("z"))),
            lambda label, view: Graph.singleton(sym("w"), rec()),
        ]
    )


@given(tree_objs(), bodies())
@settings(max_examples=80, deadline=None)
def test_prop_bulk_agrees_with_reference_on_trees(obj, body):
    g = from_obj(obj)
    assert bisimilar(srec(g, body), srec_tree(g, body))


@st.composite
def random_graphs(draw):
    n = draw(st.integers(1, 5))
    g = Graph()
    nodes = [g.new_node() for _ in range(n)]
    g.set_root(nodes[0])
    for _ in range(draw(st.integers(0, 8))):
        g.add_edge(
            draw(st.sampled_from(nodes)),
            draw(st.sampled_from("ab")),
            draw(st.sampled_from(nodes)),
        )
    return g


@given(random_graphs(), random_graphs(), bodies())
@settings(max_examples=60, deadline=None)
def test_prop_srec_respects_bisimulation(g1, g2, body):
    """The well-definedness restriction: bisimilar inputs give bisimilar
    outputs (this is what makes the recursion a function on tree values)."""
    if bisimilar(g1, g2):
        assert bisimilar(srec(g1, body), srec(g2, body))


@given(random_graphs(), bodies())
@settings(max_examples=60, deadline=None)
def test_prop_srec_total_on_cycles(g, body):
    out = srec(g, body)  # must terminate
    assert out.has_root
