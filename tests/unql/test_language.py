r"""Tests for the UnQL surface language: parser + evaluator + optimizer."""

import pytest

from repro.core.bisim import bisimilar
from repro.core.builder import from_obj, to_obj
from repro.core.graph import Graph
from repro.core.labels import string, sym
from repro.index import GraphIndexes
from repro.unql import UnqlRuntimeError, UnqlSyntaxError, parse_query, unql
from repro.unql.optimizer import fixed_path_of, query_is_prunable


@pytest.fixture()
def db() -> Graph:
    return from_obj(
        {
            "Entry": [
                {
                    "Movie": {
                        "Title": "Casablanca",
                        "Cast": ["Bogart", "Bacall"],
                        "Director": "Curtiz",
                        "Year": 1942,
                    }
                },
                {
                    "Movie": {
                        "Title": "Play it again, Sam",
                        "Cast": {"Credit": {"Actors": "Allen"}},
                        "Director": "Ross",
                        "Year": 1972,
                    }
                },
                {
                    "TV Show": {
                        "Title": "Annie Hall Special",
                        "actors": "Allen",
                    }
                },
            ]
        }
    )


def leaf_values(g: Graph) -> set:
    return {e.label.value for e in g.edges_from(g.root) if e.label.is_base}


class TestParser:
    def test_minimal_select(self):
        q = parse_query("select 1")
        assert q.bindings == ()

    def test_binding_and_condition(self):
        q = parse_query(r'select \t where {Movie.Title: \t} in db, \t = "x"')
        assert len(q.bindings) == 1
        assert len(q.conditions) == 1

    def test_conditions_without_bindings_rejected(self):
        with pytest.raises(UnqlSyntaxError):
            parse_query(r'select 1 where \x = 1')

    def test_nested_patterns(self):
        q = parse_query(r"select \t where {Entry: {Movie: {Title: \t}}} in db")
        assert len(q.bindings) == 1

    def test_label_variable_edge(self):
        q = parse_query(r"select \L where {\L: \t} in db")
        assert q.bindings[0].pattern.members[0].edge.var == "L"

    def test_bad_syntax(self):
        for bad in [
            "where",
            "select",
            r"select \t where {a: \t}",          # missing 'in'
            r"select \t where {a \t} in db",     # missing ':'
            r"select \t where {a: \t} in db,",   # trailing comma
        ]:
            with pytest.raises(UnqlSyntaxError):
                parse_query(bad)

    def test_construct_union(self):
        q = parse_query("select {a: 1} union {b: 2}")
        from repro.unql.ast import ConstructUnion

        assert isinstance(q.construct, ConstructUnion)

    def test_path_regex_edges(self):
        q = parse_query(r"select \t where {Entry.Movie.(Cast|Director): \t} in db")
        member = q.bindings[0].pattern.members[0]
        assert "Cast|Director" in member.edge.text


class TestEvaluation:
    def test_select_constant(self):
        out = unql("select {greeting: \"hi\"}")
        assert to_obj(out) == {"greeting": "hi"}

    def test_select_titles(self, db):
        out = unql(r"select \t where {Entry.Movie.Title: \t} in db", db=db)
        assert leaf_values(out) == {"Casablanca", "Play it again, Sam"}

    def test_select_with_construct(self, db):
        out = unql(
            r"select {Result: {Name: \t}} where {Entry.Movie.Title: \t} in db",
            db=db,
        )
        results = [e for e in out.edges_from(out.root) if e.label == sym("Result")]
        assert len(results) == 2

    def test_nested_pattern(self, db):
        out = unql(
            r"select \t where {Entry: {Movie: {Title: \t, Year: 1942}}} in db",
            db=db,
        )
        assert leaf_values(out) == {"Casablanca"}

    def test_literal_target_filters(self, db):
        out = unql(
            r'select \t where {Entry.Movie: {Title: \t, Director: "Curtiz"}} in db',
            db=db,
        )
        assert leaf_values(out) == {"Casablanca"}

    def test_arbitrary_depth_search(self, db):
        # find Allen wherever it occurs (both deep Cast and TV actors)
        out = unql(r'select {found: \t} where {#: {_: \t}} in db, \t = "Allen"', db=db)
        found = [e for e in out.edges_from(out.root) if e.label == sym("found")]
        assert len(found) >= 1

    def test_label_variable_binding(self, db):
        out = unql(
            r'select {\L: \t} where {Entry: {\L: {Title: \t}}} in db', db=db
        )
        labels = {str(e.label.value) for e in out.edges_from(out.root)}
        assert labels == {"Movie", "TV Show"}

    def test_label_variable_with_like(self, db):
        out = unql(
            r'select \t where {Entry._: {\L: \t}} in db, \L like "act%"',
            db=db,
        )
        assert leaf_values(out) == {"Allen"}

    def test_comparison_on_tree_value(self, db):
        out = unql(
            r"select \t where {Entry.Movie: {Title: \t, Year: \y}} in db, \y > 1950",
            db=db,
        )
        assert leaf_values(out) == {"Play it again, Sam"}

    def test_type_check_condition(self, db):
        out = unql(
            r"select \v where {Entry.Movie._: \v} in db, isint(\v)",
            db=db,
        )
        assert leaf_values(out) == {1942, 1972}

    def test_empty_result(self, db):
        out = unql(r'select \t where {Entry.Movie.Nothing: \t} in db', db=db)
        assert bisimilar(out, Graph.empty())

    def test_union_of_sources(self, db):
        other = from_obj({"Movie": {"Title": "Vertigo"}})
        out = unql(
            r"select \t union \u"
            r" where {Entry.Movie.Title: \t} in db, {Movie.Title: \u} in extra",
            db=db,
            extra=other,
        )
        assert "Vertigo" in leaf_values(out)

    def test_rebind_through_tree_var(self, db):
        out = unql(
            r"select \t where {Entry.Movie: \m} in db, {Title: \t} in \m",
            db=db,
        )
        assert leaf_values(out) == {"Casablanca", "Play it again, Sam"}

    def test_missing_source_raises(self):
        with pytest.raises(UnqlRuntimeError):
            unql(r"select \t where {a: \t} in nowhere")

    def test_negated_path_from_paper(self):
        # Allen under Movie without crossing another Movie edge.
        g = from_obj(
            {
                "Movie": {
                    "Cast": "Allen",
                    "Sequel": {"Movie": {"Cast": "Orson"}},
                }
            }
        )
        out = unql(r'select {found: 1} where {Movie.(!Movie)*: {_: "Allen"}} in db', db=g)
        assert not bisimilar(out, Graph.empty())
        out2 = unql(r'select {found: 1} where {Movie.(!Movie)*: {_: "Orson"}} in db', db=g)
        assert bisimilar(out2, Graph.empty())

    def test_cyclic_database(self):
        g = Graph()
        a, b, leaf = g.new_node(), g.new_node(), g.new_node()
        g.set_root(a)
        g.add_edge(a, "References", b)
        g.add_edge(b, "Back", a)
        g.add_edge(b, string("data"), leaf)
        out = unql(r"select \t where {(References|Back)*: \t} in db", db=g)
        assert out.has_root  # terminates and returns

    def test_backquoted_symbol_with_space(self, db):
        out = unql(r"select \t where {Entry.`TV Show`.Title: \t} in db", db=db)
        assert leaf_values(out) == {"Annie Hall Special"}


class TestOptimizer:
    def test_fixed_path_of(self):
        from repro.automata.regex import parse_path_regex

        assert fixed_path_of(parse_path_regex("Entry.Movie.Title")) == (
            sym("Entry"),
            sym("Movie"),
            sym("Title"),
        )
        assert fixed_path_of(parse_path_regex("Entry.#")) is None
        assert fixed_path_of(parse_path_regex("a*")) is None

    def test_prunable_query_detected(self, db):
        idx = GraphIndexes(db)
        q = parse_query(r"select \t where {Entry.Nonexistent.Title: \t} in db")
        assert query_is_prunable(q, idx)
        q2 = parse_query(r"select \t where {Entry.Movie.Title: \t} in db")
        assert not query_is_prunable(q2, idx)

    def test_optimized_results_identical(self, db):
        idx = GraphIndexes(db)
        queries = [
            r"select \t where {Entry.Movie.Title: \t} in db",
            r"select \t where {Entry.Movie: {Title: \t, Year: \y}} in db, \y > 1950",
            r"select \t where {Entry.Movie.Nothing: \t} in db",
            r'select {\L: \t} where {Entry: {\L: {Title: \t}}} in db',
        ]
        for q in queries:
            plain = unql(q, db=db)
            optimized = unql(q, indexes=idx, db=db)
            assert bisimilar(plain, optimized), q

    def test_pruned_query_returns_empty(self, db):
        idx = GraphIndexes(db)
        out = unql(
            r"select \t where {Entry.Ghost: \t} in db", indexes=idx, db=db
        )
        assert bisimilar(out, Graph.empty())
