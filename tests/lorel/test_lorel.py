"""Tests for the Lorel-style language: parser, coercion, evaluation."""

import pytest

from repro.core.oem import OemDatabase
from repro.lorel import (
    LorelRuntimeError,
    LorelSyntaxError,
    lorel,
    lorel_bindings,
    lorel_rows,
    parse_lorel,
    reorder_from_clauses,
)
from repro.lorel.coerce import compare_values, like_value


@pytest.fixture()
def db() -> OemDatabase:
    return OemDatabase.from_obj(
        {
            "Entry": [
                {
                    "Movie": {
                        "Title": "Casablanca",
                        "Year": 1942,
                        "Cast": ["Bogart", "Bacall"],
                        "Director": "Curtiz",
                    }
                },
                {
                    "Movie": {
                        "Title": "Play it again, Sam",
                        "Year": "1972",  # note: a *string* year
                        "Director": "Ross",
                        "Cast": {"Credit": 1.2e6, "Actors": "Allen"},
                    }
                },
                {"TV Show": {"Title": "Special", "actors": "Allen"}},
            ]
        }
    )


class TestParser:
    def test_basic_shape(self):
        q = parse_lorel("select m.Title from DB.Entry.Movie m")
        assert len(q.items) == 1
        assert len(q.from_clauses) == 1
        assert q.where is None

    def test_where_boolean_structure(self):
        q = parse_lorel(
            'select m.Title from DB.Entry.Movie m '
            'where m.Year > 1950 and not m.Director = "Ross" or exists m.Cast'
        )
        from repro.lorel.ast import BoolOp

        assert isinstance(q.where, BoolOp)
        assert q.where.op == "or"

    def test_as_label(self):
        q = parse_lorel("select m.Title as Name from DB.Entry.Movie m")
        assert q.items[0].label == "Name"

    def test_multiple_from_clauses(self):
        q = parse_lorel(
            "select m.Title, d.Map_name from DB.Entry.Movie m, DB.Map d"
        )
        assert [c.alias for c in q.from_clauses] == ["m", "d"]

    def test_general_path_expressions(self):
        q = parse_lorel("select x.Title from DB.#.Movie x")
        assert q.from_clauses[0].path_text == "#.Movie"

    def test_alias_chaining(self):
        q = parse_lorel("select c.Actors from DB.Entry.Movie m, m.Cast c")
        assert q.from_clauses[1].base == "m"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "select",
            "select m.T from",
            "select m.T from DB.X",          # missing alias
            "select from DB.X m",
            "select m.T from DB.X m where",
            "select m.T from DB.X select",   # keyword as alias
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(LorelSyntaxError):
            parse_lorel(bad)


class TestCoercion:
    def test_numeric_widening(self):
        assert compare_values(1942, "=", 1942.0)
        assert compare_values(1, "<", 1.5)

    def test_string_number_coercion(self):
        assert compare_values("1942", "=", 1942)
        assert compare_values(1972, "=", "1972")
        assert compare_values("10", ">", 9)

    def test_incomparable_types(self):
        assert not compare_values("abc", "=", 5)
        assert compare_values("abc", "!=", 5)
        assert not compare_values("abc", "<", 5)

    def test_bools_only_compare_to_bools(self):
        assert compare_values(True, "=", True)
        assert not compare_values(True, "=", 1)

    def test_like(self):
        assert like_value("Casablanca", "Casa%")
        assert like_value("Casablanca", "%blanca")
        assert not like_value(1942, "%")


class TestEvaluation:
    def test_simple_select(self, db):
        rows = lorel_rows(lorel("select m.Title from DB.Entry.Movie m", db))
        titles = sorted(r["Title"][0] for r in rows)
        assert titles == ["Casablanca", "Play it again, Sam"]

    def test_where_filter(self, db):
        rows = lorel_rows(
            lorel(
                'select m.Title from DB.Entry.Movie m where m.Director = "Curtiz"',
                db,
            )
        )
        assert [r["Title"] for r in rows] == [["Casablanca"]]

    def test_coercion_in_where(self, db):
        # Year of movie 2 is the *string* "1972": Lorel coerces it
        rows = lorel_rows(
            lorel("select m.Title from DB.Entry.Movie m where m.Year > 1950", db)
        )
        assert [r["Title"] for r in rows] == [["Play it again, Sam"]]

    def test_set_valued_comparison_is_existential(self, db):
        # Cast has two members; = compares existentially
        rows = lorel_rows(
            lorel(
                'select m.Title from DB.Entry.Movie m where m.Cast = "Bacall"', db
            )
        )
        assert [r["Title"] for r in rows] == [["Casablanca"]]

    def test_arbitrary_depth_path(self, db):
        rows = lorel_rows(
            lorel('select m.Title from DB.Entry.Movie m where m.Cast.# = "Allen"', db)
        )
        assert [r["Title"] for r in rows] == [["Play it again, Sam"]]

    def test_label_wildcards(self, db):
        rows = lorel_rows(
            lorel('select s.Title from DB.Entry.`TV Show` s where s.act% = "Allen"', db)
        )
        assert [r["Title"] for r in rows] == [["Special"]]

    def test_exists(self, db):
        rows = lorel_rows(
            lorel("select m.Title from DB.Entry.Movie m where exists m.Cast.Credit", db)
        )
        assert [r["Title"] for r in rows] == [["Play it again, Sam"]]

    def test_like_predicate(self, db):
        rows = lorel_rows(
            lorel('select m.Title from DB.Entry.Movie m where m.Title like "Casa%"', db)
        )
        assert [r["Title"] for r in rows] == [["Casablanca"]]

    def test_join_across_aliases(self, db):
        rows = lorel_rows(
            lorel(
                "select m.Title, c.Actors from DB.Entry.Movie m, m.Cast c "
                "where exists c.Actors",
                db,
            )
        )
        assert len(rows) == 1
        assert rows[0]["Actors"] == ["Allen"]

    def test_projection_of_complex_object(self, db):
        rows = lorel_rows(
            lorel('select m.Cast from DB.Entry.Movie m where m.Title = "Casablanca"', db)
        )
        (row,) = rows
        # two atomic cast members projected
        assert sorted(v for v in row["Cast"]) == ["Bacall", "Bogart"]

    def test_empty_answer(self, db):
        rows = lorel_rows(
            lorel('select m.Title from DB.Entry.Movie m where m.Year > 2000', db)
        )
        assert rows == []

    def test_unknown_alias_raises(self, db):
        with pytest.raises(LorelRuntimeError):
            lorel("select x.Title from Nowhere.Entry x", db)

    def test_cyclic_oem_data(self):
        db = OemDatabase()
        a, b = db.new_complex(), db.new_complex()
        t = db.new_atomic("looped")
        db.add_child(a, "ref", b)
        db.add_child(b, "back", a)
        db.add_child(b, "Title", t)
        db.set_name("DB", a)
        rows = lorel_rows(lorel("select x.Title from DB.(ref|back)* x", db))
        titles = [r for r in rows if "Title" in r]
        assert titles

    def test_answer_preserves_sharing(self, db):
        answer = lorel(
            'select m.Cast from DB.Entry.Movie m where m.Title = "Casablanca"', db
        )
        answer.validate()  # referential integrity of the copied structure


class TestOptimizer:
    def test_reorder_puts_cheap_first(self):
        q = parse_lorel(
            "select a.x from DB.#.deep a, DB.Top b"
        )
        ordered = reorder_from_clauses(q)
        assert ordered.from_clauses[0].alias == "b"

    def test_reorder_respects_dependencies(self):
        q = parse_lorel("select c.x from DB.#.Movie m, m.Cast c")
        ordered = reorder_from_clauses(q)
        aliases = [cl.alias for cl in ordered.from_clauses]
        assert aliases.index("m") < aliases.index("c")

    def test_optimized_answers_identical(self, db):
        text = (
            "select c.Actors, m.Title from DB.#.Movie m, m.Cast c "
            "where exists c.Actors"
        )
        plain = lorel_rows(lorel(text, db, optimize=False))
        fast = lorel_rows(lorel(text, db, optimize=True))
        assert plain == fast

    def test_bindings_match_regardless_of_order(self, db):
        q = parse_lorel("select m.Title from DB.Entry.Movie m, DB.Entry e")
        plain = lorel_bindings(q, db)
        ordered = lorel_bindings(reorder_from_clauses(q), db)
        as_sets = lambda envs: {tuple(sorted(e.items())) for e in envs}
        assert as_sets(plain) == as_sets(ordered)
