"""Routing layers over the SQL backend: planner, service, CLI, parity.

The backend is opt-in at every layer -- the planner only consults it
after :meth:`attach_sql`, the service only on an ``engine`` request
field, the CLI only under ``--engine`` -- and the pinned golden
profiles must stay byte-identical whether or not a backend is attached
anywhere in the process.
"""

import json
from pathlib import Path

import pytest

from repro.automata.product import rpq_nodes_profiled
from repro.core.convert import graph_to_oem
from repro.core.frozen import freeze
from repro.datasets import figure1, generate_movies, generate_web
from repro.lorel import evaluate_lorel_profiled, parse_lorel
from repro.obs.metrics import MetricsRegistry
from repro.planner import planner_for
from repro.service.server import QueryService
from repro.sqlbackend import lorel_sql_backend_for, sql_backend_for
from repro.unql import evaluate_query_profiled, parse_query


class TestPlannerRoute:
    def test_forced_sql_strategy(self):
        planner = planner_for(freeze(generate_web(25, seed=4)))
        native = planner.rpq("link.title", strategy="kernel")
        assert planner.rpq("link.title", strategy="sql") == native
        assert planner.describe()["sql"]["attached"] is True
        assert planner.describe()["sql"]["sql_answered"] >= 1
        assert "SELECT" in planner.describe()["sql"]["last_sql"]

    def test_auto_never_routes_sql_unattached(self):
        planner = planner_for(freeze(generate_web(25, seed=4)))
        planner.rpq("link.title", strategy="auto")
        assert planner.describe()["sql"] == {"attached": False}

    def test_auto_keeps_closures_native(self):
        planner = planner_for(freeze(generate_web(25, seed=4)))
        planner.attach_sql()
        native = planner.rpq("link*.title", strategy="kernel")
        assert planner.rpq("link*.title", strategy="auto") == native
        assert planner.describe()["sql"]["counters"]["executes"] == 0


GOLDEN = json.loads(
    (Path(__file__).parent.parent / "obs" / "golden_profiles.json").read_text()
)


class TestGoldenProfileParity:
    """Attaching SQL backends must not move a single pinned count."""

    def _attach_everything(self, graph):
        fg = freeze(graph)
        planner_for(fg).attach_sql()
        sql_backend_for(fg)
        lorel_sql_backend_for(graph_to_oem(graph))

    def test_rpq_profile_unmoved(self):
        g = figure1()
        self._attach_everything(g)
        _, profile = rpq_nodes_profiled(g, "Entry.Movie.Title")
        assert profile.as_dict() == GOLDEN["figure1/rpq-title"]

    def test_lorel_profile_unmoved(self):
        g = figure1()
        self._attach_everything(g)
        db = graph_to_oem(g)
        query = "select t from DB.Entry.Movie.Title t"
        _, profile = evaluate_lorel_profiled(
            parse_lorel(query), db, query_text=query
        )
        assert profile.as_dict() == GOLDEN["figure1/lorel-title"]

    def test_unql_profile_unmoved(self):
        g = generate_movies(30, seed=11)
        self._attach_everything(g)
        text = r"select \n where {Entry.Movie.Cast: \n} in db"
        _, profile = evaluate_query_profiled(
            parse_query(text), {"db": g, "DB": g}, query_text=text
        )
        assert profile.as_dict() == GOLDEN["movies30/unql-cast"]

    def test_closure_profile_unmoved(self):
        g = generate_web(40, seed=7)
        self._attach_everything(g)
        _, profile = rpq_nodes_profiled(g, "link*.keyword")
        assert profile.as_dict() == GOLDEN["web40/rpq-keywords"]


@pytest.fixture()
def service():
    svc = QueryService(generate_web(30, seed=1), metrics=MetricsRegistry())
    session = svc.connect()

    def run(request):
        task = svc.submit(session, request)
        for _ in task.steps():
            pass
        return task.response

    return svc, run


class TestServiceEngine:
    def test_sql_engine_agrees_and_is_labelled(self, service):
        svc, run = service
        native = run({"id": 1, "op": "rpq", "query": "link.title"})
        via_sql = run({"id": 2, "op": "rpq", "query": "link.title", "engine": "sql"})
        assert via_sql["result"] == native["result"]
        assert via_sql["engine"] == "sql" and "engine" not in native

    def test_auto_keeps_closures_native(self, service):
        svc, run = service
        native = run({"id": 1, "op": "rpq", "query": "link*.title"})
        auto = run({"id": 2, "op": "rpq", "query": "link*.title", "engine": "auto"})
        assert auto["result"] == native["result"]
        assert "engine" not in auto  # served natively
        stats = run({"id": 3, "op": "stats"})["result"]["metrics"]
        assert stats["service_sql_fallback"] == 1

    def test_lorel_and_unql_engines(self, service):
        svc, run = service
        lq = "select x.title from DB.link x"
        uq = r"select \t where {link.title: \t} in db"
        for op, query in (("lorel", lq), ("unql", uq)):
            native = run({"id": 1, "op": op, "query": query})
            via_sql = run({"id": 2, "op": op, "query": query, "engine": "sql"})
            assert via_sql["result"] == native["result"], op
            assert via_sql["engine"] == "sql"

    def test_bad_engine_is_a_protocol_error(self, service):
        svc, run = service
        out = run({"id": 1, "op": "rpq", "query": "x", "engine": "turbo"})
        assert out["status"] == "error"
        assert out["error_type"] == "ProtocolError"

    def test_profiled_request_stays_native(self, service):
        svc, run = service
        out = run(
            {"id": 1, "op": "rpq", "query": "link.title", "profile": True,
             "engine": "sql"}
        )
        assert out["status"] == "ok" and "profile" in out and "engine" not in out

    def test_sql_counter_in_stats(self, service):
        svc, run = service
        run({"id": 1, "op": "lorel", "query": "select x.url from DB.link x",
             "engine": "auto"})
        stats = run({"id": 2, "op": "stats"})["result"]["metrics"]
        assert stats["service_sql_answered"] == 1


class TestCliEngine:
    @pytest.fixture()
    def db_file(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(
            json.dumps(
                {"Entry": [
                    {"Movie": {"Title": "Casablanca", "Year": 1942}},
                    {"Movie": {"Title": "Vertigo", "Year": 1958}},
                ]}
            )
        )
        return str(path)

    @pytest.fixture()
    def wide_db_file(self, tmp_path):
        path = tmp_path / "wide.json"
        path.write_text(
            json.dumps({"A": {f"x{i:04d}": 0 for i in range(560)}})
        )
        return str(path)

    def test_lorel_engines_agree(self, db_file, capsys):
        from repro.cli import main

        args = ["lorel", db_file, "select m.Title from DB.Entry.Movie m"]
        outs = {}
        for engine in ("native", "sql", "auto"):
            assert main(args + ["--engine", engine]) == 0
            outs[engine] = capsys.readouterr().out
        assert outs["native"] == outs["sql"] == outs["auto"]
        assert "Casablanca" in outs["native"]

    def test_query_engines_agree(self, db_file, capsys):
        from repro.cli import main

        args = ["query", db_file, r"select \t where {Entry.Movie.Title: \t} in db"]
        outs = {}
        for engine in ("native", "sql"):
            assert main(args + ["--engine", engine]) == 0
            outs[engine] = capsys.readouterr().out
        assert outs["native"] == outs["sql"]

    def test_explicit_sql_surfaces_refusal(self, wide_db_file, capsys):
        from repro.cli import main

        args = ["lorel", wide_db_file, "select m from DB.A.x% m"]
        assert main(args + ["--engine", "sql"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_auto_falls_back_on_refusal(self, wide_db_file, capsys):
        from repro.cli import main

        args = ["lorel", wide_db_file, "select m from DB.A.x% m"]
        assert main(args + ["--engine", "native"]) == 0
        native_out = capsys.readouterr().out
        assert main(args + ["--engine", "auto"]) == 0
        assert capsys.readouterr().out == native_out
