"""Units for the SQL backend's load, facade, and routing pieces."""

import pytest

from repro.core.frozen import freeze
from repro.core.graph import Graph
from repro.core.oem import OemDatabase
from repro.datasets import figure1, generate_web
from repro.datasets.relational_data import generate_catalog
from repro.lorel import lorel, lorel_rows, parse_lorel
from repro.planner import planner_for
from repro.schema.dataguide import DataGuide
from repro.sqlbackend import (
    NotCompilable,
    SqlBackend,
    connect,
    encode_wide,
    lorel_sql_backend_for,
    sql_backend_for,
    unql_sql,
)
from repro.unql import evaluate_query, parse_query


def _record_graph():
    """root -A-> coll; coll with two member symbols sharing one shape."""
    from repro.core.labels import label_of, sym

    g = Graph()
    root = g.new_node()
    g.set_root(root)
    coll = g.new_node()
    g.add_edge(root, sym("A"), coll)
    for member, value in (("m1", "one"), ("m1", "uno"), ("m2", "two")):
        rec = g.new_node()
        g.add_edge(coll, sym(member), rec)
        vnode = g.new_node()
        g.add_edge(rec, sym("x"), vnode)
        leaf = g.new_node()
        g.add_edge(vnode, label_of(value), leaf)
    return g


class TestWideEncoding:
    def test_member_column_separates_symbols(self):
        """Two member symbols on one collection must not conflate.

        Regression for the encoding that keyed ``wide_member`` by
        collection alone: a ``m1`` query would have returned ``m2``'s
        records too.
        """
        conn = connect()
        encode_wide(conn, freeze(_record_graph()))
        m1 = conn.execute(
            "SELECT COUNT(*) FROM wide_member WHERE member = 'm1'"
        ).fetchone()[0]
        m2 = conn.execute(
            "SELECT COUNT(*) FROM wide_member WHERE member = 'm2'"
        ).fetchone()[0]
        assert (m1, m2) == (2, 1)

    def test_wide_plan_differential(self):
        """A guide-backed wide plan answers exactly like the kernel."""
        fg = freeze(_record_graph())
        backend = SqlBackend(fg, guide=DataGuide(fg))
        plan = backend.compile("A.m1.x")
        assert plan.kind == "wide"
        assert backend.rpq_nodes("A.m1.x") == planner_for(fg).rpq(
            "A.m1.x", strategy="kernel"
        )

    def test_wide_plan_on_relational_sample(self):
        """The fully record-shaped bridge dataset compiles wide."""
        from repro.relational.encode import relational_to_graph

        fg = freeze(relational_to_graph(generate_catalog(20, 10, seed=2)))
        backend = SqlBackend(fg, guide=DataGuide(fg))
        planner = planner_for(fg)
        for pattern in ("Movies.tuple.title", "Casts.tuple.actor"):
            assert backend.compile(pattern).kind == "wide"
            assert backend.rpq_nodes(pattern) == planner.rpq(
                pattern, strategy="kernel"
            )


class TestSqlBackendFacade:
    def test_plan_cache_and_counters(self):
        backend = SqlBackend(freeze(figure1()))
        backend.rpq_nodes("Entry.Movie.Title")
        backend.rpq_nodes("Entry.Movie.Title")
        assert backend.counters["compiles"] == 1
        assert backend.counters["plan_hits"] == 1
        assert backend.counters["executes"] == 2
        assert "SELECT" in backend.last_sql

    def test_favors_policy(self):
        backend = SqlBackend(freeze(generate_web(20, seed=1)))
        assert backend.favors("link.title")  # chain: sargable
        assert not backend.favors("link*.title")  # automaton: stays native
        over_dfa_cap = "(" + ".".join(["link"] * 80) + ")*"
        assert not backend.favors(over_dfa_cap)  # refusals are never favored

    def test_snapshot_memoization(self):
        g = figure1()
        fg = freeze(g)
        assert sql_backend_for(fg) is sql_backend_for(fg)


class TestLorelBackendStaleness:
    def test_rebuilt_on_mutation(self):
        db = OemDatabase.from_obj({"A": [{"v": 1}]})
        backend = lorel_sql_backend_for(db)
        assert lorel_sql_backend_for(db) is backend
        new_atom = db.new_atomic(2)
        db.add_child(db.lookup_name("DB"), "A", new_atom)
        fresh = lorel_sql_backend_for(db)
        assert fresh is not backend
        assert backend.is_stale() and not fresh.is_stale()

    def test_stale_answer_would_differ(self):
        """The rebuild matters: the old image misses the new child."""
        db = OemDatabase.from_obj({"A": [1]})
        old = lorel_sql_backend_for(db)
        db.add_child(db.lookup_name("DB"), "A", db.new_atomic(2))
        query = parse_lorel("select m from DB.A m")
        native = lorel_rows(lorel("select m from DB.A m", db))
        assert len(lorel_sql_backend_for(db).bindings(query)) == len(native)
        assert len(old.bindings(query)) != len(native)


class TestUnqlRouting:
    def test_per_member_fallback(self):
        """One member over the cap leaves that member native, not wrong."""
        g = Graph()
        root = g.new_node()
        g.set_root(root)
        hub = g.new_node()
        g.add_edge(root, "q", hub)
        for i in range(600):
            g.add_edge(root, f"x{i:04d}", hub)
        text = r"select {a: \t, b: \u} where {q: \t, x%: \u} in db"
        query = parse_query(text)
        sources = {"db": g, "DB": g}
        backend = SqlBackend(freeze(g))
        with pytest.raises(NotCompilable):
            backend.compile("x%")
        native = evaluate_query(query, sources)
        routed = unql_sql(query, sources, backend=backend)
        assert routed.num_edges == native.num_edges

    def test_variable_source_stays_native(self):
        """A var-sourced second binding is untouched by the rewrite."""
        g = Graph()
        root, mid, leaf = g.new_node(), g.new_node(), g.new_node()
        g.set_root(root)
        g.add_edge(root, "a", mid)
        g.add_edge(mid, "b", leaf)
        query = parse_query(r"select \u where {a: \t} in db, {b: \u} in \t")
        sources = {"db": g}
        native = evaluate_query(query, sources)
        routed = unql_sql(query, sources)
        assert routed.num_edges == native.num_edges
