"""Pinned SQL text: the compiler's emitted plans, snapshot-tested.

Each case compiles one query against one deterministic dataset and
compares the full emitted SQL (plus the bound parameter tuple and the
plan kind) against a ``.sql`` file under ``goldens/``.  The texts are
reviewable artifacts: a change to join ordering, filter pushdown, CTE
shape, or parameter binding shows up as a plain SQL diff in the PR.

When a compiler change is intentional, regenerate and review:

    PYTHONPATH=src python tests/sqlbackend/test_sql_goldens.py --regen
"""

import sys
from pathlib import Path

import pytest

from repro.core.convert import graph_to_oem
from repro.core.frozen import freeze
from repro.datasets import figure1, generate_movies, generate_web
from repro.lorel import parse_lorel
from repro.sqlbackend import SqlBackend, compile_lorel

GOLDEN_DIR = Path(__file__).parent / "goldens"

DATASETS = {
    "figure1": lambda: figure1(),
    "movies30": lambda: generate_movies(30, seed=11),
    "web40": lambda: generate_web(40, seed=7),
}

#: case name -> (dataset key, language, query text).  One case per plan
#: shape: wide-table lookups, pruned self-join chains, recursive-CTE
#: automata, and the Lorel clause/where compiler's main forms.
CASES = {
    "rpq-chain-fixed": ("figure1", "rpq", "Entry.Movie.Title"),
    "rpq-chain-glob": ("figure1", "rpq", "Entry.%.Title"),
    "rpq-chain-alt": ("figure1", "rpq", "Entry.(Movie|`TV Show`).Title"),
    "rpq-automaton-star": ("web40", "rpq", "link*.title"),
    "rpq-automaton-negation": ("figure1", "rpq", "Entry.Movie.(!Movie)*"),
    "lorel-plain": ("figure1", "lorel", "select m.Title from DB.Entry.Movie m"),
    "lorel-compare": (
        "movies30",
        "lorel",
        "select m.Title from DB.Entry.Movie m where m.Year < 1960",
    ),
    "lorel-two-clauses": (
        "movies30",
        "lorel",
        "select m.Title, c.Actors from DB.Entry.Movie m, m.Cast c",
    ),
    "lorel-exists-like": (
        "figure1",
        "lorel",
        'select m.Title from DB.Entry.Movie m '
        'where exists m.Cast and m.Title like "Casa%"',
    ),
    "lorel-closure-clause": (
        "web40",
        "lorel",
        "select x.title from DB.(link)* x",
    ),
}


def compute_text(name: str) -> str:
    dataset_key, language, query = CASES[name]
    graph = DATASETS[dataset_key]()
    if language == "rpq":
        plan = SqlBackend(freeze(graph)).compile(query)
    else:
        plan = compile_lorel(parse_lorel(query), graph_to_oem(graph))
    return (
        f"-- case: {name}\n-- dataset: {dataset_key}\n-- query: {query}\n"
        f"-- kind: {plan.kind}\n-- params: {plan.params!r}\n{plan.sql}\n"
    )


@pytest.mark.parametrize("name", sorted(CASES))
def test_sql_matches_golden(name):
    path = GOLDEN_DIR / f"{name}.sql"
    assert path.exists(), (
        f"no golden for {name}; regenerate with "
        f"PYTHONPATH=src python tests/sqlbackend/test_sql_goldens.py --regen"
    )
    assert compute_text(name) == path.read_text(encoding="utf-8")


@pytest.mark.parametrize("name", sorted(CASES))
def test_compilation_deterministic(name):
    assert compute_text(name) == compute_text(name)


def test_no_stale_goldens():
    assert {p.stem for p in GOLDEN_DIR.glob("*.sql")} == set(CASES)


def regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for stale in GOLDEN_DIR.glob("*.sql"):
        stale.unlink()
    for name in sorted(CASES):
        (GOLDEN_DIR / f"{name}.sql").write_text(
            compute_text(name), encoding="utf-8"
        )
        print(f"wrote goldens/{name}.sql")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
