-- case: rpq-automaton-negation
-- dataset: figure1
-- query: Entry.Movie.(!Movie)*
-- kind: automaton
-- params: ()
WITH RECURSIVE
dfa(s, lid, t) AS (
  VALUES
    (0, 0, 1),
    (1, 1, 3),
    (3, 0, 4),
    (3, 2, 4),
    (3, 3, 4),
    (3, 4, 4),
    (3, 5, 4),
    (3, 6, 4),
    (3, 7, 4),
    (3, 8, 4),
    (3, 9, 4),
    (3, 10, 4),
    (3, 11, 4),
    (3, 12, 4),
    (3, 13, 4),
    (3, 14, 4),
    (3, 15, 4),
    (3, 16, 4),
    (3, 17, 4),
    (3, 18, 4),
    (3, 19, 4),
    (3, 20, 4),
    (4, 0, 4),
    (4, 2, 4),
    (4, 3, 4),
    (4, 4, 4),
    (4, 5, 4),
    (4, 6, 4),
    (4, 7, 4),
    (4, 8, 4),
    (4, 9, 4),
    (4, 10, 4),
    (4, 11, 4),
    (4, 12, 4),
    (4, 13, 4),
    (4, 14, 4),
    (4, 15, 4),
    (4, 16, 4),
    (4, 17, 4),
    (4, 18, 4),
    (4, 19, 4),
    (4, 20, 4)
),
reach(node, state) AS (
  SELECT 0, 0
  UNION
  SELECT e.dst, d.t
  FROM reach AS r
  JOIN dfa AS d ON d.s = r.state
  JOIN edge AS e ON e.src = r.node AND e.lid = d.lid
)
SELECT DISTINCT node FROM reach
WHERE state IN (3, 4)
ORDER BY node
