-- case: rpq-automaton-star
-- dataset: web40
-- query: link*.title
-- kind: automaton
-- params: ()
WITH RECURSIVE
dfa(s, lid, t) AS (
  VALUES
    (0, 1, 2),
    (0, 3, 3),
    (3, 1, 2),
    (3, 3, 3)
),
reach(node, state) AS (
  SELECT 0, 0
  UNION
  SELECT e.dst, d.t
  FROM reach AS r
  JOIN dfa AS d ON d.s = r.state
  JOIN edge AS e ON e.src = r.node AND e.lid = d.lid
)
SELECT DISTINCT node FROM reach
WHERE state = 2
ORDER BY node
