-- case: lorel-exists-like
-- dataset: figure1
-- query: select m.Title from DB.Entry.Movie m where exists m.Cast and m.Title like "Casa%"
-- kind: lorel
-- params: ('Casa%',)
WITH RECURSIVE
b0(c0) AS (
  SELECT DISTINCT e1.dst
  FROM oem_edge AS e0, oem_edge AS e1
  WHERE e0.src = 1
    AND e0.label = 'Entry'
    AND e1.src = e0.dst
    AND e1.label = 'Movie'
)
SELECT c0 FROM b0 AS b
WHERE (EXISTS (SELECT 1 FROM oem_edge AS x1 WHERE x1.src = b.c0 AND x1.label = 'Cast') AND EXISTS (SELECT 1 FROM oem_edge AS x2, oem_atom AS x3 WHERE x2.src = b.c0 AND x2.label = 'Title' AND x3.oid = x2.dst AND lorel_like(x3.kind, x3.value, ?)))
ORDER BY c0
