-- case: rpq-chain-glob
-- dataset: figure1
-- query: Entry.%.Title
-- kind: chain
-- params: ()
SELECT DISTINCT e2.dst AS node
FROM edge AS e0
CROSS JOIN edge AS e1
CROSS JOIN edge AS e2
WHERE e0.src = 0
  AND e0.lid = 0
  AND e1.lid IN (0, 1, 2, 3, 4, 5, 9, 11, 12, 15, 16, 17)
  AND e1.src = e0.dst
  AND e2.lid = 2
  AND e2.src = e1.dst
ORDER BY node
