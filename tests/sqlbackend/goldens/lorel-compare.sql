-- case: lorel-compare
-- dataset: movies30
-- query: select m.Title from DB.Entry.Movie m where m.Year < 1960
-- kind: lorel
-- params: ('int', 1960)
WITH RECURSIVE
b0(c0) AS (
  SELECT DISTINCT e1.dst
  FROM oem_edge AS e0, oem_edge AS e1
  WHERE e0.src = 1
    AND e0.label = 'Entry'
    AND e1.src = e0.dst
    AND e1.label = 'Movie'
)
SELECT c0 FROM b0 AS b
WHERE EXISTS (SELECT 1 FROM oem_edge AS x1, oem_atom AS x2 WHERE x1.src = b.c0 AND x1.label = 'Year' AND x2.oid = x1.dst AND lorel_cmp(x2.kind, x2.value, '<', ?, ?))
ORDER BY c0
