-- case: lorel-closure-clause
-- dataset: web40
-- query: select x.title from DB.(link)* x
-- kind: lorel
-- params: ()
WITH RECURSIVE
d1(s, lbl, t) AS (
  VALUES (0, 'link', 2), (2, 'link', 2)
),
p2(seed, node, state) AS (
  VALUES (1, 1, 0)
  UNION
  SELECT p.seed, e.dst, d.t
  FROM p2 AS p
  JOIN d1 AS d ON d.s = p.state
  JOIN oem_edge AS e ON e.src = p.node AND e.label = d.lbl
),
b0(c0) AS (
  SELECT DISTINCT q.node
  FROM p2 AS q
  WHERE q.state IN (0, 2)
)
SELECT c0 FROM b0 AS b
ORDER BY c0
