-- case: lorel-two-clauses
-- dataset: movies30
-- query: select m.Title, c.Actors from DB.Entry.Movie m, m.Cast c
-- kind: lorel
-- params: ()
WITH RECURSIVE
b0(c0) AS (
  SELECT DISTINCT e1.dst
  FROM oem_edge AS e0, oem_edge AS e1
  WHERE e0.src = 1
    AND e0.label = 'Entry'
    AND e1.src = e0.dst
    AND e1.label = 'Movie'
),
b1(c0, c1) AS (
  SELECT DISTINCT b.c0, e0.dst
  FROM b0 AS b, oem_edge AS e0
  WHERE e0.src = b.c0
    AND e0.label = 'Cast'
)
SELECT c0, c1 FROM b1 AS b
ORDER BY c0, c1
