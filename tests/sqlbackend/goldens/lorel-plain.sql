-- case: lorel-plain
-- dataset: figure1
-- query: select m.Title from DB.Entry.Movie m
-- kind: lorel
-- params: ()
WITH RECURSIVE
b0(c0) AS (
  SELECT DISTINCT e1.dst
  FROM oem_edge AS e0, oem_edge AS e1
  WHERE e0.src = 1
    AND e0.label = 'Entry'
    AND e1.src = e0.dst
    AND e1.label = 'Movie'
)
SELECT c0 FROM b0 AS b
ORDER BY c0
