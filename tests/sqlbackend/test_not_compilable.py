"""The refusal contract: outside the fragment means *typed* refusal.

The compiler's caps (IN-list size, DFA materialization) and the Lorel
fragment's edges (unknown bases, rebound aliases) must all surface as
:class:`NotCompilable` with a stable ``reason`` slug -- and in every
such case the native engine still answers, so a router that catches the
exception loses speed, never correctness.  The fuzz property at the
bottom drives both engines over a cap-straddling vocabulary and asserts
the full trichotomy: equal answers, or a typed refusal plus a native
answer.  Wrong SQL is not one of the outcomes.
"""

import pytest
from hypothesis import event, given, settings
from hypothesis import strategies as st

from repro.core.frozen import freeze
from repro.core.graph import Graph
from repro.core.oem import OemDatabase
from repro.lorel.ast import LorelQuery, PathOperand, SelectItem
from repro.planner import planner_for
from repro.sqlbackend import NotCompilable, SqlBackend, compile_lorel, lorel_sql
from repro.sqlbackend.compiler import MAX_IN_LIST

#: Every reason slug the package emits; routers may switch on these.
REASONS = {"vocabulary", "dfa-too-large", "base", "alias", "predicate", "no-from"}


@pytest.fixture(scope="module")
def wide_vocab_graph():
    """A graph whose ``x``-prefixed vocabulary exceeds the IN-list cap."""
    g = Graph()
    root = g.new_node()
    g.set_root(root)
    hub = g.new_node()
    g.add_edge(root, "q", hub)
    for i in range(MAX_IN_LIST + 8):
        g.add_edge(root, f"x{i:04d}", hub)
    g.add_edge(hub, "x0000", root)
    return g


def test_vocabulary_cap(wide_vocab_graph):
    backend = SqlBackend(freeze(wide_vocab_graph))
    with pytest.raises(NotCompilable) as info:
        backend.compile("x%")
    assert info.value.reason == "vocabulary"
    assert backend.counters["not_compilable"] == 1


def test_dfa_cap():
    g = Graph()
    root = g.new_node()
    g.set_root(root)
    g.add_edge(root, "a", root)
    long_cycle = "(" + ".".join(["a"] * 80) + ")*"
    with pytest.raises(NotCompilable) as info:
        SqlBackend(freeze(g)).compile(long_cycle)
    assert info.value.reason == "dfa-too-large"


def test_unconstrained_wildcard_is_fine(wide_vocab_graph):
    """``#`` matches the *whole* vocabulary: no IN-list, no cap."""
    fg = freeze(wide_vocab_graph)
    backend = SqlBackend(fg)
    assert backend.rpq_nodes("#") == planner_for(fg).rpq("#", strategy="kernel")


def test_lorel_unknown_base_reason():
    db = OemDatabase.from_obj({"A": 1})
    with pytest.raises(NotCompilable) as info:
        lorel_sql("select m.A from Nowhere.A m", db)
    assert info.value.reason == "base"


def test_lorel_no_from_reason():
    db = OemDatabase.from_obj({"A": 1})
    query = LorelQuery(
        items=(SelectItem(PathOperand("m", None, "m"), None),),
        from_clauses=(),
        where=None,
    )
    with pytest.raises(NotCompilable) as info:
        compile_lorel(query, db)
    assert info.value.reason == "no-from"


def test_not_compilable_is_a_value_error():
    """Routers that only know ``ValueError`` still catch the refusal."""
    assert issubclass(NotCompilable, ValueError)
    exc = NotCompilable("vocabulary", "too many labels")
    assert exc.reason == "vocabulary"
    assert "vocabulary" in str(exc)


def test_planner_auto_falls_back(wide_vocab_graph):
    planner = planner_for(freeze(wide_vocab_graph))
    planner.attach_sql()
    native = planner.rpq("x%", strategy="kernel")
    assert planner.rpq("x%", strategy="auto") == native
    with pytest.raises(ValueError):
        planner.rpq("x%", strategy="sql")  # forced route refuses loudly


_CAP_PATTERNS = st.sampled_from(
    [
        "x%",  # over the IN-list cap
        "q",
        "q.x0000",
        "x0000.q",
        "(x%)*",  # cap inside a closure
        "#",
        "(q|x0000)+",
        "!q",  # matches the whole x-vocabulary: over the cap
        "%0%",
        "q.#.q",
    ]
)


@given(_CAP_PATTERNS)
@settings(max_examples=30, deadline=None)
def test_fuzz_refuse_or_agree(wide_vocab_graph, pattern):
    """The trichotomy: agreement, or typed refusal + native answer."""
    fg = freeze(wide_vocab_graph)
    native = planner_for(fg).rpq(pattern, strategy="kernel")
    try:
        via_sql = SqlBackend(fg).rpq_nodes(pattern)
    except NotCompilable as exc:
        event(f"refused: {exc.reason}")
        assert exc.reason in REASONS
        assert isinstance(native, set)  # native engine still answered
        return
    event("compiled")
    assert via_sql == native
