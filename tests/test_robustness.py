"""Robustness / failure-injection tests: no input may crash uncleanly.

Parsers must answer every string with either a parse or their documented
syntax error; the deserializer must answer every byte string with either a
graph or :class:`SerializationError`.  Anything else (KeyError,
RecursionError, UnboundLocalError...) is a bug.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.regex import RegexSyntaxError, parse_path_regex
from repro.core.builder import from_obj
from repro.datalog import DatalogSyntaxError, parse_program
from repro.lorel import LorelSyntaxError, parse_lorel
from repro.storage import SerializationError, dumps, loads
from repro.unql import UnqlSyntaxError, parse_query

# characters likely to stress each grammar
_REGEX_ALPHABET = 'abM.()|*+?_#!%<>"\'`1234567890- '
_QUERY_ALPHABET = 'select where in union like {}:,\\tLM."\'`%#()=<>! 123'
_DATALOG_ALPHABET = 'pqXY(),.:-not"% 123\n'


@given(st.text(alphabet=_REGEX_ALPHABET, max_size=30))
@settings(max_examples=300, deadline=None)
def test_fuzz_regex_parser(text):
    try:
        parse_path_regex(text)
    except RegexSyntaxError:
        pass


@given(st.text(alphabet=_QUERY_ALPHABET, max_size=50))
@settings(max_examples=300, deadline=None)
def test_fuzz_unql_parser(text):
    try:
        parse_query(text)
    except UnqlSyntaxError:
        pass


@given(st.text(alphabet=_QUERY_ALPHABET, max_size=50))
@settings(max_examples=300, deadline=None)
def test_fuzz_lorel_parser(text):
    try:
        parse_lorel(text)
    except LorelSyntaxError:
        pass


@given(st.text(alphabet=_DATALOG_ALPHABET, max_size=50))
@settings(max_examples=300, deadline=None)
def test_fuzz_datalog_parser(text):
    try:
        parse_program(text)
    except DatalogSyntaxError:
        pass


@given(st.binary(max_size=80))
@settings(max_examples=300, deadline=None)
def test_fuzz_deserializer_random_bytes(data):
    try:
        loads(data)
    except SerializationError:
        pass


@given(st.binary(min_size=1, max_size=8), st.integers(0, 200))
@settings(max_examples=200, deadline=None)
def test_fuzz_deserializer_mutated_graphs(noise, position):
    """Bit-flip a valid serialization: decode must succeed or raise cleanly.

    Only :class:`SerializationError` may escape -- invalid UTF-8 in a
    corrupted string payload is wrapped, not leaked as UnicodeDecodeError.
    """
    base = dumps(from_obj({"Movie": {"Title": "Casablanca", "Year": 1942}}))
    position %= len(base)
    mutated = base[:position] + noise + base[position + len(noise):]
    try:
        loads(mutated)
    except SerializationError:
        pass


def _sample_payload() -> bytes:
    return dumps(
        from_obj(
            {
                "Movie": {"Title": "Casablanca", "Year": 1942, "Classic": True},
                "Rating": 8.5,
                "Cast": ["Bogart", "Bergman"],
            }
        )
    )


def test_every_truncation_point_fails_cleanly():
    """Each strict prefix of a valid payload: SerializationError, always."""
    base = _sample_payload()
    for cut in range(len(base)):
        with pytest.raises(SerializationError):
            loads(base[:cut])


@given(st.integers(0, 10_000), st.integers(0, 255))
@settings(max_examples=200, deadline=None)
def test_single_byte_xor_round_trip(position, mask):
    """XOR one byte anywhere: loads must round-trip or raise cleanly."""
    base = _sample_payload()
    position %= len(base)
    flipped = bytes(
        b ^ mask if i == position else b for i, b in enumerate(base)
    )
    try:
        g = loads(flipped)
    except SerializationError:
        return
    # a decode that survives must itself be re-serializable
    assert isinstance(dumps(g), bytes)


class TestCraftedCorruption:
    """Hand-built payloads targeting the decoder's plausibility checks."""

    def _varint(self, value: int) -> bytes:
        out = bytearray()
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                return bytes(out)

    def test_rejects_non_bytes(self):
        with pytest.raises(SerializationError):
            loads("SSD1 not bytes")  # type: ignore[arg-type]

    def test_rejects_billion_node_claim(self):
        """An implausible count must be rejected *before* allocation."""
        payload = b"SSD1" + self._varint(10**9) + self._varint(0)
        with pytest.raises(SerializationError, match="implausible node count"):
            loads(payload)

    def test_rejects_billion_edge_claim(self):
        payload = (
            b"SSD1" + self._varint(1) + self._varint(0) + self._varint(10**9)
        )
        with pytest.raises(SerializationError, match="implausible"):
            loads(payload)

    def test_rejects_empty_graph(self):
        payload = b"SSD1" + self._varint(0) + self._varint(0)
        with pytest.raises(SerializationError):
            loads(payload)

    def test_rejects_root_out_of_range(self):
        payload = b"SSD1" + self._varint(1) + self._varint(5) + self._varint(0)
        with pytest.raises(SerializationError, match="root"):
            loads(payload)

    def test_rejects_invalid_utf8_string(self):
        payload = (
            b"SSD1"
            + self._varint(1)  # one node
            + self._varint(0)  # root
            + self._varint(1)  # degree 1
            + b"y"             # symbol label
            + self._varint(2)  # two payload bytes
            + b"\xff\xfe"      # not UTF-8
            + self._varint(0)  # edge target
        )
        with pytest.raises(SerializationError, match="corrupt string"):
            loads(payload)

    def test_rejects_trailing_garbage(self):
        with pytest.raises(SerializationError, match="trailing"):
            loads(_sample_payload() + b"\x00")


class TestDeepInputs:
    def test_deeply_nested_ingestion(self):
        obj = None
        for _ in range(300):
            obj = {"n": obj}
        g = from_obj(obj)
        assert g.num_edges == 300

    def test_50k_deep_chain_ingests_without_recursion(self):
        """from_obj is iterative: depth way past the interpreter's
        recursion limit must not raise RecursionError (regression)."""
        obj = None
        for i in range(50_000):
            obj = {"n": obj} if i % 2 else {"n": obj, "tag": i}
        g = from_obj(obj)
        # 50k chain edges + 25k tag edges + 25k scalar leaves under them
        assert g.num_edges == 100_000

    def test_deep_chain_round_trips_through_storage(self):
        obj = None
        for _ in range(50_000):
            obj = {"n": obj}
        g = from_obj(obj)
        assert loads(dumps(g)).num_edges == g.num_edges

    def test_to_obj_deep_chain_raises_documented_error(self):
        from repro.core.builder import DepthLimitError, to_obj

        obj = None
        for _ in range(50_000):
            obj = {"n": obj}
        g = from_obj(obj)
        with pytest.raises(DepthLimitError) as info:
            to_obj(g)
        assert info.value.operation == "to_obj"
        # the documented contract: a DepthLimitError IS a RecursionError
        # (old callers catching the builtin keep working) and a BuildError
        assert isinstance(info.value, RecursionError)

    def test_to_obj_decodes_up_to_its_limit(self):
        from repro.core.builder import to_obj

        obj = None
        depth = 900  # under the default 1000 but over what naive
        for _ in range(depth):  # recursion on a default stack would allow
            obj = {"n": obj}
        decoded = to_obj(from_obj(obj))
        for _ in range(depth):
            decoded = decoded["n"]
        assert decoded is None

    def test_to_obj_custom_limit(self):
        from repro.core.builder import DepthLimitError, to_obj

        obj = None
        for _ in range(20):
            obj = {"n": obj}
        with pytest.raises(DepthLimitError):
            to_obj(from_obj(obj), max_depth=10)
        assert to_obj(from_obj(obj), max_depth=2000) is not None

    def test_deep_regex_nesting(self):
        pattern = "(" * 40 + "a" + ")" * 40
        node = parse_path_regex(pattern)
        assert node is not None

    def test_unbalanced_regex_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse_path_regex("(" * 50 + "a")

    def test_huge_flat_object(self):
        g = from_obj({f"k{i}": i for i in range(2000)})
        assert g.out_degree(g.root) == 2000

    def test_pathological_star_nesting(self):
        from repro.automata.product import rpq_nodes

        g = from_obj({"a": {"a": {"a": None}}})
        hits = rpq_nodes(g, "((a*)*)*")
        assert len(hits) == 4
