"""Robustness / failure-injection tests: no input may crash uncleanly.

Parsers must answer every string with either a parse or their documented
syntax error; the deserializer must answer every byte string with either a
graph or :class:`SerializationError`.  Anything else (KeyError,
RecursionError, UnboundLocalError...) is a bug.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.regex import RegexSyntaxError, parse_path_regex
from repro.core.builder import from_obj
from repro.datalog import DatalogSyntaxError, parse_program
from repro.lorel import LorelSyntaxError, parse_lorel
from repro.storage import SerializationError, dumps, loads
from repro.unql import UnqlSyntaxError, parse_query

# characters likely to stress each grammar
_REGEX_ALPHABET = 'abM.()|*+?_#!%<>"\'`1234567890- '
_QUERY_ALPHABET = 'select where in union like {}:,\\tLM."\'`%#()=<>! 123'
_DATALOG_ALPHABET = 'pqXY(),.:-not"% 123\n'


@given(st.text(alphabet=_REGEX_ALPHABET, max_size=30))
@settings(max_examples=300, deadline=None)
def test_fuzz_regex_parser(text):
    try:
        parse_path_regex(text)
    except RegexSyntaxError:
        pass


@given(st.text(alphabet=_QUERY_ALPHABET, max_size=50))
@settings(max_examples=300, deadline=None)
def test_fuzz_unql_parser(text):
    try:
        parse_query(text)
    except UnqlSyntaxError:
        pass


@given(st.text(alphabet=_QUERY_ALPHABET, max_size=50))
@settings(max_examples=300, deadline=None)
def test_fuzz_lorel_parser(text):
    try:
        parse_lorel(text)
    except LorelSyntaxError:
        pass


@given(st.text(alphabet=_DATALOG_ALPHABET, max_size=50))
@settings(max_examples=300, deadline=None)
def test_fuzz_datalog_parser(text):
    try:
        parse_program(text)
    except DatalogSyntaxError:
        pass


@given(st.binary(max_size=80))
@settings(max_examples=300, deadline=None)
def test_fuzz_deserializer_random_bytes(data):
    try:
        loads(data)
    except SerializationError:
        pass


@given(st.binary(min_size=1, max_size=8), st.integers(0, 200))
@settings(max_examples=200, deadline=None)
def test_fuzz_deserializer_mutated_graphs(noise, position):
    """Bit-flip a valid serialization: decode must succeed or raise cleanly."""
    base = dumps(from_obj({"Movie": {"Title": "Casablanca", "Year": 1942}}))
    position %= len(base)
    mutated = base[:position] + noise + base[position + len(noise):]
    try:
        loads(mutated)
    except SerializationError:
        pass
    except UnicodeDecodeError:
        pass  # corrupt string payload: also a clean, typed failure


class TestDeepInputs:
    def test_deeply_nested_ingestion(self):
        obj = None
        for _ in range(300):
            obj = {"n": obj}
        g = from_obj(obj)
        assert g.num_edges == 300

    def test_deep_regex_nesting(self):
        pattern = "(" * 40 + "a" + ")" * 40
        node = parse_path_regex(pattern)
        assert node is not None

    def test_unbalanced_regex_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse_path_regex("(" * 50 + "a")

    def test_huge_flat_object(self):
        g = from_obj({f"k{i}": i for i in range(2000)})
        assert g.out_degree(g.root) == 2000

    def test_pathological_star_nesting(self):
        from repro.automata.product import rpq_nodes

        g = from_obj({"a": {"a": {"a": None}}})
        hits = rpq_nodes(g, "((a*)*)*")
        assert len(hits) == 4
