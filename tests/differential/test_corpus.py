"""Replay the pinned differential corpus on both engines.

``corpus.json`` is the durable half of the differential harness: where
the hypothesis properties explore fresh inputs every run, the corpus
replays exact cases forever -- representative queries over the bundled
datasets plus every shrunk counterexample a property run ever found
(each kept with a ``note`` naming the bug it caught).  A corpus case
that stops agreeing is a regression, full stop.
"""

import json
from pathlib import Path

import pytest

from repro.core.convert import graph_to_oem
from repro.core.frozen import freeze
from repro.core.oem import OemDatabase
from repro.datasets import figure1, generate_acedb, generate_movies, generate_web
from repro.lorel import lorel, lorel_rows
from repro.planner import planner_for
from repro.sqlbackend import NotCompilable, SqlBackend, lorel_sql, unql_sql
from repro.unql import evaluate_query, parse_query

from .test_differential import canonical

CORPUS = json.loads((Path(__file__).parent / "corpus.json").read_text())

#: Same generator pins as the golden-profile suite: byte-deterministic.
DATASETS = {
    "figure1": lambda: figure1(),
    "movies30": lambda: generate_movies(30, seed=11),
    "web40": lambda: generate_web(40, seed=7),
    "acedb20": lambda: generate_acedb(20, seed=3),
}

_CASE_IDS = [
    f"{case['engine']}-{i}-{case['dataset']}" for i, case in enumerate(CORPUS["cases"])
]


def _graph_of(case):
    if case["dataset"] == "obj":
        return None
    return DATASETS[case["dataset"]]()


@pytest.mark.parametrize("case", CORPUS["cases"], ids=_CASE_IDS)
def test_corpus_case(case):
    engine, query = case["engine"], case["query"]
    if engine == "rpq":
        g = _graph_of(case)
        fg = freeze(g)
        native = planner_for(fg).rpq(query, strategy="kernel")
        try:
            via_sql = SqlBackend(fg).rpq_nodes(query)
        except NotCompilable:
            pytest.fail(f"corpus RPQ case must compile: {query!r}")
        assert via_sql == native
    elif engine == "lorel":
        if case["dataset"] == "obj":
            db = OemDatabase.from_obj(case["obj"])
        else:
            db = graph_to_oem(_graph_of(case))
        native = lorel_rows(lorel(query, db))
        via_sql = lorel_rows(lorel_sql(query, db))
        assert via_sql == native
    else:
        g = _graph_of(case)
        parsed = parse_query(query)
        sources = {"db": g, "DB": g}
        assert canonical(unql_sql(parsed, sources)) == canonical(
            evaluate_query(parsed, sources)
        )
