"""Generators for the differential harness: databases and queries.

Everything here is deliberately small and gnarly: graphs with cycles
and shared subobjects, OEM trees with heterogeneous records and
duplicate labels, and query strings drawn from the grammars' awkward
corners (globs, wildcards, alternation under closure, comparisons that
mix types).  The differential tests only need *agreement* between the
two engines, so the strategies push for shapes where they could
plausibly disagree -- empty answers, unreachable labels, int/real/bool
atoms that collide under sqlite's affinity rules.
"""

from hypothesis import strategies as st

from repro.core.graph import Graph
from repro.core.oem import OemDatabase

#: The edge vocabulary of generated graphs.  Small on purpose: cycles,
#: label collisions, and empty answers all need repeated labels.
GRAPH_LABELS = ("a", "b", "c", "ab")

#: Record labels of generated OEM databases.  ``A``/``AB`` overlap under
#: the ``A%`` glob; ``v`` marks the atoms comparisons aim at.
OEM_LABELS = ("A", "B", "AB", "v")

#: Atom pool: values whose sqlite storage classes collide (1 vs 1.0 vs
#: True) plus strings that LIKE patterns partially match.
ATOMS = (0, 1, 2, 1.0, 2.5, True, False, "x", "xy", "y", "Ab", "")


@st.composite
def graphs(draw):
    """A small rooted graph: random edges over a fixed vocabulary.

    Self-loops, cycles, diamonds, and unreachable nodes all occur; every
    edge label is drawn from :data:`GRAPH_LABELS`.
    """
    n = draw(st.integers(2, 7))
    g = Graph()
    nodes = [g.new_node() for _ in range(n)]
    g.set_root(nodes[0])
    for _ in range(draw(st.integers(1, 14))):
        g.add_edge(
            draw(st.sampled_from(nodes)),
            draw(st.sampled_from(GRAPH_LABELS)),
            draw(st.sampled_from(nodes)),
        )
    return g


_PATTERN_ATOMS = st.sampled_from(
    ["a", "b", "c", "ab", "#", "!a", "a%", "%b", "(a|b)", "(a|c|ab)"]
)


@st.composite
def _pattern_node(draw, inner):
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return f"{draw(inner)}.{draw(inner)}"
    if kind == 1:
        return f"({draw(inner)}|{draw(inner)})"
    suffix = "*+?"[kind - 2]
    return f"({draw(inner)}){suffix}"


def rpq_patterns():
    """Path-regex texts: concatenation, alternation, closures, globs."""
    return st.recursive(_PATTERN_ATOMS, lambda inner: _pattern_node(inner), max_leaves=5)


@st.composite
def oem_values(draw, depth):
    """One OEM value: an atom, or a record over :data:`OEM_LABELS`."""
    if depth <= 0 or draw(st.booleans()):
        return draw(st.sampled_from(ATOMS))
    keys = draw(
        st.lists(st.sampled_from(OEM_LABELS), min_size=1, max_size=3, unique=True)
    )
    out = {}
    for key in keys:
        if draw(st.booleans()):
            out[key] = draw(
                st.lists(oem_values(depth - 1), min_size=1, max_size=2)
            )
        else:
            out[key] = draw(oem_values(depth - 1))
    return out


@st.composite
def oem_databases(draw):
    """An OEM database whose root holds 1-4 heterogeneous records."""
    entries = draw(st.lists(oem_values(2), min_size=1, max_size=4))
    return OemDatabase.from_obj({"A": entries, "B": draw(oem_values(1))})


_LOREL_STEPS = st.sampled_from(["A", "B", "AB", "v", "#", "A%", "(A|B)"])
_LOREL_LITERALS = st.sampled_from(['"x"', '"Ab"', "1", "2.5", "0", '""'])
_CMP_OPS = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])


@st.composite
def _lorel_path(draw, max_steps=2):
    steps = draw(st.lists(_LOREL_STEPS, min_size=1, max_size=max_steps))
    return ".".join(steps)


@st.composite
def _lorel_predicate(draw, aliases, depth=1):
    kind = draw(st.integers(0, 5 if depth > 0 else 3))
    alias = draw(st.sampled_from(aliases))
    operand = f"{alias}.{draw(_lorel_path())}"
    if kind == 0:
        return f"{operand} {draw(_CMP_OPS)} {draw(_LOREL_LITERALS)}"
    if kind == 1:
        return f"exists {operand}"
    if kind == 2:
        like_pat = draw(st.sampled_from(['"x%"', '"%b%"', '"A_"']))
        return f"{operand} like {like_pat}"
    if kind == 3:
        other = f"{draw(st.sampled_from(aliases))}.{draw(_lorel_path(1))}"
        return f"{operand} = {other}"
    left = draw(_lorel_predicate(aliases, depth - 1))
    right = draw(_lorel_predicate(aliases, depth - 1))
    if kind == 4:
        return f"{left} and {right}"
    return f"not ({right})"


@st.composite
def lorel_queries(draw):
    """Lorel texts over the generated OEM shape: 1-2 clauses, maybe where."""
    first_path = draw(_lorel_path())
    clauses = [f"DB.{first_path} m"]
    aliases = ["m"]
    if draw(st.booleans()):
        base = draw(st.sampled_from(["DB", "m"]))
        clauses.append(f"{base}.{draw(_lorel_path())} n")
        aliases.append("n")
    items = ", ".join(
        f"{a}.{draw(_lorel_path(1))}"
        for a in draw(st.lists(st.sampled_from(aliases), min_size=1, max_size=2))
    )
    text = f"select {items} from {', '.join(clauses)}"
    if draw(st.booleans()):
        text += f" where {draw(_lorel_predicate(aliases))}"
    return text


_UNQL_PATHS = st.sampled_from(
    ["a", "b", "ab", "a.b", "a.(b|c)", "(a|b).c", "a.b.c", "c.a"]
)


@st.composite
def unql_queries(draw):
    """UnQL texts whose root members exercise the SQL rewrite path."""
    path1 = draw(_UNQL_PATHS)
    if draw(st.booleans()):
        return rf"select \t where {{{path1}: \t}} in db"
    path2 = draw(_UNQL_PATHS)
    return rf"select {{hit: \t, also: \u}} where {{{path1}: \t, {path2}: \u}} in db"
