"""The differential harness: native engines vs the SQL backend.

Each property draws one random database and one random query, runs both
engines, and asserts agreement.  The contract under test is the one the
whole :mod:`repro.sqlbackend` package is built around:

* a query the compiler accepts answers **identically** to the native
  evaluator -- same node set for RPQ, same rows *in the same order* for
  Lorel, same constructed graph for UnQL;
* a query the compiler refuses raises :class:`NotCompilable` (never a
  wrong answer), and the native engine still answers it -- the fallback
  is total.

Answers are compared with bag semantics where the native contract is a
set (RPQ node sets, UnQL graphs canonicalized through ``to_obj``) and
with exact ordered equality for Lorel, whose binding-enumeration order
is part of the native contract the SQL engine reproduces.
"""

from hypothesis import event, given

from repro.core.convert import graph_to_oem
from repro.core.frozen import freeze
from repro.lorel import lorel, lorel_rows, parse_lorel
from repro.planner import planner_for
from repro.sqlbackend import (
    NotCompilable,
    SqlBackend,
    lorel_sql,
    unql_sql,
)
from repro.unql import evaluate_query, parse_query

from .strategies import (
    graphs,
    lorel_queries,
    oem_databases,
    rpq_patterns,
    unql_queries,
)


@given(graphs(), rpq_patterns())
def test_rpq_differential(g, pattern):
    """SQL RPQ answers equal the product-automaton kernel, or refuse."""
    fg = freeze(g)
    planner = planner_for(fg)
    native = planner.rpq(pattern, strategy="kernel")
    backend = SqlBackend(fg)
    try:
        via_sql = backend.rpq_nodes(pattern)
    except NotCompilable as exc:
        event(f"not-compilable: {exc.reason}")
        assert isinstance(native, set)  # the fallback answer exists
        return
    event(f"plan: {backend.compile(pattern).kind}")
    assert via_sql == native


@given(graphs(), rpq_patterns())
def test_rpq_planner_auto_route(g, pattern):
    """The planner's auto strategy agrees with kernel once SQL attaches."""
    planner = planner_for(freeze(g))
    planner.attach_sql()
    assert planner.rpq(pattern, strategy="auto") == planner.rpq(
        pattern, strategy="kernel"
    )


@given(oem_databases(), lorel_queries())
def test_lorel_differential(db, text):
    """SQL Lorel rows equal the native evaluator's, order included."""
    native = lorel_rows(lorel(text, db))
    try:
        via_sql = lorel_rows(lorel_sql(text, db))
    except NotCompilable as exc:
        event(f"not-compilable: {exc.reason}")
        return
    event("compiled")
    assert via_sql == native


@given(oem_databases(), lorel_queries())
def test_lorel_bindings_order(db, text):
    """SQL binding enumeration is the native lexicographic order."""
    from repro.lorel import lorel_bindings
    from repro.sqlbackend import lorel_sql_backend_for

    query = parse_lorel(text)
    native = lorel_bindings(query, db)
    backend = lorel_sql_backend_for(db)
    try:
        via_sql = backend.bindings(query)
    except NotCompilable as exc:
        event(f"not-compilable: {exc.reason}")
        return
    aliases = sorted(native[0]) if native else []
    assert [{a: env[a] for a in aliases} for env in via_sql] == [
        {a: env[a] for a in aliases} for env in native
    ]


def canonical(graph):
    """A cycle-safe, order-insensitive rendering of an answer graph.

    Children are compared as sorted multisets of ``(label, subtree)``
    pairs; a back-edge to a node on the current path renders as a
    marker, so cyclic answers (which ``to_obj`` refuses) compare fine.
    """

    def walk(node, on_path):
        if node in on_path:
            return "<cycle>"
        deeper = on_path | {node}
        return tuple(
            sorted(
                (
                    (repr(edge.label), walk(edge.dst, deeper))
                    for edge in graph.edges_from(node)
                ),
                key=repr,
            )
        )

    return walk(graph.root, frozenset())


@given(graphs(), unql_queries())
def test_unql_differential(g, text):
    """SQL-routed UnQL constructs the same answer graph as native."""
    query = parse_query(text)
    sources = {"db": g, "DB": g}
    native = canonical(evaluate_query(query, sources))
    via_sql = canonical(unql_sql(query, sources))
    assert via_sql == native


@given(graphs(), lorel_queries())
def test_lorel_differential_on_graph_views(g, text):
    """Lorel agreement holds on OEM views of arbitrary graphs too.

    ``graph_to_oem`` produces cyclic, shared-subobject databases the
    ``from_obj`` strategy cannot -- the shapes where binding enumeration
    and closure CTEs are most likely to diverge.
    """
    db = graph_to_oem(g)
    native = lorel_rows(lorel(text, db))
    try:
        via_sql = lorel_rows(lorel_sql(text, db))
    except NotCompilable as exc:
        event(f"not-compilable: {exc.reason}")
        return
    assert via_sql == native
