"""Hypothesis profiles for the differential suite.

The suite's value scales with case count, so CI runs a fixed, larger
profile (``HYPOTHESIS_PROFILE=ci``: 200 examples per engine pair, no
deadline -- sqlite warm-up is noisy) while local runs stay quick.  The
profile is selected by environment variable so a developer can
reproduce the CI workload exactly with one export.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.register_profile("dev", max_examples=25, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
