"""Tests for the section 1.3 browsing queries, scan vs. indexed."""

import pytest

from repro.browse import (
    find_attribute_names,
    find_integers_greater_than,
    find_value,
    where_is,
)
from repro.core.builder import from_obj
from repro.core.graph import Graph
from repro.index import GraphIndexes


@pytest.fixture()
def db() -> Graph:
    return from_obj(
        {
            "Entry": [
                {
                    "Movie": {
                        "Title": "Casablanca",
                        "Cast": ["Bogart", "Bacall"],
                        "Year": 1942,
                    }
                },
                {
                    "TV Show": {
                        "Title": "Play it again, Sam",
                        "actors": "Allen",
                        "Episodes": 70000,
                    }
                },
            ]
        }
    )


@pytest.fixture(params=["scan", "indexed"])
def maybe_indexes(request, db):
    return GraphIndexes(db).build_all() if request.param == "indexed" else None


class TestFindValue:
    def test_finds_casablanca(self, db, maybe_indexes):
        (hit,) = find_value(db, "Casablanca", indexes=maybe_indexes)
        assert hit.edge.label.value == "Casablanca"
        assert [str(l.value) for l in hit.path] == ["Entry", "Movie", "Title"]

    def test_missing_value(self, db, maybe_indexes):
        assert find_value(db, "Vertigo", indexes=maybe_indexes) == []

    def test_string_never_matches_symbol(self, db, maybe_indexes):
        # "Movie" appears as an attribute name, not as data.
        assert find_value(db, "Movie", indexes=maybe_indexes) == []

    def test_integer_value(self, db, maybe_indexes):
        (hit,) = find_value(db, 1942, indexes=maybe_indexes)
        assert hit.edge.label.value == 1942

    def test_scan_and_index_agree(self, db):
        idx = GraphIndexes(db).build_all()
        scan = {str(f) for f in find_value(db, "Allen")}
        indexed = {str(f) for f in find_value(db, "Allen", indexes=idx)}
        assert scan == indexed

    def test_where_is_renders_paths(self, db):
        (path_str,) = where_is(db, "Casablanca")
        assert path_str == "`Entry`.`Movie`.`Title`.'Casablanca'"


class TestIntegersGreaterThan:
    def test_finds_above_2_to_16(self, db, maybe_indexes):
        hits = find_integers_greater_than(db, 2**16, indexes=maybe_indexes)
        assert [h.edge.label.value for h in hits] == [70000]

    def test_threshold_is_strict(self, db, maybe_indexes):
        assert find_integers_greater_than(db, 70000, indexes=maybe_indexes) == []

    def test_reals_not_reported(self, maybe_indexes, db):
        g = from_obj({"Credit": 1.2e6, "Year": 1942})
        hits = find_integers_greater_than(g, 0)
        assert [h.edge.label.value for h in hits] == [1942]

    def test_all_integers_with_low_bound(self, db, maybe_indexes):
        hits = find_integers_greater_than(db, 0, indexes=maybe_indexes)
        assert sorted(h.edge.label.value for h in hits) == [1942, 70000]


class TestAttributeNames:
    def test_act_prefix(self, db, maybe_indexes):
        hits = find_attribute_names(db, "act%", indexes=maybe_indexes)
        assert [str(h.edge.label.value) for h in hits] == ["actors"]

    def test_case_sensitive(self, db, maybe_indexes):
        assert find_attribute_names(db, "Act%", indexes=maybe_indexes) == []

    def test_wildcard_both_sides(self, db, maybe_indexes):
        hits = find_attribute_names(db, "%itle%", indexes=maybe_indexes)
        assert len(hits) == 2

    def test_path_locates_the_object(self, db, maybe_indexes):
        (hit,) = find_attribute_names(db, "actors", indexes=maybe_indexes)
        assert [str(l.value) for l in hit.path] == ["Entry", "TV Show"]


class TestOnCyclicData:
    def test_search_terminates_and_finds(self):
        g = Graph()
        a, b = g.new_node(), g.new_node()
        leaf = g.new_node()
        g.set_root(a)
        g.add_edge(a, "References", b)
        g.add_edge(b, "IsReferencedIn", a)
        from repro.core.labels import string

        g.add_edge(b, string("needle"), leaf)
        (hit,) = find_value(g, "needle")
        assert [str(l.value) for l in hit.path] == ["References"]
