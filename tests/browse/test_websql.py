"""Tests for the WebSQL-flavoured dialect."""

import pytest

from repro.browse.websql import WebSqlError, parse_websql, websql
from repro.core.builder import from_obj
from repro.datasets import generate_web


@pytest.fixture()
def site():
    return from_obj(
        {
            "url": "http://x/home",
            "title": "home page",
            "link": [
                {
                    "url": "http://x/db",
                    "title": "database research",
                    "link": [{"url": "http://x/deep", "title": "deep page"}],
                },
                {"url": "http://x/people", "title": "people"},
            ],
        }
    )


class TestParse:
    def test_full_shape(self):
        q = parse_websql(
            'SELECT d.url, d.title FROM Document d SUCH THAT "link*" '
            'WHERE d.title CONTAINS "database"'
        )
        assert q.attributes == ("url", "title")
        assert q.path == "link*"
        assert q.contains_word == "database"

    def test_without_where(self):
        q = parse_websql('select d.url from Document d such that "link.link"')
        assert q.contains_attr is None

    @pytest.mark.parametrize(
        "bad",
        [
            "select from Document d",
            'select url from Document d such that "x"',   # missing alias dot
            'select d.url from Page d such that "x"',
            'select d.url from Document d such that x',   # unquoted path
            'select d.url from Document d such that "x" where d.t like "y"',
            'select d.url, e.url from Document d such that "x"',
        ],
    )
    def test_errors(self, bad):
        with pytest.raises(WebSqlError):
            parse_websql(bad)


class TestEvaluate:
    def test_path_selection(self, site):
        rows = websql(
            'select d.url from Document d such that "link"', site
        )
        urls = sorted(u for row in rows for u in row["url"])
        assert urls == ["http://x/db", "http://x/people"]

    def test_star_reaches_all(self, site):
        rows = websql('select d.url from Document d such that "link*"', site)
        assert len(rows) == 4

    def test_contains_filter(self, site):
        rows = websql(
            'select d.url from Document d such that "link*" '
            'where d.title contains "database"',
            site,
        )
        assert [row["url"] for row in rows] == [["http://x/db"]]

    def test_contains_is_word_level(self, site):
        # "data" is not a word of "database research"
        rows = websql(
            'select d.url from Document d such that "link*" '
            'where d.title contains "data"',
            site,
        )
        assert rows == []

    def test_missing_attribute_is_empty_list(self, site):
        rows = websql('select d.author from Document d such that "link"', site)
        assert all(row["author"] == [] for row in rows)

    def test_on_generated_cyclic_web(self):
        web = generate_web(60, seed=8)
        rows = websql(
            'select d.url from Document d such that "link*" '
            'where d.title contains "database"',
            web,
        )
        # terminates on cycles and respects the filter
        for row in rows:
            assert row["url"]
