"""Index observability: hit/miss accounting, staleness, index-vs-scan agreement.

The hit/miss counters are always on (plain integer adds), so queries can
report how much of their work the physical design answered.  These tests
pin the accounting semantics per index, the documented staleness behavior
after graph mutation (and ``refresh()`` as the way back), and -- the part
that makes the counters trustworthy -- that indexed answers agree with a
naive scan of the same graph.
"""

import pytest

from repro.core.labels import LabelKind, label_of, sym
from repro.datasets import figure1
from repro.index import GraphIndexes, LabelIndex, PathIndex, TextIndex, ValueIndex


@pytest.fixture
def graph():
    return figure1()


class TestLabelIndexAccounting:
    def test_hit_and_miss(self, graph):
        idx = LabelIndex(graph)
        assert idx.edges_with_label(sym("Movie"))
        assert idx.hits == 1 and idx.misses == 0
        assert idx.edges_with_label(sym("NoSuchLabel")) == ()
        assert idx.hits == 1 and idx.misses == 1

    def test_all_lookup_methods_account(self, graph):
        idx = LabelIndex(graph)
        idx.sources_with_label(sym("Movie"))
        idx.targets_of_label(sym("Movie"))
        idx.symbols_matching("Mov*")
        assert idx.hits == 3 and idx.misses == 0
        idx.symbols_matching("zzz*")  # matches nothing: a miss
        assert idx.misses == 1

    def test_agrees_with_scan(self, graph):
        idx = LabelIndex(graph)
        for label in set(e.label for e in graph.edges()):
            scan = [e for e in graph.edges() if e.label == label]
            assert sorted(map(repr, idx.edges_with_label(label))) == sorted(map(repr, scan))
            assert idx.sources_with_label(label) == {e.src for e in scan}
            assert idx.targets_of_label(label) == {e.dst for e in scan}


class TestValueIndexAccounting:
    def test_exact_hit_and_miss(self, graph):
        idx = ValueIndex(graph)
        assert idx.find_exact(label_of("Casablanca"))
        assert (idx.hits, idx.misses) == (1, 0)
        assert idx.find_exact(label_of("No Such Movie")) == ()
        assert (idx.hits, idx.misses) == (1, 1)

    def test_range_queries_account_on_iteration(self, graph):
        idx = ValueIndex(graph)
        # generators account lazily: consuming the iterator does the lookup
        assert list(idx.numbers_greater_than(0))
        assert (idx.hits, idx.misses) == (1, 0)
        assert not list(idx.numbers_greater_than(10**9))
        assert (idx.hits, idx.misses) == (1, 1)
        assert list(idx.strings_with_prefix("Casa"))
        assert not list(idx.strings_with_prefix("\x00impossible"))
        assert (idx.hits, idx.misses) == (2, 2)

    def test_agrees_with_scan(self, graph):
        idx = ValueIndex(graph)
        scan = sorted(
            e.label.value
            for e in graph.edges()
            if e.label.kind in (LabelKind.INT, LabelKind.REAL) and e.label.value > 1
        )
        assert sorted(e.label.value for e in idx.numbers_greater_than(1)) == scan


class TestTextIndexAccounting:
    def test_word_hit_and_miss(self, graph):
        idx = TextIndex(graph)
        assert idx.containing_word("casablanca")
        assert (idx.hits, idx.misses) == (1, 0)
        assert idx.containing_word("xyzzy") == ()
        assert (idx.hits, idx.misses) == (1, 1)

    def test_agrees_with_scan(self, graph):
        idx = TextIndex(graph)
        scan = [
            e
            for e in graph.edges()
            if e.label.kind is LabelKind.STRING and "allen" in str(e.label.value).lower()
        ]
        assert {repr(e) for e in idx.containing_word("Allen")} == {repr(e) for e in scan}


class TestPathIndexAccounting:
    def test_cache_semantics(self, graph):
        idx = PathIndex(graph, max_depth=2)
        path = (sym("Entry"), sym("Movie"))
        assert idx.lookup(path)
        assert (idx.hits, idx.misses) == (1, 0)
        # covered path with no matches is still a HIT: the index answered
        assert idx.lookup((sym("Nope"),)) == frozenset()
        assert (idx.hits, idx.misses) == (2, 0)
        # beyond max_depth the index cannot answer: a miss, and None
        assert idx.lookup((sym("a"),) * 3) is None
        assert (idx.hits, idx.misses) == (2, 1)

    def test_agrees_with_traversal(self, graph):
        idx = PathIndex(graph, max_depth=3)
        path = (sym("Entry"), sym("Movie"), sym("Title"))
        expected = set()
        frontier = {graph.root}
        for label in path:
            frontier = {
                e.dst for n in frontier for e in graph.edges_from(n) if e.label == label
            }
        expected = frontier
        assert idx.lookup(path) == expected


class TestGraphIndexesBundle:
    def test_accounting_reports_only_built_indexes(self, graph):
        indexes = GraphIndexes(graph)
        assert indexes.accounting() == {}
        indexes.label.edges_with_label(sym("Movie"))
        assert indexes.accounting() == {"label": {"hits": 1, "misses": 0}}
        assert indexes.total_hits == 1 and indexes.total_misses == 0

    def test_reset_accounting(self, graph):
        indexes = GraphIndexes(graph)
        indexes.label.edges_with_label(sym("Movie"))
        indexes.text.containing_word("xyzzy")
        assert indexes.total_hits == 1 and indexes.total_misses == 1
        indexes.reset_accounting()
        assert indexes.total_hits == 0 and indexes.total_misses == 0
        # same index objects, just zeroed counters
        assert indexes.accounting() == {
            "label": {"hits": 0, "misses": 0},
            "text": {"hits": 0, "misses": 0},
        }

    def test_indexes_are_stale_after_mutation_until_refresh(self, graph):
        indexes = GraphIndexes(graph)
        fresh_label = sym("BrandNew")
        assert indexes.label.edges_with_label(fresh_label) == ()
        graph.add_edge(graph.root, fresh_label, graph.new_node())
        # documented staleness: the built index still answers from its snapshot
        assert indexes.label.edges_with_label(fresh_label) == ()
        stale = indexes.label
        indexes.refresh()
        assert indexes.label is not stale  # rebuilt on next access
        assert len(indexes.label.edges_with_label(fresh_label)) == 1

    def test_refresh_resets_accounting_with_the_index(self, graph):
        indexes = GraphIndexes(graph)
        indexes.label.edges_with_label(sym("Movie"))
        indexes.refresh()
        assert indexes.accounting() == {}  # nothing built, nothing to report
        assert indexes.total_hits == 0
