"""Regression: a stale path index must never answer for the old graph.

The path index is positional -- after a mutation its target sets are
simply *wrong* (unlike label/value/text staleness, which is documented
incompleteness).  Direct holders get :class:`StaleIndexError`;
:class:`GraphIndexes` rebuilds transparently; frozen snapshots are
immutable, so an index over one can never go stale.
"""

import pytest

from repro.core.builder import from_obj
from repro.core.labels import sym
from repro.index import GraphIndexes, PathIndex, StaleIndexError


def build_graph():
    return from_obj({"Entry": {"Movie": {"Title": "Casablanca"}}})


def test_lookup_raises_after_mutation():
    g = build_graph()
    index = PathIndex(g)
    path = (sym("Entry"), sym("Movie"))
    assert len(index.lookup(path)) == 1
    assert not index.is_stale()
    g.add_edge(g.root, "Extra", g.new_node())
    assert index.is_stale()
    with pytest.raises(StaleIndexError, match="rebuild"):
        index.lookup(path)
    with pytest.raises(StaleIndexError):
        index.covers(path)


def test_graph_indexes_rebuild_transparently():
    g = build_graph()
    indexes = GraphIndexes(g)
    first = indexes.path
    assert first.lookup((sym("Entry"),))
    node = g.new_node()
    g.add_edge(g.root, "Extra", node)
    rebuilt = indexes.path
    assert rebuilt is not first
    assert rebuilt.lookup((sym("Extra"),)) == frozenset({node})


def test_frozen_snapshot_index_never_goes_stale():
    g = build_graph()
    fg = g.freeze()
    index = PathIndex(fg)
    g.add_edge(g.root, "Extra", g.new_node())
    # the snapshot did not move; the index over it stays valid
    assert not index.is_stale()
    assert index.lookup((sym("Entry"),))
