"""Tests for the four physical indexes of section 4."""

from repro.core.builder import from_obj
from repro.core.graph import Graph
from repro.core.labels import integer, string, sym
from repro.index import GraphIndexes, LabelIndex, PathIndex, TextIndex, ValueIndex
from repro.index.text_index import tokenize


def sample() -> Graph:
    return from_obj(
        {
            "Entry": [
                {
                    "Movie": {
                        "Title": "Casablanca",
                        "Cast": ["Bogart", "Bacall"],
                        "Year": 1942,
                    }
                },
                {
                    "Movie": {
                        "Title": "Play it again, Sam",
                        "Director": "Allen",
                        "Credit": 1.2e6,
                        "actors": "Allen",
                    }
                },
            ]
        }
    )


class TestLabelIndex:
    def test_edge_lookup(self):
        idx = LabelIndex(sample())
        assert len(idx.edges_with_label(sym("Movie"))) == 2
        assert len(idx.edges_with_label(sym("Director"))) == 1
        assert idx.edges_with_label(sym("Nope")) == ()

    def test_sources_and_targets(self):
        g = sample()
        idx = LabelIndex(g)
        assert len(idx.sources_with_label(sym("Title"))) == 2
        assert len(idx.targets_of_label(sym("Title"))) == 2

    def test_symbols_matching_glob(self):
        idx = LabelIndex(sample())
        names = [str(l.value) for l in idx.symbols_matching("act%")]
        assert names == ["actors"]
        caps = [str(l.value) for l in idx.symbols_matching("C%")]
        assert caps == ["Cast", "Credit"]

    def test_counts_and_selectivity(self):
        idx = LabelIndex(sample())
        assert idx.count(sym("Entry")) == 2
        assert 0 < idx.selectivity(sym("Entry")) < 1
        assert idx.selectivity(sym("None")) == 0.0

    def test_kind_filter(self):
        idx = LabelIndex(sample())
        from repro.core.labels import LabelKind

        ints = list(idx.labels(LabelKind.INT))
        assert ints == [integer(1942)]

    def test_unreachable_edges_not_indexed(self):
        g = Graph()
        r = g.new_node()
        g.set_root(r)
        orphan_a, orphan_b = g.new_node(), g.new_node()
        g.add_edge(orphan_a, "ghost", orphan_b)
        idx = LabelIndex(g)
        assert idx.edges_with_label(sym("ghost")) == ()


class TestValueIndex:
    def test_exact_string(self):
        idx = ValueIndex(sample())
        (edge,) = idx.find_exact(string("Casablanca"))
        assert edge.label == string("Casablanca")

    def test_numbers_greater_than(self):
        idx = ValueIndex(sample())
        big = list(idx.numbers_greater_than(2**10))
        values = sorted(e.label.value for e in big)
        assert values == [1942, 1.2e6]
        assert list(idx.numbers_greater_than(2**21)) == []

    def test_strict_vs_inclusive_bound(self):
        idx = ValueIndex(sample())
        assert list(idx.numbers_greater_than(1942, strict=True)) != list(
            idx.numbers_greater_than(1942, strict=False)
        )

    def test_numbers_in_range(self):
        idx = ValueIndex(sample())
        vals = [e.label.value for e in idx.numbers_in_range(1900, 2000)]
        assert vals == [1942]

    def test_string_prefix(self):
        idx = ValueIndex(sample())
        hits = [e.label.value for e in idx.strings_with_prefix("B")]
        assert sorted(hits) == ["Bacall", "Bogart"]

    def test_string_range(self):
        idx = ValueIndex(sample())
        hits = [e.label.value for e in idx.strings_in_range("A", "B~")]
        assert sorted(hits) == ["Allen", "Allen", "Bacall", "Bogart"]

    def test_counts(self):
        idx = ValueIndex(sample())
        assert idx.num_numbers == 2
        assert idx.num_strings == 6

    def test_symbols_never_indexed(self):
        idx = ValueIndex(sample())
        assert idx.find_exact(string("Movie")) == ()


class TestTextIndex:
    def test_tokenize(self):
        assert tokenize("Play it again, Sam") == ["play", "it", "again", "sam"]

    def test_containing_word(self):
        idx = TextIndex(sample())
        (edge,) = idx.containing_word("SAM")
        assert "Sam" in str(edge.label.value)

    def test_containing_all(self):
        idx = TextIndex(sample())
        hits = idx.containing_all(["play", "again"])
        assert len(hits) == 1
        assert idx.containing_all(["play", "casablanca"]) == []

    def test_containing_any(self):
        idx = TextIndex(sample())
        hits = idx.containing_any(["casablanca", "sam"])
        assert len(hits) == 2

    def test_vocabulary_and_df(self):
        idx = TextIndex(sample())
        assert "allen" in idx.vocabulary
        assert idx.document_frequency("allen") == 2
        assert idx.document_frequency("zzz") == 0

    def test_empty_query(self):
        assert TextIndex(sample()).containing_all([]) == []


class TestPathIndex:
    def test_fixed_path_lookup(self):
        g = sample()
        idx = PathIndex(g, max_depth=4)
        hits = idx.lookup((sym("Entry"), sym("Movie"), sym("Title")))
        assert hits is not None and len(hits) == 2

    def test_root_path(self):
        g = sample()
        idx = PathIndex(g)
        assert idx.lookup(()) == frozenset({g.root})

    def test_missing_path_is_empty_not_none(self):
        idx = PathIndex(sample(), max_depth=3)
        assert idx.lookup((sym("Nope"),)) == frozenset()

    def test_beyond_depth_returns_none(self):
        idx = PathIndex(sample(), max_depth=2)
        assert idx.lookup((sym("a"), sym("b"), sym("c"))) is None
        assert not idx.covers((sym("a"),) * 3)

    def test_cyclic_graph_bounded(self):
        g = Graph()
        a = g.new_node()
        g.set_root(a)
        g.add_edge(a, "n", a)
        idx = PathIndex(g, max_depth=3)
        assert idx.num_paths == 4  # (), n, nn, nnn
        assert idx.lookup((sym("n"),) * 3) == frozenset({a})

    def test_vocabulary_ordered_by_length(self):
        idx = PathIndex(sample(), max_depth=3)
        vocab = idx.path_vocabulary()
        lengths = [len(p) for p in vocab]
        assert lengths == sorted(lengths)

    def test_paths_through_label(self):
        idx = PathIndex(sample(), max_depth=3)
        assert all(sym("Movie") in p for p in idx.paths_through_label(sym("Movie")))

    def test_negative_depth_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            PathIndex(sample(), max_depth=-1)


class TestGraphIndexes:
    def test_lazy_construction(self):
        bundle = GraphIndexes(sample())
        assert bundle._label is None
        _ = bundle.label
        assert bundle._label is not None
        assert bundle._value is None

    def test_build_all(self):
        bundle = GraphIndexes(sample()).build_all()
        assert bundle._label and bundle._value and bundle._text and bundle._path
