"""Property: incremental index refresh == cold rebuild, for any edit script.

The MVCC write path maintains the four physical indexes and the strong
DataGuide from edge deltas (ISSUE 10).  The correctness obligation is
*extensional equality with a cold rebuild* after an arbitrary sequence
of commits -- new nodes, edges into old and new regions, cycles,
re-rooting -- which is exactly the kind of claim worth handing to
Hypothesis rather than to hand-picked examples.

Each generated script is replayed through a ``VersionedGraphStore``
(durable=False: pure in-memory semantics, no fsync noise) with all four
indexes and the guide forced *before* the edits, so every commit goes
through the incremental path, never a rebuild.
"""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labels import integer, string, sym
from repro.index import GraphIndexes
from repro.schema.dataguide import DataGuide
from repro.storage import VersionedGraphStore

MAX_EXAMPLES = 150 if os.environ.get("HYPOTHESIS_PROFILE") == "ci" else 25

# small label alphabets force path/label collisions (the interesting case)
SYMBOLS = ["a", "b", "c"]
DATA = [string("x"), string("y"), integer(7), integer(42)]

label_strategy = st.one_of(
    st.sampled_from(SYMBOLS).map(sym),
    st.sampled_from(DATA),
)

# one op: ("node",) | ("edge", src_pick, label, dst_pick) | ("root", pick)
op_strategy = st.one_of(
    st.just(("node",)),
    st.tuples(
        st.just("edge"), st.integers(0, 10_000), label_strategy, st.integers(0, 10_000)
    ),
    st.tuples(st.just("root"), st.integers(0, 10_000)),
)

script_strategy = st.lists(  # a script is a list of commits, each a list of ops
    st.lists(op_strategy, min_size=1, max_size=6), min_size=1, max_size=8
)


def run_script(store: VersionedGraphStore, script: list) -> None:
    for ops in script:
        batch = store.batch()
        pool = list(store.graph.nodes())
        for op in ops:
            if op[0] == "node":
                pool.append(batch.new_node())
            elif op[0] == "edge":
                _, src_pick, label, dst_pick = op
                batch.add_edge(pool[src_pick % len(pool)], label, pool[dst_pick % len(pool)])
            else:
                batch.set_root(pool[op[1] % len(pool)])
        batch.commit()


def label_shape(index) -> dict:
    return {
        lab: sorted((e.src, e.dst) for e in edges)
        for lab, edges in index._by_label.items()
        if edges
    }


def value_shape(index) -> dict:
    return {
        lab: sorted((e.src, e.dst) for e in edges)
        for lab, edges in index._exact.items()
        if edges
    }


def text_shape(index) -> dict:
    return {
        word: sorted((e.src, e.dst) for e in index.containing_word(word))
        for word in index.vocabulary
    }


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(script=script_strategy, seed=st.integers(0, 3))
def test_refresh_equals_cold_rebuild(script: list, seed: int) -> None:
    from repro.datasets import generate_movies

    with tempfile.TemporaryDirectory() as tmp:
        store = VersionedGraphStore.create(
            tmp, generate_movies(3, seed=seed), durable=False
        )
        try:
            store.indexes.build_all()  # arm the incremental path
            _ = store.guide
            run_script(store, script)

            live = store.indexes
            cold = GraphIndexes(store.graph, path_depth=4).build_all()

            # the path index answered incrementally, never via rebuild
            assert not live.path.is_stale()
            assert live.path._paths == cold.path._paths
            assert label_shape(live.label) == label_shape(cold.label)
            assert value_shape(live.value) == value_shape(cold.value)
            # the sorted arrays stayed sorted through every insort
            assert live.value._number_keys == sorted(live.value._number_keys)
            assert live.value._number_keys == cold.value._number_keys
            assert live.value._string_keys == cold.value._string_keys
            assert text_shape(live.text) == text_shape(cold.text)
            assert store.guide.equivalent_to(DataGuide(store.graph))
        finally:
            store.close()


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(script=script_strategy)
def test_lookups_never_raise_stale(script: list) -> None:
    """The StaleIndexError-free guarantee: after any commit sequence the
    path index serves lookups directly (GraphIndexes never rebuilds)."""
    from repro.core.graph import Graph

    with tempfile.TemporaryDirectory() as tmp:
        g = Graph()
        g.set_root(g.new_node())
        store = VersionedGraphStore.create(tmp, g, durable=False)
        try:
            path_index = store.indexes.path
            for ops in script:
                batch = store.batch()
                pool = list(store.graph.nodes())
                for op in ops:
                    if op[0] == "node":
                        pool.append(batch.new_node())
                    elif op[0] == "edge":
                        _, src_pick, label, dst_pick = op
                        batch.add_edge(
                            pool[src_pick % len(pool)], label, pool[dst_pick % len(pool)]
                        )
                    else:
                        batch.set_root(pool[op[1] % len(pool)])
                batch.commit()
                # raises StaleIndexError if maintenance missed a version stamp
                store.indexes.path.lookup((sym("a"),))
            if not any(op[0] == "root" for ops in script for op in ops):
                # monotone scripts never rebuild: the same index object
                # served every commit (re-rooting is the designed reset)
                assert store.indexes.path is path_index
        finally:
            store.close()
