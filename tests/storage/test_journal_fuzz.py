"""Byte-level fuzz of the group-commit journal and the SSD1 loader.

The hardened contract (ISSUE 10 satellite): a journal that is anything
short of byte-perfect is *discarded whole* -- a bit flip at any offset,
truncation at any offset (including record boundaries, which per-record
CRCs alone cannot see), or a CRC-valid record whose payload does not
decode as a graph must never replay into a target file.  And
:func:`~repro.storage.serializer.loads` must fail *typed* on arbitrary
corruption: any exception other than :class:`SerializationError` out of
the loader is a bug.
"""

import os
import zlib
from pathlib import Path

import pytest

from repro.datasets import generate_movies
from repro.storage import GroupCommit
from repro.storage.serializer import SerializationError, dumps, loads


def journal_with(tmp_path: Path, n: int = 3) -> tuple[Path, bytes, dict[str, bytes]]:
    """A genuine journal (written by the real flush) left on disk."""
    directory = tmp_path / "commits"
    gc = GroupCommit(directory)
    payloads = {}
    for i in range(n):
        graph = generate_movies(4, seed=i)
        gc.add(graph, f"snap-{i}.graph")
        payloads[f"snap-{i}.graph"] = dumps(graph)
    real_unlink = os.unlink
    os.unlink = lambda *a, **k: None  # keep the journal past the flush
    try:
        gc.flush()
    finally:
        os.unlink = real_unlink
    raw = gc.journal_path.read_bytes()
    for name in payloads:  # recovery must recreate these from the journal
        (directory / name).unlink()
    return directory, raw, payloads


def recovered_state(directory: Path) -> dict[str, bytes]:
    return {
        p.name: p.read_bytes() for p in sorted(directory.iterdir()) if p.is_file()
    }


class TestJournalFuzz:
    def test_intact_journal_replays_exactly(self, tmp_path: Path) -> None:
        directory, raw, payloads = journal_with(tmp_path)
        assert GroupCommit.recover(directory) == len(payloads)
        assert recovered_state(directory) == payloads
        assert not (directory / ".commit-journal").exists()

    def test_bit_flip_at_every_offset_discards_whole(self, tmp_path: Path) -> None:
        directory, raw, payloads = journal_with(tmp_path)
        journal_path = directory / ".commit-journal"
        for offset in range(len(raw)):
            mutant = bytearray(raw)
            mutant[offset] ^= 0x01
            journal_path.write_bytes(bytes(mutant))
            replayed = GroupCommit.recover(directory)
            # every byte is covered by magic, the count header, or a
            # record CRC: no single flip may survive as data
            assert replayed == 0, f"flip at offset {offset} replayed {replayed}"
            assert not journal_path.exists()
            assert recovered_state(directory) == {}, f"flip at {offset} wrote targets"

    def test_truncation_at_every_offset_discards_whole(self, tmp_path: Path) -> None:
        directory, raw, payloads = journal_with(tmp_path)
        journal_path = directory / ".commit-journal"
        for cut in range(len(raw)):  # len(raw) itself is the intact case
            journal_path.write_bytes(raw[:cut])
            replayed = GroupCommit.recover(directory)
            assert replayed == 0, f"truncation at {cut} replayed {replayed}"
            assert not journal_path.exists()
            assert recovered_state(directory) == {}, f"cut at {cut} wrote targets"

    def test_truncation_at_record_boundaries_specifically(self, tmp_path: Path) -> None:
        """A journal cut exactly between records frames as a valid shorter
        batch to a CRC-only parser; the count header must reject it."""
        directory, raw, payloads = journal_with(tmp_path, n=3)
        journal_path = directory / ".commit-journal"
        # walk the record boundaries the same way the parser does
        boundaries = []
        pos = 8
        for _ in range(3):
            name_len = int.from_bytes(raw[pos + 4 : pos + 8], "big")
            payload_len = int.from_bytes(
                raw[pos + 8 + name_len : pos + 16 + name_len], "big"
            )
            pos += 16 + name_len + payload_len
            boundaries.append(pos)
        assert boundaries[-1] == len(raw)
        for boundary in boundaries[:-1]:
            journal_path.write_bytes(raw[:boundary])
            assert GroupCommit.recover(directory) == 0
            assert recovered_state(directory) == {}

    def test_crc_valid_but_undecodable_payload_replays_nothing(
        self, tmp_path: Path
    ) -> None:
        """Satellite 2's core case: framing-valid, semantics-torn.  A
        record whose payload passes its CRC but is not a loadable graph
        must abort the whole batch before any target is touched."""
        directory = tmp_path / "commits"
        directory.mkdir()
        good = dumps(generate_movies(4, seed=0))
        evil = good[: len(good) // 2]  # a prefix: CRC will be computed over it
        journal = bytearray(GroupCommit.MAGIC)
        journal += (2).to_bytes(4, "big")
        for name, payload in (("good.graph", good), ("evil.graph", evil)):
            encoded = name.encode("utf-8")
            body = (
                len(encoded).to_bytes(4, "big")
                + encoded
                + len(payload).to_bytes(8, "big")
                + payload
            )
            journal += zlib.crc32(body).to_bytes(4, "big") + body
        (directory / ".commit-journal").write_bytes(bytes(journal))
        assert GroupCommit.recover(directory) == 0
        assert recovered_state(directory) == {}  # not even the good record


class TestLoadsFuzz:
    def test_bit_flips_fail_typed(self) -> None:
        raw = dumps(generate_movies(3, seed=5))
        for offset in range(len(raw)):
            mutant = bytearray(raw)
            mutant[offset] ^= 0x01
            try:
                loads(bytes(mutant))
            except SerializationError:
                pass  # the typed refusal: exactly what the contract wants
            except Exception as exc:  # pragma: no cover - the bug being hunted
                pytest.fail(f"flip at {offset}: untyped {type(exc).__name__}: {exc}")

    def test_truncations_fail_typed(self) -> None:
        raw = dumps(generate_movies(3, seed=5))
        for cut in range(len(raw)):
            try:
                loads(raw[:cut])
            except SerializationError:
                pass
            except Exception as exc:  # pragma: no cover - the bug being hunted
                pytest.fail(f"cut at {cut}: untyped {type(exc).__name__}: {exc}")

    def test_trailing_garbage_fails_typed(self) -> None:
        raw = dumps(generate_movies(3, seed=5))
        with pytest.raises(SerializationError):
            loads(raw + b"\x00")
