"""Crash-safety tests: a torn save must never be loadable.

Two attack layers:

* deterministic fault injection -- crash ``atomic_write_bytes`` at every
  interesting interruption point (mid-payload write, before the rename,
  at the directory fsync) and assert the target is bit-identical to its
  pre-save state;
* a real ``SIGKILL`` -- a child process saves in a tight loop and is
  killed mid-flight; whatever file the corpse leaves behind must either
  load cleanly or not exist under the target name.

Plus the group-commit contract: one fsync per batch, torn journals are
discarded (old state everywhere), complete journals replay exactly.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.bisim import bisimilar
from repro.datasets import generate_movies
from repro.storage import (
    STORAGE_METRICS,
    GraphStore,
    GroupCommit,
    SerializationError,
    atomic_write_bytes,
    dumps,
    loads,
)


def sample(seed: int = 7):
    return generate_movies(12, seed=seed)


# -- fault-injected interruption points --------------------------------------------


class TornWrite(RuntimeError):
    pass


def test_save_roundtrips(tmp_path: Path) -> None:
    g = sample()
    target = tmp_path / "g.graph"
    GraphStore(g).save(target)
    assert bisimilar(GraphStore.load(target).graph, g)


def test_crash_mid_write_preserves_old_file(tmp_path: Path, monkeypatch) -> None:
    old, new = sample(seed=1), sample(seed=2)
    target = tmp_path / "g.graph"
    GraphStore(old).save(target)
    before = target.read_bytes()

    budget = len(dumps(new)) // 2  # die with half the payload on disk

    class TornFile:
        """Wraps the real temp file; its write dies halfway through."""

        def __init__(self, fh):
            self._fh = fh

        def write(self, data):
            self._fh.write(data[:budget])
            self._fh.flush()
            raise TornWrite("power failed mid-write")

        def __getattr__(self, name):
            return getattr(self._fh, name)

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return self._fh.__exit__(*exc)

    original_open = open

    def torn_open(path, mode="r", *args, **kwargs):
        fh = original_open(path, mode, *args, **kwargs)
        if "b" in mode and "w" in mode and ".tmp." in str(path):
            return TornFile(fh)
        return fh

    monkeypatch.setattr("builtins.open", torn_open)
    with pytest.raises(TornWrite):
        GraphStore(new).save(target)
    monkeypatch.undo()

    # old file untouched and loadable; no temp debris
    assert target.read_bytes() == before
    assert bisimilar(GraphStore.load(target).graph, old)
    assert [p.name for p in tmp_path.iterdir()] == ["g.graph"]


def test_crash_before_rename_preserves_old_file(tmp_path: Path, monkeypatch) -> None:
    old, new = sample(seed=3), sample(seed=4)
    target = tmp_path / "g.graph"
    GraphStore(old).save(target)
    before = target.read_bytes()

    def no_replace(src, dst):
        raise TornWrite("killed between fsync and rename")

    monkeypatch.setattr(os, "replace", no_replace)
    with pytest.raises(TornWrite):
        GraphStore(new).save(target)
    monkeypatch.undo()

    assert target.read_bytes() == before
    assert [p.name for p in tmp_path.iterdir()] == ["g.graph"]


def test_crash_creating_fresh_file_leaves_nothing(tmp_path: Path, monkeypatch) -> None:
    target = tmp_path / "fresh.graph"

    def no_replace(src, dst):
        raise TornWrite("killed before first rename")

    monkeypatch.setattr(os, "replace", no_replace)
    with pytest.raises(TornWrite):
        GraphStore(sample()).save(target)
    monkeypatch.undo()

    assert not target.exists()
    assert list(tmp_path.iterdir()) == []


def test_truncated_payload_never_escapes_as_untyped(tmp_path: Path) -> None:
    """Even a file torn by some *other* writer fails typed on load."""
    target = tmp_path / "g.graph"
    GraphStore(sample()).save(target)
    payload = target.read_bytes()
    for cut in (0, 1, 4, len(payload) // 2, len(payload) - 1):
        target.write_bytes(payload[:cut])
        with pytest.raises(SerializationError):
            GraphStore.load(target)


def test_durable_false_skips_fsync(tmp_path: Path, monkeypatch) -> None:
    calls = []
    monkeypatch.setattr(os, "fsync", lambda fd: calls.append(fd))
    GraphStore(sample()).save(tmp_path / "a.graph", durable=False)
    assert calls == []
    GraphStore(sample()).save(tmp_path / "b.graph", durable=True)
    assert len(calls) >= 1


# -- a real SIGKILL mid-save -------------------------------------------------------


KILL_CHILD = """
import sys
from repro.datasets import generate_movies
from repro.storage import GraphStore

target = sys.argv[1]
store = GraphStore(generate_movies(60, seed=9))
print("ready", flush=True)
while True:  # save forever; the parent pulls the plug mid-flight
    store.save(target)
"""


def test_sigkill_mid_save_never_leaves_torn_target(tmp_path: Path) -> None:
    target = tmp_path / "victim.graph"
    expected = dumps(generate_movies(60, seed=9))
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    proc = subprocess.Popen(
        [sys.executable, "-c", KILL_CHILD, str(target)],
        stdout=subprocess.PIPE,
        env=env,
    )
    try:
        assert proc.stdout is not None
        assert proc.stdout.readline().strip() == b"ready"
        time.sleep(0.15)  # let some saves land, then pull the plug mid-loop
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on test failure
            proc.kill()
            proc.wait()

    # The target, if visible, is a complete save -- never a prefix.
    assert target.exists(), "child was killed before any save completed"
    assert target.read_bytes() == expected
    assert loads(target.read_bytes()) is not None
    # Temp debris from the interrupted save may exist but never shadows
    # the target name (dot-prefixed), so no loader can pick it up.
    for leftover in tmp_path.iterdir():
        if leftover != target:
            assert leftover.name.startswith(".victim.graph.tmp.")


# -- group commit ------------------------------------------------------------------


def test_group_commit_applies_batch(tmp_path: Path) -> None:
    graphs = [sample(seed=s) for s in range(4)]
    gc = GroupCommit(tmp_path / "commits")
    for i, g in enumerate(graphs):
        gc.add(g, f"snap-{i}.graph")
    assert gc.pending == 4
    assert gc.flush() == 4
    assert gc.pending == 0
    assert not gc.journal_path.exists()
    for i, g in enumerate(graphs):
        assert bisimilar(GraphStore.load(tmp_path / "commits" / f"snap-{i}.graph").graph, g)


def test_group_commit_one_fsync_per_batch(tmp_path: Path, monkeypatch) -> None:
    """The whole point: N durable saves cost 1 fsync, not 2N."""
    fsyncs = []
    monkeypatch.setattr(os, "fsync", lambda fd: fsyncs.append(fd))
    gc = GroupCommit(tmp_path / "commits")
    for i in range(8):
        gc.add(sample(seed=i), f"snap-{i}.graph")
    gc.flush()
    assert len(fsyncs) == 1


def test_group_commit_torn_journal_is_discarded(tmp_path: Path) -> None:
    """A crash *before* the journal fsync: nothing was durable, old state wins."""
    directory = tmp_path / "commits"
    old = sample(seed=5)
    gc = GroupCommit(directory)
    gc.add(old, "a.graph")
    gc.flush()
    before = (directory / "a.graph").read_bytes()

    # Simulate the torn journal the crashed flush would leave behind.
    good = GroupCommit.MAGIC + b"\x00\x00\x00\x07a.graph"
    for torn in (b"", b"SS", b"XXXX", good, good + b"\x00" * 5):
        gc.journal_path.write_bytes(torn)
        assert GroupCommit.recover(directory) == 0
        assert not gc.journal_path.exists()
        assert (directory / "a.graph").read_bytes() == before


def test_group_commit_corrupt_crc_is_discarded(tmp_path: Path) -> None:
    directory = tmp_path / "commits"
    directory.mkdir()
    payload = dumps(sample(seed=6))
    journal = bytearray(GroupCommit.MAGIC)
    name = b"a.graph"
    journal += len(name).to_bytes(4, "big") + name
    journal += len(payload).to_bytes(8, "big")
    journal += (0xDEADBEEF).to_bytes(4, "big")  # wrong CRC
    journal += payload
    (directory / ".commit-journal").write_bytes(bytes(journal))
    assert GroupCommit.recover(directory) == 0
    assert not (directory / "a.graph").exists()


def test_group_commit_recovery_replays_complete_journal(tmp_path: Path, monkeypatch) -> None:
    """A crash *after* the journal fsync but before the targets land."""
    directory = tmp_path / "commits"
    graphs = {f"snap-{i}.graph": sample(seed=10 + i) for i in range(3)}
    gc = GroupCommit(directory)
    for name, g in graphs.items():
        gc.add(g, name)

    # Crash the apply phase: the journal is durable, no target was written.
    real_replace = os.replace
    monkeypatch.setattr(os, "replace", lambda s, d: (_ for _ in ()).throw(TornWrite("died")))
    with pytest.raises(TornWrite):
        gc.flush()
    monkeypatch.setattr(os, "replace", real_replace)

    assert gc.journal_path.exists()
    assert GroupCommit.recover(directory) == 3
    assert not gc.journal_path.exists()
    for name, g in graphs.items():
        assert bisimilar(GraphStore.load(directory / name).graph, g)
    # Recovery is idempotent once the journal is gone.
    assert GroupCommit.recover(directory) == 0


def test_group_commit_rejects_escaping_names(tmp_path: Path) -> None:
    gc = GroupCommit(tmp_path / "commits")
    with pytest.raises(ValueError):
        gc.add(sample(), "../outside.graph")
    with pytest.raises(ValueError):
        gc.add(sample(), "/etc/evil.graph")


def test_group_commit_metrics(tmp_path: Path) -> None:
    commits = STORAGE_METRICS.counter("group_commits").value
    records = STORAGE_METRICS.counter("group_commit_records").value
    gc = GroupCommit(tmp_path / "commits")
    gc.add(sample(), "a.graph")
    gc.add(sample(), "b.graph")
    gc.flush()
    assert STORAGE_METRICS.counter("group_commits").value == commits + 1
    assert STORAGE_METRICS.counter("group_commit_records").value == records + 2


def test_atomic_write_bytes_plain(tmp_path: Path) -> None:
    target = tmp_path / "blob.bin"
    atomic_write_bytes(target, b"abc")
    assert target.read_bytes() == b"abc"
    atomic_write_bytes(target, b"xyz", fsync=False)
    assert target.read_bytes() == b"xyz"
