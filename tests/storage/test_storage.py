"""Tests for serialization and the clustered page store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bisim import bisimilar
from repro.core.builder import from_obj
from repro.core.graph import Graph
from repro.core.labels import real, string
from repro.storage import (
    GraphStore,
    PageCache,
    SerializationError,
    dumps,
    loads,
    traversal_page_faults,
)


def sample() -> Graph:
    return from_obj(
        {
            "Entry": [
                {"Movie": {"Title": "Casablanca", "Year": 1942, "Credit": 1.2e6}},
                {"Movie": {"Title": "Sam", "Flags": [True, False]}},
            ]
        }
    )


class TestSerializer:
    def test_round_trip_tree(self):
        g = sample()
        assert bisimilar(loads(dumps(g)), g)

    def test_round_trip_all_label_kinds(self):
        g = Graph()
        r = g.new_node()
        g.set_root(r)
        for label in ["sym", string("str"), 42, -7, real(2.5), True, False]:
            g.add_edge(r, label, g.new_node())
        assert bisimilar(loads(dumps(g)), g)

    def test_round_trip_cycle(self):
        g = Graph()
        a, b = g.new_node(), g.new_node()
        g.set_root(a)
        g.add_edge(a, "References", b)
        g.add_edge(b, "Back", a)
        back = loads(dumps(g))
        assert back.has_cycle()
        assert bisimilar(back, g)

    def test_unreachable_dropped(self):
        g = sample()
        g.new_node()  # orphan
        assert loads(dumps(g)).num_nodes == len(g.reachable())

    def test_unicode_strings(self):
        g = from_obj({"Titre": "Âme café 映画"})
        assert bisimilar(loads(dumps(g)), g)

    def test_bad_magic_rejected(self):
        with pytest.raises(SerializationError):
            loads(b"NOPE" + dumps(sample())[4:])

    def test_truncation_rejected(self):
        data = dumps(sample())
        with pytest.raises(SerializationError):
            loads(data[: len(data) // 2])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SerializationError):
            loads(dumps(sample()) + b"x")

    def test_large_int_values(self):
        g = from_obj({"big": 2**40, "neg": -(2**40)})
        assert bisimilar(loads(dumps(g)), g)


class TestGraphStore:
    def test_every_node_has_a_record(self):
        g = sample()
        store = GraphStore(g, page_size=128)
        for node in g.reachable():
            assert store.page_of(node) >= 0

    def test_clustering_strategies_build(self):
        g = sample()
        for strategy in ("dfs", "bfs", "random"):
            store = GraphStore(g, clustering=strategy, page_size=128)
            assert store.num_pages >= 1

    def test_unknown_clustering_rejected(self):
        with pytest.raises(ValueError):
            GraphStore(sample(), clustering="zigzag")

    def test_tiny_page_size_rejected(self):
        with pytest.raises(ValueError):
            GraphStore(sample(), page_size=8)

    def test_occupancy_reasonable(self):
        store = GraphStore(sample(), page_size=256)
        assert 0 < store.occupancy() <= 1

    def test_save_load_round_trip(self, tmp_path):
        g = sample()
        store = GraphStore(g, page_size=128)
        path = tmp_path / "movies.ssd"
        store.save(path)
        again = GraphStore.load(path, page_size=128)
        assert bisimilar(again.graph, g)

    def test_dfs_clustering_fewer_faults_than_random(self):
        # a deep, bushy tree: locality matters
        def deep(levels, fanout):
            if levels == 0:
                return {"v": 1}
            return {f"c{i}": deep(levels - 1, fanout) for i in range(fanout)}

        g = from_obj(deep(5, 3))
        dfs_store = GraphStore(g, clustering="dfs", page_size=256)
        random_store = GraphStore(g, clustering="random", page_size=256, seed=7)
        dfs_faults = traversal_page_faults(dfs_store, cache_pages=4, order="dfs")
        random_faults = traversal_page_faults(random_store, cache_pages=4, order="dfs")
        assert dfs_faults < random_faults

    def test_cache_counts_hits_and_faults(self):
        store = GraphStore(sample(), page_size=4096)  # all on one page
        cache = PageCache(store, capacity=2)
        nodes = sorted(store.graph.reachable())
        for n in nodes:
            cache.read_node(n)
        assert cache.faults == 1
        assert cache.hits == len(nodes) - 1

    def test_cache_capacity_validated(self):
        store = GraphStore(sample())
        with pytest.raises(ValueError):
            PageCache(store, capacity=0)

    def test_oversized_record_gets_own_page(self):
        g = Graph()
        r = g.new_node()
        g.set_root(r)
        for i in range(100):
            g.add_edge(r, string("x" * 50 + str(i)), g.new_node())
        store = GraphStore(g, page_size=256)
        assert store.num_pages > 1
        assert store.page_of(r) >= 0

    def test_traversal_orders(self):
        store = GraphStore(sample(), page_size=128)
        assert traversal_page_faults(store, order="dfs") >= 1
        assert traversal_page_faults(store, order="bfs") >= 1
        with pytest.raises(ValueError):
            traversal_page_faults(store, order="sideways")


@st.composite
def graphs(draw):
    n = draw(st.integers(1, 7))
    g = Graph()
    nodes = [g.new_node() for _ in range(n)]
    g.set_root(nodes[0])
    for _ in range(draw(st.integers(0, 12))):
        label = draw(
            st.one_of(
                st.sampled_from(["a", "b"]),
                st.integers(-100, 100),
                st.booleans(),
                st.text(max_size=4).map(string),
            )
        )
        g.add_edge(
            draw(st.sampled_from(nodes)), label, draw(st.sampled_from(nodes))
        )
    return g


@given(graphs())
@settings(max_examples=80, deadline=None)
def test_prop_serializer_round_trip(g):
    assert bisimilar(loads(dumps(g)), g)
