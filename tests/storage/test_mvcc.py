"""VersionedGraphStore behavior: batches, versions, snapshots, checkpoints.

The MVCC contract under test: version ids are commit sequence numbers,
a handed-out :class:`SnapshotView` never changes, reopening a directory
reproduces the exact committed state, and incremental index/DataGuide
maintenance answers identically to a cold rebuild.
"""

from pathlib import Path

import pytest

from repro.core.graph import Graph, GraphError
from repro.core.labels import string, sym
from repro.datasets import generate_movies
from repro.index import GraphIndexes
from repro.schema.dataguide import DataGuide
from repro.storage import AddEdge, AddNode, SetRoot, VersionedGraphStore
from repro.storage.serializer import STORAGE_METRICS


def same_state(g1: Graph, g2: Graph) -> bool:
    """Exact (id-level) state equality -- stronger than bisimulation."""
    adj1 = {n: [(e.label, e.dst) for e in g1.edges_from(n)] for n in g1.nodes()}
    adj2 = {n: [(e.label, e.dst) for e in g2.edges_from(n)] for n in g2.nodes()}
    root1 = g1.root if g1.has_root else None
    root2 = g2.root if g2.has_root else None
    return adj1 == adj2 and root1 == root2


def seeded_store(tmp_path: Path, **kwargs) -> VersionedGraphStore:
    kwargs.setdefault("durable", False)
    return VersionedGraphStore.create(
        tmp_path / "store", generate_movies(8, seed=3), **kwargs
    )


class TestBatches:
    def test_commit_assigns_sequential_versions(self, tmp_path: Path) -> None:
        with seeded_store(tmp_path) as store:
            assert store.version == 0
            for expect in (1, 2, 3):
                batch = store.batch()
                node = batch.new_node()
                batch.add_edge(store.graph.root, f"Extra{expect}", node)
                assert batch.commit() == expect
            assert store.version == 3

    def test_batch_edges_may_reference_batch_nodes(self, tmp_path: Path) -> None:
        with seeded_store(tmp_path) as store:
            batch = store.batch()
            movie = batch.new_node()
            title = batch.new_node()
            batch.add_edge(store.graph.root, "Movie", movie)
            batch.add_edge(movie, "Title", title)
            batch.add_edge(title, string("Vertigo"), title)
            store_version = batch.commit()
            assert store.graph.has_node(movie) and store.graph.has_node(title)
            assert store.version == store_version

    def test_unknown_nodes_rejected_at_staging(self, tmp_path: Path) -> None:
        with seeded_store(tmp_path) as store:
            batch = store.batch()
            with pytest.raises(GraphError):
                batch.add_edge(10_000, "x", store.graph.root)
            with pytest.raises(GraphError):
                batch.add_edge(store.graph.root, "x", 10_000)
            with pytest.raises(GraphError):
                batch.set_root(10_000)

    def test_bad_delta_never_reaches_the_log(self, tmp_path: Path) -> None:
        # commit() validates before appending: a rejected commit leaves
        # both the version counter and the on-disk log untouched
        with seeded_store(tmp_path) as store:
            before = store.stats()["wal_bytes"]
            with pytest.raises(GraphError):
                store.commit([AddEdge(10_000, sym("x"), 0)])
            assert store.version == 0
            assert store.stats()["wal_bytes"] == before

    def test_nothing_visible_before_commit(self, tmp_path: Path) -> None:
        with seeded_store(tmp_path) as store:
            nodes_before = store.graph.num_nodes
            batch = store.batch()
            batch.new_node()
            assert store.graph.num_nodes == nodes_before
            assert store.version == 0


class TestSnapshots:
    def test_views_pin_their_version(self, tmp_path: Path) -> None:
        with seeded_store(tmp_path) as store:
            v0 = store.view()
            edges0 = v0.frozen.num_edges
            batch = store.batch()
            extra = batch.new_node()
            batch.add_edge(store.graph.root, "Extra", extra)
            batch.commit()
            v1 = store.view()
            assert v0.version == 0 and v1.version == 1
            assert v0.frozen.num_edges == edges0  # untouched by the commit
            assert v1.frozen.num_edges == edges0 + 1

    def test_view_is_cached_per_version(self, tmp_path: Path) -> None:
        with seeded_store(tmp_path) as store:
            assert store.view() is store.view()
            store.commit([AddNode(store.graph._next_id)])
            assert store.view().version == 1

    def test_view_graph_and_oem_are_copies(self, tmp_path: Path) -> None:
        with seeded_store(tmp_path) as store:
            view = store.view()
            assert view.graph is not store.graph
            assert same_state(view.graph, store.graph)
            assert view.oem is view.oem  # lazy, then cached


class TestDurability:
    def test_reopen_replays_committed_state(self, tmp_path: Path) -> None:
        store = seeded_store(tmp_path)
        root = store.graph.root
        batch = store.batch()
        show = batch.new_node()
        batch.add_edge(root, "TVShow", show)
        batch.add_edge(show, string("Twin Peaks"), show)
        batch.commit()
        expected = store.graph
        store.close()

        with VersionedGraphStore(tmp_path / "store", durable=False) as reopened:
            assert reopened.version == 1
            assert reopened.recovery.replayed_records == 1
            assert reopened.recovery.discarded_bytes == 0
            assert same_state(reopened.graph, expected)

    def test_group_commit_defers_the_ack(self, tmp_path: Path) -> None:
        with seeded_store(tmp_path, durable=True) as store:
            before = STORAGE_METRICS.counter("wal_syncs").value
            for _ in range(5):
                batch = store.batch()
                batch.new_node()
                batch.commit(sync=False)
            assert store.version == 5
            assert store.acked_version == 0  # written, not yet acknowledged
            store.sync()
            assert store.acked_version == 5
            assert STORAGE_METRICS.counter("wal_syncs").value == before + 1

    def test_create_refuses_to_clobber(self, tmp_path: Path) -> None:
        seeded_store(tmp_path).close()
        with pytest.raises(FileExistsError):
            VersionedGraphStore.create(tmp_path / "store", Graph(), durable=False)

    def test_checkpoint_folds_the_log(self, tmp_path: Path) -> None:
        store = seeded_store(tmp_path)
        for k in range(3):
            batch = store.batch()
            node = batch.new_node()
            batch.add_edge(store.graph.root, f"C{k}", node)
            batch.commit()
        store.checkpoint()
        expected = store.graph
        assert store.stats()["checkpoint_seq"] == 3
        store.close()

        with VersionedGraphStore(tmp_path / "store", durable=False) as reopened:
            assert reopened.version == 3
            assert reopened.recovery.checkpoint_seq == 3
            assert reopened.recovery.replayed_records == 0  # log was folded
            assert same_state(reopened.graph, expected)

    def test_auto_checkpoint_every_n_commits(self, tmp_path: Path) -> None:
        with seeded_store(tmp_path, checkpoint_every=2) as store:
            for _ in range(5):
                batch = store.batch()
                batch.new_node()
                batch.commit()
            assert store.stats()["checkpoint_seq"] == 4  # folded at 2 and 4

    def test_checkpoint_preserves_unreachable_nodes_and_ids(self, tmp_path: Path) -> None:
        # the SSD1 interchange format renumbers and prunes; the
        # checkpoint codec must not, or WAL replay dereferences garbage
        g = Graph()
        a = g.new_node()
        g.set_root(a)
        orphan = g.new_node()  # unreachable, but a valid delta target
        g.add_edge(orphan, "self", orphan)
        store = VersionedGraphStore.create(tmp_path / "store", g, durable=False)
        store.commit([AddEdge(a, sym("adopt"), orphan)])
        expected = store.graph
        store.close()
        with VersionedGraphStore(tmp_path / "store", durable=False) as reopened:
            assert same_state(reopened.graph, expected)
            assert reopened.graph.has_node(orphan)


class TestIncrementalMaintenance:
    def test_indexes_survive_commits_without_rebuild(self, tmp_path: Path) -> None:
        with seeded_store(tmp_path) as store:
            indexes = store.indexes
            path_before = indexes.path  # force the build
            batch = store.batch()
            movie = batch.new_node()
            batch.add_edge(store.graph.root, "Movie", movie)
            batch.commit()
            # same objects, refreshed -- not rebuilt
            assert store.indexes is indexes
            assert indexes.path is path_before
            assert not indexes.path.is_stale()

    def test_refreshed_indexes_match_cold_rebuild(self, tmp_path: Path) -> None:
        with seeded_store(tmp_path) as store:
            store.indexes.build_all()
            guide = store.guide
            root = store.graph.root
            batch = store.batch()
            movie = batch.new_node()
            title = batch.new_node()
            batch.add_edge(root, "Movie", movie)
            batch.add_edge(movie, "Title", title)
            batch.add_edge(title, string("Marnie"), title)
            batch.commit()

            cold = GraphIndexes(store.graph, path_depth=4).build_all()
            assert store.indexes.path._paths == cold.path._paths
            assert {
                lab: sorted((e.src, e.dst) for e in edges)
                for lab, edges in store.indexes.label._by_label.items()
            } == {
                lab: sorted((e.src, e.dst) for e in edges)
                for lab, edges in cold.label._by_label.items()
            }
            assert sorted(store.indexes.text.vocabulary) == sorted(cold.text.vocabulary)
            assert guide.equivalent_to(DataGuide(store.graph))

    def test_set_root_resets_visibility(self, tmp_path: Path) -> None:
        with seeded_store(tmp_path) as store:
            store.indexes.build_all()
            batch = store.batch()
            new_root = batch.new_node()
            batch.set_root(new_root)
            batch.commit()
            # non-monotone change: everything derived restarts from scratch
            cold = GraphIndexes(store.graph, path_depth=4).build_all()
            assert store.indexes.path._paths == cold.path._paths
            assert store.guide.equivalent_to(DataGuide(store.graph))
            assert store.view().frozen.root == new_root
            assert store.indexes.path.lookup(()) == {new_root}

    def test_edge_into_invisible_region_opens_it(self, tmp_path: Path) -> None:
        # build a disconnected island first, then bridge to it: the
        # island's interior edges must enter the indexes too
        g = Graph()
        root = g.new_node()
        g.set_root(root)
        store = VersionedGraphStore.create(tmp_path / "store", g, durable=False)
        try:
            batch = store.batch()
            a = batch.new_node()
            b = batch.new_node()
            batch.add_edge(a, "inner", b)  # invisible: a is unreachable
            batch.commit()
            store.indexes.build_all()
            assert store.indexes.label.count(sym("inner")) == 0

            store.commit([AddEdge(root, sym("bridge"), a)])
            assert store.indexes.label.count(sym("inner")) == 1
            cold = GraphIndexes(store.graph, path_depth=4).build_all()
            assert store.indexes.path._paths == cold.path._paths
        finally:
            store.close()
