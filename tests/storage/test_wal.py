"""Write-ahead log unit suite: framing, replay, and torn-tail discipline.

The WAL's contract is byte-level (docs/DURABILITY.md): every record is
individually CRC-framed, replay stops at the first invalid record, and
sequence numbers must be contiguous from the checkpoint's.  These tests
attack the file directly -- truncation at every offset, bit flips at
every offset, CRC-valid-but-semantically-truncated payloads -- and
assert recovery never invents, reorders, or holes the commit history.
"""

from pathlib import Path

import pytest

from repro.core.labels import string, sym
from repro.storage import AddEdge, AddNode, SetRoot, WriteAheadLog
from repro.storage.serializer import STORAGE_METRICS, SerializationError
from repro.storage.wal import (
    WAL_MAGIC,
    WalRecord,
    decode_deltas,
    encode_deltas,
)


def commits(n: int = 4) -> list[list]:
    """A deterministic workload: commit k adds node k+10 and an edge to it."""
    out = []
    for k in range(n):
        node = k + 10
        out.append(
            [AddNode(node), AddEdge(0, sym(f"L{k}"), node), AddEdge(node, string(f"v{k}"), node)]
        )
    return out


def write_log(path: Path, workload: list[list]) -> WriteAheadLog:
    wal = WriteAheadLog(path)
    for seq, deltas in enumerate(workload, start=1):
        wal.append(seq, deltas)
    wal.sync()
    return wal


# -- codec --------------------------------------------------------------------------


class TestCodec:
    def test_round_trip_every_delta_kind(self) -> None:
        deltas = [AddNode(7), AddEdge(7, sym("Movie"), 8), AddEdge(8, string("Casablanca"), 9), SetRoot(7)]
        seq, decoded = decode_deltas(encode_deltas(42, deltas))
        assert seq == 42
        assert decoded == deltas

    def test_empty_commit_round_trips(self) -> None:
        assert decode_deltas(encode_deltas(1, [])) == (1, [])

    def test_trailing_bytes_are_a_typed_error(self) -> None:
        # a CRC can be valid over a payload that is semantically short or
        # long; the decoder must not silently ignore the excess
        payload = encode_deltas(3, [AddNode(5)])
        with pytest.raises(SerializationError):
            decode_deltas(payload + b"\x00")

    def test_truncated_payload_is_a_typed_error(self) -> None:
        payload = encode_deltas(3, [AddEdge(1, sym("x"), 2)])
        for cut in range(1, len(payload)):
            with pytest.raises(SerializationError):
                decode_deltas(payload[:cut])

    def test_unknown_tag_is_a_typed_error(self) -> None:
        payload = bytearray(encode_deltas(1, [AddNode(5)]))
        # the tag byte follows the two varints (seq=1, count=1)
        payload[2:3] = b"Z"
        with pytest.raises(SerializationError):
            decode_deltas(bytes(payload))


# -- append / replay ----------------------------------------------------------------


class TestReplay:
    def test_clean_log_replays_in_order(self, tmp_path: Path) -> None:
        workload = commits(5)
        with write_log(tmp_path / "w.ssdw", workload):
            pass
        replay = WriteAheadLog.replay(tmp_path / "w.ssdw")
        assert [r.commit_seq for r in replay.records] == [1, 2, 3, 4, 5]
        assert [list(r.deltas) for r in replay.records] == workload
        assert replay.discarded_bytes == 0
        assert replay.discarded_records == 0

    def test_missing_file_is_an_empty_log(self, tmp_path: Path) -> None:
        replay = WriteAheadLog.replay(tmp_path / "absent.ssdw")
        assert replay == type(replay)((), 0, 0)

    def test_reopen_appends_after_existing_records(self, tmp_path: Path) -> None:
        path = tmp_path / "w.ssdw"
        write_log(path, commits(2)).close()
        with WriteAheadLog(path) as wal:
            wal.append(3, [AddNode(99)])
            wal.sync()
        replay = WriteAheadLog.replay(path)
        assert [r.commit_seq for r in replay.records] == [1, 2, 3]
        assert replay.records[-1] == WalRecord(3, (AddNode(99),))

    def test_base_seq_skips_checkpointed_prefix(self, tmp_path: Path) -> None:
        path = tmp_path / "w.ssdw"
        write_log(path, commits(4)).close()
        replay = WriteAheadLog.replay(path, base_seq=2)
        assert [r.commit_seq for r in replay.records] == [3, 4]
        assert replay.discarded_records == 0

    def test_bad_magic_discards_everything(self, tmp_path: Path) -> None:
        path = tmp_path / "w.ssdw"
        write_log(path, commits(2)).close()
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        replay = WriteAheadLog.replay(path)
        assert replay.records == ()
        assert replay.discarded_bytes == len(raw)


class TestTornTail:
    def test_truncation_at_every_offset_keeps_a_prefix(self, tmp_path: Path) -> None:
        """The central invariant: any crash-truncated log replays to a
        contiguous prefix of the committed history, never to garbage."""
        path = tmp_path / "w.ssdw"
        workload = commits(4)
        write_log(path, workload).close()
        raw = path.read_bytes()
        for cut in range(len(raw) + 1):
            torn = tmp_path / "torn.ssdw"
            torn.write_bytes(raw[:cut])
            replay = WriteAheadLog.replay(torn)
            seqs = [r.commit_seq for r in replay.records]
            assert seqs == list(range(1, len(seqs) + 1)), f"cut at {cut}"
            for record in replay.records:  # a kept record is the real one
                assert list(record.deltas) == workload[record.commit_seq - 1]
            if cut == len(raw):
                assert len(seqs) == len(workload)

    def test_bit_flip_at_every_offset_never_corrupts_replay(self, tmp_path: Path) -> None:
        path = tmp_path / "w.ssdw"
        workload = commits(3)
        write_log(path, workload).close()
        raw = path.read_bytes()
        for offset in range(len(raw)):
            flipped = bytearray(raw)
            flipped[offset] ^= 0x01
            mutant = tmp_path / "flip.ssdw"
            mutant.write_bytes(bytes(flipped))
            replay = WriteAheadLog.replay(mutant)
            seqs = [r.commit_seq for r in replay.records]
            # replay keeps a contiguous prefix; every kept record must be
            # byte-identical to the genuine workload (the CRC caught the
            # flip, or the flip was past the damage point)
            assert seqs == list(range(1, len(seqs) + 1)), f"flip at {offset}"
            for record in replay.records:
                if record.commit_seq - 1 < len(workload):
                    assert list(record.deltas) == workload[record.commit_seq - 1]

    def test_crc_valid_but_semantically_truncated_record_ends_replay(
        self, tmp_path: Path
    ) -> None:
        # hand-frame a record whose CRC matches a payload with trailing
        # garbage: framing accepts it, the delta decoder must not
        import zlib

        good = encode_deltas(1, [AddNode(5)])
        evil = encode_deltas(2, [AddNode(6)]) + b"\x7f"
        frames = b""
        for payload in (good, evil):
            frames += len(payload).to_bytes(4, "big") + zlib.crc32(payload).to_bytes(4, "big") + payload
        path = tmp_path / "w.ssdw"
        path.write_bytes(WAL_MAGIC + frames)
        replay = WriteAheadLog.replay(path)
        assert [r.commit_seq for r in replay.records] == [1]
        assert replay.discarded_bytes > 0

    def test_sequence_gap_discards_the_rest(self, tmp_path: Path) -> None:
        path = tmp_path / "w.ssdw"
        with WriteAheadLog(path) as wal:
            wal.append(1, [AddNode(10)])
            wal.append(3, [AddNode(12)])  # 2 never made it: a hole
            wal.append(4, [AddNode(13)])
            wal.sync()
        replay = WriteAheadLog.replay(path)
        assert [r.commit_seq for r in replay.records] == [1]
        assert replay.discarded_records == 2  # both post-gap records


class TestDurabilityAccounting:
    def test_group_commit_is_one_fsync_for_n_appends(self, tmp_path: Path) -> None:
        before = STORAGE_METRICS.counter("wal_syncs").value
        with WriteAheadLog(tmp_path / "w.ssdw") as wal:
            for seq, deltas in enumerate(commits(8), start=1):
                wal.append(seq, deltas)
            wal.sync()
        assert STORAGE_METRICS.counter("wal_syncs").value == before + 1

    def test_append_after_close_is_a_typed_error(self, tmp_path: Path) -> None:
        wal = WriteAheadLog(tmp_path / "w.ssdw")
        wal.close()
        with pytest.raises(ValueError):
            wal.append(1, [AddNode(1)])
        with pytest.raises(ValueError):
            wal.sync()

    def test_truncate_resets_to_empty_header(self, tmp_path: Path) -> None:
        path = tmp_path / "w.ssdw"
        with write_log(path, commits(3)) as wal:
            wal.truncate()
            assert path.read_bytes() == WAL_MAGIC
            wal.append(4, [AddNode(50)])  # the handle survives truncation
            wal.sync()
        replay = WriteAheadLog.replay(path, base_seq=3)
        assert [r.commit_seq for r in replay.records] == [4]
