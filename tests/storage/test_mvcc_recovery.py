"""Crash recovery: the deterministic interruption-point sweep, plus SIGKILL.

The acceptance property (ISSUE 10): for every seeded crash point in the
commit/checkpoint path -- and for a real ``SIGKILL`` mid-commit --
reopening the directory yields a *prefix-consistent* snapshot:

* every acknowledged commit is present (durability),
* the recovered version never exceeds what was written (no invention),
* the recovered graph equals the shadow state at that version exactly,
* indexes and DataGuide built over the recovered graph match a cold
  rebuild (zero divergence).

The sweep is deterministic: each scenario arms one
:class:`FaultInjector` outage key at one commit boundary, catches the
:class:`InjectedFault`, declares the process dead, and recovers.
"""

import contextlib
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.graph import Graph
from repro.core.labels import string, sym
from repro.index import GraphIndexes
from repro.resilience import FaultInjector
from repro.resilience.errors import InjectedFault
from repro.schema.dataguide import DataGuide
from repro.storage import AddEdge, AddNode, VersionedGraphStore
from repro.storage.wal import apply_delta

CRASH_POINTS = [
    "wal:append",        # before anything reaches the file
    "wal:append-torn",   # half a frame reaches the file
    "wal:fsync",         # written but never acknowledged
    "wal:truncate",      # checkpoint written, log not yet reset
    "checkpoint:begin",  # before the checkpoint blob exists
    "checkpoint:write",  # before the rename lands
]


def base_graph() -> Graph:
    g = Graph()
    root = g.new_node()
    g.set_root(root)
    return g


def workload(n: int) -> list[list]:
    """Commit k (1-based) adds node k and an edge ``root --Lk--> k``."""
    return [
        [AddNode(k), AddEdge(0, sym(f"L{k}"), k), AddEdge(k, string(f"v{k}"), k)]
        for k in range(1, n + 1)
    ]


def shadow_at(version: int, deltas_by_seq: list[list]) -> Graph:
    """The ground-truth state after ``version`` commits."""
    g = base_graph()
    for deltas in deltas_by_seq[:version]:
        for delta in deltas:
            apply_delta(g, delta)
    return g


def same_state(g1: Graph, g2: Graph) -> bool:
    adj1 = {n: [(e.label, e.dst) for e in g1.edges_from(n)] for n in g1.nodes()}
    adj2 = {n: [(e.label, e.dst) for e in g2.edges_from(n)] for n in g2.nodes()}
    return adj1 == adj2 and (g1.root if g1.has_root else None) == (
        g2.root if g2.has_root else None
    )


def assert_prefix_consistent(
    directory: Path, *, acked: int, written: int, deltas_by_seq: list[list]
) -> int:
    """Reopen and check every recovery invariant; returns the version."""
    with VersionedGraphStore(directory, durable=False) as recovered:
        version = recovered.version
        assert acked <= version <= written, (
            f"recovered v{version} outside [acked={acked}, written={written}]"
        )
        expected = shadow_at(version, deltas_by_seq)
        assert same_state(recovered.graph, expected), f"state diverges at v{version}"
        # zero index divergence: what the store serves after recovery is
        # exactly what a cold build over the ground-truth state produces
        cold = GraphIndexes(expected, path_depth=4).build_all()
        recovered.indexes.build_all()
        assert recovered.indexes.path._paths == cold.path._paths
        assert recovered.indexes.label.num_distinct_labels == cold.label.num_distinct_labels
        assert recovered.guide.equivalent_to(DataGuide(expected))
    return version


class TestInterruptionSweep:
    @pytest.mark.parametrize("crash_key", CRASH_POINTS)
    @pytest.mark.parametrize("crash_at", [1, 3, 5])
    def test_crash_at_every_point_and_boundary(
        self, tmp_path: Path, crash_key: str, crash_at: int
    ) -> None:
        """Arm one crash point before commit ``crash_at``; recovery must
        land between the last ack and the last write, with exact state."""
        deltas_by_seq = workload(6)
        injector = FaultInjector(seed=0)
        directory = tmp_path / "store"
        store = VersionedGraphStore.create(
            directory, base_graph(), durable=True, injector=injector
        )
        store.indexes.build_all()  # exercise the incremental path pre-crash
        _ = store.guide
        acked = written = 0
        try:
            for seq, deltas in enumerate(deltas_by_seq, start=1):
                if seq == crash_at:
                    injector.outages = frozenset({crash_key})
                guard = (
                    pytest.raises(InjectedFault)
                    if seq == crash_at
                    else contextlib.nullcontext()
                )
                with guard:
                    if crash_key.startswith("checkpoint") or crash_key == "wal:truncate":
                        store.commit(deltas)
                        written = acked = seq
                        if seq == crash_at:
                            store.checkpoint()
                    else:
                        store.commit(deltas)
                        written = acked = seq
                if seq == crash_at:
                    break
                # commit succeeded pre-crash-point
        finally:
            store.close()  # the "process" is dead; release the fd

        if crash_key in ("wal:append", "wal:append-torn"):
            written = crash_at - 1  # the frame never (fully) landed
        elif crash_key == "wal:fsync":
            written = crash_at  # written, durable-by-luck, never acked
            acked = crash_at - 1
        # checkpoint crashes happen after commit crash_at succeeded

        version = assert_prefix_consistent(
            directory, acked=acked, written=written, deltas_by_seq=deltas_by_seq
        )
        # recovery is stable: reopening again changes nothing
        with VersionedGraphStore(directory, durable=False) as again:
            assert again.version == version

    @pytest.mark.parametrize("crash_key", ["wal:truncate", "checkpoint:write"])
    def test_resume_after_checkpoint_crash(self, tmp_path: Path, crash_key: str) -> None:
        """A store that crashed mid-checkpoint keeps accepting commits
        after recovery -- the log and checkpoint re-converge."""
        deltas_by_seq = workload(4)
        injector = FaultInjector(seed=0)
        directory = tmp_path / "store"
        store = VersionedGraphStore.create(
            directory, base_graph(), durable=True, injector=injector
        )
        for deltas in deltas_by_seq[:2]:
            store.commit(deltas)
        injector.outages = frozenset({crash_key})
        with pytest.raises(InjectedFault):
            store.checkpoint()
        store.close()

        with VersionedGraphStore(directory, durable=True) as recovered:
            assert recovered.version == 2
            for deltas in deltas_by_seq[2:]:
                recovered.commit(deltas)
            recovered.checkpoint()
            expected = shadow_at(4, deltas_by_seq)
            assert same_state(recovered.graph, expected)
        with VersionedGraphStore(directory, durable=False) as final:
            assert final.version == 4
            assert final.recovery.replayed_records == 0


class TestWriteAfterRecovery:
    """Recovery must trim the discarded debris from the log *file*.

    The log reopens in append mode, so a commit made after recovering a
    torn store would otherwise land behind the debris -- acknowledged,
    yet unreachable at the next replay.  Found by driving the CLI: a
    torn store served writes that vanished on the following reopen.
    """

    def test_acked_commit_after_torn_tail_recovery_survives(
        self, tmp_path: Path
    ) -> None:
        deltas_by_seq = workload(4)
        directory = tmp_path / "store"
        store = VersionedGraphStore.create(directory, base_graph(), durable=True)
        for deltas in deltas_by_seq[:2]:
            store.commit(deltas)
        store.close()
        wal = directory / "wal.ssdw"
        wal.write_bytes(wal.read_bytes()[:-3])  # power loss tears commit 2

        with VersionedGraphStore(directory, durable=True) as reopened:
            assert reopened.version == 1
            assert reopened.recovery.discarded_bytes > 0
            reopened.commit(deltas_by_seq[1])  # re-acked after recovery

        assert (
            assert_prefix_consistent(
                directory, acked=2, written=2, deltas_by_seq=deltas_by_seq
            )
            == 2
        )

    def test_acked_commits_after_gap_recovery_survive(self, tmp_path: Path) -> None:
        deltas_by_seq = workload(4)
        directory = tmp_path / "store"
        store = VersionedGraphStore.create(directory, base_graph(), durable=True)
        for deltas in deltas_by_seq[:3]:
            store.commit(deltas)
        store.close()
        wal = directory / "wal.ssdw"
        raw = wal.read_bytes()
        frames, pos = [], 4
        while pos < len(raw):
            length = int.from_bytes(raw[pos : pos + 4], "big")
            frames.append(raw[pos : pos + 8 + length])
            pos += 8 + length
        assert len(frames) == 3
        wal.write_bytes(raw[:4] + frames[0] + frames[2])  # lose the middle record

        with VersionedGraphStore(directory, durable=True) as reopened:
            assert reopened.version == 1
            assert reopened.recovery.discarded_records == 1
            reopened.commit(deltas_by_seq[1])
            reopened.commit(deltas_by_seq[2])

        assert (
            assert_prefix_consistent(
                directory, acked=3, written=3, deltas_by_seq=deltas_by_seq
            )
            == 3
        )


# -- the real thing: SIGKILL mid-commit ---------------------------------------------

KILL_CHILD = """
import sys
from repro.core.graph import Graph
from repro.core.labels import string, sym
from repro.storage import AddEdge, AddNode, VersionedGraphStore

g = Graph()
root = g.new_node()
g.set_root(root)
store = VersionedGraphStore.create(sys.argv[1], g, durable=True)
print("ready", flush=True)
seq = 0
while True:  # commit forever; the parent pulls the plug mid-flight
    seq += 1
    node = seq
    store.commit([AddNode(node), AddEdge(0, sym(f"L{seq}"), node),
                  AddEdge(node, string(f"v{seq}"), node)])
    print(f"acked {seq}", flush=True)
"""


def test_sigkill_mid_commit_recovers_prefix(tmp_path: Path) -> None:
    directory = tmp_path / "store"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    proc = subprocess.Popen(
        [sys.executable, "-c", KILL_CHILD, str(directory)],
        stdout=subprocess.PIPE,
        env=env,
    )
    acked = 0
    try:
        assert proc.stdout is not None
        assert proc.stdout.readline().strip() == b"ready"
        deadline = time.monotonic() + 10
        while acked < 20 and time.monotonic() < deadline:
            line = proc.stdout.readline().strip()
            if line.startswith(b"acked "):
                acked = int(line.split()[1])
        assert acked >= 20, "child never reached 20 acked commits"
        proc.send_signal(signal.SIGKILL)  # mid-commit, whatever it was doing
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on test failure
            proc.kill()
            proc.wait()

    # acked commits are durable; the torn tail (if any) is discarded; the
    # recovered state is the deterministic workload's state at its version
    deltas_by_seq = [
        [AddNode(k), AddEdge(0, sym(f"L{k}"), k), AddEdge(k, string(f"v{k}"), k)]
        for k in range(1, 10_000)
    ]
    with VersionedGraphStore(directory, durable=False) as recovered:
        version = recovered.version
        assert version >= acked, f"acked commit lost: v{version} < acked {acked}"
        expected = shadow_at(version, deltas_by_seq)
        assert same_state(recovered.graph, expected)
        assert recovered.guide.equivalent_to(DataGuide(expected))
