"""Tests for dynamically-fetched external data ([28])."""


from repro.automata.product import rpq_nodes, rpq_witnesses
from repro.browse import find_value
from repro.core.builder import from_obj
from repro.core.graph import Graph
from repro.storage.external import EXTERNAL_MARKER, ExternalGraph


def build_database():
    """A local catalog whose `Homepage` regions live externally.

    Each person has a local ``Homepage`` edge to an empty node that is
    stubbed: fetching happens when (and only when) a traversal inspects
    that node's edges -- the [28] semantics.
    """
    g = from_obj(
        {
            "Person": [
                {"Name": "Buneman"},
                {"Name": "Suciu"},
            ]
        }
    )
    person_nodes = sorted(rpq_nodes(g, "Person"))
    for i, node in enumerate(person_nodes):
        homepage = g.new_node()
        g.add_edge(node, "Homepage", homepage)
        ExternalGraph.add_stub(g, homepage, f"homepage-{i}")
    return g


def fetcher_log():
    fetched = []

    def fetch(key: str) -> Graph:
        fetched.append(key)
        return from_obj({"url": f"http://ext/{key}", "topic": "databases"})

    return fetch, fetched


class TestExternalGraph:
    def test_no_fetch_until_traversed(self):
        fetch, fetched = fetcher_log()
        ext = ExternalGraph(build_database(), fetch)
        assert ext.pending_fetches == 2
        assert fetched == []

    def test_marker_edges_hidden(self):
        fetch, _ = fetcher_log()
        ext = ExternalGraph(build_database(), fetch)
        labels = {e.label for e in ext.edges_from(ext.root)}
        assert EXTERNAL_MARKER not in labels

    def test_traversal_fetches_on_demand(self):
        fetch, fetched = fetcher_log()
        ext = ExternalGraph(build_database(), fetch)
        hits = rpq_nodes(ext, "Person.Homepage.url")
        assert len(hits) == 2
        assert sorted(fetched) == ["homepage-0", "homepage-1"]
        assert ext.fetch_count == 2

    def test_each_region_fetched_once(self):
        fetch, fetched = fetcher_log()
        ext = ExternalGraph(build_database(), fetch)
        rpq_nodes(ext, "Person.Homepage")
        rpq_nodes(ext, "Person.Homepage.topic")
        assert len(fetched) == 2  # cached, not re-fetched

    def test_partial_traversal_fetches_partially(self):
        fetch, fetched = fetcher_log()
        base = build_database()
        ext = ExternalGraph(base, fetch)
        # a query that never enters the external regions
        names = rpq_nodes(ext, "Person.Name")
        assert len(names) == 2
        assert fetched == []
        assert ext.pending_fetches == 2

    def test_witnesses_through_external_data(self):
        fetch, _ = fetcher_log()
        ext = ExternalGraph(build_database(), fetch)
        wit = rpq_witnesses(ext, 'Person.Homepage.topic."databases"')
        assert wit

    def test_snapshot_reflects_fetch_state(self):
        fetch, _ = fetcher_log()
        ext = ExternalGraph(build_database(), fetch)
        before = ext.snapshot()
        assert not rpq_nodes(before, "Person.Homepage.url")
        rpq_nodes(ext, "Person.Homepage.url")
        after = ext.snapshot()
        assert rpq_nodes(after, "Person.Homepage.url")

    def test_reachable_forces_everything(self):
        fetch, fetched = fetcher_log()
        ext = ExternalGraph(build_database(), fetch)
        ext.reachable()
        assert ext.pending_fetches == 0
        assert len(fetched) == 2

    def test_browsing_works_over_external(self):
        fetch, _ = fetcher_log()
        ext = ExternalGraph(build_database(), fetch)
        hits = find_value(ext, "databases")
        assert len(hits) == 2

    def test_nested_external_regions(self):
        # external data may itself contain stubs... one level at a time:
        # the fetched subtree's stubs are NOT auto-registered (documented
        # limitation of this single-level wrapper); its plain data works.
        fetch, _ = fetcher_log()
        base = Graph()
        root = base.new_node()
        base.set_root(root)
        ExternalGraph.add_stub(base, root, "homepage-outer")
        ext = ExternalGraph(base, fetch)
        assert rpq_nodes(ext, "url")
