"""Repo-wide fixtures: the shared-memory leak guard.

Shared segments survive process exit (that is their point), so a test
that forgets ``unlink()`` poisons ``/dev/shm`` for every run after it.
Two layers of enforcement:

* the autouse session fixture below fails the run if any segment
  created through :mod:`repro.core.shared` is still registered -- or
  physically present under ``/dev/shm`` with our name prefix -- when the
  session ends;
* ``filterwarnings`` in ``pyproject.toml`` escalates resource-tracker
  leak warnings raised during the run into errors.
"""

import glob

import pytest

from repro.core.shared import SEGMENT_PREFIX, live_segments
from repro.storage import live_wal_handles


def _stray_segments() -> list[str]:
    return sorted(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


@pytest.fixture(autouse=True, scope="session")
def shared_memory_leak_guard():
    before = set(_stray_segments())  # tolerate wreckage from older runs
    yield
    leaked = sorted(live_segments())
    strays = [path for path in _stray_segments() if path not in before]
    assert not leaked and not strays, (
        f"shared-memory leak: live_segments()={leaked}, /dev/shm strays={strays} "
        "-- some test packed a snapshot and never unlinked it"
    )


@pytest.fixture(autouse=True, scope="session")
def wal_handle_leak_guard():
    """No WriteAheadLog may outlive the session (same deal as segments).

    A leaked log handle holds an open file descriptor into a temp dir and
    usually means a ``VersionedGraphStore`` was abandoned without
    ``close()`` -- which is exactly the bug that turns a crash-recovery
    suite into an fd exhaustion generator.
    """
    yield
    leaked = live_wal_handles()
    assert not leaked, (
        f"write-ahead log leak: live_wal_handles()={leaked} "
        "-- some test opened a store or WAL and never closed it"
    )
