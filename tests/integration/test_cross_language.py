r"""Integration: every query engine agrees on the same questions.

The tutorial's remark that the SQL-flavoured and calculus-flavoured
approaches "appear to end up with very similar languages" is tested
literally: the same questions over the same movie database answered by

* the RPQ product (automata),
* UnQL select/where (native evaluator, and index-optimized),
* the UnQL-to-relational translation,
* Lorel over the OEM conversion of the same graph,
* graph datalog over the edge relation,

must coincide.
"""

import pytest

from repro.automata.product import rpq_nodes
from repro.core.convert import graph_to_oem
from repro.datalog import run_on_graph
from repro.datasets import generate_movies
from repro.index import GraphIndexes
from repro.lorel import lorel, lorel_rows
from repro.relational.translate import translate_bindings
from repro.unql import unql
from repro.unql.parser import parse_query


@pytest.fixture(scope="module")
def db():
    return generate_movies(40, seed=77)


@pytest.fixture(scope="module")
def oem(db):
    return graph_to_oem(db)


def scalar_values(graph, node=None):
    """The scalar values encoded below each child of the result root."""
    node = graph.root if node is None else node
    out = set()
    for edge in graph.edges_from(node):
        for inner in graph.edges_from(edge.dst):
            if inner.label.is_base:
                out.add(inner.label.value)
        if edge.label.is_base:
            out.add(edge.label.value)
    return out


class TestAllTitles:
    def question(self):
        return "the set of all movie titles"

    def test_engines_agree(self, db, oem):
        # 1. RPQ: title-holding nodes' scalar edges
        rpq_titles = {
            e.label.value
            for n in rpq_nodes(db, "Entry.Movie.Title")
            for e in db.edges_from(n)
            if e.label.is_string
        }
        # 2. UnQL
        out = unql(r"select \t where {Entry.Movie.Title: \t} in db", db=db)
        unql_titles = {
            e.label.value for e in out.edges_from(out.root) if e.label.is_base
        }
        # 3. UnQL with indexes
        out_idx = unql(
            r"select \t where {Entry.Movie.Title: \t} in db",
            indexes=GraphIndexes(db),
            db=db,
        )
        idx_titles = {
            e.label.value for e in out_idx.edges_from(out_idx.root) if e.label.is_base
        }
        # 4. translated to relational algebra: bindings are node ids; decode
        query = parse_query(r"select \t where {Entry.Movie.Title: \t} in db")
        rel = translate_bindings(query, db)
        translated_titles = {
            e.label.value
            for (node,) in rel.rows
            for e in db.edges_from(node)
            if e.label.is_string
        }
        # 5. Lorel over OEM
        rows = lorel_rows(lorel("select m.Title from DB.Entry.Movie m", oem))
        lorel_titles = {v for row in rows for v in row["Title"]}
        # 6. datalog over the edge relation
        datalog_rows = run_on_graph(
            """
            movie(M)  :- root(R), edge(R, "Entry", E), edge(E, "Movie", M).
            title(T)  :- movie(M), edge(M, "Title", H), edgek(H, "string", T, L).
            """,
            db,
            "title",
        )
        datalog_titles = {t for (t,) in datalog_rows}

        assert rpq_titles == unql_titles == idx_titles
        assert rpq_titles == translated_titles
        assert rpq_titles == lorel_titles
        assert rpq_titles == datalog_titles
        assert len(rpq_titles) > 10  # the question is non-trivial


class TestMoviesWithDirector:
    def test_engines_agree(self, db, oem):
        pattern_nodes = rpq_nodes(db, "Entry.Movie.Director.<string>")
        rpq_directors = {
            e.label.value
            for n in rpq_nodes(db, "Entry.Movie.Director")
            for e in db.edges_from(n)
            if e.label.is_string
        }
        rows = lorel_rows(
            lorel("select m.Director from DB.Entry.Movie m "
                  "where exists m.Director", oem)
        )
        lorel_directors = {v for row in rows for v in row["Director"]}
        datalog_rows = run_on_graph(
            """
            d(T) :- edge(M, "Director", H), edgek(H, "string", T, L).
            """,
            db,
            "d",
        )
        assert rpq_directors == lorel_directors == {t for (t,) in datalog_rows}
        assert pattern_nodes  # sanity: the <string> leaves exist


class TestDeepSearch:
    def test_engines_agree_on_actor_search(self, db, oem):
        actor = "Bogart"
        # RPQ: any path ending in the actor string
        rpq_hits = rpq_nodes(db, f'#."{actor}"')
        # UnQL
        out = unql(
            r'select {hit: 1} where {#: {_: "%s"}} in db' % actor, db=db
        )
        unql_found = out.out_degree(out.root) > 0
        # Lorel with an arbitrary-depth path
        rows = lorel_rows(
            lorel(f'select m.Title from DB.Entry.Movie m where m.# = "{actor}"', oem)
        )
        # datalog: reachability to the actor string
        datalog_rows = run_on_graph(
            f"""
            reach(X) :- root(X).
            reach(Y) :- reach(X), edge(X, L, Y).
            hit(X) :- reach(X), edgek(X, "string", "{actor}", Y).
            """,
            db,
            "hit",
        )
        assert bool(rpq_hits) == unql_found == bool(datalog_rows)
        if unql_found:
            assert rows  # the actor appears under some movie


class TestCountsAcrossConversions:
    def test_oem_conversion_preserves_answers(self, db, oem):
        """The graph->OEM conversion does not change what queries see."""
        graph_count = len(rpq_nodes(db, "Entry.Movie"))
        rows = lorel_rows(lorel("select m from DB.Entry.Movie m", oem))
        assert len(rows) == graph_count


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import generate_movies


@given(st.integers(0, 50))
@settings(max_examples=25, deadline=None)
def test_prop_lorel_and_unql_agree_on_titles(seed):
    """Equivalent queries in both languages, on arbitrary generated data."""
    g = generate_movies(12, seed=seed)
    o = graph_to_oem(g)
    out = unql(r"select \t where {Entry.Movie.Title: \t} in db", db=g)
    unql_titles = sorted(
        e.label.value for e in out.edges_from(out.root) if e.label.is_base
    )
    rows = lorel_rows(lorel("select m.Title from DB.Entry.Movie m", o))
    lorel_titles = sorted(v for row in rows for v in row["Title"])
    assert unql_titles == lorel_titles


@given(st.integers(0, 50), st.sampled_from(["Bogart", "Allen", "Keaton"]))
@settings(max_examples=25, deadline=None)
def test_prop_lorel_and_unql_agree_on_deep_search(seed, actor):
    g = generate_movies(10, seed=seed)
    o = graph_to_oem(g)
    out = unql(
        r'select {hit: \t} where {Entry.Movie: {Title: \t, Cast.#: "%s"}} in db'
        % actor,
        db=g,
    )
    unql_hits = sorted(
        e.label.value
        for node in out.successors(out.root)
        for e in out.edges_from(node)
        if e.label.is_base
    )
    rows = lorel_rows(
        lorel(
            f'select m.Title from DB.Entry.Movie m where m.Cast.# = "{actor}"', o
        )
    )
    lorel_hits = sorted(v for row in rows for v in row["Title"])
    assert unql_hits == lorel_hits
