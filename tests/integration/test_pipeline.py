r"""Integration: full-system pipelines across package boundaries."""


from repro.browse import find_value
from repro.core import bisimilar, graph_to_oem, oem_to_graph
from repro.core.labels import string, sym
from repro.datasets import figure1, generate_acedb, generate_movies
from repro.index import GraphIndexes
from repro.lorel import lorel, lorel_rows
from repro.schema.dataguide import DataGuide
from repro.schema.inference import infer_schema
from repro.schema.to_relational import extract_tables
from repro.storage import GraphStore, dumps, loads
from repro.unql import fix_bacall, unql
from repro.unql.views import ViewCatalog


class TestStoreQueryPipeline:
    """ingest -> persist -> reload -> index -> query -> verify."""

    def test_round_trip_then_query(self, tmp_path):
        db = generate_movies(60, seed=301)
        path = tmp_path / "movies.ssd"
        GraphStore(db, clustering="dfs", page_size=512).save(path)
        reloaded = GraphStore.load(path, page_size=512).graph
        assert bisimilar(db, reloaded)
        # query answers must be invariant under the round trip
        q = r"select \t where {Entry.Movie.Title: \t} in db"
        before = unql(q, db=db)
        after = unql(q, indexes=GraphIndexes(reloaded), db=reloaded)
        assert bisimilar(before, after)

    def test_serialized_bytes_query_equivalence(self):
        db = figure1()
        clone = loads(dumps(db))
        assert [str(f) for f in find_value(db, "Casablanca")] == [
            str(f) for f in find_value(clone, "Casablanca")
        ]


class TestRestructureThenVerify:
    """restructure -> schema-check -> summarize: the tools compose."""

    def test_fix_then_schema_still_conforms(self):
        db = figure1()
        schema = infer_schema(db)
        fixed = fix_bacall(db, string("Bacall"), string("Bergman"), sym("Cast"))
        # the fix only renames a string; the type-generalized schema holds
        assert schema.conforms(fixed)

    def test_fix_changes_dataguide_minimally(self):
        db = figure1()
        fixed = fix_bacall(db, string("Bacall"), string("Bergman"), sym("Cast"))
        before = {p for p in DataGuide(db).all_paths(4)}
        after = {p for p in DataGuide(fixed).all_paths(4)}
        gone = before - after
        added = after - before
        assert all(any(lab == string("Bacall") for lab in p) for p in gone)
        assert all(any(lab == string("Bergman") for lab in p) for p in added)


class TestIntegrationToStructured:
    """semistructured sources -> one graph -> back to relations."""

    def test_loose_data_resists_extraction_until_padded(self):
        db = generate_acedb(40, seed=302)
        report = extract_tables(db)
        # ACeDB data is genuinely semistructured: loci are not flat records
        assert "Locus" not in report.tables

    def test_views_feed_extraction(self):
        db = generate_movies(25, seed=303, reference_fraction=0.0)
        catalog = ViewCatalog(db=db)
        # a view that flattens movies into records: the view's root becomes
        # the table collection (one `tuple` edge per movie)
        catalog.define(
            "flat",
            r"select {tuple: {title: \t, year: \y}} "
            r"where {Entry.Movie: {Title: \t, Year: \y}} in db",
        )
        catalog.materialize_all()
        report = extract_tables(catalog["flat"].graph)
        assert "tuple" in report.tables
        table = report.tables["tuple"]
        assert set(table.schema) == {"title", "year"}
        assert len(table) > 0


class TestOemGraphLorelUnql:
    def test_same_answer_through_both_models(self):
        db = figure1()
        oem = graph_to_oem(db)
        # and back again: conversions compose
        assert bisimilar(oem_to_graph(oem), db)
        lorel_titles = {
            v
            for row in lorel_rows(
                lorel("select m.Title from DB.Entry.Movie m", oem)
            )
            for v in row["Title"]
        }
        out = unql(r"select \t where {Entry.Movie.Title: \t} in db", db=db)
        unql_titles = {
            e.label.value for e in out.edges_from(out.root) if e.label.is_base
        }
        assert lorel_titles == unql_titles == {"Casablanca", "Play it again, Sam"}


class TestFigure1EndToEnd:
    def test_the_full_tutorial_walk(self, tmp_path):
        """Figure 1 through every major subsystem, asserting at each step."""
        db = figure1()
        # browse
        assert len(find_value(db, "Allen")) == 2
        # schema
        schema = infer_schema(db)
        assert schema.conforms(db)
        # summarize
        guide = DataGuide(db)
        assert guide.path_exists((sym("Entry"), sym("Movie"), sym("Cast")))
        # restructure
        fixed = fix_bacall(db, string("Bacall"), string("Bergman"), sym("Cast"))
        # persist
        path = tmp_path / "fig1.ssd"
        GraphStore(fixed).save(path)
        final = GraphStore.load(path).graph
        # verify end state
        assert find_value(final, "Bacall") == []
        assert len(find_value(final, "Bergman")) == 1
        assert final.has_cycle()  # the References cycle survived everything
