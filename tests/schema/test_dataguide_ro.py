"""Tests for DataGuides and representative objects."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bisim import bisimilar, reduce_graph
from repro.core.builder import from_obj
from repro.core.graph import Graph
from repro.core.labels import sym
from repro.schema.dataguide import DataGuide
from repro.schema.representative import (
    k_bisimulation,
    representative_object,
    ro_path_exists,
)


def path(*names: str):
    return tuple(sym(n) for n in names)


@pytest.fixture()
def db() -> Graph:
    return from_obj(
        {
            "Entry": [
                {"Movie": {"Title": "A", "Cast": "X"}},
                {"Movie": {"Title": "B", "Director": "Y"}},
                {"Show": {"Title": "C"}},
            ]
        }
    )


class TestDataGuide:
    def test_each_path_once(self, db):
        guide = DataGuide(db)
        paths = list(guide.all_paths(3))
        assert len(paths) == len(set(paths))

    def test_path_exists(self, db):
        guide = DataGuide(db)
        assert guide.path_exists(path("Entry", "Movie", "Title"))
        assert guide.path_exists(path("Entry", "Show"))
        assert not guide.path_exists(path("Entry", "Movie", "Nothing"))

    def test_target_sets_union_same_paths(self, db):
        guide = DataGuide(db)
        targets = guide.target_set(path("Entry", "Movie", "Title"))
        # both movie titles' nodes
        assert len(targets) == 2

    def test_target_set_of_missing_path_empty(self, db):
        guide = DataGuide(db)
        assert guide.target_set(path("Zzz")) == frozenset()

    def test_labels_after_for_browsing(self, db):
        guide = DataGuide(db)
        after = guide.labels_after(path("Entry", "Movie"))
        names = [str(l.value) for l in after]
        assert names == sorted(["Title", "Cast", "Director"])

    def test_empty_path_targets_root(self, db):
        guide = DataGuide(db)
        assert guide.target_set(()) == frozenset({db.root})

    def test_on_cyclic_graph_finite(self):
        g = Graph()
        a, b = g.new_node(), g.new_node()
        g.set_root(a)
        g.add_edge(a, "n", b)
        g.add_edge(b, "n", a)
        guide = DataGuide(g)
        assert guide.num_states <= 4
        assert guide.path_exists(path(*(["n"] * 7)))

    def test_guide_smaller_than_data_on_regular_data(self):
        # many identically-shaped movies collapse to a handful of states
        movies = [{"Movie": {"Title": "T", "Year": 1900}} for _ in range(30)]
        g = from_obj({"Entry": movies})
        guide = DataGuide(g)
        assert guide.num_states < g.num_nodes / 3

    def test_as_graph_accepts_same_paths(self, db):
        guide = DataGuide(db)
        gg = guide.as_graph()
        # every db path exists in the guide graph
        from repro.automata.product import rpq_nodes

        assert rpq_nodes(gg, "Entry.Movie.Title")
        assert not rpq_nodes(gg, "Entry.Movie.Ghost")


class TestRepresentativeObjects:
    def test_k0_collapses_to_self_loops(self, db):
        ro = representative_object(db, 0)
        assert ro.num_nodes == 1

    def test_k_refines_monotonically(self, db):
        sizes = [representative_object(db, k).num_nodes for k in range(4)]
        assert sizes == sorted(sizes)

    def test_large_k_equals_full_bisimulation(self, db):
        full = reduce_graph(db)
        ro = representative_object(db, db.num_nodes + 1)
        assert ro.num_nodes == full.num_nodes
        assert bisimilar(ro, full)

    def test_path_soundness_to_depth_k(self, db):
        k = 2
        ro = representative_object(db, k)
        guide = DataGuide(db)
        for p in guide.all_paths(k):
            assert ro_path_exists(ro, p)

    def test_no_missing_paths_ever(self, db):
        # completeness: every real path (any length) exists in the RO
        ro = representative_object(db, 1)
        guide = DataGuide(db)
        for p in guide.all_paths(3):
            assert ro_path_exists(ro, p)

    def test_spurious_paths_possible_beyond_k(self):
        # two distinct shapes merged at k=0 can create paths that no
        # database object has
        g = from_obj({"a": {"x": None}, "b": {"y": None}})
        ro = representative_object(g, 0)
        assert ro_path_exists(ro, path("a", "a"))  # spurious but allowed

    def test_negative_k_rejected(self, db):
        with pytest.raises(ValueError):
            k_bisimulation(db, -1)


@st.composite
def graphs(draw):
    n = draw(st.integers(1, 6))
    g = Graph()
    nodes = [g.new_node() for _ in range(n)]
    g.set_root(nodes[0])
    for _ in range(draw(st.integers(0, 10))):
        g.add_edge(
            draw(st.sampled_from(nodes)),
            draw(st.sampled_from("abc")),
            draw(st.sampled_from(nodes)),
        )
    return g


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_prop_dataguide_paths_equal_graph_paths(g):
    """The DataGuide accepts exactly the label paths of the database."""
    guide = DataGuide(g)
    guide_paths = set(guide.all_paths(4))
    # enumerate the graph's actual label paths to length 4
    real: set[tuple] = set()

    def walk(node, prefix):
        real.add(prefix)
        if len(prefix) >= 4:
            return
        for e in g.edges_from(node):
            walk(e.dst, prefix + (e.label,))

    walk(g.root, ())
    assert guide_paths == real


@given(graphs(), st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_prop_ro_complete_for_short_paths(g, k):
    ro = representative_object(g, k)
    guide = DataGuide(g)
    for p in guide.all_paths(k):
        assert ro_path_exists(ro, p)


class TestPathsEquivalent:
    def test_reflexive(self, db):
        from repro.schema.dataguide import paths_equivalent

        assert paths_equivalent(db, db)

    def test_bisimilar_implies_path_equivalent(self):
        from repro.core.bisim import reduce_graph
        from repro.schema.dataguide import paths_equivalent

        g = from_obj({"a": {"c": None}, "b": {"c": None}})
        assert paths_equivalent(g, reduce_graph(g))

    def test_path_equivalent_but_not_bisimilar(self):
        from repro.core.bisim import bisimilar
        from repro.schema.dataguide import paths_equivalent

        # {a: {b}, a: {c}}  vs  {a: {b, c}}: same paths, different branching
        split = from_obj({"a": [{"b": None}, {"c": None}]})
        merged = from_obj({"a": {"b": None, "c": None}})
        assert paths_equivalent(split, merged)
        assert not bisimilar(split, merged)

    def test_different_paths_detected(self):
        from repro.schema.dataguide import paths_equivalent

        assert not paths_equivalent(from_obj({"a": None}), from_obj({"b": None}))
        assert not paths_equivalent(
            from_obj({"a": {"b": None}}), from_obj({"a": None})
        )

    def test_cyclic_vs_unfolded_cycle(self):
        from repro.schema.dataguide import paths_equivalent

        loop = Graph()
        n = loop.new_node()
        loop.set_root(n)
        loop.add_edge(n, "x", n)
        finite = from_obj({"x": {"x": None}})
        assert not paths_equivalent(loop, finite)  # x^3 only in the loop


class TestRpqViaDataguide:
    def test_exactness_on_fixtures(self, db):
        from repro.automata.product import rpq_nodes
        from repro.schema.dataguide import rpq_via_dataguide

        guide = DataGuide(db)
        for pattern in [
            "Entry.Movie.Title",
            "Entry.(Movie|Show).Title",
            "#",
            "Entry._._",
            "Entry.Movie.Ghost",
        ]:
            assert rpq_via_dataguide(guide, pattern) == frozenset(
                rpq_nodes(db, pattern)
            ), pattern

    def test_exactness_on_cycles(self):
        from repro.automata.product import rpq_nodes
        from repro.schema.dataguide import rpq_via_dataguide

        g = Graph()
        a, b = g.new_node(), g.new_node()
        g.set_root(a)
        g.add_edge(a, "n", b)
        g.add_edge(b, "n", a)
        guide = DataGuide(g)
        assert rpq_via_dataguide(guide, "n.n*") == frozenset(rpq_nodes(g, "n.n*"))


@given(graphs(), st.sampled_from(["a", "a.b", "(a|b)*", "#.c", "a*.b"]))
@settings(max_examples=80, deadline=None)
def test_prop_rpq_via_dataguide_is_exact(g, pattern):
    from repro.automata.product import rpq_nodes
    from repro.schema.dataguide import rpq_via_dataguide

    guide = DataGuide(g)
    assert rpq_via_dataguide(guide, pattern) == frozenset(rpq_nodes(g, pattern))
