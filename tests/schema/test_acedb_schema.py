"""Tests for the ACeDB-style model-file schema language."""

import pytest

from repro.core.builder import from_obj
from repro.datasets import generate_acedb
from repro.schema.acedb_schema import AcedbModelError, parse_acedb_model

MODEL = """
// a C. elegans flavoured model, per section 1.1
?Locus   Locus_name  Text
         Phenotype   Text
         Reference   ?Paper
         Maps_to     ?Map
         Clone       Tree

?Paper   Author      Text
         Year        Int

?Map     Map_name    Text
"""


class TestParsing:
    def test_classes_become_root_edges(self):
        schema = parse_acedb_model(MODEL)
        names = set()
        for edge in schema.edges_from(schema.root):
            names.add(str(edge.predicate))
        assert names == {"`Locus`", "`Paper`", "`Map`"}

    def test_comments_and_blank_lines_ignored(self):
        schema = parse_acedb_model("// intro\n\n?A x Text // trailing\n")
        assert schema.num_nodes >= 2

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "Attr Text",                # attribute before any class
            "?A x",                     # missing type
            "?A x Nope",                # unknown type
            "?A x ?Ghost",              # dangling reference
            "? x Text",                 # empty class name
            "?A x Text\n?A y Text",     # duplicate class
        ],
    )
    def test_model_errors(self, bad):
        with pytest.raises(AcedbModelError):
            parse_acedb_model(bad)


class TestConformance:
    def test_generated_data_conforms(self):
        schema = parse_acedb_model(MODEL)
        assert schema.conforms(generate_acedb(60, seed=9))

    def test_loose_constraints_missing_attrs_ok(self):
        schema = parse_acedb_model(MODEL)
        assert schema.conforms(from_obj({"Locus": {"Locus_name": "unc-1"}}))
        assert schema.conforms(from_obj({}))  # even nothing at all

    def test_unknown_attribute_violates(self):
        schema = parse_acedb_model(MODEL)
        bad = from_obj({"Locus": {"Salary": 90000}})
        assert not schema.conforms(bad)
        assert any("Salary" in v for v in schema.violations(bad))

    def test_type_mismatch_violates(self):
        schema = parse_acedb_model(MODEL)
        bad = from_obj({"Locus": {"Reference": {"Year": "nineteen"}}})
        assert not schema.conforms(bad)

    def test_class_references_follow(self):
        schema = parse_acedb_model(MODEL)
        good = from_obj(
            {"Locus": {"Reference": {"Author": "Sulston", "Year": 1983}}}
        )
        assert schema.conforms(good)

    def test_tree_attribute_is_unbounded(self):
        schema = parse_acedb_model(MODEL)
        deep = {"anything": {"goes": {"to": {"any": {"depth": [1, "x", True]}}}}}
        assert schema.conforms(from_obj({"Locus": {"Clone": deep}}))

    def test_cyclic_class_references(self):
        schema = parse_acedb_model(
            """
            ?Person  Name    Text
                     Friend  ?Person
            """
        )
        from repro.core.graph import Graph
        from repro.core.labels import string

        g = Graph()
        a, b = g.new_node(), g.new_node()
        g.set_root(g.new_node())
        g.add_edge(g.root, "Person", a)
        g.add_edge(a, "Friend", b)
        g.add_edge(b, "Friend", a)  # a friendship cycle
        holder, leaf = g.new_node(), g.new_node()
        g.add_edge(a, "Name", holder)
        g.add_edge(holder, string("x"), leaf)
        assert schema.conforms(g)
