"""Tests for simulation and graph schemas (section 5)."""

import pytest

from repro.core.builder import from_obj
from repro.core.graph import Graph
from repro.schema.graphschema import GraphSchema, SchemaError
from repro.schema.simulation import graph_simulation


@pytest.fixture()
def movie_schema() -> GraphSchema:
    return GraphSchema.from_spec(
        {
            "Entry": {
                "Movie": {
                    "Title": {"<string>": None},
                    "Cast": "_",
                    "Director": {"<string>": None},
                    "Year": {"<int>": None},
                },
                "`TV Show`": {
                    "Title": {"<string>": None},
                    "act%": "_",
                },
            }
        }
    )


def conforming_db() -> Graph:
    return from_obj(
        {
            "Entry": [
                {"Movie": {"Title": "Casablanca", "Year": 1942}},
                {"Movie": {"Cast": {"x": {"deep": 1}}}},
                {"TV Show": {"Title": "Special", "actors": {"y": None}}},
            ]
        }
    )


class TestGraphSimulation:
    def test_every_graph_simulates_itself(self):
        g = from_obj({"a": {"b": None}})
        sim = graph_simulation(g, g)
        assert all((n, n) in sim for n in g.reachable())

    def test_subtree_simulated_by_supertree(self):
        small = from_obj({"a": None})
        big = from_obj({"a": None, "b": None})
        sim = graph_simulation(small, big)
        assert (small.root, big.root) in sim

    def test_supertree_not_simulated_by_subtree(self):
        small = from_obj({"a": None})
        big = from_obj({"a": None, "b": None})
        sim = graph_simulation(big, small)
        assert (big.root, small.root) not in sim

    def test_leaf_simulated_by_everything(self):
        leaf = Graph.empty()
        big = from_obj({"x": {"y": None}})
        sim = graph_simulation(leaf, big)
        assert len(sim) == len(big.reachable())

    def test_cycle_simulated_by_self_loop(self):
        cyc = Graph()
        a, b = cyc.new_node(), cyc.new_node()
        cyc.set_root(a)
        cyc.add_edge(a, "n", b)
        cyc.add_edge(b, "n", a)
        loop = Graph()
        x = loop.new_node()
        loop.set_root(x)
        loop.add_edge(x, "n", x)
        sim = graph_simulation(cyc, loop)
        assert (a, x) in sim and (b, x) in sim

    def test_label_mismatch_blocks_simulation(self):
        small = from_obj({"a": None})
        big = from_obj({"b": None})
        sim = graph_simulation(small, big)
        assert (small.root, big.root) not in sim


class TestGraphSchema:
    def test_conforming_data(self, movie_schema):
        assert movie_schema.conforms(conforming_db())

    def test_missing_attributes_still_conform(self, movie_schema):
        # loose constraints: nothing is required, only allowed
        assert movie_schema.conforms(from_obj({"Entry": {"Movie": {}}}))
        assert movie_schema.conforms(from_obj({}))

    def test_unknown_edge_violates(self, movie_schema):
        bad = from_obj({"Entry": {"Movie": {"BoxOffice": 100}}})
        assert not movie_schema.conforms(bad)

    def test_wrong_value_type_violates(self, movie_schema):
        bad = from_obj({"Entry": {"Movie": {"Year": "nineteen42"}}})
        assert not movie_schema.conforms(bad)

    def test_glob_predicate_edge(self, movie_schema):
        ok = from_obj({"Entry": {"TV Show": {"actors": {"anything": 1}}}})
        assert movie_schema.conforms(ok)
        bad = from_obj({"Entry": {"TV Show": {"producers": 1}}})
        assert not movie_schema.conforms(bad)

    def test_wildcard_subtree_allows_anything(self, movie_schema):
        deep = from_obj(
            {"Entry": {"Movie": {"Cast": {"a": {"b": {"c": [1, "x", True]}}}}}}
        )
        assert movie_schema.conforms(deep)

    def test_violations_report(self, movie_schema):
        bad = from_obj({"Entry": {"Movie": {"BoxOffice": 100}}})
        problems = movie_schema.violations(bad)
        assert problems
        assert any("BoxOffice" in p for p in problems)

    def test_violations_empty_when_conforming(self, movie_schema):
        assert movie_schema.violations(conforming_db()) == []

    def test_classify_types_nodes(self, movie_schema):
        db = conforming_db()
        classification = movie_schema.classify(db)
        # every reachable node got at least one schema type
        assert all(classification[n] for n in db.reachable())

    def test_bad_spec_rejected(self):
        with pytest.raises(SchemaError):
            GraphSchema.from_spec({"a.b": None})  # not a single atom
        with pytest.raises(SchemaError):
            GraphSchema.from_spec({"a": 42})

    def test_cyclic_data_against_schema(self):
        schema = GraphSchema.from_spec({"next": None})
        # schema: next -> (wildcard self-loop).  Data: a 2-cycle of next.
        g = Graph()
        a, b = g.new_node(), g.new_node()
        g.set_root(a)
        g.add_edge(a, "next", b)
        g.add_edge(b, "next", a)
        assert schema.conforms(g)

    def test_cyclic_schema(self):
        # schema with a cycle: list of items, each item may hold a list
        schema = GraphSchema()
        lst, item = schema.new_node(), schema.new_node()
        schema.set_root(lst)
        from repro.automata.regex import exact

        schema.add_edge(lst, exact("item"), item)
        schema.add_edge(item, exact("sublist"), lst)
        data = from_obj({"item": {"sublist": {"item": {}}}})
        assert schema.conforms(data)
        bad = from_obj({"item": {"wrong": 1}})
        assert not schema.conforms(bad)
