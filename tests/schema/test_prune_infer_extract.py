"""Tests for schema pruning, schema inference, and table extraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.product import rpq_nodes
from repro.automata.regex import (
    any_label,
    exact,
    glob_symbol,
    negated,
    type_test,
)
from repro.core.builder import from_obj
from repro.core.labels import LabelKind
from repro.relational.encode import relational_to_graph
from repro.relational.relation import Relation
from repro.schema.inference import infer_schema
from repro.schema.prune import (
    predicates_may_overlap,
    pruned_rpq_nodes,
    schema_reachable_states,
)
from repro.schema.to_relational import extract_tables


@pytest.fixture()
def db():
    return from_obj(
        {
            "Entry": [
                {"Movie": {"Title": "Casablanca", "Year": 1942}},
                {"Movie": {"Title": "Sam", "Year": 1972}},
            ]
        }
    )


@pytest.fixture()
def schema(db):
    return infer_schema(db)


class TestPredicateOverlap:
    def test_exact_vs_exact(self):
        assert predicates_may_overlap(exact("a"), exact("a"))
        assert not predicates_may_overlap(exact("a"), exact("b"))

    def test_any_overlaps_everything(self):
        assert predicates_may_overlap(any_label(), exact("a"))
        assert predicates_may_overlap(type_test(LabelKind.INT), any_label())

    def test_exact_vs_glob(self):
        assert predicates_may_overlap(exact("actors"), glob_symbol("act%"))
        assert not predicates_may_overlap(exact("producers"), glob_symbol("act%"))

    def test_exact_vs_type(self):
        assert predicates_may_overlap(exact(42), type_test(LabelKind.INT))
        assert not predicates_may_overlap(exact(42), type_test(LabelKind.STRING))

    def test_disjoint_kinds(self):
        assert not predicates_may_overlap(
            glob_symbol("a%"), type_test(LabelKind.INT)
        )

    def test_negation_vs_exact(self):
        assert not predicates_may_overlap(negated(exact("a")), exact("a"))
        assert predicates_may_overlap(negated(exact("a")), exact("b"))

    def test_glob_prefix_disagreement(self):
        assert not predicates_may_overlap(glob_symbol("abc%"), glob_symbol("xyz%"))
        assert predicates_may_overlap(glob_symbol("ab%"), glob_symbol("abc%"))

    def test_conservative_cases_stay_true(self):
        # undecided combinations must answer True (never wrongly prune)
        assert predicates_may_overlap(negated(glob_symbol("a%")), glob_symbol("b%"))


class TestSchemaPruning:
    def test_existing_path_not_pruned(self, db, schema):
        states = schema_reachable_states(schema, "Entry.Movie.Title")
        assert states

    def test_absent_path_pruned(self, db, schema):
        assert schema_reachable_states(schema, "Entry.Ghost.Title") == set()

    def test_pruned_evaluation_matches_plain(self, db, schema):
        for pattern in ["Entry.Movie.Title", "Entry.Ghost", "#.<int>", "Entry._._"]:
            assert pruned_rpq_nodes(db, schema, pattern) == rpq_nodes(db, pattern)

    def test_star_patterns_prunable(self, db, schema):
        assert schema_reachable_states(schema, "Ghost*") != set()  # eps match at root
        assert schema_reachable_states(schema, "Ghost+") == set()

    def test_type_test_respected(self, db, schema):
        # Year holds ints: <int> below Year exists, <bool> nowhere
        assert schema_reachable_states(schema, "Entry.Movie.Year.<int>")
        assert not schema_reachable_states(schema, "#.<bool>")


class TestInference:
    def test_inferred_schema_conforms(self, db):
        assert infer_schema(db).conforms(db)

    def test_inferred_schema_conforms_with_k(self, db):
        for k in (0, 1, 2):
            assert infer_schema(db, k=k).conforms(db)

    def test_data_values_generalize_to_types(self, db, schema):
        # a database with new titles/years still conforms: values were
        # generalized to <string>/<int>
        other = from_obj(
            {"Entry": {"Movie": {"Title": "Vertigo", "Year": 1958}}}
        )
        assert schema.conforms(other)

    def test_new_attributes_do_not_conform(self, db, schema):
        other = from_obj({"Entry": {"Movie": {"BoxOffice": 1}}})
        assert not schema.conforms(other)

    def test_schema_smaller_than_regular_data(self):
        movies = [{"Movie": {"Title": f"T{i}", "Year": i}} for i in range(20)]
        g = from_obj({"Entry": movies})
        schema = infer_schema(g)
        assert schema.num_nodes < g.num_nodes / 2


class TestExtraction:
    def test_recovers_relational_image(self):
        catalog = {
            "Movies": Relation(("title", "year"), [("A", 1), ("B", 2)]),
        }
        g = relational_to_graph(catalog)
        report = extract_tables(g)
        assert "Movies" in report.tables
        assert report.tables["Movies"] == Relation(
            ("title", "year"), [("A", 1), ("B", 2)]
        )

    def test_partial_records_skipped_strict(self):
        g = from_obj(
            {"People": [
                {"person": {"name": "a", "age": 1}},
            ]}
        )
        # build a collection with a missing attribute
        g = from_obj({"Items": None})
        from repro.core.graph import Graph

        g = Graph()
        root, coll = g.new_node(), g.new_node()
        g.set_root(root)
        g.add_edge(root, "Items", coll)
        for row in ({"a": 1, "b": 2}, {"a": 3}):
            rec = g.new_node()
            g.add_edge(coll, "item", rec)
            for attr, val in row.items():
                holder, leaf = g.new_node(), g.new_node()
                g.add_edge(rec, attr, holder)
                g.add_edge(holder, val, leaf)
        strict = extract_tables(g)
        assert "Items" not in strict.tables
        assert strict.skipped

    def test_partial_records_padded_when_allowed(self):
        from repro.core.graph import Graph

        g = Graph()
        root, coll = g.new_node(), g.new_node()
        g.set_root(root)
        g.add_edge(root, "Items", coll)
        for row in ({"a": 1, "b": 2}, {"a": 3}):
            rec = g.new_node()
            g.add_edge(coll, "item", rec)
            for attr, val in row.items():
                holder, leaf = g.new_node(), g.new_node()
                g.add_edge(rec, attr, holder)
                g.add_edge(holder, val, leaf)
        relaxed = extract_tables(g, allow_missing=True)
        assert relaxed.tables["Items"].schema == ("a", "b")
        assert (3, None) in relaxed.tables["Items"].rows

    def test_non_record_members_skipped(self):
        g = from_obj({"Stuff": [{"item": {"deep": {"nested": 1}}}, {"item": {"x": 2}}]})
        report = extract_tables(g)
        assert not report.tables

    def test_single_member_not_a_collection(self):
        g = from_obj({"One": {"item": {"a": 1}}})
        assert extract_tables(g).tables == {}


@st.composite
def catalogs(draw):
    rows = draw(
        st.lists(
            st.tuples(st.integers(0, 9), st.sampled_from(["x", "y", "z"])),
            min_size=2,
            max_size=5,
            unique=True,
        )
    )
    return {"T": Relation(("a", "b"), rows)}


@given(catalogs())
@settings(max_examples=40, deadline=None)
def test_prop_extract_inverts_encode(catalog):
    report = extract_tables(relational_to_graph(catalog))
    assert report.tables.get("T") == catalog["T"]
