"""Site-failure tests: kill each site in turn, check the partial answer.

The reference semantics ("oracle") is
:meth:`~repro.distributed.sites.DistributedGraph.without_sites`: a
resilient evaluation with a set of sites permanently down must produce
exactly the answer a centralized evaluation produces over the amputated
graph, and its :class:`~repro.resilience.Completeness` report must name
exactly the sites that were lost.
"""

import pytest

from repro.automata.product import rpq_nodes
from repro.core.bisim import bisimilar
from repro.core.graph import Graph
from repro.core.labels import sym
from repro.datasets import generate_web
from repro.distributed import (
    distributed_rpq,
    distributed_rpq_resilient,
    distributed_srec,
    distributed_srec_resilient,
    partition_graph,
)
from repro.resilience import FaultInjector, RetryPolicy
from repro.unql import srec
from repro.unql.sstruct import keep_edge

NUM_SITES = 4
PATTERNS = ["link*", "(link|xref)*", "link.link.xref"]


def web_graph(n: int = 40) -> Graph:
    """Chains with cross links and a cycle (same shape as test_decompose)."""
    g = Graph()
    nodes = [g.new_node() for _ in range(n)]
    g.set_root(nodes[0])
    for i in range(n - 1):
        g.add_edge(nodes[i], "link", nodes[i + 1])
    for i in range(0, n - 5, 5):
        g.add_edge(nodes[i], "xref", nodes[(i * 3 + 7) % n])
    g.add_edge(nodes[n - 1], "link", nodes[0])
    return g


def run_with_dead_sites(dist, pattern, dead, threshold=3):
    injector = FaultInjector(seed=0, outages={f"site:{s}" for s in dead})
    return (
        distributed_rpq_resilient(
            dist,
            pattern,
            injector=injector,
            policy=RetryPolicy(max_attempts=5, base_delay=0.01),
            failure_threshold=threshold,
        ),
        injector,
    )


class TestKillEachSite:
    @pytest.mark.parametrize("dead_site", range(NUM_SITES))
    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("strategy", ["bfs", "hash"])
    def test_partial_answer_matches_oracle(self, dead_site, pattern, strategy):
        dist = partition_graph(web_graph(), NUM_SITES, strategy=strategy)
        (results, _, report), _ = run_with_dead_sites(dist, pattern, {dead_site})
        assert results == rpq_nodes(dist.without_sites({dead_site}), pattern)
        if report.failures:
            assert report.failed_keys() == {f"site:{dead_site}"}

    @pytest.mark.parametrize("dead_site", range(NUM_SITES))
    def test_report_names_exactly_the_lost_site(self, dead_site):
        """With a strongly-connecting pattern every site is contacted, so
        the loss is always observed and always attributed correctly."""
        dist = partition_graph(web_graph(), NUM_SITES, strategy="hash")
        (_, _, report), _ = run_with_dead_sites(dist, "(link|xref)*", {dead_site})
        assert not report.complete
        assert report.is_lower_bound
        assert report.failed_keys() == {f"site:{dead_site}"}

    @pytest.mark.parametrize("dead_site", range(NUM_SITES))
    def test_breaker_bounds_contacts(self, dead_site):
        threshold = 3
        dist = partition_graph(web_graph(), NUM_SITES, strategy="hash")
        _, injector = run_with_dead_sites(
            dist, "(link|xref)*", {dead_site}, threshold=threshold
        )
        assert 0 < injector.calls(f"site:{dead_site}") <= threshold

    def test_two_dead_sites(self):
        dist = partition_graph(web_graph(), NUM_SITES, strategy="hash")
        (results, _, report), _ = run_with_dead_sites(dist, "(link|xref)*", {1, 3})
        assert report.failed_keys() == {"site:1", "site:3"}
        assert results == rpq_nodes(dist.without_sites({1, 3}), "(link|xref)*")

    def test_all_sites_alive_is_exact(self):
        dist = partition_graph(web_graph(), NUM_SITES)
        (results, _, report), _ = run_with_dead_sites(dist, "(link|xref)*", set())
        assert report.complete and not report.failures
        baseline, _ = distributed_rpq(dist, "(link|xref)*")
        assert results == baseline

    def test_lost_work_is_accounted(self):
        dist = partition_graph(web_graph(), NUM_SITES, strategy="hash")
        (_, _, report), _ = run_with_dead_sites(dist, "(link|xref)*", {2})
        assert report.lost > 0  # dropped configurations, counted not hidden


def upper(label, _view):
    return keep_edge(sym(str(label.value).upper()) if label.is_symbol else label)


class TestSrecSiteFailure:
    @pytest.mark.parametrize("dead_site", range(NUM_SITES))
    def test_degraded_srec_matches_oracle(self, dead_site):
        web = generate_web(60, seed=77)
        dist = partition_graph(web, NUM_SITES, strategy="hash")
        injector = FaultInjector(seed=0, outages={f"site:{dead_site}"})
        out, _, report = distributed_srec_resilient(
            dist,
            upper,
            injector=injector,
            policy=RetryPolicy(max_attempts=4, base_delay=0.01),
        )
        assert report.failed_keys() == {f"site:{dead_site}"}
        assert bisimilar(out, srec(dist.without_sites({dead_site}), upper))

    def test_transient_noise_srec_is_exact(self):
        web = generate_web(60, seed=78)
        dist = partition_graph(web, NUM_SITES, strategy="hash")
        injector = FaultInjector(seed=5, fail_rate=0.3)
        out, stats, report = distributed_srec_resilient(
            dist,
            upper,
            injector=injector,
            policy=RetryPolicy(max_attempts=8, base_delay=0.01),
            failure_threshold=10,
        )
        assert report.complete
        assert report.retries > 0
        centralized, _ = distributed_srec(dist, upper)
        assert bisimilar(out, centralized)
        assert stats.total_work == sum(
            len(web.edges_from(n)) for n in web.reachable()
        )
