"""Tests for decomposed structural recursion (the core of [35])."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bisim import bisimilar
from repro.core.graph import Graph
from repro.core.labels import sym
from repro.datasets import generate_web
from repro.distributed import partition_graph
from repro.distributed.srec_decompose import distributed_srec
from repro.unql import srec
from repro.unql.sstruct import keep_edge, rec


def upper(label, _view):
    return keep_edge(sym(str(label.value).upper()) if label.is_symbol else label)


def collapse_links(label, _view):
    return rec() if label == sym("link") else keep_edge(label)


class TestDistributedSrec:
    @pytest.mark.parametrize("sites", [1, 2, 4, 8])
    @pytest.mark.parametrize("strategy", ["bfs", "hash"])
    def test_bisimilar_to_centralized(self, sites, strategy):
        web = generate_web(80, seed=401)
        dist = partition_graph(web, sites, strategy=strategy)
        decomposed, _ = distributed_srec(dist, upper)
        centralized = srec(web, upper)
        assert bisimilar(decomposed, centralized)

    def test_collapse_decomposes_too(self):
        web = generate_web(50, seed=402)
        dist = partition_graph(web, 4)
        decomposed, _ = distributed_srec(dist, collapse_links)
        assert bisimilar(decomposed, srec(web, collapse_links))

    def test_work_is_partitioned(self):
        web = generate_web(120, seed=403)
        dist = partition_graph(web, 6, strategy="hash")
        _, stats = distributed_srec(dist, upper)
        # the template phase saw every reachable edge exactly once, split
        total_edges = sum(
            len(web.edges_from(n)) for n in web.reachable()
        )
        assert stats.total_work == total_edges
        assert len(stats.per_site_edges) == 6
        # hash partitioning balances the parallel phase
        assert stats.speedup > 3.0

    def test_one_site_no_speedup(self):
        web = generate_web(30, seed=404)
        dist = partition_graph(web, 1)
        _, stats = distributed_srec(dist, upper)
        assert stats.speedup == 1.0

    def test_on_cycles(self):
        g = Graph()
        a, b = g.new_node(), g.new_node()
        g.set_root(a)
        g.add_edge(a, "x", b)
        g.add_edge(b, "y", a)
        dist = partition_graph(g, 2, strategy="hash")
        out, _ = distributed_srec(dist, upper)
        assert out.has_cycle()
        assert bisimilar(out, srec(g, upper))


@st.composite
def graph_and_partition(draw):
    n = draw(st.integers(1, 7))
    g = Graph()
    nodes = [g.new_node() for _ in range(n)]
    g.set_root(nodes[0])
    for _ in range(draw(st.integers(0, 10))):
        g.add_edge(
            draw(st.sampled_from(nodes)),
            draw(st.sampled_from(["a", "link"])),
            draw(st.sampled_from(nodes)),
        )
    sites = draw(st.integers(1, 4))
    return g, sites, draw(st.sampled_from(["bfs", "hash"]))


@given(graph_and_partition(), st.sampled_from([upper, collapse_links]))
@settings(max_examples=80, deadline=None)
def test_prop_decomposed_srec_equals_centralized(gp, body):
    g, sites, strategy = gp
    dist = partition_graph(g, sites, strategy=strategy)
    decomposed, stats = distributed_srec(dist, body)
    assert bisimilar(decomposed, srec(g, body))
    assert stats.total_work == sum(len(g.edges_from(n)) for n in g.reachable())
