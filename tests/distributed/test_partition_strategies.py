"""Property suite for the pluggable partition strategies.

The invariants every strategy must satisfy (whatever the graph):

* **total assignment** -- every node gets exactly one site in range, so
  node sizes sum to ``num_nodes`` and owned-edge sizes sum to
  ``num_edges`` (every edge assigned exactly once, to its source's
  site);
* **balance** -- hash is perfectly balanced by construction; greedy
  never exceeds its declared capacity ``ceil(n/k * 1.1)``;
* **determinism** -- partitioning the same snapshot twice gives the
  identical table (two processes must agree without communicating);
* **clustering pays** -- on host-local crawl graphs the greedy cut is
  no worse than the locality-blind hash cut (the reason the strategy
  exists).
"""

from math import ceil

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import Graph
from repro.datasets import generate_crawl
from repro.distributed import build_partition
from repro.distributed.sites import partition_graph


@st.composite
def frozen_graphs(draw, max_nodes: int = 12):
    n = draw(st.integers(1, max_nodes))
    g = Graph()
    nodes = [g.new_node() for _ in range(n)]
    g.set_root(nodes[0])
    for _ in range(draw(st.integers(0, 24))):
        g.add_edge(
            draw(st.sampled_from(nodes)),
            draw(st.sampled_from(["link", "ref", "cite"])),
            draw(st.sampled_from(nodes)),
        )
    return g.freeze()


SITES = st.integers(1, 5)
STRATEGIES = st.sampled_from(["hash", "label", "greedy"])


@given(frozen_graphs(), SITES, STRATEGIES)
@settings(max_examples=120, deadline=None)
def test_every_node_and_edge_assigned_exactly_once(fg, k, strategy):
    part = build_partition(fg, k, strategy)
    assert len(part.site_of) == fg.num_nodes
    assert all(0 <= site < k for site in part.site_of)
    assert sum(part.stats.sizes) == fg.num_nodes
    assert sum(part.stats.edge_sizes) == fg.num_edges
    # members() is the inverse view of the same table
    members = part.members()
    assert sorted(pos for site in members for pos in site) == list(
        range(fg.num_nodes)
    )


@given(frozen_graphs(), SITES)
@settings(max_examples=80, deadline=None)
def test_hash_is_perfectly_balanced(fg, k):
    part = build_partition(fg, k, "hash")
    assert max(part.stats.sizes) - min(part.stats.sizes) <= 1


@given(frozen_graphs(), SITES)
@settings(max_examples=80, deadline=None)
def test_greedy_respects_capacity(fg, k):
    part = build_partition(fg, k, "greedy")
    assert max(part.stats.sizes) <= ceil(fg.num_nodes / k * 1.1)


@given(frozen_graphs(), SITES, STRATEGIES)
@settings(max_examples=60, deadline=None)
def test_partitioning_is_deterministic(fg, k, strategy):
    assert list(build_partition(fg, k, strategy).site_of) == list(
        build_partition(fg, k, strategy).site_of
    )


@given(
    st.integers(0, 2**31),
    st.integers(400, 1500),
    st.integers(10, 60),
    st.integers(2, 5),
)
@settings(max_examples=15, deadline=None)
def test_greedy_cut_no_worse_than_hash_on_clustered_graphs(
    seed, num_pages, mean_host, k
):
    fg = generate_crawl(num_pages, seed=seed, mean_host=mean_host)
    greedy = build_partition(fg, k, "greedy")
    hashed = build_partition(fg, k, "hash")
    assert greedy.stats.cut_edges <= hashed.stats.cut_edges
    # and stats agree on what was partitioned
    assert greedy.stats.num_edges == hashed.stats.num_edges == fg.num_edges


def test_stats_account_for_cut_edges_exactly():
    g = Graph()
    a, b, c, d = (g.new_node() for _ in range(4))
    g.set_root(a)
    g.add_edge(a, "x", b)  # 0 -> 1
    g.add_edge(a, "x", c)  # 0 -> 2
    g.add_edge(c, "x", d)  # 2 -> 3
    fg = g.freeze()
    part = build_partition(fg, 2, "hash")  # sites: [0, 1, 0, 1]
    # a->b (0->1) and c->d (0->1) cross parity; a->c (0->0) stays local
    assert part.stats.cut_edges == 2
    assert part.stats.cut_fraction == pytest.approx(2 / 3)
    assert part.stats.locality == pytest.approx(1 / 3)
    assert part.site_of_node(fg, c) == 0


def test_unknown_strategy_and_bad_sites_rejected():
    fg = Graph().freeze()
    with pytest.raises(ValueError, match="unknown partition strategy"):
        build_partition(fg, 2, "metis")
    with pytest.raises(ValueError, match="at least one site"):
        build_partition(fg, 0, "hash")


@pytest.mark.parametrize("strategy", ["hash", "label", "greedy"])
def test_partition_graph_accepts_new_strategy_names(strategy):
    g = Graph()
    a, b, c = (g.new_node() for _ in range(3))
    g.set_root(a)
    g.add_edge(a, "x", b)
    g.add_edge(b, "y", c)
    dist = partition_graph(g, 2, strategy=strategy)
    assert dist.num_sites == 2
    assert set(dist.site_of.values()) <= {0, 1}
