"""Tests for graph partitioning and decomposed query evaluation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.product import rpq_nodes
from repro.core.builder import from_obj
from repro.core.graph import Graph
from repro.distributed import (
    centralized_work,
    distributed_rpq,
    partition_graph,
)


def web_graph(n: int = 40) -> Graph:
    """A small deterministic 'web': chains with cross links and a cycle."""
    g = Graph()
    nodes = [g.new_node() for _ in range(n)]
    g.set_root(nodes[0])
    for i in range(n - 1):
        g.add_edge(nodes[i], "link", nodes[i + 1])
    for i in range(0, n - 5, 5):
        g.add_edge(nodes[i], "xref", nodes[(i * 3 + 7) % n])
    g.add_edge(nodes[n - 1], "link", nodes[0])  # cycle back
    return g


class TestPartition:
    def test_every_reachable_node_assigned(self):
        g = web_graph()
        dist = partition_graph(g, 4)
        assert set(dist.site_of) == g.reachable()

    def test_members_partition_nodes(self):
        dist = partition_graph(web_graph(), 4)
        all_members = [n for site in dist.members for n in site]
        assert len(all_members) == len(set(all_members))

    def test_bfs_has_better_locality_than_hash(self):
        g = web_graph(60)
        bfs = partition_graph(g, 4, strategy="bfs")
        hashed = partition_graph(g, 4, strategy="hash")
        assert bfs.locality() > hashed.locality()

    def test_single_site_has_full_locality(self):
        dist = partition_graph(web_graph(), 1)
        assert dist.locality() == 1.0
        assert dist.cross_edges() == []

    def test_input_nodes_are_cross_targets(self):
        g = web_graph()
        dist = partition_graph(g, 3, strategy="hash")
        for site in range(3):
            for node in dist.input_nodes(site):
                assert dist.site_of[node] == site

    def test_bad_args(self):
        with pytest.raises(ValueError):
            partition_graph(web_graph(), 0)
        with pytest.raises(ValueError):
            partition_graph(web_graph(), 2, strategy="nope")


class TestDistributedRpq:
    @pytest.mark.parametrize("strategy", ["bfs", "hash"])
    @pytest.mark.parametrize("sites", [1, 2, 4, 7])
    def test_answers_match_centralized(self, strategy, sites):
        g = web_graph()
        dist = partition_graph(g, sites, strategy=strategy)
        for pattern in ["link*", "#", "link.link.xref", "(link|xref)*"]:
            distributed, _ = distributed_rpq(dist, pattern)
            assert distributed == rpq_nodes(g, pattern), (pattern, strategy, sites)

    def test_total_work_matches_centralized(self):
        g = web_graph()
        dist = partition_graph(g, 4)
        _, stats = distributed_rpq(dist, "link*")
        assert stats.total_work == centralized_work(dist, "link*")

    def test_makespan_at_most_total(self):
        dist = partition_graph(web_graph(), 4)
        _, stats = distributed_rpq(dist, "(link|xref)*")
        assert stats.makespan <= stats.total_work
        assert stats.speedup >= 1.0

    def test_one_site_no_messages(self):
        dist = partition_graph(web_graph(), 1)
        _, stats = distributed_rpq(dist, "link*")
        assert stats.messages == 0
        assert stats.supersteps == 1

    def test_messages_bounded_by_cross_configs(self):
        g = web_graph()
        dist = partition_graph(g, 4, strategy="hash")
        _, stats = distributed_rpq(dist, "link*")
        assert stats.messages > 0  # hash partition forces communication

    def test_on_movie_db(self):
        g = from_obj(
            {"Entry": [{"Movie": {"Title": "A"}}, {"Movie": {"Title": "B"}}]}
        )
        dist = partition_graph(g, 3)
        result, _ = distributed_rpq(dist, "Entry.Movie.Title")
        assert result == rpq_nodes(g, "Entry.Movie.Title")


@st.composite
def graph_and_sites(draw):
    n = draw(st.integers(1, 8))
    g = Graph()
    nodes = [g.new_node() for _ in range(n)]
    g.set_root(nodes[0])
    for _ in range(draw(st.integers(0, 12))):
        g.add_edge(
            draw(st.sampled_from(nodes)),
            draw(st.sampled_from("ab")),
            draw(st.sampled_from(nodes)),
        )
    sites = draw(st.integers(1, 4))
    strategy = draw(st.sampled_from(["bfs", "hash"]))
    return g, sites, strategy


@given(graph_and_sites(), st.sampled_from(["a*", "(a|b)*", "a.b", "#.a"]))
@settings(max_examples=80, deadline=None)
def test_prop_distributed_equals_centralized(gs, pattern):
    g, sites, strategy = gs
    dist = partition_graph(g, sites, strategy=strategy)
    result, stats = distributed_rpq(dist, pattern)
    assert result == rpq_nodes(g, pattern)
    assert stats.total_work == centralized_work(dist, pattern)
