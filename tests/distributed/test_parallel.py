"""The parallel runtime: equality, degradation, cancellation, lifecycle.

The load-bearing property is **bit-identical answers**: for any graph
(cycles included), any pattern (Kleene stars included), any worker
count, any strategy, the parallel evaluation returns exactly the set the
centralized product kernel returns.  Process mode is exercised against a
real spawned pool; the hypothesis sweep uses ``inline=True`` (same
driver, same worker kernel, no process spawn per example).

Degradation reuses the decomposition oracle: with sites dead, the
answer equals the centralized answer over ``without_sites(dead)`` and
the completeness report says so.  Cooperative cancellation returns a
sound partial lower bound, never an exception.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import rpq_nodes
from repro.core.graph import Graph
from repro.datasets import generate_web
from repro.distributed import (
    ParallelError,
    ParallelRpqPool,
    build_partition,
    parallel_rpq,
)
from repro.distributed.decompose import SiteRuntime
from repro.distributed.sites import DistributedGraph
from repro.resilience import FaultInjector, RetryPolicy
from repro.service.governor import QueryControl

PATTERNS = ["link*", "(link|xref)*", "link.link.xref", "xref.link*", "_*.xref"]


def web_graph(n: int = 40) -> Graph:
    """Chains with cross links and a cycle (same shape as test_decompose)."""
    g = Graph()
    nodes = [g.new_node() for _ in range(n)]
    g.set_root(nodes[0])
    for i in range(n - 1):
        g.add_edge(nodes[i], "link", nodes[i + 1])
    for i in range(0, n - 5, 5):
        g.add_edge(nodes[i], "xref", nodes[(i * 3 + 7) % n])
    g.add_edge(nodes[n - 1], "link", nodes[0])
    return g


@pytest.fixture(scope="module")
def process_pool():
    """One spawned 2-worker pool shared by the process-mode tests (spawn
    plus import costs real seconds per worker; the pool exists to be
    reused across queries, so the tests reuse it too)."""
    fg = generate_web(120, seed=5).freeze()
    with ParallelRpqPool(fg, 2, strategy="greedy") as pool:
        yield fg, pool


class TestProcessMode:
    @pytest.mark.parametrize(
        "pattern", ["link*", "(link|keyword)*", "link.link", "_*.keyword"]
    )
    def test_matches_centralized(self, process_pool, pattern):
        fg, pool = process_pool
        result = pool.run(pattern)
        assert set(result.nodes) == rpq_nodes(fg, pattern)
        assert result.completeness.complete

    def test_cyclic_graph_with_kleene_star(self, process_pool):
        fg, pool = process_pool
        # generate_web graphs are cyclic by construction; also check a
        # start node other than the root
        start = next(iter(fg.nodes()))
        result = pool.run("link*", start)
        assert set(result.nodes) == rpq_nodes(fg, "link*", start)

    def test_stats_accounting(self, process_pool):
        fg, pool = process_pool
        result = pool.run("(link|keyword)*")
        stats = result.stats
        assert stats.num_sites == 2
        assert stats.strategy == "greedy"
        assert stats.supersteps == len(stats.work) >= 1
        assert stats.total_work > 0
        assert stats.messages == sum(stats.messages_per_site)
        assert stats.straggler_ratio >= 1.0
        assert stats.makespan <= stats.total_work

    def test_single_worker_never_messages(self):
        fg = generate_web(60, seed=2).freeze()
        with ParallelRpqPool(fg, 1) as pool:
            result = pool.run("(link|keyword)*")
            assert set(result.nodes) == rpq_nodes(fg, "(link|keyword)*")
            assert result.stats.messages == 0
            assert result.stats.supersteps == 1

    def test_worker_error_surfaces_as_parallel_error(self, process_pool):
        fg, pool = process_pool
        with pytest.raises(Exception):  # compile rejects before workers run
            pool.run("(")


class TestInlineEquality:
    @st.composite
    @staticmethod
    def graphs(draw, max_nodes: int = 10):
        n = draw(st.integers(1, max_nodes))
        g = Graph()
        nodes = [g.new_node() for _ in range(n)]
        g.set_root(nodes[0])
        for _ in range(draw(st.integers(0, 20))):
            g.add_edge(
                draw(st.sampled_from(nodes)),
                draw(st.sampled_from(["link", "xref", "cite"])),
                draw(st.sampled_from(nodes)),
            )
        return g

    @given(
        graphs(),
        st.sampled_from(
            ["link*", "(link|xref)*", "link.xref", "(link.xref)*.cite", "_*.cite"]
        ),
        st.integers(1, 4),
        st.sampled_from(["hash", "label", "greedy"]),
    )
    @settings(max_examples=120, deadline=None)
    def test_parallel_equals_centralized(self, g, pattern, k, strategy):
        fg = g.freeze()
        result = parallel_rpq(fg, pattern, num_workers=k, strategy=strategy, inline=True)
        assert set(result.nodes) == rpq_nodes(fg, pattern)
        assert result.completeness.complete

    def test_kleene_star_over_a_pure_cycle(self):
        g = Graph()
        nodes = [g.new_node() for _ in range(6)]
        g.set_root(nodes[0])
        for i in range(6):
            g.add_edge(nodes[i], "link", nodes[(i + 1) % 6])
        fg = g.freeze()
        result = parallel_rpq(fg, "link*", num_workers=3, inline=True)
        assert set(result.nodes) == set(nodes) == rpq_nodes(fg, "link*")


class TestDeadSites:
    NUM_SITES = 4

    def _pool_and_oracle(self, dead, pattern, inline=True):
        g = web_graph()
        fg = g.freeze()
        part = build_partition(fg, self.NUM_SITES, "hash")
        # mirror the flat table into a DistributedGraph for without_sites
        site_map = {node: part.site_of[pos] for pos, node in enumerate(fg.node_ids)}
        dist = DistributedGraph(g, site_map, self.NUM_SITES)
        runtime = SiteRuntime(
            self.NUM_SITES,
            injector=FaultInjector(seed=0, outages={f"site:{s}" for s in dead}),
            policy=RetryPolicy(max_attempts=5, base_delay=0.01),
        )
        with ParallelRpqPool(fg, self.NUM_SITES, partition=part, inline=inline) as pool:
            result = pool.run(pattern, runtime=runtime)
        oracle = rpq_nodes(dist.without_sites(dead), pattern)
        return result, oracle

    @pytest.mark.parametrize("dead_site", range(NUM_SITES))
    @pytest.mark.parametrize("pattern", ["link*", "(link|xref)*"])
    def test_answer_matches_amputated_graph(self, dead_site, pattern):
        result, oracle = self._pool_and_oracle({dead_site}, pattern)
        assert set(result.nodes) == oracle

    def test_two_dead_sites(self):
        result, oracle = self._pool_and_oracle({1, 3}, "(link|xref)*")
        assert set(result.nodes) == oracle
        assert not result.completeness.complete
        assert result.completeness.failed_keys() <= {"site:1", "site:3"}

    def test_dead_site_oracle_in_process_mode(self):
        result, oracle = self._pool_and_oracle({2}, "(link|xref)*", inline=False)
        assert set(result.nodes) == oracle
        assert not result.completeness.complete
        assert "site:2" in result.completeness.failed_keys()

    def test_as_partial_carries_the_report(self):
        result, _ = self._pool_and_oracle({0}, "(link|xref)*")
        partial = result.as_partial()
        assert partial.value == result.nodes
        assert partial.completeness is result.completeness


class TestCancellation:
    def test_budget_interrupt_yields_partial_lower_bound(self):
        fg = web_graph(200).freeze()
        full = rpq_nodes(fg, "(link|xref)*")
        control = QueryControl("q-budget", budget=40)
        result = parallel_rpq(
            fg, "(link|xref)*", num_workers=4, inline=True, control=control
        )
        assert set(result.nodes) <= full
        assert not result.completeness.complete
        assert {f.kind for f in result.completeness.failures} == {"budget"}

    def test_pre_cancelled_query_does_no_work(self):
        fg = web_graph(50).freeze()
        control = QueryControl("q-cancel")
        control.cancel()
        result = parallel_rpq(
            fg, "(link|xref)*", num_workers=2, inline=True, control=control
        )
        assert not result.completeness.complete
        assert {f.kind for f in result.completeness.failures} == {"cancelled"}
        assert result.stats.total_work == 0

    def test_budget_interrupt_in_process_mode(self):
        fg = web_graph(200).freeze()
        full = rpq_nodes(fg, "(link|xref)*")
        with ParallelRpqPool(fg, 2, strategy="hash") as pool:
            control = QueryControl("q-budget-proc", budget=40)
            result = pool.run("(link|xref)*", control=control)
            # the pool survives an interrupted query and serves the next
            clean = pool.run("(link|xref)*")
        assert set(result.nodes) <= full
        assert not result.completeness.complete
        assert set(clean.nodes) == full
        assert clean.completeness.complete


class TestLifecycle:
    def test_run_before_start_raises(self):
        fg = web_graph(10).freeze()
        pool = ParallelRpqPool(fg, 2, inline=True)
        with pytest.raises(ParallelError, match="not started"):
            pool.run("link*")

    def test_run_after_close_raises(self):
        fg = web_graph(10).freeze()
        pool = ParallelRpqPool(fg, 2, inline=True).start()
        pool.close()
        with pytest.raises(ParallelError):
            pool.run("link*")

    def test_closed_pool_cannot_restart(self):
        fg = web_graph(10).freeze()
        pool = ParallelRpqPool(fg, 2, inline=True).start()
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ParallelError, match="closed"):
            pool.start()

    def test_partition_site_count_must_match(self):
        fg = web_graph(10).freeze()
        part = build_partition(fg, 3, "hash")
        with pytest.raises(ValueError, match="3 sites"):
            ParallelRpqPool(fg, 2, partition=part)
