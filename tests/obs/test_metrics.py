"""Unit tests for counters, gauges, histograms, and the registry."""

import pytest

from repro.obs import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("edges")
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_rejects_negative_increment(self):
        c = Counter("edges")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)
        assert c.value == 0

    def test_zero_increment_is_allowed(self):
        c = Counter("edges")
        c.inc(0)
        assert c.value == 0


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("cache_size")
        g.set(10)
        assert g.value == 10.0
        g.add(-3)
        assert g.value == 7.0
        g.set(2.5)
        assert g.value == 2.5


class TestHistogram:
    def test_bucketing_against_bounds(self):
        h = Histogram("lat", bounds=(1, 10, 100))
        for v in (0, 1, 2, 10, 50, 1000):
            h.observe(v)
        # <=1: {0, 1}; <=10: {2, 10}; <=100: {50}; overflow: {1000}
        assert h.counts == [2, 2, 1, 1]
        assert h.total == 6
        assert h.sum == 1063.0

    def test_counts_sum_to_total(self):
        h = Histogram("lat")
        for v in range(0, 2_000_000, 99_999):
            h.observe(v)
        assert sum(h.counts) == h.total

    def test_mean(self):
        h = Histogram("lat", bounds=(10,))
        assert h.mean == 0.0
        h.observe(2)
        h.observe(4)
        assert h.mean == 3.0

    def test_bucket_for_boundary_values(self):
        h = Histogram("lat", bounds=(1, 10))
        assert h.bucket_for(1) == 0  # bounds are inclusive upper edges
        assert h.bucket_for(1.5) == 1
        assert h.bucket_for(10) == 1
        assert h.bucket_for(10.5) == 2  # overflow

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(10, 1))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1, 1, 2))

    def test_default_buckets_are_powers_of_ten(self):
        assert DEFAULT_BUCKETS[0] == 1.0
        assert DEFAULT_BUCKETS[-1] == 1_000_000.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_cross_kind_collision_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("x")

    def test_histogram_bound_disagreement_is_an_error(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1, 2))
        reg.histogram("h", bounds=(1, 2))  # agreeing is fine
        with pytest.raises(ValueError, match="already exists"):
            reg.histogram("h", bounds=(1, 2, 3))

    def test_as_dict_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        reg.gauge("level").set(1.5)
        reg.histogram("sizes", bounds=(10,)).observe(5)
        snap = reg.as_dict()
        assert snap["hits"] == 3
        assert snap["level"] == 1.5
        assert snap["sizes"] == {"bounds": [10.0], "counts": [1, 0], "total": 1, "sum": 5.0}

    def test_reset_zeroes_everything_in_place(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc(3)
        h = reg.histogram("sizes", bounds=(10,))
        h.observe(5)
        reg.reset()
        assert c.value == 0
        assert h.counts == [0, 0] and h.total == 0 and h.sum == 0.0
        # instruments survive a reset (same identity, new values)
        assert reg.counter("hits") is c

    def test_names_sorted_across_kinds(self):
        reg = MetricsRegistry()
        reg.gauge("b")
        reg.counter("c")
        reg.histogram("a")
        assert list(reg.names()) == ["a", "b", "c"]
