"""Property-based invariants of the observability layer.

Three laws the satellite spec pins down:

* histogram bucket counts always sum to the observation total, for any
  bound vector and observation stream;
* span trees are well-nested -- every child interval lies within its
  parent's, siblings appear in start order -- for any schedule of opens,
  closes, and clock advances;
* profiles are deterministic: running the same query twice over the same
  data yields the same counts, field for field.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.product import rpq_nodes_profiled
from repro.core.graph import Graph
from repro.obs import Histogram, Tracer
from repro.resilience import SimulatedClock

# -- histogram: sum(counts) == total ------------------------------------------

bound_vectors = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=8
).map(lambda xs: sorted(set(xs))).filter(bool)

observations = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False), max_size=50
)


@given(bounds=bound_vectors, values=observations)
def test_histogram_bucket_counts_sum_to_total(bounds, values):
    h = Histogram("h", bounds=bounds)
    for v in values:
        h.observe(v)
    assert sum(h.counts) == h.total == len(values)
    assert len(h.counts) == len(h.bounds) + 1


@given(bounds=bound_vectors, values=observations)
def test_histogram_every_observation_lands_at_or_below_its_bound(bounds, values):
    h = Histogram("h", bounds=bounds)
    for v in values:
        i = h.bucket_for(v)
        if i < len(h.bounds):
            assert v <= h.bounds[i]
        if i > 0:
            assert v > h.bounds[i - 1]


# -- span trees: well-nestedness for any schedule ------------------------------

span_programs = st.lists(
    st.one_of(
        st.just(("open",)),
        st.just(("close",)),
        st.floats(min_value=0.001, max_value=10.0, allow_nan=False).map(
            lambda d: ("advance", d)
        ),
    ),
    max_size=30,
)


@given(program=span_programs)
def test_span_trees_are_well_nested_for_any_schedule(program):
    clock = SimulatedClock()
    tracer = Tracer(clock=clock)
    open_contexts = []  # entered tracer.span(...) context managers, outermost first
    for op in program:
        if op[0] == "open":
            cm = tracer.span(f"s{len(open_contexts)}")
            cm.__enter__()
            open_contexts.append(cm)
        elif op[0] == "close":
            if open_contexts:
                open_contexts.pop().__exit__(None, None, None)
        else:  # advance
            clock.advance(op[1])
    while open_contexts:
        open_contexts.pop().__exit__(None, None, None)

    assert tracer.current is None
    for root in tracer.roots:
        _assert_well_nested(root)


def _assert_well_nested(span):
    assert span.closed and span.start <= span.end
    previous_start = None
    for child in span.children:
        assert span.start <= child.start <= child.end <= span.end
        if previous_start is not None:
            assert child.start >= previous_start  # siblings in start order
        previous_start = child.start
        _assert_well_nested(child)


# -- profiles: deterministic across runs ---------------------------------------


@st.composite
def small_graphs(draw):
    n = draw(st.integers(1, 6))
    g = Graph()
    nodes = [g.new_node() for _ in range(n)]
    g.set_root(nodes[0])
    for _ in range(draw(st.integers(0, 12))):
        g.add_edge(
            draw(st.sampled_from(nodes)),
            draw(st.sampled_from(["a", "b", "c"])),
            draw(st.sampled_from(nodes)),
        )
    return g


PATTERNS = ["a", "a.b", "(a|b)*", "a*.c", "_*.b"]


@settings(deadline=None)
@given(graph=small_graphs(), pattern=st.sampled_from(PATTERNS))
def test_rpq_profile_is_deterministic_across_runs(graph, pattern):
    results1, profile1 = rpq_nodes_profiled(graph, pattern)
    results2, profile2 = rpq_nodes_profiled(graph, pattern)
    assert results1 == results2
    assert profile1.as_dict() == profile2.as_dict()
    # and internally consistent: products visit at least the distinct nodes
    assert profile1.product_pairs >= profile1.nodes_visited
    assert profile1.results == len(results1)
