"""QueryProfile contract and the JSON exporter."""

import json

from repro.obs import QueryProfile, Tracer
from repro.obs.export import (
    metrics_to_dict,
    profile_to_dict,
    span_to_dict,
    to_json,
    write_bench,
)
from repro.obs.metrics import MetricsRegistry
from repro.resilience import SimulatedClock


class TestQueryProfile:
    def test_defaults_are_empty_and_complete(self):
        p = QueryProfile(engine="rpq", query="a.b")
        assert p.complete
        assert p.results == 0
        assert p.extras == {}

    def test_merge_sums_counts_and_ands_complete(self):
        a = QueryProfile(nodes_visited=3, results=1, extras={"x": 1})
        b = QueryProfile(nodes_visited=4, results=2, complete=False, extras={"x": 2, "y": 5})
        out = a.merge(b)
        assert out is a
        assert a.nodes_visited == 7
        assert a.results == 3
        assert not a.complete
        assert a.extras == {"x": 3, "y": 5}

    def test_as_dict_field_order_is_stable(self):
        keys = list(QueryProfile().as_dict())
        assert keys[:2] == ["engine", "query"]
        assert keys[-2:] == ["complete", "extras"]
        # the count fields keep their declared order (golden-file diffs rely on it)
        assert keys.index("nodes_visited") < keys.index("edges_expanded") < keys.index("results")

    def test_as_dict_sorts_extras(self):
        p = QueryProfile(extras={"b": 2, "a": 1})
        assert list(p.as_dict()["extras"]) == ["a", "b"]


class TestExport:
    def test_profile_to_dict_matches_as_dict(self):
        p = QueryProfile(engine="rpq", nodes_visited=5)
        assert profile_to_dict(p) == p.as_dict()

    def test_span_to_dict_round_trips_through_json(self):
        clock = SimulatedClock()
        tracer = Tracer(clock=clock)
        log = tracer.event_log()
        with tracer.span("query", engine="unql"):
            clock.advance(1.0)
            log.emit("retry", key="site:0")
            with tracer.span("rpq"):
                clock.advance(0.5)
        d = span_to_dict(tracer.roots[0])
        parsed = json.loads(to_json(d))
        assert parsed["name"] == "query"
        assert parsed["duration"] == 1.5
        assert parsed["attributes"] == {"engine": "unql"}
        assert parsed["events"][0]["kind"] == "retry"
        assert parsed["children"][0]["name"] == "rpq"

    def test_span_to_dict_stringifies_non_json_attributes(self):
        tracer = Tracer(clock=SimulatedClock())
        with tracer.span("q", pattern=object()) as span:
            pass
        d = span_to_dict(span)
        assert isinstance(d["attributes"]["pattern"], str)

    def test_metrics_to_dict(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(2)
        assert metrics_to_dict(reg) == {"hits": 2}

    def test_to_json_is_canonical(self):
        text = to_json({"b": 1, "a": 2})
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == {"a": 2, "b": 1}

    def test_write_bench_creates_file_in_fresh_directory(self, tmp_path):
        out = tmp_path / "bench" / "out"
        payload = {"timings": {"rpq": 0.001}, "profiles": {"rpq": QueryProfile().as_dict()}}
        path = write_bench("e2_rpq", payload, out)
        assert path == out / "BENCH_e2_rpq.json"
        parsed = json.loads(path.read_text())
        assert parsed["timings"]["rpq"] == 0.001
        assert parsed["profiles"]["rpq"]["complete"] is True
