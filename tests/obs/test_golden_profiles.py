"""Golden-profile regression suite: exact operation counts, pinned.

Each case runs one profiled query over one bundled dataset and compares
the complete :class:`~repro.obs.QueryProfile` dict against
``golden_profiles.json``.  The counts are algorithmic observables
(product configurations, DFA states, index hits), so a change that
silently alters how much work an evaluator does -- even one that keeps
answers identical and timings inside the noise band -- fails here with
an exact diff.

When an *intentional* algorithm change shifts the counts, regenerate:

    PYTHONPATH=src python tests/obs/test_golden_profiles.py --regen

and review the JSON diff like any other behavioral change.  Every case
also runs twice and asserts the two profiles agree, so a
nondeterministic evaluator cannot hide behind a lucky regeneration.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.automata.product import rpq_nodes_profiled
from repro.browse import (
    find_attribute_names_profiled,
    find_integers_greater_than_profiled,
    find_value_profiled,
)
from repro.core.convert import graph_to_oem
from repro.datasets import figure1, generate_acedb, generate_movies, generate_web
from repro.distributed import distributed_rpq_profiled, partition_graph
from repro.lorel import evaluate_lorel_profiled, parse_lorel
from repro.unql import evaluate_query_profiled, parse_query

GOLDEN_PATH = Path(__file__).parent / "golden_profiles.json"

DATASETS = {
    "figure1": lambda: figure1(),
    "movies30": lambda: generate_movies(30, seed=11),
    "web40": lambda: generate_web(40, seed=7),
    "acedb20": lambda: generate_acedb(20, seed=3),
}


def _rpq(pattern):
    def run(graph):
        _, profile = rpq_nodes_profiled(graph, pattern)
        return profile

    return run


def _unql(text):
    def run(graph):
        _, profile = evaluate_query_profiled(
            parse_query(text), {"db": graph, "DB": graph}, query_text=text
        )
        return profile

    return run


def _lorel(text):
    def run(graph):
        db = graph_to_oem(graph)
        _, profile = evaluate_lorel_profiled(parse_lorel(text), db, query_text=text)
        return profile

    return run


def _find_value(value):
    def run(graph):
        _, profile = find_value_profiled(graph, value)
        return profile

    return run


def _find_ints(bound):
    def run(graph):
        _, profile = find_integers_greater_than_profiled(graph, bound)
        return profile

    return run


def _find_attrs(pattern):
    def run(graph):
        _, profile = find_attribute_names_profiled(graph, pattern)
        return profile

    return run


def _distributed(pattern, sites=3):
    def run(graph):
        dist = partition_graph(graph, sites, strategy="bfs")
        _, _, profile = distributed_rpq_profiled(dist, pattern)
        return profile

    return run


#: case id -> (dataset key, profile producer).  Every evaluator family
#: appears against every dataset family at least once.
CASES = {
    # figure 1 of the paper: the canonical heterogeneous movie database
    "figure1/rpq-title": ("figure1", _rpq("Entry.Movie.Title")),
    "figure1/rpq-allen": ("figure1", _rpq('Entry.Movie.(!Movie)*."Allen"')),
    "figure1/unql-title": (
        "figure1",
        _unql(r"select \t where {Entry.Movie.Title: \t} in db"),
    ),
    "figure1/lorel-title": ("figure1", _lorel("select t from DB.Entry.Movie.Title t")),
    "figure1/find-casablanca": ("figure1", _find_value("Casablanca")),
    "figure1/find-ints-1": ("figure1", _find_ints(1)),
    "figure1/find-attrs-title": ("figure1", _find_attrs("Title")),
    "figure1/dist-title": ("figure1", _distributed("Entry.Movie.Title")),
    # the scaled pseudo-IMDB
    "movies30/rpq-title": ("movies30", _rpq("Entry.Movie.Title")),
    "movies30/rpq-references": ("movies30", _rpq("Entry._.References._.Title")),
    "movies30/unql-cast": (
        "movies30",
        _unql(r"select \n where {Entry.Movie.Cast: \n} in db"),
    ),
    "movies30/lorel-title": ("movies30", _lorel("select t from DB.Entry.Movie.Title t")),
    "movies30/dist-title": ("movies30", _distributed("Entry.Movie.Title", sites=4)),
    # the cyclic web graph: closure queries must terminate and count stably
    "web40/rpq-keywords": ("web40", _rpq("link*.keyword")),
    "web40/find-attrs-keyword": ("web40", _find_attrs("keyword")),
    "web40/dist-keywords": ("web40", _distributed("link*.keyword", sites=4)),
    # the loose-schema biological database
    "acedb20/rpq-phenotype": ("acedb20", _rpq("Locus.Phenotype")),
    "acedb20/rpq-clones": ("acedb20", _rpq("Locus.Clone.Contains*.Clone_name")),
    "acedb20/lorel-names": ("acedb20", _lorel("select n from DB.Locus.Locus_name n")),
}


def compute_profile(case_id: str) -> dict:
    dataset_key, run = CASES[case_id]
    return run(DATASETS[dataset_key]()).as_dict()


def load_golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.mark.parametrize("case_id", sorted(CASES))
def test_profile_matches_golden(case_id):
    golden = load_golden()
    assert case_id in golden, (
        f"no golden entry for {case_id}; regenerate with "
        f"PYTHONPATH=src python {Path(__file__).relative_to(Path.cwd())} --regen"
    )
    assert compute_profile(case_id) == golden[case_id]


@pytest.mark.parametrize("case_id", sorted(CASES))
def test_profile_is_deterministic(case_id):
    assert compute_profile(case_id) == compute_profile(case_id)


#: Cases whose runner accepts either graph layout directly (the RPQ and
#: browse families; UnQL/Lorel/distributed go through their own wrappers).
FROZEN_CASES = sorted(
    case_id for case_id in CASES if "/rpq-" in case_id or "/find-" in case_id
)


@pytest.mark.parametrize("case_id", FROZEN_CASES)
def test_frozen_kernel_matches_golden(case_id):
    """The label-pruned frozen kernel reports byte-identical counts.

    Pruning may only skip edges a full scan would have stepped into the
    dead state, so the pinned plain-graph profiles double as the frozen
    kernel's goldens -- same file, no regeneration allowed.
    """
    dataset_key, run = CASES[case_id]
    frozen_profile = run(DATASETS[dataset_key]().freeze()).as_dict()
    assert frozen_profile == load_golden()[case_id]


def test_golden_file_has_no_stale_entries():
    assert set(load_golden()) == set(CASES)


def test_every_golden_profile_reports_work():
    """A profile that counted nothing means the wiring silently broke."""
    for case_id, profile in load_golden().items():
        assert profile["nodes_visited"] > 0, f"{case_id} visited no nodes"
        assert profile["complete"] is True, f"{case_id} is unexpectedly partial"


def regenerate() -> None:
    payload = {case_id: compute_profile(case_id) for case_id in sorted(CASES)}
    GOLDEN_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {len(payload)} golden profiles to {GOLDEN_PATH}")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
