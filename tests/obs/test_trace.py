"""Tracer tests: nesting, timing under a simulated clock, event bridging."""

import pytest

from repro.obs import Span, Tracer
from repro.resilience import SimulatedClock


def make() -> "tuple[Tracer, SimulatedClock]":
    clock = SimulatedClock()
    return Tracer(clock=clock), clock


class TestSpanTree:
    def test_nested_spans_form_a_tree(self):
        tracer, _ = make()
        with tracer.span("query") as outer:
            with tracer.span("rpq") as inner:
                with tracer.span("dfa"):
                    pass
            with tracer.span("construct"):
                pass
        assert tracer.roots == [outer]
        assert [c.name for c in outer.children] == ["rpq", "construct"]
        assert [c.name for c in inner.children] == ["dfa"]

    def test_sibling_roots_accumulate(self):
        tracer, _ = make()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [r.name for r in tracer.roots] == ["a", "b"]

    def test_durations_are_exact_under_simulated_clock(self):
        tracer, clock = make()
        with tracer.span("outer"):
            clock.advance(1.0)
            with tracer.span("inner") as inner:
                clock.advance(2.0)
            clock.advance(0.5)
        outer = tracer.roots[0]
        assert outer.duration == pytest.approx(3.5)
        assert inner.duration == pytest.approx(2.0)
        # well-nested: the child interval lies within the parent's
        assert outer.start <= inner.start <= inner.end <= outer.end

    def test_exception_still_closes_span_and_marks_error(self):
        tracer, _ = make()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        span = tracer.roots[0]
        assert span.closed
        assert "boom" in span.attributes["error"]
        assert tracer.current is None  # stack unwound

    def test_open_span_reports_zero_duration(self):
        span = Span("open", start=1.0)
        assert not span.closed
        assert span.duration == 0.0

    def test_annotate_on_current_span(self):
        tracer, _ = make()
        with tracer.span("q") as span:
            tracer.annotate(rows=3)
            span.annotate(engine="unql")
        assert span.attributes == {"rows": 3, "engine": "unql"}
        tracer.annotate(ignored=True)  # no open span: a documented no-op

    def test_walk_and_find(self):
        tracer, _ = make()
        with tracer.span("query"):
            with tracer.span("rpq"):
                pass
            with tracer.span("rpq"):
                pass
        root = tracer.roots[0]
        assert [s.name for s in root.walk()] == ["query", "rpq", "rpq"]
        assert len(root.find("rpq")) == 2
        assert len(tracer.find("rpq")) == 2
        assert len(list(tracer.all_spans())) == 3


class TestEventBridge:
    def test_event_log_emissions_land_on_open_span(self):
        tracer, _ = make()
        log = tracer.event_log()
        with tracer.span("query") as span:
            log.emit("retry", key="site:1", attempt=2)
        assert len(span.events) == 1
        assert span.events[0].kind == "retry"
        assert span.events[0]["key"] == "site:1"
        # the log keeps its own copy too: one stream, two views
        assert log.count("retry") == 1

    def test_events_outside_any_span_are_kept_as_orphans(self):
        tracer, _ = make()
        log = tracer.event_log()
        log.emit("fault", key="x")
        assert len(tracer.orphan_events) == 1
        assert tracer.total_events() == 1

    def test_event_log_shares_the_tracer_clock(self):
        tracer, clock = make()
        log = tracer.event_log()
        clock.advance(7.0)
        event = log.emit("tick")
        assert event.at == pytest.approx(clock.now())

    def test_total_events_spans_plus_orphans(self):
        tracer, _ = make()
        log = tracer.event_log()
        log.emit("before")
        with tracer.span("a"):
            log.emit("during")
            with tracer.span("b"):
                log.emit("nested")
        assert tracer.total_events() == 3
