"""Binary serialization of edge-labeled graphs.

The storage layer's wire format: a compact, self-contained encoding of the
reachable part of a graph.  Node ids are renumbered densely; labels are
encoded with one kind byte plus a kind-specific payload; all integers are
unsigned LEB128 varints (small graphs stay small).  The format carries no
object identity beyond graph structure -- exactly the observability the
model grants (section 2).

Format::

    magic "SSD1"
    varint num_nodes
    varint root
    repeated num_nodes times:
        varint out_degree
        repeated out_degree times: label, varint dst
    label := kind byte ('i','r','s','b','y') + payload
"""

from __future__ import annotations

import struct

from ..core.graph import Graph
from ..core.labels import Label, LabelKind
from ..obs import MetricsRegistry

__all__ = ["dumps", "loads", "serialize_node_record", "SerializationError", "STORAGE_METRICS"]

#: Always-on storage traffic accounting: graphs and bytes through
#: dumps/loads.  Observability tests snapshot and reset it; the CLI's
#: ``stats --json`` reports it.
STORAGE_METRICS = MetricsRegistry()

_MAGIC = b"SSD1"

_KIND_BYTES = {
    LabelKind.INT: b"i",
    LabelKind.REAL: b"r",
    LabelKind.STRING: b"s",
    LabelKind.BOOL: b"b",
    LabelKind.SYMBOL: b"y",
}
_BYTE_KINDS = {v: k for k, v in _KIND_BYTES.items()}


class SerializationError(ValueError):
    """Raised on corrupt or unsupported serialized data."""


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise SerializationError(f"varints are unsigned, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise SerializationError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _write_label(out: bytearray, label: Label) -> None:
    out += _KIND_BYTES[label.kind]
    if label.kind is LabelKind.INT:
        # zigzag for signed ints
        value = int(label.value)
        _write_varint(out, (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1)
    elif label.kind is LabelKind.REAL:
        out += struct.pack("<d", float(label.value))
    elif label.kind is LabelKind.BOOL:
        out.append(1 if label.value else 0)
    else:  # STRING / SYMBOL
        encoded = str(label.value).encode("utf-8")
        _write_varint(out, len(encoded))
        out += encoded


def _read_label(data: bytes, pos: int) -> tuple[Label, int]:
    if pos >= len(data):
        raise SerializationError("truncated label")
    kind_byte = data[pos : pos + 1]
    pos += 1
    kind = _BYTE_KINDS.get(kind_byte)
    if kind is None:
        raise SerializationError(f"unknown label kind byte {kind_byte!r}")
    if kind is LabelKind.INT:
        raw, pos = _read_varint(data, pos)
        value = (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)
        return Label(kind, value), pos
    if kind is LabelKind.REAL:
        if pos + 8 > len(data):
            raise SerializationError("truncated real")
        (value,) = struct.unpack_from("<d", data, pos)
        return Label(kind, value), pos + 8
    if kind is LabelKind.BOOL:
        if pos >= len(data):
            raise SerializationError("truncated bool")
        return Label(kind, bool(data[pos])), pos + 1
    length, pos = _read_varint(data, pos)
    if pos + length > len(data):
        raise SerializationError("truncated string")
    try:
        text = data[pos : pos + length].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise SerializationError(f"corrupt string payload: {exc}") from exc
    return Label(kind, text), pos + length


def dumps(graph: Graph) -> bytes:
    """Serialize the reachable part of ``graph``."""
    reach = sorted(graph.reachable())
    renumber = {node: i for i, node in enumerate(reach)}
    out = bytearray(_MAGIC)
    _write_varint(out, len(reach))
    _write_varint(out, renumber[graph.root])
    for node in reach:
        edges = [e for e in graph.edges_from(node) if e.dst in renumber]
        _write_varint(out, len(edges))
        for edge in edges:
            _write_label(out, edge.label)
            _write_varint(out, renumber[edge.dst])
    STORAGE_METRICS.counter("graphs_serialized").inc()
    STORAGE_METRICS.counter("bytes_serialized").inc(len(out))
    return bytes(out)


def loads(data: bytes) -> Graph:
    """Reconstruct a graph serialized by :func:`dumps`.

    Every failure mode of corrupt input -- bad magic, truncation at any
    byte, bit flips, implausible counts, invalid UTF-8 -- raises
    :class:`SerializationError` (or a subclass-compatible ``ValueError``);
    no other exception type may escape.  Counts are sanity-checked
    *before* allocation, so a flipped bit in a varint cannot make the
    decoder try to allocate billions of nodes.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise SerializationError(f"expected bytes, got {type(data).__name__}")
    data = bytes(data)
    if data[:4] != _MAGIC:
        raise SerializationError("bad magic: not an SSD1 graph")
    pos = 4
    num_nodes, pos = _read_varint(data, pos)
    root, pos = _read_varint(data, pos)
    # plausibility: every node record costs at least one byte (its degree
    # varint), so a count beyond the remaining bytes is corruption, not data
    if num_nodes > len(data) - pos:
        raise SerializationError(
            f"implausible node count {num_nodes} for {len(data) - pos} payload bytes"
        )
    if num_nodes == 0:
        raise SerializationError("graph must have at least a root node")
    if root >= num_nodes:
        raise SerializationError("root out of range")
    g = Graph()
    nodes = [g.new_node() for _ in range(num_nodes)]
    g.set_root(nodes[root])
    for node in nodes:
        degree, pos = _read_varint(data, pos)
        # each edge costs at least two bytes (label kind + target varint)
        if degree > (len(data) - pos) // 2 + 1:
            raise SerializationError(
                f"implausible out-degree {degree} for {len(data) - pos} payload bytes"
            )
        for _ in range(degree):
            label, pos = _read_label(data, pos)
            dst, pos = _read_varint(data, pos)
            if dst >= num_nodes:
                raise SerializationError("edge target out of range")
            g.add_edge(node, label, nodes[dst])
    if pos != len(data):
        raise SerializationError("trailing bytes after graph")
    STORAGE_METRICS.counter("graphs_loaded").inc()
    STORAGE_METRICS.counter("bytes_loaded").inc(len(data))
    return g


def serialize_node_record(graph: Graph, node: int, renumber: dict[int, int]) -> bytes:
    """One node's out-edge record (the unit the record store pages)."""
    out = bytearray()
    _write_varint(out, renumber[node])
    edges = [e for e in graph.edges_from(node) if e.dst in renumber]
    _write_varint(out, len(edges))
    for edge in edges:
        _write_label(out, edge.label)
        _write_varint(out, renumber[edge.dst])
    return bytes(out)
