"""Write-ahead logging of typed graph deltas (the MVCC write path).

The paper's data is "irregular **and changing**"; this module is the
changing half.  Instead of re-serializing the whole graph per mutation
(the ~53x naive-durability overhead the storage bench measured), a
writer appends *deltas* -- ``AddNode``, ``AddEdge``, ``SetRoot`` -- to a
:class:`WriteAheadLog` and fsyncs once per *group* of commits, exactly
the amortization :class:`~repro.storage.store.GroupCommit` established
for whole-graph saves, applied at delta granularity.

Format (all integers big-endian or LEB128 varints)::

    magic "SSDW"
    repeated records:
        4 bytes  frame length N
        4 bytes  CRC32 of the N payload bytes
        N bytes  payload := varint commit_seq
                            varint delta_count
                            repeated delta_count times:
                                'N' varint node
                              | 'E' varint src, label, varint dst
                              | 'R' varint node

Label encoding is the SSD1 serializer's own (one kind byte plus
payload), so the WAL and the checkpoint speak one label dialect.

Recovery invariants (docs/DURABILITY.md spells out the matrix):

* records are validated *individually* -- short frame, bad CRC, or an
  undecodable payload ends replay at that point (torn-tail discard);
* commit sequence numbers must be contiguous from the checkpoint's --
  a gap means an earlier record was lost, so everything at and after
  the gap is discarded too (prefix consistency, never a hole);
* a record is only acknowledged durable after :meth:`WriteAheadLog.sync`
  returns; recovery may legitimately *keep* unacknowledged trailing
  records that happened to reach the disk (they are complete and
  consistent -- the prefix property is about never losing acked data,
  not about forgetting valid tails).

Every open log registers in a module-level table so the test suite's
leak guard can assert no handle outlives its test (the same pattern as
``repro.core.shared.live_segments``).
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Union

from ..core.graph import Graph
from ..core.labels import Label
from .serializer import (
    STORAGE_METRICS,
    SerializationError,
    _read_label,
    _read_varint,
    _write_label,
    _write_varint,
)

__all__ = [
    "AddNode",
    "AddEdge",
    "SetRoot",
    "Delta",
    "WalRecord",
    "WalReplay",
    "WriteAheadLog",
    "encode_deltas",
    "decode_deltas",
    "apply_delta",
    "live_wal_handles",
]

WAL_MAGIC = b"SSDW"

#: Upper bound on a single frame; a length field beyond this is corruption
#: (or an unframed read), never a legitimate record.
MAX_FRAME_BYTES = 64 * 1024 * 1024


# -- typed deltas ------------------------------------------------------------


@dataclass(frozen=True)
class AddNode:
    """Materialize ``node`` (the id the writer's allocator handed out)."""

    node: int


@dataclass(frozen=True)
class AddEdge:
    """Append ``src --label--> dst`` to the adjacency."""

    src: int
    label: Label
    dst: int


@dataclass(frozen=True)
class SetRoot:
    """Re-root the graph at ``node`` (non-monotone: resets visibility)."""

    node: int


Delta = Union[AddNode, AddEdge, SetRoot]


def apply_delta(graph: Graph, delta: Delta) -> None:
    """Apply one delta to a live graph (writer and recovery share this)."""
    if isinstance(delta, AddNode):
        graph.ensure_node(delta.node)
    elif isinstance(delta, AddEdge):
        graph.add_edge(delta.src, delta.label, delta.dst)
    elif isinstance(delta, SetRoot):
        graph.set_root(delta.node)
    else:  # pragma: no cover - type discipline
        raise TypeError(f"unknown delta {delta!r}")


# -- delta codec -------------------------------------------------------------


def encode_deltas(commit_seq: int, deltas: "Iterable[Delta]") -> bytes:
    """One record payload: the commit's sequence number plus its deltas."""
    deltas = list(deltas)
    out = bytearray()
    _write_varint(out, commit_seq)
    _write_varint(out, len(deltas))
    for delta in deltas:
        if isinstance(delta, AddNode):
            out += b"N"
            _write_varint(out, delta.node)
        elif isinstance(delta, AddEdge):
            out += b"E"
            _write_varint(out, delta.src)
            _write_label(out, delta.label)
            _write_varint(out, delta.dst)
        elif isinstance(delta, SetRoot):
            out += b"R"
            _write_varint(out, delta.node)
        else:
            raise SerializationError(f"cannot encode delta {delta!r}")
    return bytes(out)


def decode_deltas(payload: bytes) -> tuple[int, list[Delta]]:
    """Inverse of :func:`encode_deltas`; typed errors on any corruption."""
    commit_seq, pos = _read_varint(payload, 0)
    count, pos = _read_varint(payload, pos)
    deltas: list[Delta] = []
    for _ in range(count):
        if pos >= len(payload):
            raise SerializationError("truncated delta record")
        tag = payload[pos : pos + 1]
        pos += 1
        if tag == b"N":
            node, pos = _read_varint(payload, pos)
            deltas.append(AddNode(node))
        elif tag == b"E":
            src, pos = _read_varint(payload, pos)
            label, pos = _read_label(payload, pos)
            dst, pos = _read_varint(payload, pos)
            deltas.append(AddEdge(src, label, dst))
        elif tag == b"R":
            node, pos = _read_varint(payload, pos)
            deltas.append(SetRoot(node))
        else:
            raise SerializationError(f"unknown delta tag {tag!r}")
    if pos != len(payload):
        # trailing garbage inside a CRC-valid frame: semantically truncated
        raise SerializationError(
            f"delta record has {len(payload) - pos} trailing bytes"
        )
    return commit_seq, deltas


@dataclass(frozen=True)
class WalRecord:
    """One decoded commit: its sequence number and its deltas."""

    commit_seq: int
    deltas: tuple[Delta, ...]


@dataclass(frozen=True)
class WalReplay:
    """What :meth:`WriteAheadLog.replay` found on disk."""

    records: tuple[WalRecord, ...]
    #: bytes past the last valid record (torn tail, discarded)
    discarded_bytes: int
    #: complete-but-out-of-sequence records dropped for prefix consistency
    discarded_records: int


# -- leak accounting ----------------------------------------------------------

_LIVE_HANDLES: dict[int, str] = {}


def live_wal_handles() -> list[str]:
    """Paths of every WriteAheadLog not yet closed (the tests' leak guard)."""
    return sorted(_LIVE_HANDLES.values())


# -- the log ------------------------------------------------------------------


class WriteAheadLog:
    """An append-only, CRC-framed delta log with group-commit fsync.

    ``append`` stages a record in the OS page cache (cheap); ``sync``
    is the durability point -- one fsync acknowledges every record
    appended since the last one, which is group commit at delta
    granularity.  ``injector`` hooks a seedable
    :class:`~repro.resilience.FaultInjector` into the crash points
    (``wal:append``, ``wal:append-torn``, ``wal:fsync``,
    ``wal:truncate``) so the recovery sweep can simulate power loss at
    every boundary deterministically.
    """

    def __init__(self, path: "str | Path", *, injector=None) -> None:
        self.path = Path(path)
        self._injector = injector
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._fh = open(self.path, "ab")
        if fresh:
            self._fh.write(WAL_MAGIC)
            self._fh.flush()
        self._closed = False
        _LIVE_HANDLES[id(self)] = str(self.path)

    # -- crash points ---------------------------------------------------------

    def _crash_point(self, key: str) -> None:
        if self._injector is not None:
            self._injector.check(key)

    # -- writing --------------------------------------------------------------

    def append(self, commit_seq: int, deltas: "Iterable[Delta]") -> int:
        """Frame and stage one commit record; returns its byte length.

        Not durable until :meth:`sync`.  The full frame is flushed to
        the OS before returning, so a later ``close()`` never has a
        half-record buffered in user space (crash simulation depends on
        the file holding exactly what the crash point left).
        """
        if self._closed:
            raise ValueError("write-ahead log is closed")
        self._crash_point("wal:append")
        payload = encode_deltas(commit_seq, deltas)
        frame = (
            len(payload).to_bytes(4, "big")
            + zlib.crc32(payload).to_bytes(4, "big")
            + payload
        )
        try:
            self._crash_point("wal:append-torn")
        except Exception:
            # power loss mid-write: half a frame reaches the disk
            self._fh.write(frame[: max(1, len(frame) // 2)])
            self._fh.flush()
            raise
        self._fh.write(frame)
        self._fh.flush()
        STORAGE_METRICS.counter("wal_appends").inc()
        return len(frame)

    def sync(self) -> None:
        """THE durability point: one fsync covers every staged record."""
        if self._closed:
            raise ValueError("write-ahead log is closed")
        self._crash_point("wal:fsync")
        os.fsync(self._fh.fileno())
        STORAGE_METRICS.counter("fsyncs").inc()
        STORAGE_METRICS.counter("wal_syncs").inc()

    def truncate(self, *, durable: bool = True) -> None:
        """Reset the log to an empty header (after a checkpoint swallowed it).

        Rename-atomic: a crash during truncation leaves either the old
        log (recovery skips records at or below the checkpoint's
        sequence) or the new empty one -- never a prefix.
        """
        from .store import atomic_write_bytes  # local: store imports nothing from here

        if self._closed:
            raise ValueError("write-ahead log is closed")
        self._crash_point("wal:truncate")
        self._fh.close()
        try:
            atomic_write_bytes(self.path, WAL_MAGIC, fsync=durable)
        finally:
            self._fh = open(self.path, "ab")

    @property
    def size_bytes(self) -> int:
        self._fh.flush()
        return self.path.stat().st_size

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._fh.close()
            _LIVE_HANDLES.pop(id(self), None)

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- recovery -------------------------------------------------------------

    @classmethod
    def replay(cls, path: "str | Path", *, base_seq: int = 0) -> WalReplay:
        """Decode every durable record after ``base_seq``, record by record.

        Tolerates a missing file (an empty log) and any torn tail.  The
        returned records are contiguous starting at ``base_seq + 1``;
        records at or below ``base_seq`` were compacted into the
        checkpoint already and are skipped silently.
        """
        path = Path(path)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return WalReplay((), 0, 0)
        if raw[:4] != WAL_MAGIC:
            # the whole file is noise -- treat as a torn header
            return WalReplay((), len(raw), 0)
        records: list[WalRecord] = []
        discarded_records = 0
        pos = 4
        expected = base_seq + 1
        while pos < len(raw):
            start = pos
            if pos + 8 > len(raw):
                break  # torn frame header
            length = int.from_bytes(raw[pos : pos + 4], "big")
            crc = int.from_bytes(raw[pos + 4 : pos + 8], "big")
            pos += 8
            if length > MAX_FRAME_BYTES or pos + length > len(raw):
                pos = start
                break  # torn payload
            payload = raw[pos : pos + length]
            pos += length
            if zlib.crc32(payload) != crc:
                pos = start
                break  # bit rot / torn write inside the frame
            try:
                commit_seq, deltas = decode_deltas(payload)
            except SerializationError:
                pos = start
                break  # CRC-valid but semantically truncated
            if commit_seq < expected:
                continue  # already folded into the checkpoint
            if commit_seq != expected:
                # a gap: everything from here on is past lost data
                discarded_records += 1 + _count_remaining(raw, pos)
                pos = len(raw)
                STORAGE_METRICS.counter("wal_gap_discards").inc()
                break
            records.append(WalRecord(commit_seq, tuple(deltas)))
            expected += 1
        return WalReplay(tuple(records), len(raw) - pos, discarded_records)


def rewrite_wal(
    path: "str | Path", records: "Iterable[WalRecord]", *, fsync: bool = True
) -> None:
    """Atomically rewrite the log as exactly ``records``.

    Recovery calls this after discarding a torn tail, a sequence gap,
    or an inconsistent record: the log reopens in append mode, so
    without the rewrite every later commit would land *after* the
    debris, where replay can never reach it -- acknowledged writes
    would silently vanish at the next crash.
    """
    from .store import atomic_write_bytes  # local: store imports nothing from here

    buf = bytearray(WAL_MAGIC)
    for record in records:
        payload = encode_deltas(record.commit_seq, record.deltas)
        buf += len(payload).to_bytes(4, "big")
        buf += zlib.crc32(payload).to_bytes(4, "big")
        buf += payload
    atomic_write_bytes(Path(path), bytes(buf), fsync=fsync)


def _count_remaining(raw: bytes, pos: int) -> int:
    """How many complete frames follow ``pos`` (for discard accounting)."""
    count = 0
    while pos + 8 <= len(raw):
        length = int.from_bytes(raw[pos : pos + 4], "big")
        if length > MAX_FRAME_BYTES or pos + 8 + length > len(raw):
            break
        pos += 8 + length
        count += 1
    return count
