"""MVCC over the rooted graph: versioned snapshots above a write-ahead log.

The read side of the repo was built frozen-first: queries run against
immutable :class:`~repro.core.frozen.FrozenGraph` snapshots, indexes
snapshot the graph at construction, and any mutation invalidated the
world.  :class:`VersionedGraphStore` keeps those reader invariants and
adds a write path underneath them:

* **writers** stage typed deltas in a :class:`WriteBatch` and commit
  them through the :class:`~repro.storage.wal.WriteAheadLog` --
  durability is one group fsync, not one whole-graph rewrite;
* **readers** pin a :class:`SnapshotView` (an immutable frozen snapshot
  tagged with the commit sequence it reflects); a view, once handed
  out, never changes -- concurrent commits produce *new* versions;
* **indexes** (label/path/text/value) and the lazy DataGuide are
  maintained incrementally from the committed edge deltas, so a write
  costs proportional-to-the-delta index work instead of
  rebuild-on-stale;
* **checkpoints** periodically fold the log into one crash-safe
  full-state file (rename-atomic via ``atomic_write_bytes``), bounding
  recovery time; ``freeze()``-for-readers is thereby always "last
  checkpoint + the in-memory delta chain", merged once per version and
  cached.

Version ids *are* commit sequence numbers: version ``n`` is the state
after commit ``n``, version ``0`` the checkpointed (or empty) base.

Crash model: any exception out of the commit path (including an
:class:`~repro.resilience.errors.InjectedFault` from a seeded crash
point) leaves the store object dead -- the process is presumed gone.
Reopen the directory; recovery replays the checkpoint plus the durable
WAL prefix, record by record, discarding any torn tail.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from ..core.frozen import FrozenGraph, freeze
from ..core.graph import Edge, Graph, GraphError
from ..core.labels import Label, label_of, sym
from ..index import GraphIndexes
from ..schema.dataguide import DataGuide
from .serializer import (
    STORAGE_METRICS,
    SerializationError,
    _read_label,
    _read_varint,
    _write_label,
    _write_varint,
)
from .store import atomic_write_bytes
from .wal import (
    AddEdge,
    AddNode,
    Delta,
    SetRoot,
    WriteAheadLog,
    apply_delta,
    rewrite_wal,
)

__all__ = [
    "VersionedGraphStore",
    "WriteBatch",
    "SnapshotView",
    "RecoveryReport",
    "CHECKPOINT_MAGIC",
]

CHECKPOINT_MAGIC = b"SSDC"

CHECKPOINT_NAME = "checkpoint.ssdc"
WAL_NAME = "wal.ssdw"


# -- checkpoint codec ---------------------------------------------------------
#
# The SSD1 wire format renumbers reachable nodes densely -- correct for
# interchange, fatal for a checkpoint: WAL deltas after the checkpoint
# reference the writer's *original* ids.  The checkpoint therefore uses
# its own id-preserving encoding (same varint/label primitives).


def _encode_state(graph: Graph) -> bytes:
    out = bytearray()
    _write_varint(out, graph._next_id)
    _write_varint(out, 0 if graph._root is None else graph._root + 1)
    _write_varint(out, len(graph._adj))
    for node, edges in graph._adj.items():
        _write_varint(out, node)
        _write_varint(out, len(edges))
        for edge in edges:
            _write_label(out, edge.label)
            _write_varint(out, edge.dst)
    return bytes(out)


def _decode_state(payload: bytes) -> Graph:
    graph = Graph()
    next_id, pos = _read_varint(payload, 0)
    root_plus1, pos = _read_varint(payload, pos)
    num_nodes, pos = _read_varint(payload, pos)
    records: list[tuple[int, list[tuple[Label, int]]]] = []
    for _ in range(num_nodes):
        node, pos = _read_varint(payload, pos)
        degree, pos = _read_varint(payload, pos)
        edges: list[tuple[Label, int]] = []
        for _ in range(degree):
            label, pos = _read_label(payload, pos)
            dst, pos = _read_varint(payload, pos)
            edges.append((label, dst))
        records.append((node, edges))
        graph.ensure_node(node)
    if pos != len(payload):
        raise SerializationError("checkpoint has trailing bytes")
    for node, edges in records:
        for label, dst in edges:
            graph.add_edge(node, label, dst)
    if root_plus1:
        graph.set_root(root_plus1 - 1)
    graph._next_id = max(graph._next_id, next_id)
    return graph


@dataclass(frozen=True)
class RecoveryReport:
    """What opening a store directory found and did."""

    checkpoint_seq: int
    replayed_records: int
    discarded_bytes: int
    discarded_records: int
    commit_seq: int


class SnapshotView:
    """An immutable, version-pinned read view of the store.

    ``frozen`` is the CSR snapshot queries traverse; ``graph`` and
    ``oem`` are materialized lazily for the engines that want the
    mutable-API shape (UnQL, Lorel) -- both are *copies* pinned to this
    version, so a concurrent commit can never tear them.
    """

    __slots__ = ("frozen", "version", "_graph", "_oem")

    def __init__(self, frozen: FrozenGraph, version: int) -> None:
        self.frozen = frozen
        self.version = version
        self._graph: Graph | None = None
        self._oem = None

    @property
    def graph(self) -> Graph:
        if self._graph is None:
            self._graph = self.frozen.thaw()
        return self._graph

    @property
    def oem(self):
        if self._oem is None:
            from ..core.convert import graph_to_oem

            self._oem = graph_to_oem(self.graph)
        return self._oem

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SnapshotView v{self.version} {self.frozen!r}>"


class WriteBatch:
    """Stages deltas against a store; nothing is visible until commit.

    Node ids are allocated eagerly (so edges within the batch can
    reference them) but recorded as :class:`AddNode` deltas -- replay
    reproduces the same ids.  Validation happens at staging time: a
    batch that commits was already structurally sound, which is what
    lets recovery apply WAL records unconditionally.
    """

    def __init__(self, store: "VersionedGraphStore") -> None:
        self._store = store
        self._deltas: list[Delta] = []
        self._next = store._graph._next_id
        self._fresh: set[int] = set()

    def _known(self, node: int) -> bool:
        return node in self._fresh or self._store._graph.has_node(node)

    def new_node(self) -> int:
        node = self._next
        self._next += 1
        self._fresh.add(node)
        self._deltas.append(AddNode(node))
        return node

    def add_edge(self, src: int, label: "Label | str | int | float | bool", dst: int) -> None:
        if not self._known(src):
            raise GraphError(f"unknown source node {src}")
        if not self._known(dst):
            raise GraphError(f"unknown destination node {dst}")
        lab = sym(label) if isinstance(label, str) else label_of(label)
        self._deltas.append(AddEdge(src, lab, dst))

    def set_root(self, node: int) -> None:
        if not self._known(node):
            raise GraphError(f"cannot root graph at unknown node {node}")
        self._deltas.append(SetRoot(node))

    def __len__(self) -> int:
        return len(self._deltas)

    def commit(self, *, sync: bool = True) -> int:
        """Apply the batch; returns the new version (its commit seq)."""
        deltas, self._deltas = self._deltas, []
        self._fresh = set()
        return self._store.commit(deltas, sync=sync)


class VersionedGraphStore:
    """A durable, versioned graph: checkpoint + WAL + pinned snapshots.

    ``checkpoint_every`` (commits) bounds the delta chain: when the log
    grows past it, the store folds everything into a fresh checkpoint
    automatically.  ``durable=False`` skips fsyncs (tests and benches
    that measure pure CPU cost); atomicity is unaffected.
    """

    def __init__(
        self,
        directory: "str | Path",
        *,
        durable: bool = True,
        injector=None,
        checkpoint_every: "int | None" = 1024,
        path_depth: int = 4,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._durable = durable
        self._injector = injector
        self._checkpoint_every = checkpoint_every
        self._path_depth = path_depth
        self._closed = False

        graph, base_seq = self._load_checkpoint()
        replay = WriteAheadLog.replay(self._wal_path, base_seq=base_seq)
        replayed = 0
        discarded_records = replay.discarded_records
        for record in replay.records:
            try:
                for delta in record.deltas:
                    apply_delta(graph, delta)
            except GraphError:
                # a semantically inconsistent record: stop at the last
                # good prefix, same as a torn tail
                discarded_records += len(replay.records) - replayed
                break
            replayed += 1
        self._graph = graph
        self._checkpoint_seq = base_seq
        self._version = base_seq + replayed
        self._acked_seq = self._version
        self.recovery = RecoveryReport(
            checkpoint_seq=base_seq,
            replayed_records=replayed,
            discarded_bytes=replay.discarded_bytes,
            discarded_records=discarded_records,
            commit_seq=self._version,
        )
        if replay.discarded_bytes or discarded_records:
            STORAGE_METRICS.counter("wal_torn_tail_discards").inc()
            # the log reopens in append mode: without this rewrite the
            # next commit would land after the debris, where replay can
            # never reach it, and acked writes would vanish at the next
            # crash
            rewrite_wal(
                self._wal_path, replay.records[:replayed], fsync=durable
            )
        self._wal = WriteAheadLog(self._wal_path, injector=injector)
        self._visible: set[int] = (
            graph.reachable() if graph.has_root else set()
        )
        self._indexes: GraphIndexes | None = None
        self._guide: DataGuide | None = None
        self._view: SnapshotView | None = None

    # -- paths ----------------------------------------------------------------

    @property
    def _checkpoint_path(self) -> Path:
        return self.directory / CHECKPOINT_NAME

    @property
    def _wal_path(self) -> Path:
        return self.directory / WAL_NAME

    # -- bootstrap -------------------------------------------------------------

    @classmethod
    def create(
        cls, directory: "str | Path", graph: Graph, **kwargs
    ) -> "VersionedGraphStore":
        """Initialize a store directory from an existing graph.

        Writes checkpoint zero (the graph as-is, ids preserved) and
        opens the store over it.  Refuses to clobber an existing store.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        ckpt = directory / CHECKPOINT_NAME
        if ckpt.exists() or (directory / WAL_NAME).exists():
            raise FileExistsError(f"{directory} already holds a store")
        payload = _encode_state(graph)
        blob = (
            CHECKPOINT_MAGIC
            + (0).to_bytes(8, "big")
            + zlib.crc32(payload).to_bytes(4, "big")
            + payload
        )
        atomic_write_bytes(ckpt, blob, fsync=kwargs.get("durable", True))
        return cls(directory, **kwargs)

    def _load_checkpoint(self) -> tuple[Graph, int]:
        try:
            raw = self._checkpoint_path.read_bytes()
        except FileNotFoundError:
            return Graph(), 0
        if raw[:4] != CHECKPOINT_MAGIC or len(raw) < 16:
            raise SerializationError(
                f"corrupt checkpoint {self._checkpoint_path}: bad header"
            )
        seq = int.from_bytes(raw[4:12], "big")
        crc = int.from_bytes(raw[12:16], "big")
        payload = raw[16:]
        if zlib.crc32(payload) != crc:
            raise SerializationError(
                f"corrupt checkpoint {self._checkpoint_path}: CRC mismatch"
            )
        return _decode_state(payload), seq

    # -- crash points ----------------------------------------------------------

    def _crash_point(self, key: str) -> None:
        if self._injector is not None:
            self._injector.check(key)

    # -- the write path --------------------------------------------------------

    def batch(self) -> WriteBatch:
        return WriteBatch(self)

    def commit(self, deltas: "Sequence[Delta]", *, sync: bool = True) -> int:
        """Log then apply one commit; returns its version.

        WAL first (write-ahead), memory second: an exception between the
        two presumes the process dead, and recovery replays whatever
        prefix reached the disk.  ``sync=False`` defers the fsync to a
        later :meth:`sync` -- group commit; the version number is
        assigned now but only *acknowledged* durable at the sync.
        """
        if self._closed:
            raise ValueError("store is closed")
        deltas = list(deltas)
        self._validate(deltas)
        seq = self._version + 1
        self._wal.append(seq, deltas)
        self._version = seq
        if sync and self._durable:
            self.sync()
        elif not self._durable:
            self._acked_seq = seq
        self._ingest(deltas)
        self._view = None
        STORAGE_METRICS.counter("mvcc_commits").inc()
        if (
            self._checkpoint_every is not None
            and self._version - self._checkpoint_seq >= self._checkpoint_every
        ):
            self.checkpoint()
        return seq

    def sync(self) -> None:
        """Group-commit durability point: acknowledge everything written."""
        if self._version > self._acked_seq:
            self._wal.sync()
        self._acked_seq = self._version

    def _validate(self, deltas: "Iterable[Delta]") -> None:
        # a delta that cannot apply must never reach the log: recovery
        # applies records unconditionally
        adj = self._graph._adj
        pending: set[int] = set()
        for delta in deltas:
            if isinstance(delta, AddNode):
                pending.add(delta.node)
            elif isinstance(delta, AddEdge):
                if delta.src not in adj and delta.src not in pending:
                    raise GraphError(f"unknown source node {delta.src}")
                if delta.dst not in adj and delta.dst not in pending:
                    raise GraphError(f"unknown destination node {delta.dst}")
                if not isinstance(delta.label, Label):
                    raise GraphError(f"edge label must be a Label, got {delta.label!r}")
            elif isinstance(delta, SetRoot):
                if delta.node not in adj and delta.node not in pending:
                    raise GraphError(f"cannot root graph at unknown node {delta.node}")
            else:
                raise GraphError(f"unknown delta {delta!r}")

    def _ingest(self, deltas: "Sequence[Delta]") -> None:
        """Apply deltas to the live graph and maintain derived state."""
        graph = self._graph
        visible = self._visible
        new_edges: list[Edge] = []
        root_changed = False
        for delta in deltas:
            if isinstance(delta, AddEdge):
                edge = graph.add_edge(delta.src, delta.label, delta.dst)
                if edge.src in visible:
                    new_edges.append(edge)
                    if edge.dst not in visible:
                        # the edge opened a new region: everything below
                        # it becomes visible, and each newly visible
                        # node's out-edges enter the indexes
                        visible.add(edge.dst)
                        stack = [edge.dst]
                        while stack:
                            node = stack.pop()
                            for e in graph.edges_from(node):
                                new_edges.append(e)
                                if e.dst not in visible:
                                    visible.add(e.dst)
                                    stack.append(e.dst)
            elif isinstance(delta, SetRoot):
                graph.set_root(delta.node)
                root_changed = True
            else:
                apply_delta(graph, delta)
        if root_changed:
            # non-monotone: visibility (and every derived structure)
            # restarts from the new root
            self._visible = graph.reachable() if graph.has_root else set()
            if self._indexes is not None:
                self._indexes.refresh()
            self._guide = None
        else:
            if self._indexes is not None:
                self._indexes.apply_delta(new_edges)
            if self._guide is not None and new_edges:
                self._guide.refresh(new_edges)

    # -- checkpointing ---------------------------------------------------------

    def checkpoint(self) -> None:
        """Fold the log into one atomic full-state file, then reset it.

        Two independently crash-safe steps: the checkpoint write is
        rename-atomic, and the WAL reset is rename-atomic.  A crash
        between them leaves a new checkpoint plus a stale log -- replay
        skips records at or below the checkpoint's sequence, so the
        combination is still exactly one state.
        """
        if self._closed:
            raise ValueError("store is closed")
        self._crash_point("checkpoint:begin")
        payload = _encode_state(self._graph)
        blob = (
            CHECKPOINT_MAGIC
            + self._version.to_bytes(8, "big")
            + zlib.crc32(payload).to_bytes(4, "big")
            + payload
        )
        self._crash_point("checkpoint:write")
        atomic_write_bytes(self._checkpoint_path, blob, fsync=self._durable)
        self._checkpoint_seq = self._version
        self._acked_seq = self._version
        self._wal.truncate(durable=self._durable)
        STORAGE_METRICS.counter("checkpoints").inc()

    # -- the read path ---------------------------------------------------------

    @property
    def graph(self) -> Graph:
        """The live (mutable) graph: the checkpoint merged with every
        committed delta.  Mutate it only through :meth:`commit`."""
        return self._graph

    @property
    def version(self) -> int:
        return self._version

    @property
    def acked_version(self) -> int:
        """The newest version acknowledged durable (== version after sync)."""
        return self._acked_seq

    def view(self) -> SnapshotView:
        """The current version's pinned read view (cached per version).

        Freezing merges the checkpoint-plus-delta-chain state once; every
        reader at this version shares the result.  Older views stay
        valid for as long as their holders keep them -- commits never
        mutate a handed-out snapshot.
        """
        v = self._view
        if v is None:
            v = SnapshotView(freeze(self._graph), self._version)
            self._view = v
        return v

    def snapshot(self) -> FrozenGraph:
        return self.view().frozen

    @property
    def indexes(self) -> GraphIndexes:
        """Incrementally maintained index bundle over the live graph."""
        if self._indexes is None:
            self._indexes = GraphIndexes(self._graph, path_depth=self._path_depth)
        return self._indexes

    @property
    def guide(self) -> DataGuide:
        """Incrementally maintained strong DataGuide of the live graph."""
        if self._guide is None:
            self._guide = DataGuide(self._graph)
        return self._guide

    # -- bookkeeping -----------------------------------------------------------

    def stats(self) -> dict:
        return {
            "version": self._version,
            "acked_version": self._acked_seq,
            "checkpoint_seq": self._checkpoint_seq,
            "wal_bytes": self._wal.size_bytes if not self._closed else 0,
            "nodes": self._graph.num_nodes,
            "edges": self._graph.num_edges,
            "recovery": {
                "checkpoint_seq": self.recovery.checkpoint_seq,
                "replayed_records": self.recovery.replayed_records,
                "discarded_bytes": self.recovery.discarded_bytes,
                "discarded_records": self.recovery.discarded_records,
            },
        }

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._wal.close()

    def __enter__(self) -> "VersionedGraphStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<VersionedGraphStore {self.directory} v{self._version} "
            f"ckpt={self._checkpoint_seq}>"
        )
