"""Persistent storage for semistructured data (section 4)."""

from .external import EXTERNAL_MARKER, ExternalGraph
from .mvcc import (
    RecoveryReport,
    SnapshotView,
    VersionedGraphStore,
    WriteBatch,
)
from .serializer import STORAGE_METRICS, SerializationError, dumps, loads
from .store import (
    GraphStore,
    GroupCommit,
    PageCache,
    atomic_write_bytes,
    traversal_page_faults,
)
from .wal import (
    AddEdge,
    AddNode,
    SetRoot,
    WriteAheadLog,
    live_wal_handles,
)

__all__ = [
    "dumps",
    "loads",
    "SerializationError",
    "STORAGE_METRICS",
    "GraphStore",
    "PageCache",
    "traversal_page_faults",
    "atomic_write_bytes",
    "GroupCommit",
    "ExternalGraph",
    "EXTERNAL_MARKER",
    "AddNode",
    "AddEdge",
    "SetRoot",
    "WriteAheadLog",
    "live_wal_handles",
    "VersionedGraphStore",
    "WriteBatch",
    "SnapshotView",
    "RecoveryReport",
]
