"""A paged record store with clustering: the physical layer of section 4.

"In the second case [storing semistructured data directly], disk layout
and clustering, together with appropriate indexing, is also important."

:class:`GraphStore` lays one record per node (its out-edge list) into
fixed-size pages.  The *clustering order* decides which records share a
page:

* ``dfs``    -- parents packed next to their subtrees: traversals touch
  few pages (the layout Lore-style systems use);
* ``bfs``    -- level order: good for shallow scans;
* ``random`` -- the adversarial baseline E12 compares against.

:class:`PageCache` is an LRU buffer over the store's pages; traversal
helpers count page faults so the clustering effect is measurable without
real disks (the substitution DESIGN.md documents).
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from ..core.graph import Graph
from ..resilience import EventLog
from .serializer import SerializationError, dumps, loads, serialize_node_record

__all__ = ["GraphStore", "PageCache", "traversal_page_faults"]


@dataclass
class _Record:
    node: int
    page: int
    offset: int
    length: int


class GraphStore:
    """Node records packed into fixed-size pages in a chosen order."""

    def __init__(self, graph: Graph, clustering: str = "dfs", page_size: int = 4096,
                 seed: int = 0) -> None:
        if page_size < 64:
            raise ValueError("page_size too small to hold records")
        self.page_size = page_size
        self.clustering = clustering
        self._graph = graph
        reach = sorted(graph.reachable())
        self._renumber = {node: i for i, node in enumerate(reach)}
        order = self._order_nodes(graph, clustering, seed)
        self.pages: list[bytearray] = [bytearray()]
        self._records: dict[int, _Record] = {}
        for node in order:
            record = serialize_node_record(graph, node, self._renumber)
            if len(record) > page_size:
                # oversized record: gets its own page (and spills logically)
                self.pages.append(bytearray(record))
                page = len(self.pages) - 1
                self._records[node] = _Record(node, page, 0, len(record))
                self.pages.append(bytearray())
                continue
            if len(self.pages[-1]) + len(record) > page_size:
                self.pages.append(bytearray())
            page = len(self.pages) - 1
            offset = len(self.pages[-1])
            self.pages[-1] += record
            self._records[node] = _Record(node, page, offset, len(record))

    @staticmethod
    def _order_nodes(graph: Graph, clustering: str, seed: int) -> list[int]:
        if clustering == "dfs":
            order: list[int] = []
            seen = {graph.root}
            stack = [graph.root]
            while stack:
                node = stack.pop()
                order.append(node)
                for edge in reversed(graph.edges_from(node)):
                    if edge.dst not in seen:
                        seen.add(edge.dst)
                        stack.append(edge.dst)
            return order
        if clustering == "bfs":
            from collections import deque

            order = []
            seen = {graph.root}
            queue = deque([graph.root])
            while queue:
                node = queue.popleft()
                order.append(node)
                for edge in graph.edges_from(node):
                    if edge.dst not in seen:
                        seen.add(edge.dst)
                        queue.append(edge.dst)
            return order
        if clustering == "random":
            order = sorted(graph.reachable())
            random.Random(seed).shuffle(order)
            return order
        raise ValueError(f"unknown clustering {clustering!r}")

    # -- access ------------------------------------------------------------------

    def page_of(self, node: int) -> int:
        return self._records[node].page

    @property
    def num_pages(self) -> int:
        return len(self.pages)

    @property
    def bytes_used(self) -> int:
        return sum(len(p) for p in self.pages)

    def occupancy(self) -> float:
        """Mean fill fraction of the store's pages."""
        if not self.pages:
            return 0.0
        return self.bytes_used / (self.num_pages * self.page_size)

    # -- persistence -----------------------------------------------------------------

    def save(self, path: "str | Path") -> None:
        """Write the whole graph to disk (serialized form + page layout).

        The on-disk format is the plain SSD1 serialization; the page
        layout is a run-time artifact rebuilt on load with the same
        clustering parameters.
        """
        Path(path).write_bytes(dumps(self._graph))

    @classmethod
    def load(
        cls, path: "str | Path", clustering: str = "dfs", page_size: int = 4096
    ) -> "GraphStore":
        """Rebuild a store from disk.

        Corrupt payloads surface as :class:`SerializationError` -- a
        truncated or bit-flipped file must never escape as an untyped
        decoding exception (the robustness suite fuzzes this).
        """
        try:
            graph = loads(Path(path).read_bytes())
        except SerializationError:
            raise
        except ValueError as exc:  # defensive: decoding helpers grow over time
            raise SerializationError(f"corrupt store file {path}: {exc}") from exc
        return cls(graph, clustering=clustering, page_size=page_size)

    @property
    def graph(self) -> Graph:
        return self._graph


class PageCache:
    """An LRU buffer pool over a store's pages, counting faults.

    An optional :class:`~repro.resilience.EventLog` receives one
    ``page-fault`` event per miss, putting buffer-pool behavior on the
    same observability bus as retries and breaker trips.
    """

    def __init__(
        self, store: GraphStore, capacity: int, events: "EventLog | None" = None
    ) -> None:
        if capacity < 1:
            raise ValueError("cache needs at least one frame")
        self._store = store
        self._capacity = capacity
        self._frames: OrderedDict[int, bytearray] = OrderedDict()
        self._events = events
        self.faults = 0
        self.hits = 0

    def read_node(self, node: int) -> None:
        """Touch the page holding ``node``'s record."""
        page = self._store.page_of(node)
        if page in self._frames:
            self.hits += 1
            self._frames.move_to_end(page)
            return
        self.faults += 1
        if self._events is not None:
            self._events.emit("page-fault", page=page, node=node)
        self._frames[page] = self._store.pages[page]
        if len(self._frames) > self._capacity:
            self._frames.popitem(last=False)


def traversal_page_faults(
    store: GraphStore, cache_pages: int = 8, order: str = "dfs"
) -> int:
    """Page faults of a full traversal through an LRU cache.

    The E12 measurement: the same logical traversal against differently
    clustered stores shows how much layout matters.
    """
    graph = store.graph
    cache = PageCache(store, cache_pages)
    seen = {graph.root}
    if order == "dfs":
        stack = [graph.root]
        while stack:
            node = stack.pop()
            cache.read_node(node)
            for edge in reversed(graph.edges_from(node)):
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    stack.append(edge.dst)
    elif order == "bfs":
        from collections import deque

        queue = deque([graph.root])
        while queue:
            node = queue.popleft()
            cache.read_node(node)
            for edge in graph.edges_from(node):
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    queue.append(edge.dst)
    else:
        raise ValueError(f"unknown traversal order {order!r}")
    return cache.faults
