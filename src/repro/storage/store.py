"""A paged record store with clustering: the physical layer of section 4.

"In the second case [storing semistructured data directly], disk layout
and clustering, together with appropriate indexing, is also important."

:class:`GraphStore` lays one record per node (its out-edge list) into
fixed-size pages.  The *clustering order* decides which records share a
page:

* ``dfs``    -- parents packed next to their subtrees: traversals touch
  few pages (the layout Lore-style systems use);
* ``bfs``    -- level order: good for shallow scans;
* ``random`` -- the adversarial baseline E12 compares against.

:class:`PageCache` is an LRU buffer over the store's pages; traversal
helpers count page faults so the clustering effect is measurable without
real disks (the substitution DESIGN.md documents).
"""

from __future__ import annotations

import os
import random
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from ..core.graph import Graph
from ..resilience import EventLog
from .serializer import STORAGE_METRICS, SerializationError, dumps, loads, serialize_node_record

__all__ = [
    "GraphStore",
    "PageCache",
    "traversal_page_faults",
    "atomic_write_bytes",
    "GroupCommit",
]


@dataclass
class _Record:
    node: int
    page: int
    offset: int
    length: int


class GraphStore:
    """Node records packed into fixed-size pages in a chosen order."""

    def __init__(self, graph: Graph, clustering: str = "dfs", page_size: int = 4096,
                 seed: int = 0) -> None:
        if page_size < 64:
            raise ValueError("page_size too small to hold records")
        self.page_size = page_size
        self.clustering = clustering
        self._graph = graph
        reach = sorted(graph.reachable())
        self._renumber = {node: i for i, node in enumerate(reach)}
        order = self._order_nodes(graph, clustering, seed)
        self.pages: list[bytearray] = [bytearray()]
        self._records: dict[int, _Record] = {}
        for node in order:
            record = serialize_node_record(graph, node, self._renumber)
            if len(record) > page_size:
                # oversized record: gets its own page (and spills logically)
                self.pages.append(bytearray(record))
                page = len(self.pages) - 1
                self._records[node] = _Record(node, page, 0, len(record))
                self.pages.append(bytearray())
                continue
            if len(self.pages[-1]) + len(record) > page_size:
                self.pages.append(bytearray())
            page = len(self.pages) - 1
            offset = len(self.pages[-1])
            self.pages[-1] += record
            self._records[node] = _Record(node, page, offset, len(record))

    @staticmethod
    def _order_nodes(graph: Graph, clustering: str, seed: int) -> list[int]:
        if clustering == "dfs":
            order: list[int] = []
            seen = {graph.root}
            stack = [graph.root]
            while stack:
                node = stack.pop()
                order.append(node)
                for edge in reversed(graph.edges_from(node)):
                    if edge.dst not in seen:
                        seen.add(edge.dst)
                        stack.append(edge.dst)
            return order
        if clustering == "bfs":
            from collections import deque

            order = []
            seen = {graph.root}
            queue = deque([graph.root])
            while queue:
                node = queue.popleft()
                order.append(node)
                for edge in graph.edges_from(node):
                    if edge.dst not in seen:
                        seen.add(edge.dst)
                        queue.append(edge.dst)
            return order
        if clustering == "random":
            order = sorted(graph.reachable())
            random.Random(seed).shuffle(order)
            return order
        raise ValueError(f"unknown clustering {clustering!r}")

    # -- access ------------------------------------------------------------------

    def page_of(self, node: int) -> int:
        return self._records[node].page

    @property
    def num_pages(self) -> int:
        return len(self.pages)

    @property
    def bytes_used(self) -> int:
        return sum(len(p) for p in self.pages)

    def occupancy(self) -> float:
        """Mean fill fraction of the store's pages."""
        if not self.pages:
            return 0.0
        return self.bytes_used / (self.num_pages * self.page_size)

    # -- persistence -----------------------------------------------------------------

    def save(self, path: "str | Path", *, durable: bool = True) -> None:
        """Write the whole graph to disk, crash-safely.

        The on-disk format is the plain SSD1 serialization; the page
        layout is a run-time artifact rebuilt on load with the same
        clustering parameters.

        The write is atomic: the payload goes to a temporary file in the
        *same directory*, is flushed (and, with ``durable``, fsynced),
        and only then renamed over the target.  A crash at any byte of
        the write leaves the target either the complete old graph or
        the complete new one -- a torn file is never loadable because a
        torn file is never *visible* under the target name (the
        kill-mid-save tests drive every interruption point).

        ``durable=False`` skips the fsyncs (atomicity without the disk
        round-trip); to amortize durability across many saves, batch
        them through :class:`GroupCommit` instead.
        """
        atomic_write_bytes(path, dumps(self._graph), fsync=durable)

    @classmethod
    def load(
        cls, path: "str | Path", clustering: str = "dfs", page_size: int = 4096
    ) -> "GraphStore":
        """Rebuild a store from disk.

        Corrupt payloads surface as :class:`SerializationError` -- a
        truncated or bit-flipped file must never escape as an untyped
        decoding exception (the robustness suite fuzzes this).
        """
        try:
            graph = loads(Path(path).read_bytes())
        except SerializationError:
            raise
        except ValueError as exc:  # defensive: decoding helpers grow over time
            raise SerializationError(f"corrupt store file {path}: {exc}") from exc
        return cls(graph, clustering=clustering, page_size=page_size)

    @property
    def graph(self) -> Graph:
        return self._graph


# -- crash-safe persistence helpers -----------------------------------------------


def _fsync_dir(directory: Path) -> None:
    """Flush a directory's entry table (the rename itself) to disk."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # platforms/filesystems without directory fsync
        return
    try:
        os.fsync(fd)
        STORAGE_METRICS.counter("fsyncs").inc()
    finally:
        os.close(fd)


def atomic_write_bytes(path: "str | Path", data: bytes, *, fsync: bool = True) -> None:
    """Write ``data`` to ``path`` with rename atomicity.

    The temp file lives in the target's own directory (``os.replace``
    must not cross filesystems), under a dot-name no loader globs.  The
    sequence is the classic one: write temp, flush, fsync the temp,
    rename over the target, fsync the directory.  Readers of ``path``
    see the old bytes or the new bytes, never a prefix.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
                STORAGE_METRICS.counter("fsyncs").inc()
        os.replace(tmp, path)
    except BaseException:
        # a failed save must not litter: the target is untouched, so
        # removing the torn temp restores the pre-call state exactly
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        _fsync_dir(path.parent)
    STORAGE_METRICS.counter("atomic_saves").inc()


class GroupCommit:
    """Batch many saves behind one journal fsync (group commit).

    The naive durable path costs two fsyncs per save (temp file +
    directory); saving a checkpoint stream that way is the ~53x
    overhead the storage bench measures.  Group commit amortizes it:

    1. ``add(graph, path)`` buffers serialized payloads in memory;
    2. ``flush()`` writes every buffered record -- path, length, CRC32,
       payload -- into one journal file in the commit directory and
       fsyncs *that file once*; this is the durability point;
    3. each target is then written with plain rename atomicity (no
       per-file fsync) and the journal is removed.

    A crash before the journal fsync leaves every target in its old
    state (the journal parses as torn and is discarded).  A crash after
    it is repaired by :meth:`recover`, which replays the journal's
    records -- each of which carries its own CRC, so a torn tail can
    never be replayed as data.  Either way, no target path is ever
    visible in a half-written state.

    Journal format (all integers big-endian)::

        magic "SSDJ"
        4 bytes  record count
        repeated records:
            4 bytes  CRC32 over the rest of the record
            4 bytes  name length, then the UTF-8 name
            8 bytes  payload length, then the payload

    Three defenses layered against a journal that merely *looks* intact
    (the fuzz suite drives each): the record CRC covers the name and
    both length fields, not just the payload, so no field can rot
    independently; the count header rejects a journal truncated at a
    record boundary (which frames as a valid shorter batch); and
    :meth:`recover` decodes every payload with :func:`~repro.storage.
    serializer.loads` before touching any target, so a CRC-valid but
    semantically truncated record can never be replayed into a target
    file.
    """

    #: Journal magic: distinct from SSD1 so a journal is never loadable
    #: as a graph (and vice versa).
    MAGIC = b"SSDJ"

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._pending: list[tuple[str, bytes]] = []

    @property
    def journal_path(self) -> Path:
        return self.directory / ".commit-journal"

    @property
    def pending(self) -> int:
        return len(self._pending)

    def add(self, graph: Graph, name: "str | Path") -> None:
        """Buffer one save of ``graph`` to ``name`` (relative to the
        commit directory; absolute paths outside it are rejected --
        the journal must stay adjacent to what it protects)."""
        target = (self.directory / name).resolve()
        if self.directory.resolve() not in target.parents:
            raise ValueError(f"{name!r} escapes the commit directory")
        self._pending.append((str(target.relative_to(self.directory.resolve())),
                              dumps(graph)))

    def flush(self) -> int:
        """Commit every buffered save with a single fsync; returns count."""
        if not self._pending:
            return 0
        journal = bytearray(self.MAGIC)
        journal += len(self._pending).to_bytes(4, "big")
        for name, payload in self._pending:
            encoded = name.encode("utf-8")
            body = (
                len(encoded).to_bytes(4, "big")
                + encoded
                + len(payload).to_bytes(8, "big")
                + payload
            )
            journal += zlib.crc32(body).to_bytes(4, "big")
            journal += body
        with open(self.journal_path, "wb") as fh:
            fh.write(journal)
            fh.flush()
            os.fsync(fh.fileno())  # THE durability point: one fsync per batch
            STORAGE_METRICS.counter("fsyncs").inc()
        for name, payload in self._pending:
            atomic_write_bytes(self.directory / name, payload, fsync=False)
        os.unlink(self.journal_path)
        count = len(self._pending)
        self._pending.clear()
        STORAGE_METRICS.counter("group_commits").inc()
        STORAGE_METRICS.counter("group_commit_records").inc(count)
        return count

    @classmethod
    def recover(cls, directory: "str | Path") -> int:
        """Repair after a crash: replay a committed journal, if present.

        Returns how many records were re-applied.  A missing journal
        means the last flush finished (or never reached its durability
        point with partial targets -- impossible, targets are written
        only after the journal).  A torn or corrupt journal is from a
        crash *before* the fsync returned: the batch was never durable,
        every target still holds its old state, and the journal is
        simply discarded.
        """
        directory = Path(directory)
        journal_path = directory / ".commit-journal"
        try:
            raw = journal_path.read_bytes()
        except FileNotFoundError:
            return 0
        records = cls._parse_journal(raw)
        if records is None:  # torn journal: pre-durability crash
            os.unlink(journal_path)
            return 0
        for _, payload in records:
            # semantic validation before any target is touched: a
            # CRC-valid record whose payload does not decode as a graph
            # is corruption, and replaying *any* of the batch would
            # tear atomicity
            try:
                loads(payload)
            except SerializationError:
                os.unlink(journal_path)
                return 0
        for name, payload in records:
            atomic_write_bytes(directory / name, payload, fsync=False)
        _fsync_dir(directory)
        os.unlink(journal_path)
        STORAGE_METRICS.counter("group_commit_recoveries").inc()
        return len(records)

    @staticmethod
    def _parse_journal(raw: bytes) -> "list[tuple[str, bytes]] | None":
        """Decode a journal, or ``None`` for anything short of perfect.

        "Perfect" is byte-exact: right magic, a count header matched by
        exactly that many CRC-clean records, and not one trailing byte.
        Truncation at *any* offset -- including a record boundary, which
        the per-record CRCs alone cannot see -- fails the count or the
        trailing-bytes check and discards the journal.
        """
        if raw[:4] != GroupCommit.MAGIC or len(raw) < 8:
            return None
        count = int.from_bytes(raw[4:8], "big")
        records: list[tuple[str, bytes]] = []
        pos = 8
        for _ in range(count):
            if pos + 8 > len(raw):
                return None
            crc = int.from_bytes(raw[pos : pos + 4], "big")
            name_len = int.from_bytes(raw[pos + 4 : pos + 8], "big")
            body_start = pos + 4
            pos += 8
            if name_len > 4096 or pos + name_len + 8 > len(raw):
                return None
            try:
                name = raw[pos : pos + name_len].decode("utf-8")
            except UnicodeDecodeError:
                return None
            pos += name_len
            payload_len = int.from_bytes(raw[pos : pos + 8], "big")
            pos += 8
            if pos + payload_len > len(raw):
                return None
            payload = raw[pos : pos + payload_len]
            pos += payload_len
            if zlib.crc32(raw[body_start:pos]) != crc:
                return None
            records.append((name, payload))
        if pos != len(raw):  # trailing bytes: not the journal we wrote
            return None
        return records


class PageCache:
    """An LRU buffer pool over a store's pages, counting faults.

    An optional :class:`~repro.resilience.EventLog` receives one
    ``page-fault`` event per miss, putting buffer-pool behavior on the
    same observability bus as retries and breaker trips.
    """

    def __init__(
        self, store: GraphStore, capacity: int, events: "EventLog | None" = None
    ) -> None:
        if capacity < 1:
            raise ValueError("cache needs at least one frame")
        self._store = store
        self._capacity = capacity
        self._frames: OrderedDict[int, bytearray] = OrderedDict()
        self._events = events
        self.faults = 0
        self.hits = 0

    def read_node(self, node: int) -> None:
        """Touch the page holding ``node``'s record."""
        page = self._store.page_of(node)
        if page in self._frames:
            self.hits += 1
            self._frames.move_to_end(page)
            return
        self.faults += 1
        if self._events is not None:
            self._events.emit("page-fault", page=page, node=node)
        self._frames[page] = self._store.pages[page]
        if len(self._frames) > self._capacity:
            self._frames.popitem(last=False)


def traversal_page_faults(
    store: GraphStore, cache_pages: int = 8, order: str = "dfs"
) -> int:
    """Page faults of a full traversal through an LRU cache.

    The E12 measurement: the same logical traversal against differently
    clustered stores shows how much layout matters.
    """
    graph = store.graph
    cache = PageCache(store, cache_pages)
    seen = {graph.root}
    if order == "dfs":
        stack = [graph.root]
        while stack:
            node = stack.pop()
            cache.read_node(node)
            for edge in reversed(graph.edges_from(node)):
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    stack.append(edge.dst)
    elif order == "bfs":
        from collections import deque

        queue = deque([graph.root])
        while queue:
            node = queue.popleft()
            cache.read_node(node)
            for edge in graph.edges_from(node):
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    queue.append(edge.dst)
    else:
        raise ValueError(f"unknown traversal order {order!r}")
    return cache.faults
