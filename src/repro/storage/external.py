"""Dynamically-fetched external data (section 4, citing [28]).

McHugh & Widom, *Integrating dynamically-fetched external information into
a DBMS for semistructured data*: parts of the database live elsewhere (a
web page, another DBMS) and are materialized only when a query actually
traverses into them.

:class:`ExternalGraph` wraps a base graph in which some leaves are marked
as *external stubs*.  A stub carries a key; the first time a traversal
asks for the stub's edges, the registered :class:`Fetcher` produces the
external subtree (here: any callable -- the tests and benchmarks use
generators standing in for the 1997 web, per DESIGN.md's substitution
table), which is spliced in and cached.  Queries see one seamless graph;
:attr:`ExternalGraph.fetch_count` exposes the I/O the laziness saved.

Because the 1997 web also *failed*, fetching is guarded by the
resilience layer (:mod:`repro.resilience`): an optional
:class:`~repro.resilience.RetryPolicy` retries transient errors with
backoff, a shared :class:`~repro.resilience.CircuitBreaker` stops
hammering a dead source, and ``on_failure`` chooses between the classic
fail-fast behavior (``"raise"``) and *partial-result* mode
(``"partial"``), where a stub whose fetch ultimately fails simply
contributes no edges and is recorded in the :meth:`completeness` report.

The wrapper satisfies the informal graph protocol (``root``,
``edges_from``, ``reachable``...) that the RPQ product, the browsing
queries, and the datalog EDB builder rely on, so every engine works over
external data unchanged -- which is exactly the point of [28].
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..core.graph import Edge, Graph
from ..core.labels import Label, sym
from ..resilience import (
    CircuitBreaker,
    Clock,
    Completeness,
    Deadline,
    EventLog,
    FailureRecord,
    ResilienceError,
    RetryPolicy,
    SimulatedClock,
    call_with_retry,
)

__all__ = ["ExternalGraph", "EXTERNAL_MARKER"]

#: Stub edges carry this symbol; their target holds the key as string data.
EXTERNAL_MARKER = sym("@external")

#: A fetcher maps a stub key to the external subtree.
Fetcher = Callable[[str], Graph]


class ExternalGraph:
    """A graph with lazily-fetched external regions.

    Build the base graph normally, then mark external attachment points
    with :meth:`add_stub`.  Wrap with ``ExternalGraph(base, fetcher)`` and
    query the wrapper.

    Resilience knobs (all optional, all defaulting to the historical
    fail-fast single-attempt behavior):

    * ``policy`` -- retry transient fetcher errors with backoff;
    * ``breaker`` -- a circuit breaker shared by all fetches;
    * ``deadline`` -- a time budget over the whole wrapper's fetching;
    * ``on_failure`` -- ``"raise"`` propagates the failure (wrapped in a
      :class:`~repro.resilience.ResilienceError` when a policy is set),
      ``"partial"`` records it and treats the stub as an empty region;
    * ``clock`` / ``events`` -- observability plumbing; the default clock
      is simulated, so backoff costs no wall time in tests.
    """

    def __init__(
        self,
        base: Graph,
        fetcher: Fetcher,
        *,
        policy: "RetryPolicy | None" = None,
        breaker: "CircuitBreaker | None" = None,
        deadline: "Deadline | None" = None,
        on_failure: str = "raise",
        clock: "Clock | None" = None,
        events: "EventLog | None" = None,
    ) -> None:
        if on_failure not in ("raise", "partial"):
            raise ValueError(f"on_failure must be 'raise' or 'partial', got {on_failure!r}")
        self._graph = base.copy()
        self._fetcher = fetcher
        self._policy = policy
        self._breaker = breaker
        self._deadline = deadline
        self._on_failure = on_failure
        self._clock = clock if clock is not None else SimulatedClock()
        self._events = events
        self._pending: dict[int, str] = {}  # node -> external key
        self._failures: dict[int, FailureRecord] = {}  # node -> why it failed
        self.fetch_count = 0  # successful materializations
        self.fetch_attempts = 0  # fetcher invocations incl. retries
        # collect stubs: node --@external--> holder --"key"--> leaf
        for node in list(self._graph.reachable()):
            for edge in self._graph.edges_from(node):
                if edge.label == EXTERNAL_MARKER:
                    key = self._stub_key(edge.dst)
                    if key is not None:
                        self._pending[node] = key
        # strip the marker edges; they are bookkeeping, not data
        for node in list(self._graph.nodes()):
            self._graph._adj[node] = [
                e for e in self._graph._adj[node] if e.label != EXTERNAL_MARKER
            ]

    def _stub_key(self, holder: int) -> "str | None":
        for edge in self._graph.edges_from(holder):
            if edge.label.is_string:
                return str(edge.label.value)
        return None

    @staticmethod
    def add_stub(graph: Graph, node: int, key: str) -> None:
        """Mark ``node`` as continuing in external data under ``key``."""
        from ..core.labels import string

        holder = graph.new_node()
        leaf = graph.new_node()
        graph.add_edge(node, EXTERNAL_MARKER, holder)
        graph.add_edge(holder, string(key), leaf)

    # -- the graph protocol, with on-demand materialization -------------------

    @property
    def root(self) -> int:
        return self._graph.root

    def _fetch(self, key: str) -> tuple[Graph, int]:
        """One guarded fetch: returns ``(subtree, attempts)``."""
        if self._policy is None and self._breaker is None and self._deadline is None:
            # historical fast path: one bare attempt, raw exceptions
            self.fetch_attempts += 1
            return self._fetcher(key), 1
        attempts_box = [0]

        def attempt() -> Graph:
            attempts_box[0] += 1
            self.fetch_attempts += 1
            return self._fetcher(key)

        try:
            subtree, attempts = call_with_retry(
                attempt,
                key=key,
                policy=self._policy,
                breaker=self._breaker,
                deadline=self._deadline,
                clock=self._clock,
                events=self._events,
            )
        except ResilienceError as exc:
            exc.attempts = attempts_box[0]  # actual invocations, for reporting
            raise
        return subtree, attempts

    def _materialize(self, node: int) -> None:
        key = self._pending.get(node)
        if key is None:
            return
        try:
            subtree, _ = self._fetch(key)
        except Exception as exc:
            if self._on_failure != "partial":
                del self._pending[node]
                raise
            # degrade: the stub contributes nothing; remember exactly why
            del self._pending[node]
            attempts = getattr(exc, "attempts", 1)
            self._failures[node] = FailureRecord(
                kind="fetch", key=key, attempts=attempts, error=repr(exc), lost=1
            )
            if self._events is not None:
                self._events.emit("fallback", key=key, lost=1)
            return
        del self._pending[node]
        self.fetch_count += 1
        mapping = self._graph._absorb(subtree)
        for edge in subtree.edges_from(subtree.root):
            self._graph.add_edge(node, edge.label, mapping[edge.dst])

    def edges_from(self, node: int) -> tuple[Edge, ...]:
        self._materialize(node)
        return self._graph.edges_from(node)

    def out_degree(self, node: int) -> int:
        return len(self.edges_from(node))

    def labels_from(self, node: int) -> set[Label]:
        return {e.label for e in self.edges_from(node)}

    def successors(self, node: int, label: "Label | None" = None):
        for edge in self.edges_from(node):
            if label is None or edge.label == label:
                yield edge.dst

    def reachable(self, start: "int | None" = None) -> set[int]:
        """Forces materialization of everything reachable (full fetch)."""
        origin = self.root if start is None else start
        seen = {origin}
        queue = deque([origin])
        while queue:
            node = queue.popleft()
            for edge in self.edges_from(node):
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    queue.append(edge.dst)
        return seen

    @property
    def pending_fetches(self) -> int:
        """External regions not yet materialized."""
        return len(self._pending)

    @property
    def failed_fetches(self) -> int:
        """External regions whose fetch ultimately failed (partial mode)."""
        return len(self._failures)

    @property
    def total_retries(self) -> int:
        """Fetcher invocations beyond the first per successful or failed stub."""
        first_attempts = self.fetch_count + sum(
            1 for f in self._failures.values() if f.attempts > 0
        )
        return max(0, self.fetch_attempts - first_attempts)

    def completeness(self) -> Completeness:
        """The partial-result contract: is what queries saw the whole truth?

        Regions still pending were never needed by any traversal so far,
        so they do not make the answer incomplete (laziness is not loss);
        only *failed* fetches do.
        """
        return Completeness(
            complete=not self._failures,
            failures=tuple(
                self._failures[node] for node in sorted(self._failures)
            ),
            retries=self.total_retries,
            succeeded=self.fetch_count,
        )

    def retry_failed(self) -> int:
        """Re-queue every failed stub for fetching; returns how many.

        Use after a known outage ends (the breaker's cooldown handles the
        transient case automatically).
        """
        requeued = 0
        for node, record in list(self._failures.items()):
            self._pending[node] = record.key
            del self._failures[node]
            requeued += 1
        return requeued

    def snapshot(self) -> Graph:
        """A plain graph of everything fetched so far (stubs still pending
        simply end where they end)."""
        return self._graph.copy()
