"""Dynamically-fetched external data (section 4, citing [28]).

McHugh & Widom, *Integrating dynamically-fetched external information into
a DBMS for semistructured data*: parts of the database live elsewhere (a
web page, another DBMS) and are materialized only when a query actually
traverses into them.

:class:`ExternalGraph` wraps a base graph in which some leaves are marked
as *external stubs*.  A stub carries a key; the first time a traversal
asks for the stub's edges, the registered :class:`Fetcher` produces the
external subtree (here: any callable -- the tests and benchmarks use
generators standing in for the 1997 web, per DESIGN.md's substitution
table), which is spliced in and cached.  Queries see one seamless graph;
:attr:`ExternalGraph.fetch_count` exposes the I/O the laziness saved.

The wrapper satisfies the informal graph protocol (``root``,
``edges_from``, ``reachable``...) that the RPQ product, the browsing
queries, and the datalog EDB builder rely on, so every engine works over
external data unchanged -- which is exactly the point of [28].
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..core.graph import Edge, Graph
from ..core.labels import Label, sym

__all__ = ["ExternalGraph", "EXTERNAL_MARKER"]

#: Stub edges carry this symbol; their target holds the key as string data.
EXTERNAL_MARKER = sym("@external")

#: A fetcher maps a stub key to the external subtree.
Fetcher = Callable[[str], Graph]


class ExternalGraph:
    """A graph with lazily-fetched external regions.

    Build the base graph normally, then mark external attachment points
    with :meth:`add_stub`.  Wrap with ``ExternalGraph(base, fetcher)`` and
    query the wrapper.
    """

    def __init__(self, base: Graph, fetcher: Fetcher) -> None:
        self._graph = base.copy()
        self._fetcher = fetcher
        self._pending: dict[int, str] = {}  # node -> external key
        self.fetch_count = 0
        # collect stubs: node --@external--> holder --"key"--> leaf
        for node in list(self._graph.reachable()):
            for edge in self._graph.edges_from(node):
                if edge.label == EXTERNAL_MARKER:
                    key = self._stub_key(edge.dst)
                    if key is not None:
                        self._pending[node] = key
        # strip the marker edges; they are bookkeeping, not data
        for node in list(self._graph.nodes()):
            self._graph._adj[node] = [
                e for e in self._graph._adj[node] if e.label != EXTERNAL_MARKER
            ]

    def _stub_key(self, holder: int) -> "str | None":
        for edge in self._graph.edges_from(holder):
            if edge.label.is_string:
                return str(edge.label.value)
        return None

    @staticmethod
    def add_stub(graph: Graph, node: int, key: str) -> None:
        """Mark ``node`` as continuing in external data under ``key``."""
        from ..core.labels import string

        holder = graph.new_node()
        leaf = graph.new_node()
        graph.add_edge(node, EXTERNAL_MARKER, holder)
        graph.add_edge(holder, string(key), leaf)

    # -- the graph protocol, with on-demand materialization -------------------

    @property
    def root(self) -> int:
        return self._graph.root

    def _materialize(self, node: int) -> None:
        key = self._pending.pop(node, None)
        if key is None:
            return
        self.fetch_count += 1
        subtree = self._fetcher(key)
        mapping = self._graph._absorb(subtree)
        for edge in subtree.edges_from(subtree.root):
            self._graph.add_edge(node, edge.label, mapping[edge.dst])

    def edges_from(self, node: int) -> tuple[Edge, ...]:
        self._materialize(node)
        return self._graph.edges_from(node)

    def out_degree(self, node: int) -> int:
        return len(self.edges_from(node))

    def labels_from(self, node: int) -> set[Label]:
        return {e.label for e in self.edges_from(node)}

    def successors(self, node: int, label: "Label | None" = None):
        for edge in self.edges_from(node):
            if label is None or edge.label == label:
                yield edge.dst

    def reachable(self, start: "int | None" = None) -> set[int]:
        """Forces materialization of everything reachable (full fetch)."""
        origin = self.root if start is None else start
        seen = {origin}
        queue = deque([origin])
        while queue:
            node = queue.popleft()
            for edge in self.edges_from(node):
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    queue.append(edge.dst)
        return seen

    @property
    def pending_fetches(self) -> int:
        """External regions not yet materialized."""
        return len(self._pending)

    def snapshot(self) -> Graph:
        """A plain graph of everything fetched so far (stubs still pending
        simply end where they end)."""
        return self._graph.copy()
