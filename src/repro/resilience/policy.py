"""Retry, timeout, and circuit-breaking policies for unreliable calls.

Section 4's two fragile mechanisms -- dynamically-fetched external data
([28]) and cross-site messages in distributed decomposition ([35]) -- both
reduce to "a call that can fail or hang".  This module gives the engines
one shared vocabulary for guarding such calls:

* :class:`RetryPolicy` -- bounded attempts with exponential backoff and
  *deterministic* jitter (a hash of the call key and attempt number, so
  replaying a seeded chaos schedule replays the exact same delays);
* :class:`Deadline` -- a per-call or per-query time budget measured
  against a :class:`~repro.resilience.clock.Clock`;
* :class:`CircuitBreaker` -- trips open after N consecutive failures,
  fails fast while open, and half-opens one probe after a cooldown;
* :func:`call_with_retry` -- the guarded-call engine combining all three
  and narrating what it does into an :class:`~repro.resilience.events.
  EventLog`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, TypeVar

from .clock import Clock, WallClock
from .errors import CircuitOpenError, DeadlineExceeded, RetriesExhausted
from .events import EventLog

__all__ = ["RetryPolicy", "Deadline", "CircuitBreaker", "call_with_retry"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How often, and with what delays, a failed call is re-attempted.

    ``delay(attempt, key)`` is ``base_delay * multiplier**(attempt-1)``
    capped at ``max_delay``, then spread by ``+-jitter`` (a fraction)
    using a CRC32 of ``key:attempt`` -- deterministic, but de-synchronised
    across keys so a thundering herd of stub fetches does not retry in
    lockstep.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be a fraction in [0, 1)")

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retrying after failed attempt number ``attempt``."""
        if attempt < 1:
            raise ValueError("attempts are numbered from 1")
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if not self.jitter or not raw:
            return raw
        unit = zlib.crc32(f"{key}:{attempt}".encode()) / 0xFFFFFFFF
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * unit)

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A single attempt, no delays: the pre-resilience behavior."""
        return cls(max_attempts=1, base_delay=0.0, jitter=0.0)


class Deadline:
    """A time budget: so many clock-seconds from construction.

    Guarded calls consult the deadline before each attempt and before
    each backoff sleep; a sleep that would overrun the budget fails
    immediately with :class:`DeadlineExceeded` instead of wasting the
    remaining time.
    """

    def __init__(self, budget: float, clock: "Clock | None" = None) -> None:
        if budget <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget = budget
        self._clock = clock if clock is not None else WallClock()
        self._expires = self._clock.now() + budget

    def remaining(self) -> float:
        return self._expires - self._clock.now()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, key: str = "deadline") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired:
            raise DeadlineExceeded(key, self.budget)


class CircuitBreaker:
    """Stop hammering a dependency that keeps failing.

    The classic three-state machine:

    * **closed** -- calls flow; ``failure_threshold`` *consecutive*
      failures trip it open (so a permanently-dead dependency is
      contacted at most ``failure_threshold`` times before the breaker
      intervenes -- the documented trip bound the chaos tests assert);
    * **open** -- calls fail fast (:class:`CircuitOpenError`) without
      touching the dependency until ``cooldown`` clock-seconds pass;
    * **half-open** -- after the cooldown, exactly one probe call is let
      through: success closes the breaker, failure re-opens it and
      restarts the cooldown.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        clock: "Clock | None" = None,
        key: str = "breaker",
        events: "EventLog | None" = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.key = key
        self._clock = clock if clock is not None else WallClock()
        self._events = events
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.trips = 0

    @property
    def state(self) -> str:
        """``closed``, ``open``, or ``half-open`` (cooldown elapsed)."""
        if self._state == "open" and (
            self._clock.now() - self._opened_at >= self.cooldown
        ):
            return "half-open"
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def allow(self) -> bool:
        """May a call proceed right now?  (Half-open admits one probe.)"""
        state = self.state
        if state == "closed":
            return True
        if state == "half-open" and not self._probing:
            self._probing = True
            if self._events is not None:
                self._events.emit("half-open", key=self.key)
            return True
        return False

    def record_success(self) -> None:
        if self._state != "closed" and self._events is not None:
            self._events.emit("reset", key=self.key)
        self._state = "closed"
        self._consecutive_failures = 0
        self._probing = False

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        tripped = self._probing or (
            self._state == "closed"
            and self._consecutive_failures >= self.failure_threshold
        )
        if tripped:
            self._state = "open"
            self._opened_at = self._clock.now()
            self._probing = False
            self.trips += 1
            if self._events is not None:
                self._events.emit(
                    "trip", key=self.key, failures=self._consecutive_failures
                )


def call_with_retry(
    fn: Callable[[], T],
    *,
    key: str = "call",
    policy: "RetryPolicy | None" = None,
    breaker: "CircuitBreaker | None" = None,
    deadline: "Deadline | None" = None,
    clock: "Clock | None" = None,
    events: "EventLog | None" = None,
    retryable: "tuple[type[BaseException], ...]" = (Exception,),
) -> tuple[T, int]:
    """Run ``fn`` under the given policies; return ``(result, attempts)``.

    Raises :class:`CircuitOpenError` (nothing attempted),
    :class:`DeadlineExceeded` (budget spent), or
    :class:`RetriesExhausted` (chained to the last underlying error).
    Exceptions outside ``retryable`` propagate unwrapped on first
    occurrence -- a programming error is not a transient fault.
    """
    policy = policy if policy is not None else RetryPolicy.none()
    clock = clock if clock is not None else WallClock()
    attempt = 0
    while True:
        if deadline is not None:
            deadline.check(key)
        if breaker is not None and not breaker.allow():
            if events is not None:
                events.emit("short-circuit", key=key)
            raise CircuitOpenError(key)
        attempt += 1
        started = clock.now()
        try:
            result = fn()
        except retryable as exc:
            if breaker is not None:
                breaker.record_failure()
            if attempt >= policy.max_attempts:
                if events is not None:
                    events.emit("give-up", key=key, attempts=attempt, error=repr(exc))
                raise RetriesExhausted(key, attempt, exc) from exc
            delay = policy.delay(attempt, key)
            if deadline is not None and delay > deadline.remaining():
                if events is not None:
                    events.emit("give-up", key=key, attempts=attempt, error="deadline")
                raise DeadlineExceeded(key, deadline.budget) from exc
            if events is not None:
                events.emit("retry", key=key, attempt=attempt, delay=delay)
            clock.sleep(delay)
        else:
            if breaker is not None:
                breaker.record_success()
            if events is not None:
                events.emit(
                    "fetch-latency",
                    key=key,
                    seconds=clock.now() - started,
                    attempts=attempt,
                )
            return result, attempt
