"""Deterministic, seedable fault injection for chaos testing.

A :class:`FaultInjector` simulates the 1997 web (and 1997 networks) being
what they were: slow, flaky, and sometimes just gone.  It wraps any
fetcher or site evaluator and decides, per call, whether to add latency,
raise an :class:`~repro.resilience.errors.InjectedFault`, or let the call
through -- according to a *schedule* that is a pure function of the seed,
the call key, and how many times that key has been called.  Re-running a
chaos test with the same seed replays the exact same failure sequence,
which is what makes the chaos suite a regression suite rather than a
flake generator.

Four schedules compose (checked in this order):

* **permanent outage** -- keys in ``outages`` always fail;
* **flaky-then-succeed** -- ``flaky={key: n}`` fails the first ``n``
  calls for ``key``, then succeeds forever (models a dependency coming
  back up);
* **fail-rate** -- every other call fails independently with probability
  ``fail_rate`` (transient noise);
* **latency** -- surviving calls sleep ``latency`` +- ``latency_jitter``
  seconds on the injector's clock before proceeding.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Mapping, TypeVar

from .clock import Clock, SimulatedClock
from .errors import InjectedFault

__all__ = ["FaultInjector"]

T = TypeVar("T")


class FaultInjector:
    """A reproducible source of scheduled failures and latency."""

    def __init__(
        self,
        seed: int = 0,
        *,
        fail_rate: float = 0.0,
        latency: float = 0.0,
        latency_jitter: float = 0.0,
        flaky: "Mapping[str, int] | None" = None,
        outages: "Iterable[str] | None" = None,
        clock: "Clock | None" = None,
    ) -> None:
        if not 0.0 <= fail_rate <= 1.0:
            raise ValueError("fail_rate must be a probability")
        if latency < 0 or latency_jitter < 0:
            raise ValueError("latency must be non-negative")
        self.seed = seed
        self.fail_rate = fail_rate
        self.latency = latency
        self.latency_jitter = latency_jitter
        self.flaky = dict(flaky or {})
        self.outages = frozenset(outages or ())
        self.clock = clock if clock is not None else SimulatedClock()
        self._calls: dict[str, int] = {}

    # -- schedule ---------------------------------------------------------------

    def calls(self, key: str) -> int:
        """How many times ``key`` has been contacted so far."""
        return self._calls.get(key, 0)

    @property
    def total_calls(self) -> int:
        return sum(self._calls.values())

    def _rng(self, key: str, seq: int) -> random.Random:
        return random.Random(f"{self.seed}:{key}:{seq}")

    def check(self, key: str) -> None:
        """One simulated contact with ``key``: latency, then fate.

        Raises :class:`InjectedFault` when the schedule says this call
        fails; returns normally otherwise.  Engines guard their real work
        with this call, so a failure costs the injected latency but never
        corrupts state.
        """
        seq = self._calls.get(key, 0)
        self._calls[key] = seq + 1
        rng = self._rng(key, seq)
        if self.latency or self.latency_jitter:
            self.clock.sleep(
                max(0.0, self.latency + self.latency_jitter * (2 * rng.random() - 1))
            )
        if key in self.outages:
            raise InjectedFault(key, "permanent outage")
        remaining = self.flaky.get(key, 0)
        if remaining > 0:
            self.flaky[key] = remaining - 1
            raise InjectedFault(key, f"flaky ({remaining} failure(s) left)")
        if self.fail_rate and rng.random() < self.fail_rate:
            raise InjectedFault(key, f"transient (rate {self.fail_rate:g})")

    # -- wrapping ---------------------------------------------------------------

    def wrap_fetcher(self, fetcher: Callable[[str], T]) -> Callable[[str], T]:
        """A fetcher that consults the schedule before each real fetch."""

        def guarded(key: str) -> T:
            self.check(key)
            return fetcher(key)

        return guarded

    def wrap(self, fn: Callable[..., T], key: str) -> Callable[..., T]:
        """Guard an arbitrary callable under a fixed key."""

        def guarded(*args: object, **kwargs: object) -> T:
            self.check(key)
            return fn(*args, **kwargs)

        return guarded
