"""Partial-result semantics: degrade gracefully, and say so.

When an external fetch or a site sub-query ultimately fails, production
queries should not crash -- they should answer from the reachable portion
of the data and *report* what is missing.  The contract here is:

* an engine in partial mode never raises for a dependency failure; it
  returns the answer computed from everything that did arrive;
* alongside the answer it produces a :class:`Completeness` report saying
  whether the answer is **exact** (every needed fetch/site succeeded,
  possibly after retries) or a **lower bound** (some portion was lost),
  which dependencies failed and after how many attempts, and how much
  work was dropped on the floor;
* monotone queries only (everything in this repository's query
  inventory): an answer over a subgraph is a sound lower bound, never
  wrong tuples.  Lost data can only *hide* results, not invent them.

Anything that traverses lazily (:class:`~repro.storage.external.
ExternalGraph`) or remotely (:func:`~repro.distributed.decompose.
distributed_rpq_resilient`) exposes a ``completeness()`` method;
:func:`completeness_of` reads it off any graph-like object, defaulting to
"exact" for plain in-memory graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generic, TypeVar

__all__ = ["FailureRecord", "Completeness", "PartialResult", "completeness_of"]

T = TypeVar("T")


@dataclass(frozen=True)
class FailureRecord:
    """One dependency that ultimately failed.

    ``kind`` is ``"fetch"`` (an external stub) or ``"site"`` (a
    distributed sub-query); ``key`` names the dependency; ``attempts`` is
    how many times it was actually contacted; ``lost`` counts the work
    units dropped because of it (queued configurations, local edges, or 1
    for a stub subtree); ``error`` is the last error's rendering.
    """

    kind: str
    key: str
    attempts: int
    error: str
    lost: int = 1


@dataclass(frozen=True)
class Completeness:
    """Whether (and how) an answer covers all the data it should have.

    ``complete=True`` means the answer is exact: every dependency the
    evaluation needed was reached, if necessary after retries (counted in
    ``retries``).  ``complete=False`` means the answer is a lower bound;
    ``failures`` names exactly what was lost.  Regions that exist but
    were never *needed* (lazy stubs no traversal entered) do not affect
    completeness -- laziness is not loss.
    """

    complete: bool = True
    failures: tuple[FailureRecord, ...] = ()
    retries: int = 0
    succeeded: int = 0

    @property
    def is_lower_bound(self) -> bool:
        return not self.complete

    def failed_keys(self) -> set[str]:
        return {f.key for f in self.failures}

    @property
    def lost(self) -> int:
        """Total work units dropped across all failures."""
        return sum(f.lost for f in self.failures)

    def describe(self) -> str:
        """A one-paragraph human rendering (the CLI prints this)."""
        if self.complete:
            note = f" after {self.retries} retr{'y' if self.retries == 1 else 'ies'}" \
                if self.retries else ""
            return f"exact answer: all {self.succeeded} dependency call(s) succeeded{note}"
        lines = [
            f"PARTIAL answer (lower bound): {len(self.failures)} dependency "
            f"failure(s), {self.lost} work unit(s) lost, {self.retries} retr"
            f"{'y' if self.retries == 1 else 'ies'} spent"
        ]
        for f in self.failures:
            lines.append(
                f"  - {f.kind} {f.key!r}: {f.attempts} attempt(s), "
                f"lost {f.lost}: {f.error}"
            )
        return "\n".join(lines)

    @staticmethod
    def merge(*reports: "Completeness") -> "Completeness":
        """Combine reports from several layers of one evaluation."""
        return Completeness(
            complete=all(r.complete for r in reports),
            failures=tuple(f for r in reports for f in r.failures),
            retries=sum(r.retries for r in reports),
            succeeded=sum(r.succeeded for r in reports),
        )


@dataclass(frozen=True)
class PartialResult(Generic[T]):
    """An answer bundled with its completeness report.

    Iterating / truthiness delegate to the value so existing call sites
    can adopt the partial API with minimal churn.
    """

    value: T
    completeness: Completeness = field(default_factory=Completeness)

    @property
    def exact(self) -> bool:
        return self.completeness.complete

    def __iter__(self) -> Any:
        return iter(self.value)  # type: ignore[call-overload]

    def __len__(self) -> int:
        return len(self.value)  # type: ignore[arg-type]

    def __contains__(self, item: object) -> bool:
        return item in self.value  # type: ignore[operator]


def completeness_of(graph: Any) -> Completeness:
    """The completeness report of a graph-like object.

    Graphs that can lose data (external wrappers, resilient views) expose
    ``completeness()``; anything else is in-memory and therefore exact.
    """
    probe = getattr(graph, "completeness", None)
    if callable(probe):
        report = probe()
        if isinstance(report, Completeness):
            return report
    return Completeness()
