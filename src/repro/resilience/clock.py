"""Time sources for the resilience layer.

All timeout, backoff, and circuit-cooldown logic is written against the
tiny :class:`Clock` protocol instead of :mod:`time` directly, for the same
reason the storage layer counts page faults instead of spinning disks
(DESIGN.md's substitution table): tests and benchmarks need *deterministic*
time.  :class:`SimulatedClock` advances only when someone sleeps on it, so
a chaos test that retries with exponential backoff finishes in
microseconds of wall time yet reports exact simulated latencies.
:class:`WallClock` is the production source.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "SimulatedClock", "WallClock"]


@runtime_checkable
class Clock(Protocol):
    """The two operations resilience code needs from a time source."""

    def now(self) -> float:
        """Current time in seconds (monotonic; origin unspecified)."""
        ...

    def sleep(self, seconds: float) -> None:
        """Block (or pretend to) for ``seconds``."""
        ...


class SimulatedClock:
    """A deterministic clock: time moves only via :meth:`sleep`/:meth:`advance`.

    ``slept`` accumulates total simulated sleep, which is how benchmarks
    report recovery latency without real waiting.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.slept = 0.0

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep {seconds}s")
        self._now += seconds
        self.slept += seconds

    def advance(self, seconds: float) -> None:
        """Move time forward without counting it as sleep (external delay)."""
        if seconds < 0:
            raise ValueError(f"cannot advance {seconds}s")
        self._now += seconds


class WallClock:
    """Real time: :func:`time.monotonic` and :func:`time.sleep`."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)
