"""Resilience layer: retries, timeouts, circuit breakers, fault injection,
and partial-result semantics for the external-data and distributed engines.

See docs/RESILIENCE.md for the full contract.  The short version:

* wrap unreliable calls with :func:`call_with_retry` under a
  :class:`RetryPolicy`, an optional :class:`Deadline`, and an optional
  :class:`CircuitBreaker`;
* inject reproducible chaos with a seeded :class:`FaultInjector`;
* engines in partial mode return answers plus a :class:`Completeness`
  report instead of raising;
* everything narrates into an :class:`EventLog` that tests assert on.
"""

from .clock import Clock, SimulatedClock, WallClock
from .errors import (
    BudgetExhausted,
    CircuitOpenError,
    DeadlineExceeded,
    InjectedFault,
    QueryCancelled,
    ResilienceError,
    RetriesExhausted,
)
from .events import Event, EventLog
from .faults import FaultInjector
from .partial import Completeness, FailureRecord, PartialResult, completeness_of
from .policy import CircuitBreaker, Deadline, RetryPolicy, call_with_retry

__all__ = [
    # clocks
    "Clock",
    "SimulatedClock",
    "WallClock",
    # errors
    "ResilienceError",
    "RetriesExhausted",
    "CircuitOpenError",
    "DeadlineExceeded",
    "InjectedFault",
    "QueryCancelled",
    "BudgetExhausted",
    # events
    "Event",
    "EventLog",
    # faults
    "FaultInjector",
    # partial results
    "Completeness",
    "FailureRecord",
    "PartialResult",
    "completeness_of",
    # policies
    "RetryPolicy",
    "Deadline",
    "CircuitBreaker",
    "call_with_retry",
]
