"""Typed failures of the resilience layer.

Every failure mode an engine can see from a guarded call has its own
exception class, all rooted at :class:`ResilienceError`, so callers can
catch the whole family (partial-result mode) or let it propagate
(fail-fast mode) without string matching.
"""

from __future__ import annotations

__all__ = [
    "ResilienceError",
    "RetriesExhausted",
    "CircuitOpenError",
    "DeadlineExceeded",
    "InjectedFault",
    "QueryCancelled",
    "BudgetExhausted",
]


class ResilienceError(RuntimeError):
    """Base class for failures raised by guarded calls."""


class RetriesExhausted(ResilienceError):
    """A call failed on every attempt its :class:`RetryPolicy` allowed.

    ``attempts`` is how many times the underlying callable actually ran;
    ``__cause__`` is the last underlying exception.
    """

    def __init__(self, key: str, attempts: int, cause: BaseException) -> None:
        super().__init__(
            f"{key}: gave up after {attempts} attempt(s): {cause!r}"
        )
        self.key = key
        self.attempts = attempts


class CircuitOpenError(ResilienceError):
    """A call was short-circuited because its circuit breaker is open.

    The underlying callable was *not* run: ``attempts`` is always 0.
    """

    def __init__(self, key: str) -> None:
        super().__init__(f"{key}: circuit breaker is open, call not attempted")
        self.key = key
        self.attempts = 0


class DeadlineExceeded(ResilienceError):
    """A call (or its next backoff sleep) would overrun its time budget."""

    def __init__(self, key: str, budget: float) -> None:
        super().__init__(f"{key}: deadline of {budget:g}s exceeded")
        self.key = key
        self.budget = budget


class InjectedFault(ResilienceError):
    """A deliberately injected failure (chaos testing, never production)."""

    def __init__(self, key: str, reason: str) -> None:
        super().__init__(f"{key}: injected fault ({reason})")
        self.key = key
        self.reason = reason


class QueryCancelled(ResilienceError):
    """A query was cancelled cooperatively (client request or shutdown).

    Raised at a traversal checkpoint, never mid-superstep: the work done
    so far is intact and is returned as a partial result.
    """

    def __init__(self, key: str) -> None:
        super().__init__(f"{key}: cancelled at a checkpoint")
        self.key = key


class BudgetExhausted(ResilienceError):
    """A query spent its operation budget (edges scanned, not seconds).

    The deterministic sibling of :class:`DeadlineExceeded`: a runaway
    traversal is stopped by *work done* rather than wall time, so tests
    on a simulated clock can pin exactly where it stops.
    """

    def __init__(self, key: str, budget: int, spent: int) -> None:
        super().__init__(f"{key}: operation budget of {budget} exhausted ({spent} spent)")
        self.key = key
        self.budget = budget
        self.spent = spent
