"""Typed failures of the resilience layer.

Every failure mode an engine can see from a guarded call has its own
exception class, all rooted at :class:`ResilienceError`, so callers can
catch the whole family (partial-result mode) or let it propagate
(fail-fast mode) without string matching.
"""

from __future__ import annotations

__all__ = [
    "ResilienceError",
    "RetriesExhausted",
    "CircuitOpenError",
    "DeadlineExceeded",
    "InjectedFault",
]


class ResilienceError(RuntimeError):
    """Base class for failures raised by guarded calls."""


class RetriesExhausted(ResilienceError):
    """A call failed on every attempt its :class:`RetryPolicy` allowed.

    ``attempts`` is how many times the underlying callable actually ran;
    ``__cause__`` is the last underlying exception.
    """

    def __init__(self, key: str, attempts: int, cause: BaseException) -> None:
        super().__init__(
            f"{key}: gave up after {attempts} attempt(s): {cause!r}"
        )
        self.key = key
        self.attempts = attempts


class CircuitOpenError(ResilienceError):
    """A call was short-circuited because its circuit breaker is open.

    The underlying callable was *not* run: ``attempts`` is always 0.
    """

    def __init__(self, key: str) -> None:
        super().__init__(f"{key}: circuit breaker is open, call not attempted")
        self.key = key
        self.attempts = 0


class DeadlineExceeded(ResilienceError):
    """A call (or its next backoff sleep) would overrun its time budget."""

    def __init__(self, key: str, budget: float) -> None:
        super().__init__(f"{key}: deadline of {budget:g}s exceeded")
        self.key = key
        self.budget = budget


class InjectedFault(ResilienceError):
    """A deliberately injected failure (chaos testing, never production)."""

    def __init__(self, key: str, reason: str) -> None:
        super().__init__(f"{key}: injected fault ({reason})")
        self.key = key
        self.reason = reason
