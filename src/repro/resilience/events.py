"""A lightweight structured event log for resilience observability.

Retries, breaker trips, fallbacks to partial results, and fetch latencies
are invisible in a query's answer by design -- that is the point of
graceful degradation.  They must therefore be observable *somewhere*, or
chaos tests could only assert end results and benchmarks could not count
recovery work.  :class:`EventLog` is that somewhere: an append-only list
of ``(kind, time, fields)`` records with just enough query surface
(:meth:`of_kind`, :meth:`count`) for tests to assert on.

Well-known kinds emitted by this package::

    retry          -- one failed attempt will be retried (key, attempt, delay)
    give-up        -- a call exhausted its attempts (key, attempts, error)
    short-circuit  -- a call was blocked by an open breaker (key)
    trip           -- a breaker moved closed -> open (key, failures)
    half-open      -- a breaker allows a probe after cooldown (key)
    reset          -- a breaker closed again after a success (key)
    fallback       -- an engine degraded to a partial result (key, lost)
    fetch-latency  -- a guarded call succeeded (key, seconds, attempts)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from .clock import Clock

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True)
class Event:
    """One structured occurrence: a kind, a timestamp, and open fields."""

    kind: str
    at: float
    fields: Mapping[str, Any]

    def __getitem__(self, name: str) -> Any:
        return self.fields[name]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"<{self.kind} @{self.at:g} {inner}>"


@dataclass
class EventLog:
    """Append-only structured log; cheap enough to leave on everywhere.

    ``sink``, when set, receives every emitted event as well -- this is
    how :meth:`repro.obs.Tracer.event_log` pulls resilience events into
    the span currently open, unifying both observability streams.
    """

    clock: "Clock | None" = None
    events: list[Event] = field(default_factory=list)
    sink: "Callable[[Event], None] | None" = None

    def emit(self, kind: str, **fields: Any) -> Event:
        at = self.clock.now() if self.clock is not None else 0.0
        event = Event(kind, at, fields)
        self.events.append(event)
        if self.sink is not None:
            self.sink(event)
        return event

    def of_kind(self, kind: str) -> Iterator[Event]:
        return (e for e in self.events if e.kind == kind)

    def count(self, kind: str) -> int:
        return sum(1 for _ in self.of_kind(kind))

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)
