"""Synthetic web graphs: the data "that cannot be constrained by a schema".

Section 1.1's first motivating source is the World-Wide-Web; we cannot
ship the 1997 web, so this generator produces the closest structural
equivalent (the substitution DESIGN.md records): a site of pages with

* a spanning tree of navigation links (every page reachable from the
  home page),
* extra random ``link`` edges -- including back links, so the graph is
  cyclic like the real web,
* per-page ``url`` and ``title`` string data and occasional ``keyword``
  edges for text queries.

Deterministic in ``seed``; used by experiments E2 (regular path queries),
E3 (restructuring) and E5 (distributed decomposition).
"""

from __future__ import annotations

import random

from ..core.graph import Graph
from ..core.labels import string

__all__ = ["generate_web"]

_WORDS = [
    "home", "research", "database", "semistructured", "query", "papers",
    "people", "teaching", "projects", "unql", "lorel", "web", "data",
    "biology", "acedb", "penn", "stanford", "archive",
]


def generate_web(
    num_pages: int, extra_links: int | None = None, seed: int = 0
) -> Graph:
    """A rooted, cyclic site graph with ``num_pages`` pages.

    ``extra_links`` defaults to ``2 * num_pages``: on top of the spanning
    tree each page averages two additional outgoing links, some of which
    point backwards/upwards and create cycles.
    """
    if num_pages < 1:
        raise ValueError("need at least one page")
    rng = random.Random(seed)
    if extra_links is None:
        extra_links = 2 * num_pages
    g = Graph()
    pages = [g.new_node() for _ in range(num_pages)]
    g.set_root(pages[0])

    for i, page in enumerate(pages):
        url_holder = g.new_node()
        g.add_edge(page, "url", url_holder)
        g.add_edge(url_holder, string(f"http://site.example/p{i}"), g.new_node())
        title_holder = g.new_node()
        g.add_edge(page, "title", title_holder)
        words = rng.sample(_WORDS, rng.randint(1, 3))
        g.add_edge(title_holder, string(" ".join(words)), g.new_node())
        for word in rng.sample(_WORDS, rng.randint(0, 2)):
            kw = g.new_node()
            g.add_edge(page, "keyword", kw)
            g.add_edge(kw, string(word), g.new_node())

    # spanning tree: page i linked from a random earlier page
    for i in range(1, num_pages):
        parent = pages[rng.randrange(i)]
        g.add_edge(parent, "link", pages[i])
    # extra links, cycles included
    for _ in range(extra_links):
        src = rng.choice(pages)
        dst = rng.choice(pages)
        g.add_edge(src, "link", dst)
    return g
