"""Synthetic web graphs: the data "that cannot be constrained by a schema".

Section 1.1's first motivating source is the World-Wide-Web; we cannot
ship the 1997 web, so this generator produces the closest structural
equivalent (the substitution DESIGN.md records): a site of pages with

* a spanning tree of navigation links (every page reachable from the
  home page),
* extra random ``link`` edges -- including back links, so the graph is
  cyclic like the real web,
* per-page ``url`` and ``title`` string data and occasional ``keyword``
  edges for text queries.

Deterministic in ``seed``; used by experiments E2 (regular path queries),
E3 (restructuring) and E5 (distributed decomposition).

For the multi-million-edge scale experiment E17 needs, :func:`generate_web`
(which stages a dict-of-lists :class:`Graph`) is the wrong tool; use
:func:`stream_crawl_edges` / :func:`generate_crawl` instead.  They model a
scale-free crawl -- power-law out-degree, host-locality clustering,
hub-skewed cross-host references -- as a seeded, source-ordered edge
stream in constant memory, feeding
:meth:`~repro.core.frozen.FrozenGraph.from_edge_stream` directly so no
intermediate graph object is ever built.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..core.frozen import FrozenGraph
from ..core.graph import Graph
from ..core.labels import string

__all__ = ["generate_web", "stream_crawl_edges", "generate_crawl"]

_WORDS = [
    "home", "research", "database", "semistructured", "query", "papers",
    "people", "teaching", "projects", "unql", "lorel", "web", "data",
    "biology", "acedb", "penn", "stanford", "archive",
]


def generate_web(
    num_pages: int, extra_links: int | None = None, seed: int = 0
) -> Graph:
    """A rooted, cyclic site graph with ``num_pages`` pages.

    ``extra_links`` defaults to ``2 * num_pages``: on top of the spanning
    tree each page averages two additional outgoing links, some of which
    point backwards/upwards and create cycles.
    """
    if num_pages < 1:
        raise ValueError("need at least one page")
    rng = random.Random(seed)
    if extra_links is None:
        extra_links = 2 * num_pages
    g = Graph()
    pages = [g.new_node() for _ in range(num_pages)]
    g.set_root(pages[0])

    for i, page in enumerate(pages):
        url_holder = g.new_node()
        g.add_edge(page, "url", url_holder)
        g.add_edge(url_holder, string(f"http://site.example/p{i}"), g.new_node())
        title_holder = g.new_node()
        g.add_edge(page, "title", title_holder)
        words = rng.sample(_WORDS, rng.randint(1, 3))
        g.add_edge(title_holder, string(" ".join(words)), g.new_node())
        for word in rng.sample(_WORDS, rng.randint(0, 2)):
            kw = g.new_node()
            g.add_edge(page, "keyword", kw)
            g.add_edge(kw, string(word), g.new_node())

    # spanning tree: page i linked from a random earlier page
    for i in range(1, num_pages):
        parent = pages[rng.randrange(i)]
        g.add_edge(parent, "link", pages[i])
    # extra links, cycles included
    for _ in range(extra_links):
        src = rng.choice(pages)
        dst = rng.choice(pages)
        g.add_edge(src, "link", dst)
    return g


# -- streaming scale-free crawls (experiment E17) -------------------------------


def _host_sizes(num_pages: int, seed: int, mean_host: int) -> Iterator[int]:
    """The deterministic host-size stream (re-runnable, so never stored).

    Pareto-distributed with a floor of 1 page and a ceiling of eight
    mean hosts -- a few big portals, many small sites -- clipped so the
    sizes always sum to exactly ``num_pages``.
    """
    rng = random.Random(f"{seed}-hosts")
    remaining = num_pages
    cap = max(1, 8 * mean_host)
    while remaining > 0:
        size = min(remaining, cap, max(1, int(rng.paretovariate(1.7) * mean_host * 0.4)))
        yield size
        remaining -= size


def stream_crawl_edges(
    num_pages: int,
    *,
    seed: int = 0,
    mean_host: int = 50,
    mean_extra_degree: float = 2.0,
    local_fraction: float = 0.85,
) -> Iterator[tuple[int, str, int]]:
    """A seeded, constant-memory stream of crawl edges, grouped by source.

    Pages ``0..num_pages-1`` are laid out as contiguous *host* blocks
    (sizes Pareto-distributed around ``mean_host``).  The structure, in
    source order:

    * page 0 (the crawl seed, a directory hub) links to every host's
      entry page, and each host is internally chained -- so every page
      is reachable from the root by construction, whatever the random
      edges do;
    * each page adds a power-law number of extra out-edges
      (Pareto-distributed, mean ``mean_extra_degree``); each is local to
      the host with probability ``local_fraction`` (label ``link``), and
      otherwise points cross-host with a hub bias toward low page ids
      (label ``ref``, or ``cite`` for one cross edge in eight) --
      back-edges included, so the graph is cyclic like the web it
      imitates.

    Total edge count is about ``(1 + mean_extra_degree) * num_pages``.
    The stream is reproducible for a given parameter set and holds O(1)
    state (two RNGs plus the current host bounds), which is what lets
    E17 build multi-million-edge snapshots without a graph object.
    """
    if num_pages < 1:
        raise ValueError("need at least one page")
    if not 0.0 <= local_fraction <= 1.0:
        raise ValueError("local_fraction must be a probability")
    rng = random.Random(f"{seed}-edges")
    # pass 1 (src = 0): the hub's link to every host entry
    first_host = next(_host_sizes(num_pages, seed, mean_host))
    for start_page in _host_starts(num_pages, seed, mean_host):
        if start_page != 0:
            yield 0, "link", start_page
    # main sweep: per page, the intra-host chain edge plus extra edges
    host_start, host_end = 0, first_host
    sizes = _host_sizes(num_pages, seed, mean_host)
    next(sizes)  # the first host is already framed
    # power-law out-degree: pareto shape 2 has mean 2, scaled to target
    degree_scale = mean_extra_degree / 2.0
    for page in range(num_pages):
        if page >= host_end:
            host_start, host_end = host_end, host_end + next(sizes)
        if page + 1 < host_end:
            yield page, "link", page + 1
        extra = int(rng.paretovariate(2.0) * degree_scale)
        for _ in range(extra):
            if rng.random() < local_fraction and host_end - host_start > 1:
                dst = rng.randrange(host_start, host_end)
                yield page, "link", dst
            else:
                # hub bias: squaring the uniform skews toward low ids,
                # giving the old/popular pages power-law in-degree
                dst = int(num_pages * rng.random() ** 2.5)
                label = "cite" if rng.random() < 0.125 else "ref"
                yield page, label, dst


def _host_starts(num_pages: int, seed: int, mean_host: int) -> Iterator[int]:
    start = 0
    for size in _host_sizes(num_pages, seed, mean_host):
        yield start
        start += size


def generate_crawl(
    num_pages: int,
    *,
    seed: int = 0,
    mean_host: int = 50,
    mean_extra_degree: float = 2.0,
    local_fraction: float = 0.85,
) -> FrozenGraph:
    """The crawl stream frozen straight into a dense CSR snapshot.

    Equivalent to loading :func:`stream_crawl_edges` into a
    :class:`~repro.core.graph.Graph` and freezing it (the datasets tests
    assert exactly that), but peak memory is the CSR vectors themselves.
    """
    return FrozenGraph.from_edge_stream(
        num_pages,
        stream_crawl_edges(
            num_pages,
            seed=seed,
            mean_host=mean_host,
            mean_extra_degree=mean_extra_degree,
            local_fraction=local_fraction,
        ),
    )
