"""Dataset generators: Figure 1 and the paper's motivating data sources."""

from .acedb import acedb_schema, generate_acedb
from .movies import ACTOR_POOL, figure1, generate_movies
from .relational_data import generate_catalog, random_algebra_term
from .webgraph import generate_crawl, generate_web, stream_crawl_edges

__all__ = [
    "figure1",
    "generate_movies",
    "ACTOR_POOL",
    "generate_web",
    "generate_crawl",
    "stream_crawl_edges",
    "generate_acedb",
    "acedb_schema",
    "generate_catalog",
    "random_algebra_term",
]
