"""Relational workload generators (experiments E4, E8, E9).

Deterministic catalogs of movie-flavoured tables plus a generator of
random well-typed SPJRU algebra terms over them -- the machinery behind
the paper's claim that UnQL restricted to relational data "expresses
exactly the relational (nested relational) algebra".
"""

from __future__ import annotations

import random

from ..relational.algebra import (
    Difference,
    Join,
    Project,
    RelExpr,
    Scan,
    Select,
    Union,
    expr_schema,
)
from ..relational.relation import Relation

__all__ = ["generate_catalog", "random_algebra_term"]


def generate_catalog(
    num_movies: int = 50, num_actors: int = 20, seed: int = 0
) -> dict[str, Relation]:
    """Movies / Casts / Directors tables with referential structure."""
    rng = random.Random(seed)
    actors = [f"actor{i}" for i in range(num_actors)]
    directors = [f"director{i}" for i in range(max(3, num_actors // 4))]
    movies = []
    casts = []
    directed = []
    for i in range(num_movies):
        title = f"movie{i}"
        movies.append((title, rng.randint(1930, 1997)))
        for actor in rng.sample(actors, rng.randint(1, 4)):
            casts.append((title, actor))
        directed.append((title, rng.choice(directors)))
    return {
        "Movies": Relation(("title", "year"), movies),
        "Casts": Relation(("title", "actor"), casts),
        "Directors": Relation(("title", "director"), directed),
    }


def random_algebra_term(
    catalog: dict[str, Relation], seed: int = 0, depth: int = 3
) -> RelExpr:
    """A random well-typed SPJRU term over the catalog's tables.

    Guarantees: every Select mentions an attribute its input has; every
    Project keeps a non-empty subset; Union/Difference operands are built
    from the same scan so schemas line up.  Values for selections are
    sampled from the actual column domains so results are non-trivially
    non-empty.
    """
    rng = random.Random(seed)
    schemas = {name: rel.schema for name, rel in catalog.items()}

    def build(d: int) -> RelExpr:
        if d == 0:
            return Scan(rng.choice(sorted(catalog)))
        kind = rng.randrange(5)
        if kind == 0:
            return Scan(rng.choice(sorted(catalog)))
        if kind == 1:
            inner = build(d - 1)
            schema = expr_schema(inner, schemas)
            attr = rng.choice(schema)
            value = _sample_value(catalog, rng, attr)
            return Select(inner, attr, value)
        if kind == 2:
            inner = build(d - 1)
            schema = expr_schema(inner, schemas)
            keep = rng.sample(schema, rng.randint(1, len(schema)))
            return Project(inner, tuple(keep))
        if kind == 3:
            return Join(build(d - 1), build(d - 1))
        base = build(d - 1)
        other_seed = rng.randrange(1 << 30)
        other = _same_schema_term(base, catalog, schemas, other_seed)
        cls = Union if rng.random() < 0.5 else Difference
        return cls(base, other)

    return build(depth)


def _same_schema_term(base, catalog, schemas, seed):
    """A term with the same schema as ``base``: a selection of it."""
    rng = random.Random(seed)
    schema = expr_schema(base, schemas)
    attr = rng.choice(schema)
    return Select(base, attr, _sample_value(catalog, rng, attr))


def _sample_value(catalog, rng, attr):
    domain = sorted(
        {
            value
            for rel in catalog.values()
            if attr in rel.schema
            for value in rel.column(attr)
        },
        key=repr,
    )
    if not domain:
        return 0
    return rng.choice(domain)
