"""The movie database of Figure 1, exact and at scale.

:func:`figure1` reproduces the paper's one figure: three ``Entry`` edges
(two movies, one TV show), the two *different* representations of a cast
(direct string edges vs. a ``Credit``/``Actors`` subobject), the ``1.2E6``
real-valued credit, integer-labeled ``Episode`` edges standing for an
array, and the ``References`` / ``Is referenced in`` cycle between
entries.  The figure (the paper admits) has "some inaccuracies" relative
to IMDB; so, unavoidably, do we -- the *structure* is what matters and it
is preserved element for element.

:func:`generate_movies` scales the same heterogeneity up: a deterministic
pseudo-IMDB with both cast encodings, optional directors, TV shows with
episode arrays, and occasional cross-reference cycles.  It is the workload
generator behind experiments E1/E2/E6/E7.
"""

from __future__ import annotations

import random

from ..core.graph import Graph
from ..core.labels import real, string

__all__ = ["figure1", "generate_movies", "ACTOR_POOL"]


def figure1() -> Graph:
    """The example movie database of the paper, Figure 1."""
    g = Graph()
    root = g.new_node()
    g.set_root(root)

    # -- Entry 1: Casablanca, cast as direct string edges ---------------------
    entry1 = g.new_node()
    movie1 = g.new_node()
    g.add_edge(root, "Entry", entry1)
    g.add_edge(entry1, "Movie", movie1)
    title1, t1_leaf = g.new_node(), g.new_node()
    g.add_edge(movie1, "Title", title1)
    g.add_edge(title1, string("Casablanca"), t1_leaf)
    cast1 = g.new_node()
    g.add_edge(movie1, "Cast", cast1)
    g.add_edge(cast1, string("Bogart"), g.new_node())
    g.add_edge(cast1, string("Bacall"), g.new_node())  # the egregious error
    director1 = g.new_node()
    g.add_edge(movie1, "Director", director1)

    # -- Entry 2: Play it again, Sam; cast behind Credit/Actors --------------
    entry2 = g.new_node()
    movie2 = g.new_node()
    g.add_edge(root, "Entry", entry2)
    g.add_edge(entry2, "Movie", movie2)
    title2 = g.new_node()
    g.add_edge(movie2, "Title", title2)
    g.add_edge(title2, string("Play it again, Sam"), g.new_node())
    cast2 = g.new_node()
    g.add_edge(movie2, "Cast", cast2)
    credit = g.new_node()
    g.add_edge(cast2, "Credit", credit)
    g.add_edge(credit, real(1.2e6), g.new_node())
    actors = g.new_node()
    g.add_edge(cast2, "Actors", actors)
    g.add_edge(actors, string("Allen"), g.new_node())
    director2 = g.new_node()
    g.add_edge(movie2, "Director", director2)
    g.add_edge(director2, string("Allen"), g.new_node())

    # -- Entry 3: a TV show with an episode array and special guests ---------
    entry3 = g.new_node()
    show = g.new_node()
    g.add_edge(root, "Entry", entry3)
    g.add_edge(entry3, "TV Show", show)
    title3 = g.new_node()
    g.add_edge(show, "Title", title3)
    cast3 = g.new_node()
    g.add_edge(show, "Cast", cast3)
    guests = g.new_node()
    g.add_edge(cast3, "Special Guests", guests)
    episode = g.new_node()
    g.add_edge(show, "Episode", episode)
    for i in (1, 2, 3):
        g.add_edge(episode, i, g.new_node())

    # -- the cycle: Play it again, Sam references Casablanca ------------------
    g.add_edge(movie2, "References", movie1)
    g.add_edge(movie1, "Is referenced in", movie2)
    return g


ACTOR_POOL = [
    "Bogart", "Bacall", "Bergman", "Allen", "Keaton", "Hepburn", "Grant",
    "Stewart", "Novak", "Leigh", "Mason", "Kelly", "Rains", "Lorre",
    "Greenstreet", "Henreid", "Veidt", "Wilson", "Dooley",
]

_TITLE_WORDS = [
    "Casablanca", "Again", "Sam", "Play", "Night", "Paris", "Shadow",
    "Letter", "Falcon", "Window", "Vertigo", "Notorious", "Sabrina",
    "Charade", "Laura", "Gilda", "Suspicion",
]

_DIRECTOR_POOL = ["Curtiz", "Allen", "Hitchcock", "Wilder", "Hawks", "Huston"]


def generate_movies(
    num_entries: int, seed: int = 0, reference_fraction: float = 0.1
) -> Graph:
    """A pseudo-IMDB with Figure 1's heterogeneity, ``num_entries`` entries.

    Deterministic in ``seed``.  Roughly 80% of the entries are movies and
    20% TV shows; half the movies use the direct cast representation and
    half the ``Credit``/``Actors`` one; ``reference_fraction`` of the
    entries gain a ``References`` edge to an earlier entry (with the
    ``Is referenced in`` back edge, so the data is cyclic like the
    figure).
    """
    rng = random.Random(seed)
    g = Graph()
    root = g.new_node()
    g.set_root(root)
    content_nodes: list[int] = []

    def scalar(parent: int, label: str, value) -> None:
        holder = g.new_node()
        g.add_edge(parent, label, holder)
        g.add_edge(holder, value if not isinstance(value, str) else string(value), g.new_node())

    for i in range(num_entries):
        entry = g.new_node()
        g.add_edge(root, "Entry", entry)
        title = " ".join(rng.sample(_TITLE_WORDS, rng.randint(1, 3))) + f" {i}"
        if rng.random() < 0.8:
            movie = g.new_node()
            g.add_edge(entry, "Movie", movie)
            scalar(movie, "Title", title)
            scalar(movie, "Year", rng.randint(1920, 1997))
            cast = g.new_node()
            g.add_edge(movie, "Cast", cast)
            members = rng.sample(ACTOR_POOL, rng.randint(1, 4))
            if rng.random() < 0.5:
                for actor in members:  # representation A: direct edges
                    g.add_edge(cast, string(actor), g.new_node())
            else:  # representation B: Credit/Actors subobject
                credit = g.new_node()
                g.add_edge(cast, "Credit", credit)
                g.add_edge(credit, real(rng.randint(1, 30) * 1e5), g.new_node())
                actors = g.new_node()
                g.add_edge(cast, "Actors", actors)
                for actor in members:
                    g.add_edge(actors, string(actor), g.new_node())
            if rng.random() < 0.7:
                scalar(movie, "Director", rng.choice(_DIRECTOR_POOL))
            content_nodes.append(movie)
        else:
            show = g.new_node()
            g.add_edge(entry, "TV Show", show)
            scalar(show, "Title", title)
            episode = g.new_node()
            g.add_edge(show, "Episode", episode)
            for ep in range(1, rng.randint(2, 5)):
                g.add_edge(episode, ep, g.new_node())
            cast = g.new_node()
            g.add_edge(show, "Cast", cast)
            guests = g.new_node()
            g.add_edge(cast, "Special Guests", guests)
            for actor in rng.sample(ACTOR_POOL, rng.randint(1, 2)):
                g.add_edge(guests, string(actor), g.new_node())
            if rng.random() < 0.3:
                scalar(show, "actors", rng.choice(ACTOR_POOL))
            content_nodes.append(show)
        if len(content_nodes) > 1 and rng.random() < reference_fraction:
            target = rng.choice(content_nodes[:-1])
            g.add_edge(content_nodes[-1], "References", target)
            g.add_edge(target, "Is referenced in", content_nodes[-1])
    return g
