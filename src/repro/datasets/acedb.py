"""ACeDB-style biological data: loose schemas, trees of arbitrary depth.

Section 1.1: ACeDB "has a schema language that resembles that of an
object-oriented DBMS; but this schema imposes only loose constraints on the
data ... there are structures that are naturally expressed in ACeDB, such
as trees of arbitrary depth, that cannot be queried using conventional
techniques."

The generator produces a C.-elegans-flavoured database (the substitution
DESIGN.md records -- we cannot ship ACeDB itself):

* ``Locus`` objects with a *variable* subset of attributes (the loose
  schema: no two objects need the same shape);
* a taxonomy / clone-containment tree of random, unbounded depth under
  ``Contains`` edges -- the "trees of arbitrary depth";
* cross links (``Maps_to``) between loci and map positions.

:func:`acedb_schema` gives the loose :class:`~repro.schema.graphschema.
GraphSchema` every generated database conforms to, demonstrating
"schema imposes only loose constraints" executably.
"""

from __future__ import annotations

import random

from ..core.graph import Graph
from ..core.labels import string
from ..schema.graphschema import GraphSchema

__all__ = ["generate_acedb", "acedb_schema"]

_GENE_PREFIXES = ["unc", "lin", "dpy", "him", "let", "ced", "egl", "sma"]
_AUTHORS = ["Sulston", "Brenner", "Horvitz", "Waterston", "Coulson", "Durbin"]


def generate_acedb(num_loci: int, seed: int = 0, max_depth: int = 8) -> Graph:
    """A loose-schema biological database with ``num_loci`` locus objects."""
    if num_loci < 1:
        raise ValueError("need at least one locus")
    rng = random.Random(seed)
    g = Graph()
    root = g.new_node()
    g.set_root(root)

    def scalar(parent: int, label: str, value) -> None:
        holder = g.new_node()
        g.add_edge(parent, label, holder)
        g.add_edge(
            holder, string(value) if isinstance(value, str) else value, g.new_node()
        )

    def clone_tree(parent: int, depth: int) -> None:
        """Containment trees of arbitrary depth (the ACeDB specialty)."""
        if depth <= 0 or rng.random() < 0.35:
            scalar(parent, "Length", rng.randint(1, 40) * 1000)
            return
        for _ in range(rng.randint(1, 3)):
            child = g.new_node()
            g.add_edge(parent, "Contains", child)
            scalar(child, "Clone_name", f"c{rng.randrange(10_000)}")
            clone_tree(child, depth - 1)

    map_nodes: list[int] = []
    for m in range(max(1, num_loci // 10)):
        map_node = g.new_node()
        g.add_edge(root, "Map", map_node)
        scalar(map_node, "Map_name", f"chr{m + 1}")
        map_nodes.append(map_node)

    for i in range(num_loci):
        locus = g.new_node()
        g.add_edge(root, "Locus", locus)
        name = f"{rng.choice(_GENE_PREFIXES)}-{i}"
        scalar(locus, "Locus_name", name)
        # the loose schema: each attribute present only sometimes
        if rng.random() < 0.8:
            scalar(locus, "Phenotype", rng.choice(
                ["uncoordinated", "dumpy", "lethal", "egg-laying defective"]
            ))
        if rng.random() < 0.5:
            paper = g.new_node()
            g.add_edge(locus, "Reference", paper)
            scalar(paper, "Author", rng.choice(_AUTHORS))
            scalar(paper, "Year", rng.randint(1974, 1997))
        if rng.random() < 0.6:
            g.add_edge(locus, "Maps_to", rng.choice(map_nodes))
        if rng.random() < 0.4:
            clone = g.new_node()
            g.add_edge(locus, "Clone", clone)
            clone_tree(clone, rng.randint(1, max_depth))
    return g


def acedb_schema() -> GraphSchema:
    """The loose schema the generated databases conform to.

    Note what it does *not* say: nothing is required, depths are
    unbounded (the ``Contains`` cycle in the schema graph), and unknown
    attributes are simply absent rather than defaulted -- the
    schema-as-upper-bound semantics of simulation.
    """
    return GraphSchema.from_spec(
        {
            "Map": {"Map_name": {"<string>": None}},
            "Locus": {
                "Locus_name": {"<string>": None},
                "Phenotype": {"<string>": None},
                "Reference": {
                    "Author": {"<string>": None},
                    "Year": {"<int>": None},
                },
                "Maps_to": {"Map_name": {"<string>": None}},
                "Clone": "_",
            },
        }
    )
