"""The query service: serve every engine from one long-lived process.

The paper's premise is *serving* schema-free data to clients --
browsing, querying, integrating -- and the Hyperset/Delta line in
PAPERS.md shows what that takes: a reproduction only becomes a system
once its query languages sit behind a process with resource discipline.
This package is that process, layered (docs/SERVICE.md):

* **wire protocol** (:mod:`~repro.service.protocol`) -- length-prefixed
  JSON frames, sans-I/O, shared by sockets / harness / tests;
* **session manager** (:mod:`~repro.service.session`) -- per-client
  state, cancel routing, a capped session table;
* **admission governor** (:mod:`~repro.service.governor`) -- bounded
  in-flight slots over a bounded FIFO queue; everything beyond sheds
  with a typed :class:`Overloaded` instead of queuing unboundedly;
* **worker pool** (:mod:`~repro.service.server`) -- cooperative query
  execution over an immutable :class:`~repro.core.frozen.FrozenGraph`
  snapshot, checkpointing deadlines, budgets, and cancellations at
  traversal superstep boundaries and degrading to typed partial
  results under the PR-1 :class:`~repro.resilience.Completeness`
  contract;
* **front-ends** -- :class:`AsyncQueryServer` (asyncio TCP, the
  ``repro serve`` CLI) and :class:`InProcessHarness` (deterministic,
  simulated-clock; what the chaos suite drives).

Quick use::

    from repro.datasets import generate_movies
    from repro.service import InProcessHarness, QueryService

    service = QueryService(generate_movies(30, seed=11))
    harness = InProcessHarness(service)
    response = harness.run_one(
        {"id": 1, "op": "rpq", "query": "Entry.Movie.Title"}
    )
    assert response["status"] == "ok"
"""

from .errors import Overloaded, ProtocolError
from .governor import SERVICE_METRICS, AdmissionGovernor, QueryControl, Ticket
from .harness import InProcessHarness
from .protocol import (
    MAX_FRAME_BYTES,
    OPS,
    STATUSES,
    FrameDecoder,
    encode_frame,
    validate_request,
)
from .server import (
    AsyncQueryServer,
    QueryService,
    QueryTask,
    completeness_to_dict,
    request_over_socket,
)
from .session import Session, SessionManager

__all__ = [
    # errors
    "Overloaded",
    "ProtocolError",
    # protocol
    "MAX_FRAME_BYTES",
    "OPS",
    "STATUSES",
    "encode_frame",
    "FrameDecoder",
    "validate_request",
    # governor
    "AdmissionGovernor",
    "QueryControl",
    "Ticket",
    "SERVICE_METRICS",
    # sessions
    "Session",
    "SessionManager",
    # service
    "QueryService",
    "QueryTask",
    "AsyncQueryServer",
    "InProcessHarness",
    "completeness_to_dict",
    "request_over_socket",
]
