"""A deterministic in-process driver for the query service.

The chaos suite needs to put the server in precisely-timed trouble:
expire a deadline *between* superstep three and four, cancel a query
while its frontier is half-expanded, overload the pool with a burst of
exactly N requests.  Real sockets and a real event loop cannot schedule
any of that reproducibly, so the harness drives the same
:class:`~repro.service.server.QueryService` the asyncio front-end uses,
but under explicit control:

* every submitted task's ``steps()`` generator is advanced round-robin,
  one superstep per turn, in submission order -- a deterministic
  stand-in for the event loop's interleaving;
* an optional ``advance_per_step`` moves the service's
  :class:`~repro.resilience.SimulatedClock` a fixed amount per
  superstep, so "this query times out mid-traversal" is a statement
  about arithmetic, not about machine speed;
* an ``on_step`` hook sees ``(task, superstep_count)`` after each turn
  and may cancel, advance the clock, or submit more load mid-flight --
  the chaos tests' scalpel.

No sockets, no threads, no wall clock: a harness run with the same
inputs produces byte-identical responses every time.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from .server import QueryService, QueryTask
from .session import Session

__all__ = ["InProcessHarness"]


class InProcessHarness:
    """Submit requests, then interleave them to completion, predictably."""

    def __init__(
        self,
        service: QueryService,
        *,
        advance_per_step: float = 0.0,
        on_step: "Callable[[QueryTask, int], None] | None" = None,
    ) -> None:
        self.service = service
        self.advance_per_step = advance_per_step
        self.on_step = on_step
        self.session: Session = service.connect()
        self._live: "deque[QueryTask]" = deque()
        self.responses: dict[int, dict] = {}
        self.steps_taken = 0

    def submit(self, request: dict) -> QueryTask:
        """Hand one request to the service; immediate responses (ping,
        stats, cancel acks, sheds, protocol errors) are recorded at
        once, everything else joins the round-robin."""
        task = self.service.submit(self.session, request)
        if task.done:
            self.responses[task.request_id] = task.response
        else:
            self._live.append(task)
        return task

    def submit_all(self, requests: "list[dict]") -> "list[QueryTask]":
        return [self.submit(r) for r in requests]

    def cancel(self, target: int, *, request_id: int = -1) -> dict:
        """Convenience: a ``cancel`` control frame for ``target``."""
        task = self.submit({"id": request_id, "op": "cancel", "target": target})
        return task.response  # type: ignore[return-value]

    @property
    def pending(self) -> int:
        return len(self._live)

    def run(self, max_turns: int = 1_000_000) -> dict[int, dict]:
        """Round-robin every live task to completion; return responses.

        ``max_turns`` is a safety net: a service bug that stops making
        progress fails the test with a clear error instead of hanging
        the suite.
        """
        generators: dict[int, object] = {}
        turns = 0
        while self._live:
            turns += 1
            if turns > max_turns:
                raise RuntimeError(
                    f"harness exceeded {max_turns} turns with "
                    f"{len(self._live)} task(s) still live"
                )
            task = self._live.popleft()
            gen = generators.get(id(task))
            if gen is None:
                gen = generators[id(task)] = task.steps()
            advanced = next(gen, None)  # type: ignore[arg-type]
            if advanced == "step":
                self.steps_taken += 1
                if self.advance_per_step:
                    self.service.clock.sleep(self.advance_per_step)  # type: ignore[attr-defined]
                if self.on_step is not None:
                    self.on_step(task, self.steps_taken)
            if task.done and advanced is None:
                generators.pop(id(task), None)
                self.responses[task.request_id] = task.response  # type: ignore[assignment]
            else:
                self._live.append(task)
        return self.responses

    def run_one(self, request: dict) -> dict:
        """Submit one request and drive everything to completion."""
        task = self.submit(request)
        self.run()
        return self.responses[task.request_id]

    def close(self) -> None:
        self.service.disconnect(self.session)
