"""Session bookkeeping: who is connected, what they have in flight.

A :class:`Session` is one client connection's server-side state: a
stable id, the set of requests currently executing (by request id, so a
``cancel`` frame can find its target), and counters for the goodbye
summary.  The :class:`SessionManager` is the front door the transports
share -- the asyncio server opens a session per TCP connection, the
in-process harness per simulated client -- and it enforces the first
admission boundary: a full session table sheds new connections with the
same typed :class:`~repro.service.errors.Overloaded` the governor uses
for queries, because "too many clients" and "too many queries" are the
same disease at different layers.
"""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING, Iterator

from .errors import Overloaded

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .governor import QueryControl

__all__ = ["Session", "SessionManager"]


class Session:
    """One connected client: id, live queries, lifetime counters."""

    __slots__ = ("session_id", "opened_at", "closed", "submitted", "completed", "_live")

    def __init__(self, session_id: int, opened_at: float) -> None:
        self.session_id = session_id
        self.opened_at = opened_at
        self.closed = False
        self.submitted = 0
        self.completed = 0
        self._live: dict[int, "QueryControl"] = {}

    @property
    def live_queries(self) -> int:
        return len(self._live)

    def track(self, request_id: int, control: "QueryControl") -> None:
        """Register a query now executing under this session."""
        self.submitted += 1
        self._live[request_id] = control

    def untrack(self, request_id: int) -> None:
        if self._live.pop(request_id, None) is not None:
            self.completed += 1

    def cancel(self, request_id: int) -> bool:
        """Flag a live query for cooperative cancellation.

        Returns whether the target was found still running -- cancelling
        a finished (or never-admitted) request is a client race, not an
        error, and reports ``False``.
        """
        control = self._live.get(request_id)
        if control is None:
            return False
        control.cancel()
        return True

    def cancel_all(self) -> int:
        """Cancel everything in flight (connection dropped); count flagged."""
        for control in self._live.values():
            control.cancel()
        return len(self._live)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<session {self.session_id} live={len(self._live)}>"


class SessionManager:
    """Open/close sessions under a cap; route cancels to live queries."""

    def __init__(self, max_sessions: int = 64) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        self.max_sessions = max_sessions
        self._sessions: dict[int, Session] = {}
        self._ids = count(1)
        self.opened = 0
        self.refused = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self) -> Iterator[Session]:
        return iter(list(self._sessions.values()))

    def open(self, now: float) -> Session:
        """Admit one client; a full table sheds with ``sessions_full``."""
        if len(self._sessions) >= self.max_sessions:
            self.refused += 1
            raise Overloaded("session", "sessions_full")
        session = Session(next(self._ids), now)
        self._sessions[session.session_id] = session
        self.opened += 1
        return session

    def close(self, session: Session) -> int:
        """Drop a session, cancelling whatever it still had running."""
        flagged = session.cancel_all()
        session.closed = True
        self._sessions.pop(session.session_id, None)
        return flagged

    def snapshot(self) -> dict[str, int]:
        """JSON-ready session statistics."""
        return {
            "max_sessions": self.max_sessions,
            "open": len(self._sessions),
            "opened_total": self.opened,
            "refused": self.refused,
            "live_queries": sum(s.live_queries for s in self._sessions.values()),
        }
