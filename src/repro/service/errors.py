"""Typed failures of the query service layer.

The service refuses work in exactly two ways, and both are types rather
than strings so clients (and the chaos tests) can dispatch on them:

* :class:`Overloaded` -- admission control shed the request *before any
  work was done*: the in-flight pool and the bounded queue are both
  full, or the session table is.  The typed rejection is the whole
  point of the governor: under overload the server answers "no" in
  microseconds instead of queuing unboundedly and answering nothing.
* :class:`ProtocolError` -- a frame violated the wire protocol (too
  large, not JSON, missing fields).  The connection-level counterpart
  of a syntax error.

Everything else a query can die of -- deadline, budget, cancellation,
injected faults, open breakers -- already has a typed home in
:mod:`repro.resilience.errors`; the service reuses those.
"""

from __future__ import annotations

from ..resilience.errors import ResilienceError

__all__ = ["Overloaded", "ProtocolError"]


class Overloaded(ResilienceError):
    """Admission control rejected a request: no capacity, no queue room.

    ``reason`` says which limit was hit (``"queue_full"``,
    ``"sessions_full"``); ``retry_after`` is a polite hint in clock
    seconds (the governor's estimate of when a slot may free), never a
    promise.
    """

    def __init__(self, key: str, reason: str, retry_after: float = 0.0) -> None:
        super().__init__(f"{key}: overloaded ({reason})")
        self.key = key
        self.reason = reason
        self.retry_after = retry_after


class ProtocolError(ValueError):
    """A wire frame the server cannot or will not interpret."""
