"""The query service core and its asyncio front-end.

:class:`QueryService` is the transport-free heart of the server: it
owns one immutable :class:`~repro.core.frozen.FrozenGraph` snapshot,
the session table, the admission governor, a shared plan cache, and the
engine dispatch.  Its unit of work is a :class:`QueryTask` whose
:meth:`~QueryTask.steps` generator yields at every traversal superstep
-- the cooperative scheduling point where deadlines, budgets, and
cancellations are honored, and where a front-end interleaves other
work.  Because the core never touches a socket, a thread, or a real
clock, the deterministic harness (:mod:`repro.service.harness`) drives
the *same* code the network server does.

:class:`AsyncQueryServer` is the thin asyncio skin: one TCP connection
per session, length-prefixed JSON frames (:mod:`repro.service.protocol`),
one :class:`asyncio.Task` per query driving ``steps()`` with an
``await`` between supersteps so slow queries never monopolize the loop
and responses stream back in completion order (the protocol matches
them by id).

The typed outcome contract (docs/SERVICE.md):

==============  ==================================================
``ok``          exact answer
``partial``     lower bound -- cancelled or budget-exhausted; carries
                a completeness report
``deadline``    the per-query deadline expired at a checkpoint;
                carries the partial answer and its report
``overloaded``  shed at admission; no work was done
``error``       bad query, open breaker, or injected worker fault
==============  ==================================================
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Iterator

from ..automata.plan_cache import PlanCache
from ..automata.product import (
    RpqStepper,
    interrupted_completeness,
    rpq_nodes,
    rpq_nodes_profiled,
)
from ..browse import find_value_profiled, where_is
from ..core.builder import to_obj
from ..core.frozen import FrozenGraph, freeze
from ..core.graph import Graph
from ..lorel import evaluate_lorel_profiled, lorel, lorel_rows, parse_lorel
from ..obs.export import metrics_to_dict
from ..resilience import (
    BudgetExhausted,
    CircuitBreaker,
    CircuitOpenError,
    Completeness,
    DeadlineExceeded,
    FaultInjector,
    QueryCancelled,
    ResilienceError,
)
from ..resilience.clock import Clock, WallClock
from ..storage.mvcc import SnapshotView
from ..unql import evaluate_query_profiled, parse_query, unql
from .errors import Overloaded, ProtocolError
from .governor import SERVICE_METRICS, AdmissionGovernor, Ticket
from .protocol import FrameDecoder, encode_frame, validate_request
from .session import Session, SessionManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.labels import Label
    from ..obs.metrics import MetricsRegistry
    from ..obs.trace import Tracer
    from ..storage.mvcc import VersionedGraphStore

__all__ = [
    "QueryService",
    "QueryTask",
    "AsyncQueryServer",
    "completeness_to_dict",
    "label_from_wire",
    "request_over_socket",
]

#: Engine ops that go through admission (control-plane ops bypass it).
#: ``apply`` is one of them: writes compete for the same worker slots as
#: queries, so a write burst sheds at admission instead of starving reads.
QUERY_OPS = frozenset({"rpq", "lorel", "unql", "find", "apply"})


def label_from_wire(value) -> "Label | str | int | float | bool":
    """Decode a mutation's JSON ``label`` field.

    Scalars follow :meth:`Graph.add_edge` semantics (a plain string is a
    *symbol*); the explicit object form selects the kind, which is the
    only way to send string *data* over the wire.
    """
    from ..core.labels import Label, LabelKind, label_of, sym

    if isinstance(value, dict):
        kind = value.get("kind")
        raw = value.get("value")
        if kind == "symbol":
            return sym(str(raw))
        if kind == "string":
            return Label(LabelKind.STRING, str(raw))
        if kind == "int":
            return Label(LabelKind.INT, int(raw))
        if kind == "real":
            return Label(LabelKind.REAL, float(raw))
        if kind == "bool":
            return Label(LabelKind.BOOL, bool(raw))
        raise ValueError(f"unknown label kind {kind!r}")
    if isinstance(value, str):
        return sym(value)
    if isinstance(value, (bool, int, float)):
        return label_of(value)
    raise ValueError(f"cannot interpret {value!r} as an edge label")


def completeness_to_dict(report: Completeness) -> dict[str, object]:
    """The wire form of a completeness report (stable field order)."""
    return {
        "complete": report.complete,
        "retries": report.retries,
        "lost": report.lost,
        "failures": [
            {
                "kind": f.kind,
                "key": f.key,
                "attempts": f.attempts,
                "error": f.error,
                "lost": f.lost,
            }
            for f in report.failures
        ],
    }


class QueryTask:
    """One admitted (or shed) request moving through the worker pool.

    ``view`` is the snapshot the task was *submitted* against, pinned at
    admission time: however long the task waits in the queue, and
    however many commits land meanwhile, it executes against exactly
    that version -- an in-flight query can never observe a torn (or
    even a newer) graph.
    """

    __slots__ = ("service", "session", "request", "ticket", "response", "view")

    def __init__(
        self,
        service: "QueryService",
        session: Session,
        request: dict,
        ticket: "Ticket | None",
        response: "dict | None" = None,
    ) -> None:
        self.service = service
        self.session = session
        self.request = request
        self.ticket = ticket
        self.response = response
        self.view = None

    @property
    def done(self) -> bool:
        return self.response is not None

    @property
    def request_id(self) -> int:
        return self.request["id"]

    def steps(self) -> Iterator[str]:
        """Drive this task cooperatively; yields between supersteps.

        Yields ``"waiting"`` while queued behind a full worker pool and
        ``"step"`` after each completed superstep.  When the generator
        is exhausted, :attr:`response` holds the typed response.  All
        admission release and session untracking happens here, on every
        path -- a task dropped mid-generator by a dying connection still
        frees its slot via the front-end's ``close`` handling.
        """
        if self.done:
            return
        ticket = self.ticket
        assert ticket is not None  # shed tasks arrive with a response
        while not ticket.admitted and not ticket.released:
            yield "waiting"
        try:
            yield from self.service._execute(self)
        finally:
            self.service._finish(self)


class QueryService:
    """Engines + sessions + governor over one frozen snapshot.

    With a ``store`` (a :class:`~repro.storage.VersionedGraphStore`),
    the service additionally accepts ``apply`` write requests and the
    "one frozen snapshot" becomes "one frozen snapshot *per version*":
    every query pins the version current at submission, writers never
    block readers, and a plain-graph service is simply the degenerate
    store-less case whose single version never changes.
    """

    def __init__(
        self,
        graph: "Graph | FrozenGraph | None" = None,
        *,
        store: "VersionedGraphStore | None" = None,
        clock: "Clock | None" = None,
        max_inflight: int = 8,
        max_queue: int = 16,
        max_sessions: int = 64,
        default_deadline: "float | None" = None,
        default_budget: "int | None" = None,
        metrics: "MetricsRegistry" = SERVICE_METRICS,
        tracer: "Tracer | None" = None,
        injector: "FaultInjector | None" = None,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 1.0,
    ) -> None:
        self.clock: Clock = clock if clock is not None else WallClock()
        self.store = store
        if store is not None:
            if graph is not None:
                raise ValueError("pass a graph or a store, not both")
            self._static_view: "SnapshotView | None" = None
        elif graph is not None:
            view = SnapshotView(freeze(graph), 0)
            # serve the *original* mutable graph to the one-shot engines
            # (no thaw copy): without a store nothing ever mutates it
            view._graph = graph.thaw() if isinstance(graph, FrozenGraph) else graph
            self._static_view = view
        else:
            raise ValueError("QueryService needs a graph or a store")
        self.metrics = metrics
        self.tracer = tracer
        self.injector = injector
        self.governor = AdmissionGovernor(
            max_inflight,
            max_queue,
            clock=self.clock,
            default_deadline=default_deadline,
            default_budget=default_budget,
            metrics=metrics,
            events=tracer.event_log() if tracer is not None else None,
        )
        self.sessions = SessionManager(max_sessions)
        self.plan_cache = PlanCache(name="service_plan_cache")
        self._breakers = {
            op: CircuitBreaker(
                failure_threshold=breaker_threshold,
                cooldown=breaker_cooldown,
                clock=self.clock,
                key=f"worker:{op}",
            )
            for op in QUERY_OPS
        }
        self._status_counters = {
            status: metrics.counter(f"service_{status}")
            for status in ("ok", "partial", "deadline", "overloaded", "error")
        }
        self._cancelled_counter = metrics.counter("service_cancelled")
        self._requests = metrics.counter("service_requests")
        self._ops_histogram = metrics.histogram("service_query_ops")
        self._sql_answered = metrics.counter("service_sql_answered")
        self._sql_fallback = metrics.counter("service_sql_fallback")
        self._sql_backend = None
        self._sql_snapshot_id: "int | None" = None

    # -- snapshots ---------------------------------------------------------------

    def current_view(self) -> SnapshotView:
        """The newest version's pinned read view."""
        if self.store is not None:
            return self.store.view()
        assert self._static_view is not None
        return self._static_view

    @property
    def frozen(self) -> FrozenGraph:
        """The current frozen snapshot (per-version cached with a store)."""
        return self.current_view().frozen

    @property
    def graph(self) -> Graph:
        """The mutable-API graph behind the current snapshot."""
        if self.store is not None:
            return self.store.graph
        return self.current_view().graph

    # -- connection lifecycle ----------------------------------------------------

    def connect(self) -> Session:
        """Open a session (raises :class:`Overloaded` at the cap)."""
        return self.sessions.open(self.clock.now())

    def disconnect(self, session: Session) -> int:
        """Close a session, cooperatively cancelling its live queries."""
        return self.sessions.close(session)

    # -- request intake ----------------------------------------------------------

    def submit(self, session: Session, request: dict) -> QueryTask:
        """Admit one request; always returns a task, never raises.

        Control-plane ops (``ping`` / ``stats`` / ``cancel``) answer
        immediately and bypass the governor -- a cancel that could be
        shed by the very overload it is trying to relieve would be
        useless.  Query ops pass admission: shed requests come back as
        already-finished tasks carrying the ``overloaded`` response.
        """
        self._requests.inc()
        try:
            validate_request(request)
        except ProtocolError as exc:
            rid = request.get("id") if isinstance(request.get("id"), int) else 0
            return QueryTask(
                self, session, {"id": rid, "op": "invalid"}, None,
                self._respond(rid, "error", error=str(exc), error_type="ProtocolError"),
            )
        rid = request["id"]
        op = request["op"]
        if op == "ping":
            return QueryTask(
                self, session, request, None, self._respond(rid, "ok", result="pong")
            )
        if op == "stats":
            return QueryTask(
                self, session, request, None,
                self._respond(rid, "ok", result=self.stats()),
            )
        if op == "cancel":
            found = session.cancel(request["target"])
            if found:
                self._cancelled_counter.inc()
            return QueryTask(
                self, session, request, None,
                self._respond(rid, "ok", result={"cancelled": found}),
            )
        try:
            ticket = self.governor.admit(
                f"s{session.session_id}:r{rid}:{op}",
                deadline=request.get("deadline"),
                budget=request.get("budget"),
            )
        except Overloaded as exc:
            return QueryTask(
                self, session, request, None,
                self._respond(
                    rid, "overloaded", reason=exc.reason, retry_after=exc.retry_after
                ),
            )
        session.track(rid, ticket.control)
        task = QueryTask(self, session, request, ticket)
        if op != "apply":
            # pin the snapshot NOW: commits that land while this task
            # waits in the queue must not change what it reads
            task.view = self.current_view()
        return task

    # -- execution ---------------------------------------------------------------

    def _execute(self, task: QueryTask) -> Iterator[str]:
        """Run one admitted query; fills ``task.response``; yields per step."""
        request = task.request
        rid, op = request["id"], request["op"]
        control = task.ticket.control  # type: ignore[union-attr]
        stepper: "RpqStepper | None" = None
        span_cm = (
            self.tracer.span("serve", op=op, request_id=rid, key=control.key)
            if self.tracer is not None
            else None
        )
        span = span_cm.__enter__() if span_cm is not None else None
        try:
            # one checkpoint before any work: a query whose deadline
            # lapsed in the queue, or that was cancelled while waiting,
            # fails here without touching an engine
            control.checkpoint(0)
            self._guard_worker(op)
            if op == "apply":
                task.response = self._apply(rid, request)
            elif (
                op == "rpq"
                and not request.get("profile")
                and request.get("engine", "native") == "native"
            ):
                stepper = RpqStepper(
                    task.view.frozen, request["query"], plan_cache=self.plan_cache
                )
                control.checkpoint(0)
                while True:
                    before = stepper.ops
                    more = stepper.step()
                    control.checkpoint(stepper.ops - before)
                    if not more:
                        break
                    yield "step"
                task.response = self._respond(
                    rid,
                    "ok",
                    result=sorted(stepper.results),
                    ops=stepper.ops,
                    supersteps=stepper.supersteps,
                )
            else:
                task.response = self._run_oneshot(rid, op, request, task.view)
        except QueryCancelled as exc:
            task.response = self._interrupted(rid, "partial", "cancelled", exc, stepper)
            self._cancelled_counter.inc()
        except DeadlineExceeded as exc:
            task.response = self._interrupted(rid, "deadline", "deadline", exc, stepper)
        except BudgetExhausted as exc:
            task.response = self._interrupted(rid, "partial", "budget", exc, stepper)
        except (ResilienceError, ValueError, KeyError, RecursionError) as exc:
            # engine-level failures: syntax errors, open breakers,
            # injected faults, bad arguments -- typed, never fatal
            task.response = self._respond(
                rid, "error", error=str(exc), error_type=type(exc).__name__
            )
        finally:
            if stepper is not None:
                self._ops_histogram.observe(stepper.ops)
            if span is not None:
                status = task.response["status"] if task.response else "dropped"
                span.annotate(
                    status=status,
                    ops=stepper.ops if stepper is not None else 0,
                    checkpoints=control.checkpoints,
                )
                span_cm.__exit__(None, None, None)  # type: ignore[union-attr]

    def _guard_worker(self, op: str) -> None:
        """The worker-pool fault boundary: breaker-guarded fault injection.

        With an injector configured (chaos tests), each query execution
        is one contact with the ``worker:<op>`` dependency; repeated
        injected faults trip the per-engine breaker so later queries
        fail fast with :class:`~repro.resilience.CircuitOpenError`
        instead of paying the fault path every time.
        """
        breaker = self._breakers[op]
        if not breaker.allow():
            raise CircuitOpenError(f"worker:{op}")
        if self.injector is None:
            breaker.record_success()
            return
        try:
            self.injector.check(f"worker:{op}")
        except Exception:
            breaker.record_failure()
            raise
        breaker.record_success()

    def _run_oneshot(
        self, rid: int, op: str, request: dict, view: SnapshotView
    ) -> dict:
        """The non-checkpointed engines (and profiled twins), one call each.

        Profiled queries use the library's default profiled entry points
        with no plan cache so their operation counts are byte-identical
        to a direct library call -- the golden-parity contract the obs
        suite pins.  One-shot work is not interruptible mid-engine; the
        deadline was checked at the entry checkpoint and the answer,
        once computed, is returned even if it finished late (dropping
        finished work helps no one).  Every engine reads ``view`` -- the
        snapshot pinned at submission -- never the live graph.
        """
        query = request.get("query", "")
        profiled = bool(request.get("profile"))
        # profiled twins always run native: their operation counts are the
        # golden-parity contract, and the SQL engine has no QueryProfile
        engine = "native" if profiled else str(request.get("engine", "native"))
        if engine in ("sql", "auto") and op in ("rpq", "lorel", "unql"):
            response = self._sql_oneshot(rid, op, query, engine, view)
            if response is not None:
                return response
        if op == "rpq":
            if profiled:
                results, profile = rpq_nodes_profiled(view.frozen, query)
                return self._respond(
                    rid, "ok", result=sorted(results), profile=profile.as_dict()
                )
            # an auto rpq that fell back from SQL (plain native rpq
            # streams through the stepper and never reaches here)
            results = rpq_nodes(view.frozen, query, plan_cache=self.plan_cache)
            return self._respond(rid, "ok", result=sorted(results))
        if op == "lorel":
            if profiled:
                answer, profile = evaluate_lorel_profiled(
                    parse_lorel(query), view.oem, query_text=query
                )
                return self._respond(
                    rid, "ok", result=lorel_rows(answer), profile=profile.as_dict()
                )
            return self._respond(rid, "ok", result=lorel_rows(lorel(query, view.oem)))
        if op == "unql":
            if profiled:
                result, profile = evaluate_query_profiled(
                    parse_query(query),
                    {"db": view.graph, "DB": view.graph},
                    query_text=query,
                )
                return self._respond(
                    rid, "ok", result=to_obj(result), profile=profile.as_dict()
                )
            return self._respond(
                rid, "ok", result=to_obj(unql(query, db=view.graph))
            )
        # find: the section-1.3 "where is it" browse query
        value: object = query
        try:
            value = json.loads(query)
        except json.JSONDecodeError:
            pass
        if profiled:
            findings, profile = find_value_profiled(view.graph, value, None)
            return self._respond(
                rid, "ok", result=[str(f) for f in findings], profile=profile.as_dict()
            )
        return self._respond(rid, "ok", result=where_is(view.graph, value))

    def _sql_oneshot(
        self, rid: int, op: str, query: str, engine: str, view: SnapshotView
    ) -> "dict | None":
        """One query op on the SQL engine, or ``None`` to fall back native.

        ``engine == "auto"`` turns :class:`NotCompilable` into a counted
        native fallback; ``engine == "sql"`` lets it propagate (it is a
        ``ValueError``, so the caller's fault boundary returns a typed
        ``error`` response -- never a wrong answer).  Successful SQL
        answers carry ``engine: "sql"`` so clients can tell who served.
        """
        from ..sqlbackend import NotCompilable, lorel_sql_backend_for, unql_sql

        backend = self._sql_backend_for(view)
        try:
            if op == "rpq":
                # auto mirrors the planner policy: sargable plans go to
                # SQL, fixpoint (closure) plans stay on the native kernel
                if engine == "auto" and not backend.favors(query):
                    self._sql_fallback.inc()
                    return None
                nodes = backend.rpq_nodes(query, tracer=self.tracer)
                result: object = sorted(nodes)
            elif op == "lorel":
                answer = lorel_sql_backend_for(view.oem).evaluate(
                    parse_lorel(query), tracer=self.tracer
                )
                result = lorel_rows(answer)
            else:  # unql: per-member routing, uncompilable members stay native
                result = to_obj(
                    unql_sql(
                        parse_query(query),
                        {"db": view.graph, "DB": view.graph},
                        backend=backend,
                    )
                )
        except NotCompilable:
            if engine == "sql":
                raise
            self._sql_fallback.inc()
            return None
        self._sql_answered.inc()
        return self._respond(rid, "ok", result=result, engine="sql")

    # -- the write path ----------------------------------------------------------

    def _apply(self, rid: int, request: dict) -> dict:
        """Execute one admitted ``apply`` request against the store.

        Mutations stage into a single :class:`~repro.storage.WriteBatch`
        -- one commit, one WAL record, all-or-nothing.  ``sync: false``
        defers the fsync to the next synced commit (group commit); the
        response reports both the new ``version`` and the ``acked``
        horizon so clients can tell what is durable.
        """
        if self.store is None:
            return self._respond(
                rid,
                "error",
                error="read-only service: no write store attached",
                error_type="ReadOnly",
            )
        batch = self.store.batch()
        names: dict[str, int] = {}

        def resolve(ref: object) -> int:
            if isinstance(ref, bool) or not isinstance(ref, (int, str)):
                raise ValueError(f"node reference must be an id or a name, got {ref!r}")
            if isinstance(ref, str):
                if ref not in names:
                    raise ValueError(f"unknown node name {ref!r}")
                return names[ref]
            return ref

        for mutation in request["mutations"]:
            kind = mutation["kind"]
            if kind == "node":
                node = batch.new_node()
                name = mutation.get("name")
                if name is not None:
                    names[str(name)] = node
            elif kind == "edge":
                batch.add_edge(
                    resolve(mutation.get("src")),
                    label_from_wire(mutation.get("label")),
                    resolve(mutation.get("dst")),
                )
            else:  # root
                batch.set_root(resolve(mutation.get("node")))
        version = batch.commit(sync=bool(request.get("sync", True)))
        return self._respond(
            rid,
            "ok",
            result={
                "version": version,
                "acked": self.store.acked_version,
                "nodes": names,
            },
        )

    def _interrupted(
        self,
        rid: int,
        status: str,
        reason: str,
        exc: Exception,
        stepper: "RpqStepper | None",
    ) -> dict:
        """A typed partial/deadline response from a checkpoint interrupt."""
        results = sorted(stepper.results) if stepper is not None else []
        lost = stepper.frontier_size if stepper is not None else 0
        report = interrupted_completeness(exc, getattr(exc, "key", "query"), lost)
        return self._respond(
            rid,
            status,
            reason=reason,
            result=results,
            completeness=completeness_to_dict(report),
            error=str(exc),
        )

    def _respond(self, rid: int, status: str, **fields: object) -> dict:
        counter = self._status_counters.get(status)
        if counter is not None:
            counter.inc()
        return {"id": rid, "status": status, **fields}

    def _finish(self, task: QueryTask) -> None:
        if task.ticket is not None:
            self.governor.release(task.ticket)
        task.session.untrack(task.request_id)
        if task.response is None:  # generator dropped mid-flight
            task.response = self._respond(
                task.request_id, "error", error="query dropped", error_type="Dropped"
            )

    # -- introspection -----------------------------------------------------------

    @property
    def oem(self):
        """The OEM view of the current snapshot, built on first Lorel query."""
        return self.current_view().oem

    def _sql_backend_for(self, view: SnapshotView):
        """The SQL engine for ``view``'s snapshot (latest-version cached).

        One backend is kept, keyed by snapshot id; a write invalidates
        it implicitly (the new version's snapshot has a new id).  A task
        pinned to an older version after a write builds an uncached
        backend -- correctness over reuse for the rare straggler.
        """
        from ..sqlbackend import sql_backend_for

        if (
            self._sql_backend is not None
            and self._sql_snapshot_id == view.frozen.snapshot_id
        ):
            return self._sql_backend
        backend = sql_backend_for(view.frozen)
        if self.store is None or view.version == self.store.version:
            self._sql_backend = backend
            self._sql_snapshot_id = view.frozen.snapshot_id
        return backend

    @property
    def sql_backend(self):
        """The current snapshot's SQL engine, built on first use."""
        return self._sql_backend_for(self.current_view())

    def stats(self) -> dict[str, object]:
        """The ``stats`` op payload: admission, sessions, snapshot, metrics."""
        frozen = self.frozen
        payload: dict[str, object] = {
            "graph": {
                "nodes": frozen.num_nodes,
                "edges": frozen.num_edges,
                "snapshot_id": frozen.snapshot_id,
            },
            "governor": self.governor.snapshot(),
            "sessions": self.sessions.snapshot(),
            "plan_cache": self.plan_cache.stats(),
            "breakers": {op: b.state for op, b in sorted(self._breakers.items())},
            "metrics": metrics_to_dict(self.metrics),
        }
        if self.store is not None:
            payload["store"] = self.store.stats()
        return payload


class AsyncQueryServer:
    """The asyncio TCP front-end over a :class:`QueryService`.

    One connection = one session; one in-flight request = one asyncio
    task driving :meth:`QueryTask.steps` with a zero sleep between
    supersteps, so many queries share the loop fairly.  Responses are
    written as they finish -- out of order under concurrency, which is
    why the protocol matches by ``id``.
    """

    def __init__(
        self, service: QueryService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: "asyncio.base_events.Server | None" = None

    @property
    def bound_port(self) -> int:
        """The actual listening port (after :meth:`start` with port 0)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            session = self.service.connect()
        except Overloaded as exc:
            writer.write(
                encode_frame(
                    {"id": 0, "status": "overloaded", "reason": exc.reason,
                     "retry_after": exc.retry_after}
                )
            )
            await writer.drain()
            writer.close()
            return
        decoder = FrameDecoder()
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()

        async def drive(task: QueryTask) -> None:
            for _ in task.steps():
                await asyncio.sleep(0)
            async with write_lock:
                writer.write(encode_frame(task.response))
                await writer.drain()

        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                try:
                    frames = list(decoder.feed(data))
                except ProtocolError as exc:
                    async with write_lock:
                        writer.write(
                            encode_frame(
                                {"id": 0, "status": "error", "error": str(exc),
                                 "error_type": "ProtocolError"}
                            )
                        )
                        await writer.drain()
                    break  # framing is unrecoverable; drop the connection
                for frame in frames:
                    task = self.service.submit(session, frame)
                    runner = asyncio.ensure_future(drive(task))
                    pending.add(runner)
                    runner.add_done_callback(pending.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self.service.disconnect(session)
            for runner in list(pending):
                runner.cancel()
            # close without awaiting the handshake: the handler may be
            # cancelled at loop shutdown, and awaiting here would turn
            # that into a spurious error in the transport callback
            writer.close()


async def request_over_socket(
    host: str, port: int, requests: "list[dict]"
) -> "list[dict]":
    """A minimal client: send requests, await as many responses.

    Used by the ``repro query`` CLI and the socket tests; responses come
    back in completion order, matched to requests by ``id``.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for request in requests:
            writer.write(encode_frame(request))
        await writer.drain()
        decoder = FrameDecoder()
        responses: list[dict] = []
        while len(responses) < len(requests):
            data = await reader.read(65536)
            if not data:
                break
            responses.extend(decoder.feed(data))
        return responses
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
