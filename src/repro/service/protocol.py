"""The wire protocol: length-prefixed JSON frames, sans-I/O.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  Length-prefixing (rather than newline-delimiting)
keeps the framing independent of the payload -- queries may contain any
text -- and makes partial reads explicit: a :class:`FrameDecoder` buffers
bytes from *any* transport and yields complete objects, so the asyncio
server, the deterministic in-process harness, and the tests all share
one codec with no socket in sight.

Requests and responses are plain dicts (no classes to version):

Request::

    {"id": 1, "op": "rpq", "query": "Entry.Movie.Title",
     "deadline": 0.5,        # optional: seconds of clock budget
     "budget": 100000,       # optional: max edges scanned
     "profile": false,       # optional: attach a QueryProfile
     "engine": "auto"}       # optional: native | sql | auto

``op`` is one of ``rpq | lorel | unql | find | apply | stats | ping |
cancel``; ``cancel`` carries ``{"target": <id>}`` instead of a query.

``apply`` is the write op (services backed by a
:class:`~repro.storage.VersionedGraphStore` only)::

    {"id": 2, "op": "apply",
     "mutations": [{"kind": "node", "name": "m"},
                   {"kind": "edge", "src": 7, "label": "Movie", "dst": "m"},
                   {"kind": "root", "node": 7}],
     "sync": true}            # optional: false defers the fsync (group commit)

Node ``name`` strings are batch-local handles for wiring edges to nodes
created in the same request; the response's ``result.nodes`` maps them
to their allocated ids.  A ``label`` may be a JSON scalar (strings mean
*symbols*, numbers and booleans mean base data) or an explicit
``{"kind": "string"|"symbol"|"int"|"real"|"bool", "value": ...}``.

Response (one per request, matched by ``id``)::

    {"id": 1, "status": "ok", "result": [...]}

``status`` is the typed outcome contract (docs/SERVICE.md):

* ``ok``         -- exact answer in ``result``;
* ``partial``    -- lower-bound answer: ``reason`` is ``cancelled`` or
  ``budget``, ``completeness`` describes what was dropped;
* ``deadline``   -- the per-query deadline expired; like ``partial``
  but its own status because clients treat time and cancellation
  differently (retry vs. forget);
* ``overloaded`` -- shed at admission, no work done; ``retry_after``
  hints when to try again;
* ``error``      -- the query itself is bad (syntax, unknown op) or a
  dependency failed fast (open breaker, injected fault).
"""

from __future__ import annotations

import json
import struct
from typing import Iterator

from .errors import ProtocolError

__all__ = [
    "MAX_FRAME_BYTES",
    "OPS",
    "MUTATION_KINDS",
    "STATUSES",
    "encode_frame",
    "FrameDecoder",
    "validate_request",
]

#: Refuse frames above this size: a length prefix is an allocation
#: request from an untrusted peer, and 16 MiB is far beyond any query.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")

#: Every operation the dispatcher understands.
OPS = frozenset({"rpq", "lorel", "unql", "find", "apply", "stats", "ping", "cancel"})

#: The mutation kinds an ``apply`` request may carry.
MUTATION_KINDS = frozenset({"node", "edge", "root"})

#: Every status a response can carry.
STATUSES = frozenset({"ok", "partial", "deadline", "overloaded", "error"})


def encode_frame(obj: dict) -> bytes:
    """One wire frame for ``obj`` (compact JSON, length-prefixed)."""
    payload = json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LEN.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame parser: feed bytes in, iterate objects out.

    Tolerates arbitrary fragmentation (one byte at a time works) and
    fails typed: an oversized length prefix or undecodable payload
    raises :class:`ProtocolError` immediately rather than consuming
    memory until something else breaks.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)

    def feed(self, data: bytes) -> "Iterator[dict]":
        """Buffer ``data``; yield every frame now complete."""
        self._buf += data
        while True:
            if len(self._buf) < _LEN.size:
                return
            (length,) = _LEN.unpack_from(self._buf)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"peer announced a {length}-byte frame (cap {MAX_FRAME_BYTES})"
                )
            if len(self._buf) < _LEN.size + length:
                return
            payload = bytes(self._buf[_LEN.size : _LEN.size + length])
            del self._buf[: _LEN.size + length]
            try:
                obj = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(f"undecodable frame: {exc}") from exc
            if not isinstance(obj, dict):
                raise ProtocolError(f"frame must be a JSON object, got {type(obj).__name__}")
            yield obj


def validate_request(obj: dict) -> dict:
    """Check one decoded request frame; returns it (for chaining).

    Validation is deliberately shallow -- presence and types of the
    envelope fields.  Query-language syntax errors belong to the engine
    and come back as ``status: error`` responses, not protocol faults:
    a bad query must not kill the connection carrying it.
    """
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {sorted(OPS)})")
    rid = obj.get("id")
    if not isinstance(rid, int) or isinstance(rid, bool):
        raise ProtocolError("request needs an integer 'id'")
    if op == "cancel":
        target = obj.get("target")
        if not isinstance(target, int) or isinstance(target, bool):
            raise ProtocolError("cancel needs an integer 'target' request id")
    elif op in ("rpq", "lorel", "unql", "find"):
        if not isinstance(obj.get("query"), str):
            raise ProtocolError(f"op {op!r} needs a string 'query'")
        engine = obj.get("engine")
        if engine is not None and engine not in ("native", "sql", "auto"):
            raise ProtocolError(
                f"'engine' must be 'native', 'sql' or 'auto', got {engine!r}"
            )
    elif op == "apply":
        mutations = obj.get("mutations")
        if not isinstance(mutations, list) or not mutations:
            raise ProtocolError("apply needs a non-empty 'mutations' list")
        for mutation in mutations:
            if not isinstance(mutation, dict):
                raise ProtocolError("each mutation must be an object")
            if mutation.get("kind") not in MUTATION_KINDS:
                raise ProtocolError(
                    f"mutation kind must be one of {sorted(MUTATION_KINDS)}, "
                    f"got {mutation.get('kind')!r}"
                )
        sync = obj.get("sync")
        if sync is not None and not isinstance(sync, bool):
            raise ProtocolError("'sync' must be a boolean")
    for field, kinds in (("deadline", (int, float)), ("budget", (int,))):
        value = obj.get(field)
        if value is not None:
            if not isinstance(value, kinds) or isinstance(value, bool) or value <= 0:
                raise ProtocolError(f"{field!r} must be a positive number")
    return obj
