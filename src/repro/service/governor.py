"""Admission control: bounded concurrency, bounded queue, typed shedding.

The governor is the middle layer of the service (session manager ->
**governor** -> worker pool) and it is deliberately a pure state
machine: no asyncio, no threads, no I/O.  The async server and the
deterministic harness both drive it through two calls --
:meth:`AdmissionGovernor.admit` and :meth:`AdmissionGovernor.release` --
so every admission decision is reproducible under the simulated clock.

Policy, in one paragraph: at most ``max_inflight`` queries execute at
once; up to ``max_queue`` more wait in FIFO order; anything beyond that
is *shed immediately* with a typed :class:`~repro.service.errors.
Overloaded` -- the server never queues unboundedly, so its memory and
its tail latency stay bounded no matter the offered load.  A released
slot admits the oldest waiter.  Every decision increments an always-on
counter in the service :class:`~repro.obs.MetricsRegistry`.

:class:`QueryControl` is the per-query companion the governor hands the
worker: deadline (on the governor's clock), operation budget, and a
cooperative cancel flag, all checked at traversal checkpoints
(superstep boundaries -- see :class:`~repro.automata.product.RpqStepper`).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..obs.metrics import MetricsRegistry
from ..resilience.clock import Clock, WallClock
from ..resilience.errors import BudgetExhausted, DeadlineExceeded, QueryCancelled
from ..resilience.events import EventLog
from .errors import Overloaded

__all__ = ["QueryControl", "Ticket", "AdmissionGovernor", "SERVICE_METRICS"]

#: Always-on accounting for the whole service layer (the same pattern as
#: ``STORAGE_METRICS`` / ``PLAN_METRICS``), surfaced by ``stats --json``.
SERVICE_METRICS = MetricsRegistry()


class QueryControl:
    """Deadline + operation budget + cancel flag for one admitted query.

    ``checkpoint(ops)`` is the single gate cooperative execution passes
    through between supersteps.  Check order is fixed (cancel, then
    deadline, then budget) so a test that arranges two conditions at
    once gets a deterministic outcome.  ``ops`` accumulates the scanned
    edge count, making budget violations exact and replayable where
    wall-clock deadlines are not.
    """

    __slots__ = ("key", "clock", "budget", "ops", "checkpoints", "_expires", "_deadline", "_cancelled")

    def __init__(
        self,
        key: str,
        *,
        clock: "Clock | None" = None,
        deadline: "float | None" = None,
        budget: "int | None" = None,
    ) -> None:
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive seconds")
        if budget is not None and budget <= 0:
            raise ValueError("budget must be a positive operation count")
        self.key = key
        self.clock = clock if clock is not None else WallClock()
        self.budget = budget
        self.ops = 0
        self.checkpoints = 0
        self._deadline = deadline
        self._expires = None if deadline is None else self.clock.now() + deadline
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def deadline(self) -> "float | None":
        return self._deadline

    def remaining(self) -> float:
        """Clock seconds left, ``inf`` when no deadline was set."""
        if self._expires is None:
            return float("inf")
        return self._expires - self.clock.now()

    def cancel(self) -> None:
        """Request cooperative cancellation (takes effect at the next
        checkpoint; never interrupts a superstep mid-flight)."""
        self._cancelled = True

    def checkpoint(self, ops: int = 0) -> None:
        """Account ``ops`` more work; raise the first violated limit."""
        self.ops += ops
        self.checkpoints += 1
        if self._cancelled:
            raise QueryCancelled(self.key)
        if self._expires is not None and self.clock.now() >= self._expires:
            raise DeadlineExceeded(self.key, self._deadline or 0.0)
        if self.budget is not None and self.ops > self.budget:
            raise BudgetExhausted(self.key, self.budget, self.ops)


class Ticket:
    """One admission: either running now, waiting its turn, or done.

    ``on_admit`` is how the two front-ends bridge their concurrency
    models without the governor knowing either: the asyncio server sets
    an :class:`asyncio.Event` there; the deterministic harness just
    polls :attr:`admitted`.
    """

    __slots__ = ("key", "control", "admitted", "released", "queued_at", "on_admit")

    def __init__(self, key: str, control: QueryControl) -> None:
        self.key = key
        self.control = control
        self.admitted = False
        self.released = False
        self.queued_at = 0.0
        self.on_admit: "Callable[[], None] | None" = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "released" if self.released else ("running" if self.admitted else "queued")
        return f"<ticket {self.key} {state}>"


class AdmissionGovernor:
    """Bounded in-flight slots over a bounded FIFO queue; shed the rest."""

    def __init__(
        self,
        max_inflight: int = 8,
        max_queue: int = 16,
        *,
        clock: "Clock | None" = None,
        default_deadline: "float | None" = None,
        default_budget: "int | None" = None,
        metrics: MetricsRegistry = SERVICE_METRICS,
        events: "EventLog | None" = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if max_queue < 0:
            raise ValueError("max_queue cannot be negative")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.clock = clock if clock is not None else WallClock()
        self.default_deadline = default_deadline
        self.default_budget = default_budget
        self._events = events
        self._inflight: set[Ticket] = set()
        self._queue: "deque[Ticket]" = deque()
        self._admitted = metrics.counter("governor_admitted")
        self._queued = metrics.counter("governor_queued")
        self._shed = metrics.counter("governor_shed")
        self._released = metrics.counter("governor_released")
        self._inflight_gauge = metrics.gauge("governor_inflight")
        self._queue_gauge = metrics.gauge("governor_queue_depth")

    # -- introspection ----------------------------------------------------------

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def snapshot(self) -> dict[str, int]:
        """JSON-ready admission statistics (the ``stats`` op includes it)."""
        return {
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "inflight": len(self._inflight),
            "queue_depth": len(self._queue),
            "admitted": self._admitted.value,
            "queued": self._queued.value,
            "shed": self._shed.value,
            "released": self._released.value,
        }

    # -- the decision ------------------------------------------------------------

    def admit(
        self,
        key: str,
        *,
        deadline: "float | None" = None,
        budget: "int | None" = None,
    ) -> Ticket:
        """Admit, enqueue, or shed one request; never blocks.

        The returned ticket is executing iff ``ticket.admitted``;
        otherwise it holds a FIFO queue position and will be promoted by
        some :meth:`release`.  A full queue raises
        :class:`~repro.service.errors.Overloaded` *before* any per-query
        state is built -- shedding must stay cheap or it is not load
        shedding.

        The per-query deadline starts at admission, not at dequeue: time
        spent waiting in the queue is part of the client's wait, so a
        queued request whose deadline lapses fails its first checkpoint
        instead of running stale.
        """
        if len(self._inflight) >= self.max_inflight and len(self._queue) >= self.max_queue:
            self._shed.inc()
            if self._events is not None:
                self._events.emit("shed", key=key, queue=len(self._queue))
            raise Overloaded(key, "queue_full", retry_after=self._retry_hint())
        control = QueryControl(
            key,
            clock=self.clock,
            deadline=deadline if deadline is not None else self.default_deadline,
            budget=budget if budget is not None else self.default_budget,
        )
        ticket = Ticket(key, control)
        if len(self._inflight) < self.max_inflight:
            self._inflight.add(ticket)
            ticket.admitted = True
            self._admitted.inc()
            if self._events is not None:
                self._events.emit("admit", key=key, inflight=len(self._inflight))
        else:
            ticket.queued_at = self.clock.now()
            self._queue.append(ticket)
            self._queued.inc()
            if self._events is not None:
                self._events.emit("enqueue", key=key, depth=len(self._queue))
        self._refresh_gauges()
        return ticket

    def release(self, ticket: Ticket) -> None:
        """Return a ticket's slot (or queue position); promote a waiter.

        Idempotent: completing and cancelling the same query may race in
        the async front-end, and double release must not corrupt the
        slot count.
        """
        if ticket.released:
            return
        ticket.released = True
        self._released.inc()
        if ticket in self._inflight:
            self._inflight.discard(ticket)
            while self._queue:
                waiter = self._queue.popleft()
                if waiter.released:  # cancelled while waiting
                    continue
                self._inflight.add(waiter)
                waiter.admitted = True
                self._admitted.inc()
                if waiter.on_admit is not None:
                    waiter.on_admit()
                break
        else:
            try:
                self._queue.remove(ticket)
            except ValueError:
                pass
        self._refresh_gauges()

    def _retry_hint(self) -> float:
        """A polite retry-after: the default deadline if configured,
        else a small constant -- a hint, not a reservation."""
        return self.default_deadline if self.default_deadline else 0.05

    def _refresh_gauges(self) -> None:
        self._inflight_gauge.set(len(self._inflight))
        self._queue_gauge.set(len(self._queue))
