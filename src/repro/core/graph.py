"""The edge-labeled rooted graph: the unifying data model of the paper.

Section 2 of Buneman (PODS '97): *"The unifying idea in semi-structured data
is the representation of data as some kind of graph-like or tree-like
structure.  Although we shall allow cycles in the data, we shall generally
refer to these graphs as trees."*  The model is::

    type label = int | string | ... | symbol
    type tree  = set(label * tree)

A :class:`Graph` is a directed graph whose edges carry :class:`~repro.core.
labels.Label` values, together with a distinguished *root* from which all
queries traverse forward ("we are concerned with what is accessible from a
given root by forward traversal of the edges").  The edges out of a node are
conceptually an unordered *set*; the implementation stores them in insertion
order for reproducible output, but no public operation depends on that
order and graph equality is bisimulation (:mod:`repro.core.bisim`), never
edge-list equality.

Node identifiers are plain integers, local to one graph.  They correspond to
the paper's "node identifiers [that] may only be used as temporary node
labels": they are not observable in query results except via equality, and
they never survive serialization boundaries.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping

from .labels import Label, label_of, sym

__all__ = ["Edge", "Graph", "GraphError"]


class GraphError(ValueError):
    """Raised on structurally invalid graph operations (unknown nodes etc.)."""


@dataclass(frozen=True, slots=True)
class Edge:
    """A single labeled edge ``src --label--> dst``."""

    src: int
    label: Label
    dst: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.src}-{self.label!r}->{self.dst}"


class Graph:
    """A rooted, edge-labeled, possibly cyclic directed graph.

    The class doubles as the *horizontal algebra* of section 3: the
    constructors :meth:`empty`, :meth:`singleton` and :meth:`union` are the
    three tree constructors ``{}``, ``{l: t}`` and ``t1 U t2`` of UnQL, and
    they are all that is needed (together with structural recursion in
    :mod:`repro.unql.sstruct`) to express the query languages of the paper.
    """

    __slots__ = ("_adj", "_root", "_next_id", "_version")

    def __init__(self) -> None:
        self._adj: dict[int, list[Edge]] = {}
        self._root: int | None = None
        self._next_id = 0
        self._version = 0

    @property
    def version(self) -> int:
        """A counter bumped by every structural mutation.

        Snapshots and indexes record the version they were built against
        so staleness is detectable (:class:`~repro.index.StaleIndexError`)
        instead of silently answering for an older graph.  Code that
        mutates ``_adj`` directly (surgery helpers, lazy materialization)
        bypasses the counter, same as it always bypassed index rebuilds.
        """
        return self._version

    # -- construction ---------------------------------------------------------

    def new_node(self) -> int:
        """Allocate a fresh node and return its id."""
        node = self._next_id
        self._next_id += 1
        self._adj[node] = []
        self._version += 1
        return node

    def ensure_node(self, node: int) -> int:
        """Materialize a node under a caller-chosen id (idempotent).

        ``new_node`` allocates ids; ``ensure_node`` *replays* them: the
        write-ahead log records the id a writer allocated, and recovery
        must reproduce it exactly so edges in later deltas resolve.  The
        allocator is advanced past ``node`` so fresh allocations never
        collide with replayed ids.
        """
        if node < 0:
            raise GraphError(f"node ids are non-negative, got {node}")
        if node not in self._adj:
            self._adj[node] = []
            self._next_id = max(self._next_id, node + 1)
            self._version += 1
        return node

    def add_edge(self, src: int, label: Label | str | int | float | bool, dst: int) -> Edge:
        """Add ``src --label--> dst``.

        A plain ``str`` is interpreted as a *symbol* (the common case when
        building data by hand: attribute names); to attach string *data*
        use an explicit :func:`repro.core.labels.string` label.  Other raw
        Python scalars become base-data labels.
        """
        if src not in self._adj:
            raise GraphError(f"unknown source node {src}")
        if dst not in self._adj:
            raise GraphError(f"unknown destination node {dst}")
        if isinstance(label, str):
            lab = sym(label)
        else:
            lab = label_of(label)
        edge = Edge(src, lab, dst)
        self._adj[src].append(edge)
        self._version += 1
        return edge

    def set_root(self, node: int) -> None:
        if node not in self._adj:
            raise GraphError(f"cannot root graph at unknown node {node}")
        self._root = node
        self._version += 1

    @property
    def root(self) -> int:
        if self._root is None:
            raise GraphError("graph has no root")
        return self._root

    @property
    def has_root(self) -> bool:
        return self._root is not None

    # -- inspection -----------------------------------------------------------

    def nodes(self) -> Iterator[int]:
        """All node ids, in allocation order."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """All edges, grouped by source node."""
        for out in self._adj.values():
            yield from out

    def edges_from(self, node: int) -> tuple[Edge, ...]:
        """The outgoing edges of ``node`` (the node's label/tree pair set)."""
        try:
            return tuple(self._adj[node])
        except KeyError:
            raise GraphError(f"unknown node {node}") from None

    def out_degree(self, node: int) -> int:
        try:
            return len(self._adj[node])
        except KeyError:
            raise GraphError(f"unknown node {node}") from None

    def total_out_degree(self, nodes: Iterable[int]) -> int:
        """Sum of out-degrees over ``nodes`` (each counted as given).

        One bulk call instead of ``out_degree`` per node: the profiled
        query paths derive their edge counts from visited-node sets
        after evaluation, and this keeps that post-pass a small fraction
        of the traversal it measures.
        """
        return sum(map(len, map(self._adj.__getitem__, nodes)))

    def has_node(self, node: int) -> bool:
        return node in self._adj

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return sum(len(out) for out in self._adj.values())

    def successors(self, node: int, label: Label | None = None) -> Iterator[int]:
        """Targets of outgoing edges, optionally restricted to one label."""
        for edge in self.edges_from(node):
            if label is None or edge.label == label:
                yield edge.dst

    def labels_from(self, node: int) -> set[Label]:
        """The set of distinct labels on edges out of ``node``."""
        return {edge.label for edge in self.edges_from(node)}

    def all_labels(self) -> set[Label]:
        """Every distinct label appearing anywhere in the graph."""
        return {edge.label for edge in self.edges()}

    # -- traversal ------------------------------------------------------------

    def reachable(self, start: int | None = None) -> set[int]:
        """Nodes reachable from ``start`` (default: root) by forward edges."""
        origin = self.root if start is None else start
        if origin not in self._adj:
            raise GraphError(f"unknown node {origin}")
        seen = {origin}
        queue = deque([origin])
        while queue:
            node = queue.popleft()
            for edge in self._adj[node]:
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    queue.append(edge.dst)
        return seen

    def bfs_edges(self, start: int | None = None) -> Iterator[Edge]:
        """Edges in BFS discovery order from ``start`` (default: root).

        Every edge whose source is reachable is yielded exactly once,
        including back/cross edges into already-visited nodes.
        """
        origin = self.root if start is None else start
        seen = {origin}
        queue = deque([origin])
        while queue:
            node = queue.popleft()
            for edge in self._adj[node]:
                yield edge
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    queue.append(edge.dst)

    def is_tree(self) -> bool:
        """True iff every reachable node has exactly one incoming edge
        (and the root has none): the graph really is a tree, not just
        called one."""
        indegree: dict[int, int] = {}
        for node in self.reachable():
            for edge in self._adj[node]:
                indegree[edge.dst] = indegree.get(edge.dst, 0) + 1
        if indegree.get(self.root, 0) != 0:
            return False
        return all(indegree.get(n, 0) == 1 for n in self.reachable() if n != self.root)

    def has_cycle(self) -> bool:
        """True iff a directed cycle is reachable from the root."""
        WHITE, GREY, BLACK = 0, 1, 2
        color: dict[int, int] = {}
        stack: list[tuple[int, Iterator[Edge]]] = [(self.root, iter(self._adj[self.root]))]
        color[self.root] = GREY
        while stack:
            node, it = stack[-1]
            advanced = False
            for edge in it:
                c = color.get(edge.dst, WHITE)
                if c == GREY:
                    return True
                if c == WHITE:
                    color[edge.dst] = GREY
                    stack.append((edge.dst, iter(self._adj[edge.dst])))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
        return False

    # -- the horizontal constructors (UnQL: {}, {l:t}, t1 U t2) ---------------

    @classmethod
    def empty(cls) -> "Graph":
        """The empty tree ``{}``: a single root with no edges."""
        g = cls()
        g.set_root(g.new_node())
        return g

    @classmethod
    def singleton(cls, label: Label | str | int | float | bool, child: "Graph | None" = None) -> "Graph":
        """The singleton tree ``{label: child}`` (child defaults to ``{}``)."""
        g = cls()
        root = g.new_node()
        g.set_root(root)
        if child is None:
            leaf = g.new_node()
            g.add_edge(root, label, leaf)
        else:
            mapping = g._absorb(child)
            g.add_edge(root, label, mapping[child.root])
        return g

    def union(self, other: "Graph") -> "Graph":
        """The tree union ``self U other``.

        Per section 2 this is the operation the edge-labeled model makes
        easy (and the node-labeled variant makes hard): a fresh root whose
        outgoing edges are the outgoing edges of both operands' roots.
        Both operands are copied; neither is mutated.
        """
        g = Graph()
        root = g.new_node()
        g.set_root(root)
        for operand in (self, other):
            mapping = g._absorb(operand)
            for edge in operand.edges_from(operand.root):
                g.add_edge(root, edge.label, mapping[edge.dst])
        return g

    # -- copying and surgery ----------------------------------------------------

    def _absorb(self, other: "Graph") -> dict[int, int]:
        """Copy all nodes/edges reachable from ``other``'s root into ``self``.

        Returns the node-id mapping ``other -> self``.  Used by every
        operation that combines graphs without sharing mutable state.
        """
        mapping: dict[int, int] = {}
        reach = other.reachable()
        for node in sorted(reach):
            mapping[node] = self.new_node()
        for node in sorted(reach):
            for edge in other._adj[node]:
                self._adj[mapping[node]].append(
                    Edge(mapping[node], edge.label, mapping[edge.dst])
                )
        self._version += 1
        return mapping

    def copy(self) -> "Graph":
        """An isomorphic copy of the reachable part of the graph."""
        g = Graph()
        mapping = g._absorb(self)
        g.set_root(mapping[self.root])
        return g

    def subgraph(self, node: int) -> "Graph":
        """The graph re-rooted at ``node`` (restricted to what it reaches)."""
        g = Graph()
        original_root, self._root = self._root, node
        try:
            mapping = g._absorb(self)
        finally:
            self._root = original_root
        g.set_root(mapping[node])
        return g

    def garbage_collect(self) -> "Graph":
        """Drop everything not reachable from the root; returns a new graph."""
        return self.copy()

    def freeze(self):
        """An immutable CSR snapshot for the fast query kernel.

        Returns a :class:`~repro.core.frozen.FrozenGraph`: interned
        label ids, flat offset/target arrays, per-label edge partitions.
        Same read API, same node ids, no write API.  Freeze once and
        query many times; see docs/PERFORMANCE.md for the trade-off.
        """
        from .frozen import FrozenGraph

        return FrozenGraph(self)

    def map_labels(self, fn: Callable[[Label], Label]) -> "Graph":
        """A copy with every edge label rewritten through ``fn``.

        This is the "relabeling" restructuring primitive of section 3 in
        its simplest form (the full, condition-driven form lives in
        :mod:`repro.unql.restructure`).
        """
        g = self.copy()
        for node, out in g._adj.items():
            g._adj[node] = [Edge(e.src, fn(e.label), e.dst) for e in out]
        g._version += 1
        return g

    def unfold(self, depth: int) -> "Graph":
        """The finite tree unfolding of the graph to ``depth`` levels.

        The unfolding is the reference semantics for cycle-safe structural
        recursion: a graph and its unfolding are bisimilar, and the tests
        use this to validate :mod:`repro.unql.sstruct` on cyclic input.
        """
        g = Graph()
        root = g.new_node()
        g.set_root(root)
        stack = [(self.root, root, depth)]
        while stack:
            src, out_src, d = stack.pop()
            if d <= 0:
                continue
            for edge in self._adj[src]:
                child = g.new_node()
                g.add_edge(out_src, edge.label, child)
                stack.append((edge.dst, child, d - 1))
        return g

    # -- conveniences -----------------------------------------------------------

    def find_edges(self, predicate: Callable[[Edge], bool]) -> Iterator[Edge]:
        """All reachable edges satisfying ``predicate`` (BFS order)."""
        for edge in self.bfs_edges():
            if predicate(edge):
                yield edge

    def degree_histogram(self) -> Mapping[int, int]:
        """out-degree -> how many reachable nodes have it (storage sizing)."""
        hist: dict[int, int] = {}
        for node in self.reachable():
            d = len(self._adj[node])
            hist[d] = hist.get(d, 0) + 1
        return hist

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        root = self._root if self._root is not None else "?"
        return f"<Graph root={root} nodes={self.num_nodes} edges={self.num_edges}>"


def disjoint_union(graphs: Iterable[Graph]) -> tuple[Graph, list[dict[int, int]]]:
    """Copy several graphs side by side into one arena.

    Returns the combined (rootless) graph plus one node-id mapping per
    input.  Bisimulation checking across two graphs works on this arena.
    """
    arena = Graph()
    mappings = [arena._absorb(g) for g in graphs]
    return arena, mappings


def to_dot(graph: Graph, name: str = "semistructured") -> str:
    """Render a graph in Graphviz DOT syntax (Figure-1-style pictures).

    Symbols become plain edge labels; base data is quoted with its type
    implied by formatting, matching how the paper's figure draws both
    kinds of label on edges.
    """
    lines = [f"digraph {name} {{", "  rankdir=TB;", "  node [shape=circle, label=\"\"];"]
    reach = sorted(graph.reachable())
    for node in reach:
        shape = "doublecircle" if node == graph.root else "circle"
        lines.append(f'  n{node} [shape={shape}];')
    for node in reach:
        for edge in graph.edges_from(node):
            if edge.label.is_symbol:
                text = str(edge.label.value)
            else:
                text = repr(edge.label.value)
            text = text.replace("\\", "\\\\").replace('"', '\\"')
            lines.append(f'  n{edge.src} -> n{edge.dst} [label="{text}"];')
    lines.append("}")
    return "\n".join(lines)
