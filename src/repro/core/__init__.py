"""The semistructured data model (section 2 of Buneman, PODS '97).

This package is the substrate everything else builds on:

* :mod:`~repro.core.labels` -- the ``int | string | ... | symbol`` tagged
  union of edge labels;
* :mod:`~repro.core.graph` -- the rooted edge-labeled graph (UnQL model)
  with the horizontal constructors ``empty`` / ``singleton`` / ``union``;
* :mod:`~repro.core.frozen` -- the immutable CSR snapshot the fast query
  kernel traverses (``Graph.freeze()``);
* :mod:`~repro.core.shared` -- named shared-memory packing of frozen
  snapshots so worker processes traverse the same bytes zero-copy;
* :mod:`~repro.core.oem` -- the leaf-value OEM variant with object ids;
* :mod:`~repro.core.node_labeled` -- the node-labeled variant and its
  extra-edge reduction;
* :mod:`~repro.core.convert` -- the mappings between the variants;
* :mod:`~repro.core.bisim` -- bisimulation (observational equality);
* :mod:`~repro.core.builder` -- ingestion from / egress to self-describing
  nested data, and Figure-1 style rendering;
* :mod:`~repro.core.oo_encode` -- the object-oriented database encoding.
"""

from .bisim import bisimilar, bisimulation_classes, graph_equal, reduce_graph
from .builder import from_obj, render, to_obj, tree
from .convert import graph_to_oem, oem_to_graph
from .frozen import FrozenGraph, freeze
from .graph import Edge, Graph, GraphError, disjoint_union
from .labels import Label, LabelKind, boolean, integer, label_of, real, string, sym
from .node_labeled import NodeLabeledGraph, from_edge_labeled, to_edge_labeled
from .oem import OemDatabase, OemObject, Oid
from .oo_encode import OoClass, OoDatabase, OoObject, graph_to_oo, oo_to_graph
from .shared import SharedGraphDescriptor, SharedSnapshot, SharedSnapshotError

__all__ = [
    "Label",
    "LabelKind",
    "sym",
    "string",
    "integer",
    "real",
    "boolean",
    "label_of",
    "Edge",
    "Graph",
    "GraphError",
    "FrozenGraph",
    "freeze",
    "SharedGraphDescriptor",
    "SharedSnapshot",
    "SharedSnapshotError",
    "disjoint_union",
    "bisimilar",
    "graph_equal",
    "bisimulation_classes",
    "reduce_graph",
    "from_obj",
    "to_obj",
    "tree",
    "render",
    "OemDatabase",
    "OemObject",
    "Oid",
    "oem_to_graph",
    "graph_to_oem",
    "NodeLabeledGraph",
    "to_edge_labeled",
    "from_edge_labeled",
    "OoDatabase",
    "OoClass",
    "OoObject",
    "oo_to_graph",
    "graph_to_oo",
]
