"""Frozen CSR snapshots of a graph: the fast-path read layout.

Angles & Gutierrez (PAPERS.md) identify *native, index-free adjacency*
as the storage property that separates graph databases from graph-on-
dictionary implementations.  :class:`Graph` stores adjacency as a dict of
Python ``Edge`` lists -- ideal for construction and surgery, hostile to
traversal: every ``edges_from`` call copies a tuple, every edge touch
chases an object and hashes a :class:`~repro.core.labels.Label`.

A :class:`FrozenGraph` is an immutable compressed-sparse-row (CSR)
snapshot of the reachable-or-not *whole* node set of a graph:

* labels are interned once into a dense ``label id`` space, so the hot
  loops compare and hash small ints instead of Label dataclasses;
* the adjacency is three flat :mod:`array` vectors (``offsets``,
  ``targets``, ``label_ids``) in edge insertion order, so a node's
  out-edges are one contiguous slice with no per-call allocation;
* each node additionally carries a *per-label partition*: label id ->
  the node's edge indices with that label, which is what lets the RPQ
  product kernel (:mod:`repro.automata.product`) scan only the edges
  whose label can advance the automaton.

The read API mirrors :class:`Graph` (``edges_from`` / ``successors`` /
``total_out_degree`` / ``reachable`` ...), so every read-only evaluator
accepts either form; queries return the same node ids the source graph
used.  There is no write API -- freeze once, query many times.  See
docs/PERFORMANCE.md for when freezing pays off.
"""

from __future__ import annotations

from array import array
from collections import deque
from itertools import count
from typing import TYPE_CHECKING, Iterable, Iterator

from .graph import Edge, Graph, GraphError
from .labels import Label, sym

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .shared import SharedGraphDescriptor, SharedSnapshot

__all__ = ["FrozenGraph", "freeze"]

#: Process-wide snapshot id allocator: every FrozenGraph gets a distinct
#: id, so caches keyed by ``snapshot_id`` can never confuse two snapshots
#: (even of the same source graph at different versions).
_SNAPSHOT_IDS = count(1)


class FrozenGraph:
    """An immutable CSR snapshot of a :class:`Graph`.

    The public attributes are the kernel surface the automata product
    reads directly (treat them as read-only):

    * ``offsets[p] : offsets[p+1]`` -- the edge-index slice of the node
      at position ``p``;
    * ``targets[i]`` / ``label_ids[i]`` / ``srcs[i]`` -- destination
      node id, interned label id, and source node id of edge ``i``;
    * ``labels_seq`` -- label id -> :class:`Label`;
    * ``label_index`` -- :class:`Label` -> label id;
    * ``partitions[p]`` -- label id -> ``array`` of edge indices of the
      node at position ``p`` (insertion order within each label);
    * ``index`` -- node id -> position, or ``None`` when node ids are
      already dense (``id == position``).
    """

    __slots__ = (
        "node_ids",
        "index",
        "offsets",
        "srcs",
        "targets",
        "label_ids",
        "labels_seq",
        "label_index",
        "partitions",
        "snapshot_id",
        "source_version",
        "_root",
        "_edge_cache",
        "_by_label",
        "_reachable_from_root",
        "_ext",
    )

    def __init__(self, graph: Graph) -> None:
        node_ids = list(graph.nodes())
        n = len(node_ids)
        dense = node_ids == list(range(n))
        index: dict[int, int] | None = (
            None if dense else {node: pos for pos, node in enumerate(node_ids)}
        )
        offsets = array("q", [0])
        srcs = array("q")
        targets = array("q")
        label_ids = array("q")
        labels_seq: list[Label] = []
        label_index: dict[Label, int] = {}
        partitions: list[dict[int, array]] = []
        edge_i = 0
        for node in node_ids:
            part: dict[int, array] = {}
            for edge in graph.edges_from(node):
                lid = label_index.get(edge.label)
                if lid is None:
                    lid = label_index[edge.label] = len(labels_seq)
                    labels_seq.append(edge.label)
                srcs.append(edge.src)
                targets.append(edge.dst)
                label_ids.append(lid)
                bucket = part.get(lid)
                if bucket is None:
                    bucket = part[lid] = array("q")
                bucket.append(edge_i)
                edge_i += 1
            partitions.append(part)
            offsets.append(edge_i)
        self.node_ids = node_ids
        self.index = index
        self.offsets = offsets
        self.srcs = srcs
        self.targets = targets
        self.label_ids = label_ids
        self.labels_seq = labels_seq
        self.label_index = label_index
        self.partitions = partitions
        self._root = graph._root if graph.has_root else None
        self.snapshot_id = next(_SNAPSHOT_IDS)
        self.source_version = graph.version
        self._edge_cache: dict[int, tuple[Edge, ...]] = {}
        self._by_label: dict[int, tuple[Edge, ...]] | None = None
        self._reachable_from_root: set[int] | None = None
        #: scratch space for per-snapshot derived structures (the query
        #: planner's summary/statistics live here); FrozenGraph has
        #: ``__slots__`` without ``__weakref__``, so extensions attach
        #: through this dict instead of weak side tables.
        self._ext: dict[str, object] = {}

    # -- positions ------------------------------------------------------------

    def _pos(self, node: int) -> int:
        if self.index is None:
            if 0 <= node < len(self.node_ids):
                return node
            raise GraphError(f"unknown node {node}")
        try:
            return self.index[node]
        except KeyError:
            raise GraphError(f"unknown node {node}") from None

    # -- the Graph read API ----------------------------------------------------

    @property
    def root(self) -> int:
        if self._root is None:
            raise GraphError("graph has no root")
        return self._root

    @property
    def has_root(self) -> bool:
        return self._root is not None

    @property
    def version(self) -> int:
        """The source graph's version at freeze time (constant forever).

        A frozen graph cannot mutate, so indexes built over it can never
        go stale; exposing the frozen-time version keeps the staleness
        protocol uniform across both layouts.
        """
        return self.source_version

    def nodes(self) -> Iterator[int]:
        """All node ids, in the source graph's allocation order."""
        return iter(self.node_ids)

    def has_node(self, node: int) -> bool:
        if self.index is None:
            return 0 <= node < len(self.node_ids)
        return node in self.index

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_edges(self) -> int:
        return len(self.targets)

    def edges_from(self, node: int) -> tuple[Edge, ...]:
        """The outgoing edges of ``node`` as :class:`Edge` objects.

        Materialized lazily and memoized per node (the snapshot is
        immutable, so the tuple never goes stale).  The kernel loops
        avoid this method entirely and read the flat arrays instead.
        """
        pos = self._pos(node)
        cached = self._edge_cache.get(pos)
        if cached is None:
            labels_seq = self.labels_seq
            cached = tuple(
                Edge(node, labels_seq[self.label_ids[i]], self.targets[i])
                for i in range(self.offsets[pos], self.offsets[pos + 1])
            )
            self._edge_cache[pos] = cached
        return cached

    def edges(self) -> Iterator[Edge]:
        """All edges, grouped by source node (insertion order)."""
        for node in self.node_ids:
            yield from self.edges_from(node)

    def out_degree(self, node: int) -> int:
        pos = self._pos(node)
        return self.offsets[pos + 1] - self.offsets[pos]

    def total_out_degree(self, nodes: Iterable[int]) -> int:
        """Sum of out-degrees over ``nodes`` (each counted as given)."""
        offsets = self.offsets
        if self.index is None:
            return sum(offsets[node + 1] - offsets[node] for node in nodes)
        idx = self.index
        return sum(offsets[idx[node] + 1] - offsets[idx[node]] for node in nodes)

    def successors(self, node: int, label: Label | None = None) -> Iterator[int]:
        """Targets of outgoing edges, optionally restricted to one label."""
        pos = self._pos(node)
        targets = self.targets
        if label is None:
            for i in range(self.offsets[pos], self.offsets[pos + 1]):
                yield targets[i]
            return
        lid = self.label_index.get(label)
        if lid is None:
            return
        bucket = self.partitions[pos].get(lid)
        if bucket is not None:
            for i in bucket:
                yield targets[i]

    def labels_from(self, node: int) -> set[Label]:
        """The set of distinct labels on edges out of ``node``."""
        labels_seq = self.labels_seq
        return {labels_seq[lid] for lid in self.partitions[self._pos(node)]}

    def all_labels(self) -> set[Label]:
        """Every distinct label appearing anywhere in the graph."""
        return set(self.labels_seq)

    # -- traversal ------------------------------------------------------------

    def reachable(self, start: int | None = None) -> set[int]:
        """Nodes reachable from ``start`` (default: root) by forward edges.

        The root's reachable set is computed once and cached -- the
        snapshot cannot change underneath it -- which is what makes
        repeated browsing queries over one frozen graph cheap.
        """
        if start is None or (self._root is not None and start == self._root):
            if self._reachable_from_root is None:
                self._reachable_from_root = self._reachable_set(self.root)
            return set(self._reachable_from_root)
        return self._reachable_set(start)

    def _reachable_set(self, origin: int) -> set[int]:
        pos = self._pos(origin)  # validates the node
        del pos
        offsets, targets = self.offsets, self.targets
        index = self.index
        seen = {origin}
        queue = deque([origin])
        while queue:
            node = queue.popleft()
            p = node if index is None else index[node]
            for i in range(offsets[p], offsets[p + 1]):
                dst = targets[i]
                if dst not in seen:
                    seen.add(dst)
                    queue.append(dst)
        return seen

    def bfs_edges(self, start: int | None = None) -> Iterator[Edge]:
        """Edges in BFS discovery order from ``start`` (default: root)."""
        origin = self.root if start is None else start
        seen = {origin}
        queue = deque([origin])
        while queue:
            node = queue.popleft()
            for edge in self.edges_from(node):
                yield edge
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    queue.append(edge.dst)

    # -- label-partition lookups (the browse fast path) -------------------------

    def edges_with_label(self, label: Label) -> tuple[Edge, ...]:
        """Every edge carrying exactly ``label``, in insertion order.

        Built lazily from the interned label space on first use; after
        that each exact-label lookup is a dict hit, which is what turns
        the section-1.3 browsing scans into point lookups over a frozen
        graph (no :class:`~repro.index.GraphIndexes` needed).
        """
        lid = self.label_index.get(label)
        if lid is None:
            return ()
        return self._label_edges(lid)

    def _label_edges(self, lid: int) -> tuple[Edge, ...]:
        if self._by_label is None:
            self._by_label = {}
        cached = self._by_label.get(lid)
        if cached is None:
            labels_seq, srcs, targets = self.labels_seq, self.srcs, self.targets
            label = labels_seq[lid]
            label_ids = self.label_ids
            cached = tuple(
                Edge(srcs[i], label, targets[i])
                for i in range(len(label_ids))
                if label_ids[i] == lid
            )
            self._by_label[lid] = cached
        return cached

    # -- construction without a Graph ------------------------------------------

    @classmethod
    def from_edge_stream(
        cls,
        num_nodes: int,
        edges: "Iterable[tuple[int, Label | str, int]]",
        *,
        root: "int | None" = 0,
    ) -> "FrozenGraph":
        """Build a dense CSR snapshot straight from an edge stream.

        ``edges`` yields ``(src, label, dst)`` triples **grouped by
        source in non-decreasing order** (the CSR invariant); node ids
        are the dense range ``0..num_nodes-1``.  A plain-``str`` label is
        a symbol, matching :meth:`Graph.add_edge`.  This is the
        constant-memory ingestion path for generated graphs too large to
        stage as a dict-of-``Edge``-lists :class:`Graph` first -- nothing
        beyond the CSR vectors themselves is ever materialized.
        """
        if num_nodes < 1:
            raise ValueError("need at least one node")
        if root is not None and not 0 <= root < num_nodes:
            raise GraphError(f"root {root} outside the dense node range")
        offsets = array("q", [0])
        srcs = array("q")
        targets = array("q")
        label_ids = array("q")
        labels_seq: list[Label] = []
        label_index: dict[Label, int] = {}
        partitions: list[dict[int, array]] = []
        cursor = 0  # the node whose edge block is open
        edge_i = 0
        part: dict[int, array] = {}
        for src, label, dst in edges:
            if src < cursor:
                raise GraphError(
                    f"edge stream not grouped by source: {src} after {cursor}"
                )
            if not 0 <= src < num_nodes or not 0 <= dst < num_nodes:
                raise GraphError(f"edge ({src}, {dst}) outside the dense node range")
            while cursor < src:  # close empty blocks up to src
                partitions.append(part)
                part = {}
                offsets.append(edge_i)
                cursor += 1
            if isinstance(label, str):
                label = sym(label)
            lid = label_index.get(label)
            if lid is None:
                lid = label_index[label] = len(labels_seq)
                labels_seq.append(label)
            srcs.append(src)
            targets.append(dst)
            label_ids.append(lid)
            bucket = part.get(lid)
            if bucket is None:
                bucket = part[lid] = array("q")
            bucket.append(edge_i)
            edge_i += 1
        while cursor < num_nodes:
            partitions.append(part)
            part = {}
            offsets.append(edge_i)
            cursor += 1
        fg = object.__new__(cls)
        fg.node_ids = range(num_nodes)  # dense: O(1) memory, list-like reads
        fg.index = None
        fg.offsets = offsets
        fg.srcs = srcs
        fg.targets = targets
        fg.label_ids = label_ids
        fg.labels_seq = labels_seq
        fg.label_index = label_index
        fg.partitions = partitions
        fg._root = root
        fg.snapshot_id = next(_SNAPSHOT_IDS)
        fg.source_version = 0
        fg._edge_cache = {}
        fg._by_label = None
        fg._reachable_from_root = None
        fg._ext = {}
        return fg

    # -- shared-memory snapshots ------------------------------------------------

    def to_shared(self) -> "SharedSnapshot":
        """Pack this snapshot into a named shared-memory segment.

        Returns the owning :class:`~repro.core.shared.SharedSnapshot`;
        its picklable ``descriptor`` is what travels to worker processes
        (:meth:`from_shared`).  The caller owns the segment lifecycle:
        ``close()`` *and* ``unlink()`` when done, or use the snapshot as
        a context manager.  See :mod:`repro.core.shared`.
        """
        from .shared import pack

        return pack(self)

    @classmethod
    def from_shared(cls, descriptor: "SharedGraphDescriptor") -> "FrozenGraph":
        """Reattach a packed snapshot, zero-copy, in this process.

        The returned graph's vectors are memoryviews into the shared
        segment -- no adjacency is copied.  The underlying
        :class:`~repro.core.shared.SharedSnapshot` handle rides in
        ``graph._ext["shared"]``; call its ``close()`` when done (workers
        never ``unlink`` -- that is the packing process's duty).
        """
        from .shared import attach

        return attach(descriptor).graph

    # -- misc -----------------------------------------------------------------

    def freeze(self) -> "FrozenGraph":
        """Freezing a frozen graph is the identity (convenience)."""
        return self

    def thaw(self) -> Graph:
        """An equivalent mutable :class:`Graph` (same node ids)."""
        g = Graph()
        for node in self.node_ids:
            g._adj[node] = []
        g._next_id = max(self.node_ids, default=-1) + 1
        for node in self.node_ids:
            g._adj[node] = list(self.edges_from(node))
        if self._root is not None:
            g.set_root(self._root)
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        root = self._root if self._root is not None else "?"
        return (
            f"<FrozenGraph root={root} nodes={self.num_nodes} "
            f"edges={self.num_edges} labels={len(self.labels_seq)}>"
        )


def freeze(graph: "Graph | FrozenGraph") -> FrozenGraph:
    """Snapshot ``graph`` as a :class:`FrozenGraph` (no-op when frozen)."""
    if isinstance(graph, FrozenGraph):
        return graph
    return FrozenGraph(graph)
