"""Object fusion across databases (section 2, citing [32]).

Papakonstantinou-Abiteboul-Garcia-Molina, *Object fusion in mediator
systems*: when integrating several sources, objects that denote the same
real-world entity must be *fused* into one, even though their node
identities come from different databases and are therefore incomparable
(the object-identity problem section 2 dwells on).

:func:`fuse_graphs` implements key-based fusion over the edge-labeled
model: objects reached by a *collection path* are grouped by the scalar
value under a *key path*, and each group collapses into one fused object
carrying the union of all members' edges.  Everything else in the sources
is preserved; value equality of the result is, as always, bisimulation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..automata.product import compile_rpq, rpq_nodes
from .graph import Graph
from .labels import Label, sym

__all__ = ["fuse_graphs", "fuse_objects", "FusionError"]


class FusionError(ValueError):
    """Raised when fusion keys are missing or ambiguous."""


def _key_value(graph: Graph, node: int, key_path: Sequence[Label]) -> "object | None":
    """The scalar under ``key_path`` from ``node`` (None if absent),
    raising on ambiguity (two different key values)."""
    frontier = {node}
    for label in key_path:
        frontier = {
            e.dst for n in frontier for e in graph.edges_from(n) if e.label == label
        }
        if not frontier:
            return None
    values = set()
    for n in frontier:
        for e in graph.edges_from(n):
            if e.label.is_base and graph.out_degree(e.dst) == 0:
                values.add(e.label.value)
    if not values:
        return None
    if len(values) > 1:
        raise FusionError(
            f"ambiguous key at node {node}: {sorted(map(repr, values))}"
        )
    return values.pop()


def fuse_objects(
    graph: Graph, collection: str, key_path: Sequence[Label]
) -> Graph:
    """Fuse same-key objects *within* one graph.

    ``collection`` is a path regex selecting the candidate objects;
    ``key_path`` is the label path (from each object) whose scalar value
    identifies the real-world entity.  Objects with equal keys merge into
    one node carrying the union of their outgoing edges; objects without a
    key are left untouched.
    """
    candidates = sorted(rpq_nodes(graph, compile_rpq(collection)))
    groups: dict[object, list[int]] = {}
    for node in candidates:
        key = _key_value(graph, node, key_path)
        if key is not None:
            groups.setdefault(key, []).append(node)

    # representative per group; every other member redirects to it
    redirect: dict[int, int] = {}
    for members in groups.values():
        rep = members[0]
        for member in members[1:]:
            redirect[member] = rep

    out = Graph()
    mapping: dict[int, int] = {}

    def node_for(old: int) -> int:
        old = redirect.get(old, old)
        if old not in mapping:
            mapping[old] = out.new_node()
        return mapping[old]

    out.set_root(node_for(graph.root))
    seen: set[tuple[int, Label, int]] = set()
    for node in graph.reachable():
        src = node_for(node)
        for edge in graph.edges_from(node):
            key = (src, edge.label, node_for(edge.dst))
            if key not in seen:
                seen.add(key)
                out.add_edge(*key)
    return out.garbage_collect()


def fuse_graphs(
    sources: Iterable[Graph],
    collection: str,
    key_path: Sequence["Label | str"],
    source_names: "Sequence[str] | None" = None,
) -> Graph:
    """Integrate several source graphs, fusing same-key objects across them.

    The sources are first combined under a fresh root (one symbol edge per
    source, named by ``source_names`` or ``src0``, ``src1``, ...); the
    collection regex is then matched *inside each source region* via the
    leading ``_`` step, and fusion proceeds as in :func:`fuse_objects`.

    This is the mediator scenario of [32]: two bibliography databases both
    holding ``Movie`` objects keyed by title fuse into one object per
    title, with the attribute union observable from either source's
    region.
    """
    sources = list(sources)
    names = list(source_names) if source_names is not None else [
        f"src{i}" for i in range(len(sources))
    ]
    if len(names) != len(sources):
        raise FusionError("one name per source graph is required")
    merged = Graph()
    root = merged.new_node()
    merged.set_root(root)
    for name, src in zip(names, sources):
        mapping = merged._absorb(src)
        merged.add_edge(root, sym(name), mapping[src.root])
    key = [sym(step) if isinstance(step, str) else step for step in key_path]
    return fuse_objects(merged, f"_.{collection}", key)
