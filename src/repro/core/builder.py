"""Building and rendering edge-labeled graphs from self-describing data.

The paper's motivation for semistructured data is that "the information that
is normally associated with a schema is contained within the data" -- data
like nested dictionaries, the Web, or biological flat files.  This module is
the ingestion/egress layer:

* :func:`from_obj` turns nested Python dicts/lists/scalars (i.e. JSON-shaped
  self-describing data) into the edge-labeled model of section 2.
* :func:`to_obj` is the best-effort inverse for acyclic data.
* :func:`render` pretty-prints a graph the way Figure 1 of the paper draws
  one, with explicit back-references for cycles.

Encoding conventions (these mirror the examples in the paper and in
Buneman–Davidson–Hillebrand–Suciu, SIGMOD '96):

* a dict ``{k: v}`` becomes a node with one *symbol*-labeled edge per key;
* a list ``[v1, v2]`` becomes integer-labeled edges ``1, 2, ...`` ("arrays
  may be represented by labeling internal edges with integers");
* a scalar ``c`` becomes the singleton tree ``{c: {}}`` -- a base-data
  labeled edge to an empty leaf;
* ``None`` becomes the empty tree ``{}``.
"""

from __future__ import annotations

from typing import Any, Iterator

from .graph import Graph
from .labels import Label, label_of, sym

__all__ = ["from_obj", "to_obj", "tree", "render", "BuildError", "DepthLimitError"]


class BuildError(ValueError):
    """Raised when a Python object cannot be (de)constructed as a graph."""


class DepthLimitError(BuildError, RecursionError):
    """A recursive decode exceeded its documented depth limit.

    Raised instead of a bare :class:`RecursionError` by operations that
    must walk nesting levels one Python frame at a time (currently
    :func:`to_obj`, whose output is itself nested to the data's depth).
    Ingestion (:func:`from_obj`) is iterative and has no depth limit.
    """

    def __init__(self, operation: str, limit: int) -> None:
        super().__init__(
            f"{operation}: data nests deeper than the {limit}-level limit"
        )
        self.operation = operation
        self.limit = limit


def from_obj(obj: Any) -> Graph:
    """Encode a JSON-shaped Python object as an edge-labeled graph.

    Iterative over nesting depth: a 50,000-level-deep chain ingests fine
    (the robustness suite checks), because production data does arrive
    that deep and :class:`RecursionError` is not an answer.

    >>> g = from_obj({"Movie": {"Title": "Casablanca"}})
    >>> sorted(str(e.label) for e in g.edges_from(g.root))
    ['`Movie`']
    """
    g = Graph()
    root = g.new_node()
    # explicit stack of (node, pending (label, child) pairs) replacing the
    # natural recursion; edge/node creation order matches the recursive
    # formulation, so output graphs are identical
    stack: list[tuple[int, Iterator[tuple[Label, Any]]]] = [(root, _children(obj))]
    while stack:
        node, pending = stack[-1]
        for label, child in pending:
            dst = g.new_node()
            g.add_edge(node, label, dst)
            stack.append((dst, _children(child)))
            break
        else:
            stack.pop()
    g.set_root(root)
    return g


def _children(obj: Any) -> Iterator[tuple[Label, Any]]:
    """The (label, child object) pairs one object contributes to its node."""
    if obj is None:
        return
    if isinstance(obj, dict):
        for key, value in obj.items():
            if not isinstance(key, (str, int, float, bool)):
                raise BuildError(f"cannot use {type(key).__name__} as an edge label")
            label = sym(key) if isinstance(key, str) else label_of(key)
            if isinstance(value, (list, tuple)) and isinstance(key, str):
                # {"Cast": ["Bogart", "Bacall"]} means *several* Cast edges:
                # the set semantics of the model, not an array.
                for item in value:
                    yield label, item
            else:
                yield label, value
        return
    if isinstance(obj, (list, tuple)):
        for i, item in enumerate(obj, start=1):
            yield label_of(i), item
        return
    if isinstance(obj, (str, int, float, bool)):
        yield label_of(obj), None
        return
    raise BuildError(f"cannot encode {type(obj).__name__} value {obj!r}")


#: Readable alias used throughout the examples: ``tree({...})``.
tree = from_obj


def to_obj(graph: Graph, node: int | None = None, max_depth: int = 1000) -> Any:
    """Decode a tree-shaped graph back into nested Python data.

    Inverse of :func:`from_obj` on its image; on other acyclic graphs it
    produces a faithful nested rendering where repeated symbols collapse to
    lists.  Cyclic data cannot be a finite nested object and raises
    :class:`BuildError` (cycles are precisely what section 2 adds over
    nested values).

    The output is nested Python data, so decoding necessarily recurses to
    the data's depth; rather than letting a deep chain die with an
    arbitrary :class:`RecursionError` mid-walk, depths beyond
    ``max_depth`` raise the documented :class:`DepthLimitError` (data
    that deep is better kept in graph form anyway).  The interpreter's
    recursion limit is raised for the duration when ``max_depth`` needs
    the headroom, so every depth up to the documented limit actually
    decodes.
    """
    import sys

    start = graph.root if node is None else node
    frames = 0
    frame = sys._getframe()
    while frame is not None:
        frames += 1
        frame = frame.f_back
    # at most 2 interpreter frames per nesting level (call + comprehension)
    needed = frames + 2 * max_depth + 100
    previous = sys.getrecursionlimit()
    if needed > previous:
        sys.setrecursionlimit(needed)
    try:
        return _decode(graph, start, on_path=set(), depth=max_depth)
    finally:
        if needed > previous:
            sys.setrecursionlimit(previous)


def _decode(graph: Graph, node: int, on_path: set[int], depth: int) -> Any:
    if depth <= 0:
        # len(on_path) is exactly how many levels were walked: the limit
        raise DepthLimitError("to_obj", len(on_path))
    if node in on_path:
        raise BuildError("graph is cyclic: no finite nested representation")
    edges = graph.edges_from(node)
    if not edges:
        return None
    on_path = on_path | {node}
    # A single base-labeled edge to an empty leaf is a scalar.
    if (
        len(edges) == 1
        and edges[0].label.is_base
        and graph.out_degree(edges[0].dst) == 0
    ):
        return edges[0].label.value
    # Integer labels 1..n with no symbols: a list.
    labels = [e.label for e in edges]
    if all(lab.is_int for lab in labels):
        indexed = sorted(edges, key=lambda e: e.label.value)
        return [_decode(graph, e.dst, on_path, depth - 1) for e in indexed]
    # Otherwise: a dict keyed by label value; repeated keys collapse to lists.
    out: dict[Any, Any] = {}
    seen_multi: set[Any] = set()
    for edge in edges:
        key = edge.label.value
        value = _decode(graph, edge.dst, on_path, depth - 1)
        if key in out:
            if key not in seen_multi:
                out[key] = [out[key]]
                seen_multi.add(key)
            out[key].append(value)
        else:
            out[key] = value
    return out


def render(graph: Graph, max_depth: int = 12) -> str:
    """Pretty-print a graph as an indented tree, Figure-1 style.

    Shared nodes and cycles are shown once and referenced afterwards as
    ``*see (n)``; this is how the tutorial's slides draw the `References` /
    `Is referenced in` cycle of the movie database.
    """
    lines: list[str] = []
    visited: dict[int, int] = {}

    def walk(node: int, prefix: str, depth: int) -> None:
        if depth > max_depth:
            lines.append(prefix + "...")
            return
        for edge in graph.edges_from(node):
            text = str(edge.label.value) if edge.label.is_symbol else repr(edge.label.value)
            if edge.dst in visited:
                lines.append(f"{prefix}{text} -> *see ({visited[edge.dst]})")
                continue
            if graph.out_degree(edge.dst) == 0:
                lines.append(f"{prefix}{text}")
                continue
            visited[edge.dst] = len(lines)
            lines.append(f"{prefix}{text}  ({len(lines)})")
            walk(edge.dst, prefix + "  ", depth + 1)

    visited[graph.root] = 0
    lines.append("(root)  (0)")
    walk(graph.root, "  ", 1)
    return "\n".join(lines)
