"""Mappings between the model variants of section 2.

The paper: *"The differences between the two models are minor and give rise
to minor differences in the query language.  It is easy to define mappings
in both directions."*  This module provides those mappings:

* :func:`oem_to_graph` / :func:`graph_to_oem` between the leaf-value OEM
  model (:mod:`repro.core.oem`) and the UnQL edge-labeled model
  (:mod:`repro.core.graph`);
* the node-labeled conversions live in :mod:`repro.core.node_labeled`.

The OEM->graph direction is the one spelled out by the SIGMOD '96 paper the
tutorial cites: an atomic object ``v`` becomes the singleton tree
``{v: {}}``; a complex object becomes a node with one symbol edge per
child.  The reverse direction must handle base-labeled edges whose targets
are not leaves (legal in the UnQL model, impossible in OEM); these are
wrapped under reserved ``@data`` / ``@label`` / ``@tree`` symbols so the
mapping stays total and invertible -- round-trip fidelity is property-
tested up to bisimulation.
"""

from __future__ import annotations

from .graph import Graph
from .labels import Label, label_of, sym
from .oem import OemDatabase, Oid

__all__ = ["oem_to_graph", "graph_to_oem", "DATA_MARKER", "LABEL_MARKER", "TREE_MARKER"]

#: Reserved symbols used to embed non-OEM-expressible edges into OEM.
DATA_MARKER = "@data"
LABEL_MARKER = "@label"
TREE_MARKER = "@tree"


def oem_to_graph(db: OemDatabase, name: str | None = None) -> Graph:
    """Encode (the reachable part of) an OEM database as an edge-labeled graph.

    ``name`` selects the entry point; with several names and ``name=None``
    a synthetic root carries one symbol edge per entry name, which is how
    Lorel presents multi-name databases to path expressions.
    """
    g = Graph()
    memo: dict[Oid, int] = {}

    def conv(oid: Oid) -> int:
        if oid in memo:
            return memo[oid]
        node = g.new_node()
        memo[oid] = node
        obj = db.get(oid)
        if obj.is_atomic:
            leaf = g.new_node()
            g.add_edge(node, label_of(obj.atom), leaf)
        else:
            for label, child in obj.children:
                if label == DATA_MARKER:
                    # unwrap the reserved embedding of graph_to_oem: an
                    # atomic @data child was a bare base-labeled edge; a
                    # complex one carries @label/@tree.
                    child_obj = db.get(child)
                    if child_obj.is_atomic:
                        leaf = g.new_node()
                        g.add_edge(node, label_of(child_obj.atom), leaf)
                        continue
                    wrapped = _unwrap_marker(db, child_obj)
                    if wrapped is not None:
                        value, subtree_oid = wrapped
                        g.add_edge(node, label_of(value), conv(subtree_oid))
                        continue
                g.add_edge(node, sym(label), conv(child))
        return node

    if name is not None:
        g.set_root(conv(db.lookup_name(name)))
        return g
    names = db.names
    if len(names) == 1:
        ((_, oid),) = names.items()
        g.set_root(conv(oid))
        return g
    root = g.new_node()
    g.set_root(root)
    for entry, oid in sorted(names.items()):
        g.add_edge(root, sym(entry), conv(oid))
    return g


def _unwrap_marker(db: OemDatabase, obj) -> "tuple[object, Oid] | None":
    """Decode a complex ``@data`` wrapper: (@label scalar, @tree oid)."""
    label_value = None
    tree_oid = None
    for child_label, child_oid in obj.children:
        if child_label == LABEL_MARKER and db.get(child_oid).is_atomic:
            label_value = db.get(child_oid).atom
        elif child_label == TREE_MARKER:
            tree_oid = child_oid
        else:
            return None
    if label_value is None or tree_oid is None:
        return None
    return label_value, tree_oid


def graph_to_oem(graph: Graph, name: str = "DB") -> OemDatabase:
    """Encode an edge-labeled graph as an OEM database rooted at ``name``.

    Sharing and cycles are preserved: each graph node maps to exactly one
    oid, which is the whole point of OEM's "object identities as
    place-holders" (section 2).  Pure OEM-shaped graphs (symbol edges,
    scalars as ``{v: {}}``) round-trip without markers; other base-labeled
    edges are wrapped as described in the module docstring.
    """
    db = OemDatabase()
    memo: dict[int, Oid] = {}

    def is_scalar_node(node: int) -> Label | None:
        """If the node encodes exactly one scalar ``{v: {}}``, return v's label."""
        edges = graph.edges_from(node)
        if len(edges) == 1 and edges[0].label.is_base and graph.out_degree(edges[0].dst) == 0:
            return edges[0].label
        return None

    def conv(node: int) -> Oid:
        if node in memo:
            return memo[node]
        scalar = is_scalar_node(node)
        if scalar is not None:
            oid = db.new_atomic(scalar.value)
            memo[node] = oid
            return oid
        oid = db.new_complex()
        memo[node] = oid
        for edge in graph.edges_from(node):
            if edge.label.is_symbol:
                db.add_child(oid, str(edge.label.value), conv(edge.dst))
            elif graph.out_degree(edge.dst) == 0:
                # A base-data edge to a leaf among other edges: keep the
                # value as an atomic child under the reserved marker.
                db.add_child(oid, DATA_MARKER, db.new_atomic(edge.label.value))
            else:
                # Base-data edge with a real subtree: wrap label and tree.
                wrapper = db.new_complex()
                db.add_child(wrapper, LABEL_MARKER, db.new_atomic(edge.label.value))
                db.add_child(wrapper, TREE_MARKER, conv(edge.dst))
                db.add_child(oid, DATA_MARKER, wrapper)
        return oid

    db.set_name(name, conv(graph.root))
    return db
