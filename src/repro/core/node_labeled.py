"""The node-labeled model variant and its reduction to edge labels.

Section 2's third variant labels internal nodes as well as edges::

    type base = int | string | ... | symbol
    type tree = label * set(label * tree)

The paper observes: *"The problem with using this representation directly is
that it makes the operation of taking the union of two trees difficult to
define.  However, by introducing extra edges, this representation can be
converted into one of the edge-labelled representations above."*

:class:`NodeLabeledGraph` implements the variant directly (so the difficulty
is demonstrable -- see :meth:`union`, which must invent a node label), and
:func:`to_edge_labeled` / :func:`from_edge_labeled` implement the conversion
by the extra-edge trick: a node labeled ``l`` gains a distinguished
``@node-label`` edge to a leaf reached by an ``l`` edge.
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import Graph
from .labels import Label, label_of, sym

__all__ = [
    "NodeLabeledGraph",
    "NLEdge",
    "to_edge_labeled",
    "from_edge_labeled",
    "NODE_LABEL_MARKER",
]

#: The marker symbol introduced by the conversion ("extra edges").
NODE_LABEL_MARKER = sym("@node-label")


@dataclass(frozen=True, slots=True)
class NLEdge:
    src: int
    label: Label
    dst: int


class NodeLabeledGraph:
    """A rooted graph with labels on both nodes and edges."""

    def __init__(self) -> None:
        self._node_labels: dict[int, Label | None] = {}
        self._adj: dict[int, list[NLEdge]] = {}
        self._root: int | None = None
        self._next = 0

    def new_node(self, label: Label | str | int | float | bool | None = None) -> int:
        node = self._next
        self._next += 1
        if label is None:
            lab = None
        elif isinstance(label, str):
            lab = sym(label)
        else:
            lab = label_of(label)
        self._node_labels[node] = lab
        self._adj[node] = []
        return node

    def add_edge(self, src: int, label: Label | str | int | float | bool, dst: int) -> None:
        lab = sym(label) if isinstance(label, str) else label_of(label)
        self._adj[src].append(NLEdge(src, lab, dst))

    def set_root(self, node: int) -> None:
        self._root = node

    @property
    def root(self) -> int:
        if self._root is None:
            raise ValueError("node-labeled graph has no root")
        return self._root

    def node_label(self, node: int) -> Label | None:
        return self._node_labels[node]

    def edges_from(self, node: int) -> tuple[NLEdge, ...]:
        return tuple(self._adj[node])

    def nodes(self):
        return iter(self._adj)

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    def union(self, other: "NodeLabeledGraph") -> "NodeLabeledGraph":
        """Union of two node-labeled trees -- the awkward operation.

        The fresh root needs a node label, but there is no canonical choice
        when the operands' root labels differ; this implementation keeps a
        shared label when the operands agree and drops to ``None``
        otherwise, *losing information*.  This is the concrete defect the
        paper alludes to, and the round-trip tests document it.
        """
        out = NodeLabeledGraph()
        la, lb = self._node_labels[self.root], other._node_labels[other.root]
        root = out.new_node(la if la == lb else None)
        out.set_root(root)
        for operand in (self, other):
            mapping = {operand.root: root}
            for node in operand._adj:
                if node != operand.root:
                    mapping[node] = out.new_node(operand._node_labels[node])
            for edges in operand._adj.values():
                for e in edges:
                    out.add_edge(mapping[e.src], e.label, mapping[e.dst])
        return out


def to_edge_labeled(nl: NodeLabeledGraph) -> Graph:
    """Convert by introducing extra edges, as the paper prescribes.

    A node with label ``l`` gets an extra edge ``@node-label`` to a fresh
    node that has a single ``l`` edge to a leaf.  The encoding is injective
    (up to isomorphism), so :func:`from_edge_labeled` can invert it.
    """
    g = Graph()
    mapping = {node: g.new_node() for node in nl.nodes()}
    g.set_root(mapping[nl.root])
    for node in nl.nodes():
        lab = nl.node_label(node)
        if lab is not None:
            holder = g.new_node()
            leaf = g.new_node()
            g.add_edge(mapping[node], NODE_LABEL_MARKER, holder)
            g.add_edge(holder, lab, leaf)
        for e in nl.edges_from(node):
            g.add_edge(mapping[node], e.label, mapping[e.dst])
    return g


def from_edge_labeled(g: Graph) -> NodeLabeledGraph:
    """Invert :func:`to_edge_labeled` on its image.

    Edges labeled ``@node-label`` are folded back into node labels; all
    other edges are copied verbatim.  On graphs outside the image the
    result simply has unlabeled nodes.
    """
    nl = NodeLabeledGraph()
    reach = g.reachable()
    # First pass: find node labels and which helper nodes to skip.
    labels: dict[int, Label] = {}
    helpers: set[int] = set()
    for node in reach:
        for edge in g.edges_from(node):
            if edge.label == NODE_LABEL_MARKER:
                holder_edges = g.edges_from(edge.dst)
                if len(holder_edges) == 1 and g.out_degree(holder_edges[0].dst) == 0:
                    labels[node] = holder_edges[0].label
                    helpers.add(edge.dst)
                    helpers.add(holder_edges[0].dst)
    mapping: dict[int, int] = {}
    for node in sorted(reach):
        if node in helpers:
            continue
        mapping[node] = nl.new_node(labels.get(node))
    nl.set_root(mapping[g.root])
    for node in sorted(reach):
        if node in helpers:
            continue
        for edge in g.edges_from(node):
            if edge.label == NODE_LABEL_MARKER and edge.dst in helpers:
                continue
            nl.add_edge(mapping[node], edge.label, mapping[edge.dst])
    return nl
