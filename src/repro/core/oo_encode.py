"""Encoding object-oriented databases into the semistructured model.

Section 2: *"It is straightforward to encode relational and object-oriented
databases in this model, although in the latter case one must take care to
deal with the issue of object-identity.  However, the coding is not
unique..."*

This module defines a miniature ODMG-style object database -- classes,
typed attributes, object identity, and (possibly cyclic) references -- and
the encoding into the edge-labeled graph.  Object identity is handled the
way the paper requires: references become *shared subgraphs* (one graph
node per object), so identity is preserved exactly as far as it is
observable, i.e. up to bisimulation.  The decoder reconstructs objects and
re-discovers identity from sharing, and the round trip is tested on cyclic
instances (e.g. the mutually-referencing movie entries of Figure 1).

The relational encoding lives with the relational substrate in
:mod:`repro.relational.encode`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from .graph import Graph
from .labels import label_of, sym

__all__ = ["OoClass", "OoObject", "OoDatabase", "oo_to_graph", "graph_to_oo"]

AttrValue = Union[int, float, str, bool, "OoObject", list]

#: Reserved edge symbols of the encoding.
CLASS_MARKER = "@class"
EXTENT_MARKER = "extent"


@dataclass(frozen=True)
class OoClass:
    """A class: a name plus the declared attribute names.

    The declaration is deliberately loose (no attribute types): ACeDB-style
    schemas "impose only loose constraints on the data", and the encoding
    must survive objects that do not fill every slot.
    """

    name: str
    attributes: tuple[str, ...]


@dataclass(eq=False)
class OoObject:
    """An object with identity.  Equality is identity (``is``), as in ODMG."""

    cls: OoClass
    values: dict[str, AttrValue] = field(default_factory=dict)

    def set(self, attr: str, value: AttrValue) -> "OoObject":
        if attr not in self.cls.attributes:
            raise ValueError(f"class {self.cls.name} has no attribute {attr!r}")
        self.values[attr] = value
        return self


class OoDatabase:
    """A set of class extents: ``class name -> list of objects``."""

    def __init__(self) -> None:
        self.classes: dict[str, OoClass] = {}
        self.extents: dict[str, list[OoObject]] = {}

    def define_class(self, name: str, attributes: tuple[str, ...]) -> OoClass:
        cls = OoClass(name, attributes)
        self.classes[name] = cls
        self.extents[name] = []
        return cls

    def new_object(self, cls: OoClass) -> OoObject:
        obj = OoObject(cls)
        self.extents[cls.name].append(obj)
        return obj

    def all_objects(self) -> list[OoObject]:
        return [obj for extent in self.extents.values() for obj in extent]


def oo_to_graph(db: OoDatabase) -> Graph:
    """Encode the OO database as one rooted edge-labeled graph.

    Layout (one of the non-unique codings the paper mentions; this one
    follows the class-extent style of the examples in [10])::

        root --<ClassName>--> extent-node --member--> object-node
        object-node --@class--> {ClassName: {}}
        object-node --<attr>--> encoded value

    Scalars are encoded as ``{v: {}}`` singletons; object references reuse
    the target's graph node, preserving identity through sharing.
    """
    g = Graph()
    root = g.new_node()
    g.set_root(root)
    object_node: dict[int, int] = {}

    def encode_object(obj: OoObject) -> int:
        key = id(obj)
        if key in object_node:
            return object_node[key]
        node = g.new_node()
        object_node[key] = node
        marker = g.new_node()
        leaf = g.new_node()
        g.add_edge(node, sym(CLASS_MARKER), marker)
        g.add_edge(marker, sym(obj.cls.name), leaf)
        for attr in obj.cls.attributes:
            if attr not in obj.values:
                continue  # loosely-constrained data: missing slots are fine
            g.add_edge(node, sym(attr), encode_value(obj.values[attr]))
        return node

    def encode_value(value: AttrValue) -> int:
        if isinstance(value, OoObject):
            return encode_object(value)
        if isinstance(value, list):
            holder = g.new_node()
            for i, item in enumerate(value, start=1):
                g.add_edge(holder, label_of(i), encode_value(item))
            return holder
        node = g.new_node()
        leaf = g.new_node()
        g.add_edge(node, label_of(value), leaf)
        return node

    for name in sorted(db.extents):
        extent_node = g.new_node()
        g.add_edge(root, sym(name), extent_node)
        for obj in db.extents[name]:
            g.add_edge(extent_node, sym("member"), encode_object(obj))
    return g


def graph_to_oo(graph: Graph) -> OoDatabase:
    """Decode a graph produced by :func:`oo_to_graph` back into objects.

    Identity is recovered from node sharing: two references decode to the
    same :class:`OoObject` iff they point at the same graph node, which is
    exactly the observable content of object identity.
    """
    db = OoDatabase()
    decoded: dict[int, OoObject] = {}

    def class_of(node: int) -> str:
        for edge in graph.edges_from(node):
            if edge.label == sym(CLASS_MARKER):
                inner = graph.edges_from(edge.dst)
                if len(inner) == 1 and inner[0].label.is_symbol:
                    return str(inner[0].label.value)
        raise ValueError(f"node {node} carries no @class marker")

    def decode_value(node: int):
        edges = graph.edges_from(node)
        if any(e.label == sym(CLASS_MARKER) for e in edges):
            return decode_object(node)
        if len(edges) == 1 and edges[0].label.is_base and graph.out_degree(edges[0].dst) == 0:
            return edges[0].label.value
        if edges and all(e.label.is_int for e in edges):
            ordered = sorted(edges, key=lambda e: e.label.value)
            return [decode_value(e.dst) for e in ordered]
        raise ValueError(f"node {node} is not a value encoding")

    def decode_object(node: int) -> OoObject:
        if node in decoded:
            return decoded[node]
        cname = class_of(node)
        attrs = tuple(
            str(e.label.value)
            for e in graph.edges_from(node)
            if e.label.is_symbol and str(e.label.value) != CLASS_MARKER
        )
        if cname not in db.classes:
            db.define_class(cname, attrs)
        else:
            known = db.classes[cname].attributes
            merged = known + tuple(a for a in attrs if a not in known)
            if merged != known:
                db.classes[cname] = OoClass(cname, merged)
        obj = OoObject(db.classes[cname])
        decoded[node] = obj
        db.extents.setdefault(cname, []).append(obj)
        for edge in graph.edges_from(node):
            if not edge.label.is_symbol or str(edge.label.value) == CLASS_MARKER:
                continue
            obj.values[str(edge.label.value)] = decode_value(edge.dst)
        return obj

    for class_edge in graph.edges_from(graph.root):
        for member_edge in graph.edges_from(class_edge.dst):
            if member_edge.label == sym("member"):
                decode_object(member_edge.dst)
    # Refresh attribute tuples: objects decoded before a class grew its
    # attribute set must see the final class definition.
    for cname, extent in db.extents.items():
        final = db.classes[cname]
        for obj in extent:
            obj.cls = final
    return db
