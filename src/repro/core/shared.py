"""Zero-copy shared-memory snapshots of frozen graphs.

The distributed runtime (:mod:`repro.distributed.parallel`) promotes
sites to real OS processes.  What makes that cheap is that a
:class:`~repro.core.frozen.FrozenGraph` is already *flat*: four
``array('q')`` vectors plus a per-node label-partition table.  This
module packs those vectors into one named
:class:`multiprocessing.shared_memory.SharedMemory` segment so worker
processes can traverse the same physical bytes the parent froze --
attaching is O(1) in the graph size, and no worker ever holds a private
copy of the adjacency.

Layout: a single segment holding every vector back to back (8-byte
aligned by construction), described by a small picklable
:class:`SharedGraphDescriptor` carrying the ``(offset, length)`` of each
field plus the interned label table, root, and version.  The per-node
partition dicts are flattened into four parallel vectors (node bucket
bounds, bucket label ids, bucket starts, flat edge indices) so they
share the segment too; an attached graph rebuilds each node's dict
lazily, on first touch, as memoryview slices of the shared table.

Lifecycle is explicit and owner-biased:

* the **owner** (whoever called :func:`pack` / ``FrozenGraph.to_shared``)
  must call :meth:`SharedSnapshot.close` *and* :meth:`SharedSnapshot.unlink`
  (or use the snapshot as a context manager, which does both);
* **attachers** (workers, via :func:`attach` /
  ``FrozenGraph.from_shared``) call only :meth:`~SharedSnapshot.close`.
  Spawned children share the owner's ``resource_tracker`` process, so
  their attach re-registrations are idempotent and the owner's unlink
  balances them; a *foreign* process (own tracker, does not own the
  segment) should pass ``attach(..., untrack=True)`` or its tracker will
  unlink the owner's segment at exit (the pre-3.13 bpo-39959 footgun).

Every segment created by this process is recorded in a module-level
registry until unlinked; the test suite's session leak guard fails the
run if any remain (see ``tests/conftest.py``), so a forgotten ``unlink``
cannot land.
"""

from __future__ import annotations

import os
from array import array
from dataclasses import dataclass, field
from itertools import count
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Iterable

from .labels import Label

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .frozen import FrozenGraph

__all__ = [
    "SEGMENT_PREFIX",
    "SharedGraphDescriptor",
    "SharedSnapshot",
    "SharedSnapshotError",
    "attach",
    "flatten_partitions",
    "live_segments",
    "pack",
]

#: Prefix of every segment name this process creates.  The pid component
#: keeps concurrent test runs from colliding; the test-suite leak guard
#: globs ``/dev/shm`` for this prefix at session end.
SEGMENT_PREFIX = "repro_ssd_"

_SEGMENT_SEQ = count(1)

#: Names of segments created (and not yet unlinked) by *this* process.
_LIVE_SEGMENTS: set[str] = set()


class SharedSnapshotError(RuntimeError):
    """Misuse of the shared-snapshot lifecycle (closed handle, attacher
    unlink, truncated segment...)."""


def live_segments() -> frozenset[str]:
    """Names of segments this process created and has not unlinked."""
    return frozenset(_LIVE_SEGMENTS)


def _segment_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid()}_{next(_SEGMENT_SEQ)}"


def flatten_partitions(
    fg: "FrozenGraph",
) -> tuple[array, array, array, array]:
    """``fg.partitions`` as four flat vectors (the shareable form).

    Returns ``(pb_off, plid, pstart, pidx)``: node position ``p`` owns
    buckets ``pb_off[p]:pb_off[p+1]``; bucket ``j`` carries label id
    ``plid[j]`` and edge indices ``pidx[pstart[j]:pstart[j+1]]``.  Bucket
    order follows each node's dict insertion order (first edge with the
    label), so the flattening is deterministic and round-trips exactly.
    """
    pb_off = array("q", [0])
    plid = array("q")
    pstart = array("q", [0])
    pidx = array("q")
    buckets = 0
    for part in fg.partitions:
        for lid, bucket in part.items():
            plid.append(lid)
            pidx.extend(bucket)
            pstart.append(len(pidx))
            buckets += 1
        pb_off.append(buckets)
    return pb_off, plid, pstart, pidx


@dataclass(frozen=True)
class SharedGraphDescriptor:
    """Everything a worker needs to reattach a packed snapshot.

    Small and picklable: the big vectors stay in the segment; only the
    layout table, the interned label list, and a few scalars travel.
    ``fields`` maps field name -> ``(offset_items, length_items)`` into
    the segment viewed as one flat ``int64`` vector.
    """

    name: str
    fields: tuple[tuple[str, int, int], ...]
    labels: tuple[Label, ...]
    num_nodes: int
    num_edges: int
    root: "int | None"
    source_version: int
    dense: bool
    extras: tuple[str, ...] = field(default=())

    def layout(self) -> dict[str, tuple[int, int]]:
        return {name: (off, length) for name, off, length in self.fields}


#: The core vectors every snapshot packs, in segment order.
_CORE_FIELDS = (
    "offsets",
    "srcs",
    "targets",
    "label_ids",
    "pb_off",
    "plid",
    "pstart",
    "pidx",
)


def pack(
    fg: "FrozenGraph", *, extras: "dict[str, array] | None" = None
) -> "SharedSnapshot":
    """Copy ``fg``'s flat vectors into a fresh named shared segment.

    ``extras`` adds caller-owned ``array('q')`` vectors to the same
    segment under their own names (the parallel runtime ships the
    node-position -> site table this way).  Returns the owning
    :class:`SharedSnapshot`; the caller must eventually ``close()`` and
    ``unlink()`` it.
    """
    pb_off, plid, pstart, pidx = flatten_partitions(fg)
    vectors: list[tuple[str, array]] = [
        ("offsets", fg.offsets),
        ("srcs", fg.srcs),
        ("targets", fg.targets),
        ("label_ids", fg.label_ids),
        ("pb_off", pb_off),
        ("plid", plid),
        ("pstart", pstart),
        ("pidx", pidx),
    ]
    dense = fg.index is None
    if not dense:
        vectors.append(("node_ids", array("q", fg.node_ids)))
    extra_names: tuple[str, ...] = ()
    if extras:
        for name, vec in extras.items():
            if name in _CORE_FIELDS or name == "node_ids":
                raise ValueError(f"extra field name {name!r} collides with a core field")
            if not isinstance(vec, array) or vec.typecode != "q":
                raise TypeError(f"extra field {name!r} must be an array('q')")
            vectors.append((name, vec))
        extra_names = tuple(extras)
    fields: list[tuple[str, int, int]] = []
    offset = 0
    for name, vec in vectors:
        fields.append((name, offset, len(vec)))
        offset += len(vec)
    total_bytes = max(offset * 8, 8)  # zero-size segments are not portable
    name = _segment_name()
    shm = shared_memory.SharedMemory(name=name, create=True, size=total_bytes)
    _LIVE_SEGMENTS.add(shm.name)
    view = shm.buf.cast("q")
    try:
        for (_, off, length), (_, vec) in zip(fields, vectors):
            if length:
                view[off : off + length] = memoryview(vec)
    finally:
        view.release()
    descriptor = SharedGraphDescriptor(
        name=shm.name,
        fields=tuple(fields),
        labels=tuple(fg.labels_seq),
        num_nodes=fg.num_nodes,
        num_edges=fg.num_edges,
        root=fg._root,
        source_version=fg.source_version,
        dense=dense,
        extras=extra_names,
    )
    return SharedSnapshot(descriptor, shm, owner=True, source=fg)


def attach(
    descriptor: SharedGraphDescriptor, *, untrack: bool = False
) -> "SharedSnapshot":
    """Reattach a packed snapshot in this process, zero-copy.

    The returned snapshot does not own the segment: callers ``close()``
    it when done and must never ``unlink()``.

    ``untrack`` is for *foreign* attachers only -- a process with its
    own ``resource_tracker`` that did not create the segment and would
    otherwise unlink it at exit (pre-3.13 behavior).  Spawned children
    of the owner must leave it ``False``: they share the owner's tracker
    process, where attaching re-registers the same name idempotently and
    the owner's ``unlink()`` performs the single matching unregister.
    Untracking from a child would drain that shared registration early
    -- the owner's later unregister then crashes the tracker thread with
    a ``KeyError`` and, worse, a crashed owner would leak the segment
    with no tracker left knowing about it.
    """
    try:
        shm = shared_memory.SharedMemory(name=descriptor.name, create=False)
    except FileNotFoundError:
        raise SharedSnapshotError(
            f"shared segment {descriptor.name!r} does not exist (owner unlinked?)"
        ) from None
    if untrack:
        _untrack(shm)
    expected = sum(length for _, _, length in descriptor.fields) * 8
    if shm.size < expected:
        shm.close()
        raise SharedSnapshotError(
            f"shared segment {descriptor.name!r} is {shm.size} bytes, "
            f"descriptor expects at least {expected}"
        )
    return SharedSnapshot(descriptor, shm, owner=False)


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Drop an attached segment from this process's resource tracker.

    Attachers do not own the segment; before 3.13 (``track=False``) the
    tracker would both warn about and *unlink* it when this process
    exits, yanking the mapping out from under the owner.
    """
    try:  # pragma: no cover - absent on some platforms
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass


class _LazyPartitions:
    """List-of-dicts view of the flattened partition table.

    Indexing by node position materializes (and memoizes) that node's
    ``{label id: edge-index bucket}`` dict, each bucket a memoryview
    slice of the shared ``pidx`` vector -- so generic kernel code that
    expects ``FrozenGraph.partitions`` works unchanged over an attached
    snapshot, while untouched nodes cost nothing.  The hot parallel
    worker loop bypasses this view and reads the flat vectors directly.
    """

    __slots__ = ("_pb_off", "_plid", "_pstart", "_pidx", "_cache", "_register")

    def __init__(self, pb_off, plid, pstart, pidx, register) -> None:
        self._pb_off = pb_off
        self._plid = plid
        self._pstart = pstart
        self._pidx = pidx
        self._cache: dict[int, dict[int, memoryview]] = {}
        self._register = register

    def __len__(self) -> int:
        return len(self._pb_off) - 1

    def __getitem__(self, pos: int) -> dict[int, memoryview]:
        part = self._cache.get(pos)
        if part is None:
            if not 0 <= pos < len(self._pb_off) - 1:
                raise IndexError(pos)
            part = {}
            pstart, pidx = self._pstart, self._pidx
            for j in range(self._pb_off[pos], self._pb_off[pos + 1]):
                bucket = pidx[pstart[j] : pstart[j + 1]]
                self._register(bucket)
                part[self._plid[j]] = bucket
            self._cache[pos] = part
        return part

    def __iter__(self):
        for pos in range(len(self)):
            yield self[pos]


class SharedSnapshot:
    """A handle on one packed graph segment (owning or attached).

    ``snapshot.graph`` is a real :class:`~repro.core.frozen.FrozenGraph`
    whose vector slots are memoryviews into the segment (for the owner,
    it is the original graph -- already zero-copy by definition).
    ``snapshot.field(name)`` exposes any packed vector, including
    ``extras``, as an ``int64`` memoryview.

    ``close()`` releases every exported view and unmaps the segment;
    the attached graph must not be used afterwards.  ``unlink()``
    destroys the segment system-wide and is the owner's duty alone.
    """

    def __init__(
        self,
        descriptor: SharedGraphDescriptor,
        shm: shared_memory.SharedMemory,
        *,
        owner: bool,
        source: "FrozenGraph | None" = None,
    ) -> None:
        self.descriptor = descriptor
        self.owner = owner
        self._shm: "shared_memory.SharedMemory | None" = shm
        self._views: list[memoryview] = []
        self._fields: dict[str, memoryview] = {}
        self._graph: "FrozenGraph | None" = source
        self._unlinked = False
        base = shm.buf.cast("q")
        self._views.append(base)
        for name, off, length in descriptor.fields:
            view = base[off : off + length]
            self._views.append(view)
            self._fields[name] = view

    # -- accessors -------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.descriptor.name

    @property
    def closed(self) -> bool:
        return self._shm is None

    def field(self, name: str) -> memoryview:
        """The packed vector ``name`` as an ``int64`` memoryview."""
        if self._shm is None:
            raise SharedSnapshotError("snapshot is closed")
        try:
            return self._fields[name]
        except KeyError:
            raise SharedSnapshotError(f"no packed field {name!r}") from None

    def _register(self, view: memoryview) -> None:
        self._views.append(view)

    @property
    def graph(self) -> "FrozenGraph":
        """The snapshot as a queryable :class:`FrozenGraph` (lazy)."""
        if self._graph is None:
            self._graph = self._build_graph()
        return self._graph

    def _build_graph(self) -> "FrozenGraph":
        from .frozen import FrozenGraph, _SNAPSHOT_IDS

        if self._shm is None:
            raise SharedSnapshotError("snapshot is closed")
        d = self.descriptor
        fg = object.__new__(FrozenGraph)
        if d.dense:
            fg.node_ids = range(d.num_nodes)
            fg.index = None
        else:
            node_ids = list(self.field("node_ids"))
            fg.node_ids = node_ids
            fg.index = {node: pos for pos, node in enumerate(node_ids)}
        fg.offsets = self.field("offsets")
        fg.srcs = self.field("srcs")
        fg.targets = self.field("targets")
        fg.label_ids = self.field("label_ids")
        fg.labels_seq = list(d.labels)
        fg.label_index = {label: lid for lid, label in enumerate(d.labels)}
        fg.partitions = _LazyPartitions(
            self.field("pb_off"),
            self.field("plid"),
            self.field("pstart"),
            self.field("pidx"),
            self._register,
        )
        fg._root = d.root
        fg.snapshot_id = next(_SNAPSHOT_IDS)
        fg.source_version = d.source_version
        fg._edge_cache = {}
        fg._by_label = None
        fg._reachable_from_root = None
        fg._ext = {"shared": self}
        return fg

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release every exported view and unmap the segment (idempotent)."""
        if self._shm is None:
            return
        for view in reversed(self._views):
            view.release()
        self._views.clear()
        self._fields.clear()
        if self._graph is not None and not self.owner:
            # the attached graph's slots hold released views; drop them so
            # accidental reuse fails loudly on the released view, and the
            # graph cannot keep the buffer alive
            self._graph = None
        self._shm.close()
        self._shm = None

    def unlink(self) -> None:
        """Destroy the segment system-wide.  Owner only; idempotent."""
        if not self.owner:
            raise SharedSnapshotError(
                "only the packing process may unlink a shared snapshot"
            )
        if self._unlinked:
            return
        if self._shm is not None:
            self.close()
        try:
            shm = shared_memory.SharedMemory(name=self.descriptor.name, create=False)
        except FileNotFoundError:
            pass
        else:
            # no _untrack here: reattaching registered the name, and
            # ``unlink()`` performs the matching unregister itself --
            # unregistering twice makes the tracker process stack-trace
            shm.unlink()
            shm.close()
        self._unlinked = True
        _LIVE_SEGMENTS.discard(self.descriptor.name)

    def __enter__(self) -> "SharedSnapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self.owner:
            self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        role = "owner" if self.owner else "attached"
        state = "closed" if self.closed else "open"
        return f"<SharedSnapshot {self.name} {role} {state}>"


def unlink_segments(names: Iterable[str]) -> list[str]:
    """Force-unlink segments by name (the leak guard's cleanup path).

    Returns the names that actually existed.  Test infrastructure only:
    production code owns its snapshots and unlinks through them.
    """
    removed = []
    for name in names:
        try:
            shm = shared_memory.SharedMemory(name=name, create=False)
        except FileNotFoundError:
            continue
        shm.unlink()
        shm.close()
        removed.append(name)
        _LIVE_SEGMENTS.discard(name)
    return removed
