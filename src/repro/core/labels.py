"""Tagged-union edge labels for the semistructured data model.

Buneman (PODS '97, section 2) formulates the label type of the edge-labeled
model as::

    type label = int | string | ... | symbol

Labels are drawn from a heterogeneous collection of base types (``int``,
``string``, and possibly other base types such as ``real`` and ``bool``)
plus *symbols* -- the strings that conventional models would use as
attribute or class names ("internally they are represented as strings").
The data is "self-describing" precisely because a program can *switch* on
the kind of a label at run time; this module is therefore the foundation of
every dynamic-typing predicate in the query languages (``isInt``,
``isString``, ``isSymbol``...).

:class:`Label` is immutable and hashable so that labels can key indexes and
participate in set-valued edge collections.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

__all__ = [
    "LabelKind",
    "Label",
    "sym",
    "string",
    "integer",
    "real",
    "boolean",
    "label_of",
    "AtomValue",
]

#: Python values that may appear inside a label.
AtomValue = Union[int, float, str, bool]


class LabelKind(enum.Enum):
    """The arm of the tagged union a label belongs to.

    ``SYMBOL`` plays the role of attribute/class names (``Movie``,
    ``Title``); the remaining kinds are base *data* types that the model
    allows directly on edges ("edges are labeled both with data, of types
    such as int and string ... and with names such as Movie and Title").
    """

    INT = "int"
    REAL = "real"
    STRING = "string"
    BOOL = "bool"
    SYMBOL = "symbol"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LabelKind.{self.name}"


# Deterministic ordering of kinds, used by Label.sort_key.
_KIND_ORDER = {
    LabelKind.BOOL: 0,
    LabelKind.INT: 1,
    LabelKind.REAL: 2,
    LabelKind.STRING: 3,
    LabelKind.SYMBOL: 4,
}


@dataclass(frozen=True, slots=True)
class Label:
    """An edge label: one arm of ``int | real | string | bool | symbol``.

    Two labels are equal iff both their kind and their value are equal;
    in particular the *string* ``"Movie"`` and the *symbol* ``Movie`` are
    distinct labels even though both are represented by the same Python
    string.  This distinction is exactly the paper's distinction between
    data values and attribute names.
    """

    kind: LabelKind
    value: AtomValue

    def __post_init__(self) -> None:
        expected = _EXPECTED_TYPES[self.kind]
        if not isinstance(self.value, expected) or (
            self.kind in (LabelKind.INT, LabelKind.REAL)
            and isinstance(self.value, bool)
        ):
            raise TypeError(
                f"label of kind {self.kind.value!r} cannot hold "
                f"{type(self.value).__name__} value {self.value!r}"
            )

    # -- predicates ("switching on the type") --------------------------------

    @property
    def is_symbol(self) -> bool:
        """True iff this label is an attribute-name symbol."""
        return self.kind is LabelKind.SYMBOL

    @property
    def is_base(self) -> bool:
        """True iff this label carries a base data value (not a symbol)."""
        return self.kind is not LabelKind.SYMBOL

    @property
    def is_int(self) -> bool:
        return self.kind is LabelKind.INT

    @property
    def is_real(self) -> bool:
        return self.kind is LabelKind.REAL

    @property
    def is_string(self) -> bool:
        return self.kind is LabelKind.STRING

    @property
    def is_bool(self) -> bool:
        return self.kind is LabelKind.BOOL

    # -- ordering -------------------------------------------------------------

    def sort_key(self) -> tuple:
        """A total-order key across the heterogeneous label space.

        Labels of different kinds are ordered by kind; within a kind, by
        value.  The order itself is arbitrary but deterministic, which is
        what canonical serializations and rendered output need.
        """
        return (_KIND_ORDER[self.kind], self.value)

    def __lt__(self, other: "Label") -> bool:
        if not isinstance(other, Label):
            return NotImplemented
        a, b = self.sort_key(), other.sort_key()
        if a[0] != b[0]:
            return a[0] < b[0]
        try:
            return a[1] < b[1]
        except TypeError:  # e.g. bool vs bool is fine; mixed never reaches here
            return str(a[1]) < str(b[1])

    def __repr__(self) -> str:
        if self.kind is LabelKind.SYMBOL:
            return f"`{self.value}`"
        return repr(self.value)


_EXPECTED_TYPES = {
    LabelKind.INT: int,
    LabelKind.REAL: float,
    LabelKind.STRING: str,
    LabelKind.BOOL: bool,
    LabelKind.SYMBOL: str,
}


def sym(name: str) -> Label:
    """Build a symbol label (an attribute/class name such as ``Movie``)."""
    return Label(LabelKind.SYMBOL, name)


def string(value: str) -> Label:
    """Build a string *data* label (such as ``"Casablanca"``)."""
    return Label(LabelKind.STRING, value)


def integer(value: int) -> Label:
    """Build an integer data label (array indices, counts, years...)."""
    return Label(LabelKind.INT, value)


def real(value: float) -> Label:
    """Build a real (float) data label, e.g. the ``1.2E6`` credit of Fig. 1."""
    return Label(LabelKind.REAL, float(value))


def boolean(value: bool) -> Label:
    """Build a boolean data label."""
    return Label(LabelKind.BOOL, value)


def label_of(value: "AtomValue | Label") -> Label:
    """Coerce a raw Python value into a base-data label.

    ``bool`` is checked before ``int`` because ``bool`` is a subtype of
    ``int`` in Python.  Strings become *string* labels; use :func:`sym` to
    build symbols explicitly -- the guess would be wrong half the time and
    the paper is explicit that the two are different things.
    """
    if isinstance(value, Label):
        return value
    if isinstance(value, bool):
        return boolean(value)
    if isinstance(value, int):
        return integer(value)
    if isinstance(value, float):
        return real(value)
    if isinstance(value, str):
        return string(value)
    raise TypeError(f"cannot make a label from {type(value).__name__}: {value!r}")
