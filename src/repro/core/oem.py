"""The Object Exchange Model (OEM): the leaf-value variant with identities.

Section 2 describes the second flavour of the model, used by Tsimmis and
Lorel: *"leaf nodes are labeled with data, internal nodes are not labeled
with meaningful data, and edges are labeled only with symbols"*::

    type base = int | string | ...
    type tree = base | set(symbol * tree)

and notes that *"in OEM, object identities are used as node labels and
place-holders to define trees"*.  An :class:`OemObject` is either *atomic*
(it holds one base value) or *complex* (it holds a set of ``symbol -> oid``
pairs); the oid is observable only through equality, exactly the paper's
constraint on node identifiers.  Cyclic data is expressed naturally because
complex objects refer to children by oid.

OEM is the exchange substrate of the Tsimmis project ("an internal data
structure for exchange of data between DBMSs"); :mod:`repro.core.convert`
maps it to and from the UnQL edge-labeled model, and :mod:`repro.lorel`
queries it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Union

__all__ = ["Oid", "OemObject", "OemDatabase", "OemError", "ATOMIC_TYPES"]

Oid = int
AtomicValue = Union[int, float, str, bool]

#: Python types allowed as atomic OEM values.
ATOMIC_TYPES = (int, float, str, bool)


class OemError(ValueError):
    """Raised on malformed OEM structures (dangling oids, bad values...)."""


@dataclass
class OemObject:
    """One OEM object: ``(oid, value)`` where value is atomic or complex.

    ``children`` is the list of ``(symbol, oid)`` pairs of a complex object;
    ``atom`` is the base value of an atomic object.  Exactly one of the two
    is meaningful, discriminated by :attr:`is_atomic` -- the tagged-union
    "switch" that makes the data self-describing.
    """

    oid: Oid
    atom: AtomicValue | None = None
    children: list[tuple[str, Oid]] = field(default_factory=list)

    @property
    def is_atomic(self) -> bool:
        return self.atom is not None

    @property
    def is_complex(self) -> bool:
        return self.atom is None

    def labels(self) -> set[str]:
        """The distinct child labels of a complex object."""
        return {label for label, _ in self.children}


class OemDatabase:
    """A collection of OEM objects with one or more named entry points.

    Entry names play the role of the "root" of section 2's model: queries
    traverse forward from a named object.
    """

    def __init__(self) -> None:
        self._objects: dict[Oid, OemObject] = {}
        self._names: dict[str, Oid] = {}
        self._next_oid: Oid = 1
        self._version = 0

    @property
    def version(self) -> int:
        """A counter bumped by every structural mutation.

        The Lorel pushdown indexes (:mod:`repro.planner.pushdown`) record
        the version they were built against and rebuild on mismatch, so a
        mutated database never answers from a stale candidate set.
        """
        return self._version

    # -- construction ---------------------------------------------------------

    def new_atomic(self, value: AtomicValue) -> Oid:
        """Create an atomic object holding ``value`` and return its oid."""
        if not isinstance(value, ATOMIC_TYPES):
            raise OemError(f"not an atomic OEM value: {value!r}")
        oid = self._next_oid
        self._next_oid += 1
        self._objects[oid] = OemObject(oid, atom=value)
        self._version += 1
        return oid

    def new_complex(self) -> Oid:
        """Create an empty complex object and return its oid."""
        oid = self._next_oid
        self._next_oid += 1
        self._objects[oid] = OemObject(oid)
        self._version += 1
        return oid

    def add_child(self, parent: Oid, label: str, child: Oid) -> None:
        """Attach ``child`` under ``parent`` with attribute name ``label``."""
        pobj = self.get(parent)
        if pobj.is_atomic:
            raise OemError(f"oid {parent} is atomic; it cannot have children")
        if child not in self._objects:
            raise OemError(f"unknown child oid {child}")
        pobj.children.append((label, child))
        self._version += 1

    def set_name(self, name: str, oid: Oid) -> None:
        """Register ``oid`` as a named database entry point."""
        if oid not in self._objects:
            raise OemError(f"cannot name unknown oid {oid}")
        self._names[name] = oid
        self._version += 1

    # -- inspection -----------------------------------------------------------

    def get(self, oid: Oid) -> OemObject:
        try:
            return self._objects[oid]
        except KeyError:
            raise OemError(f"unknown oid {oid}") from None

    def total_fanout(self, oids: "Iterable[Oid]") -> int:
        """Sum of child counts over ``oids`` (each counted as given).

        The OEM twin of :meth:`repro.core.graph.Graph.total_out_degree`:
        one bulk call so profiled Lorel traversals can derive their
        edge counts cheaply after the fact.
        """
        objects = self._objects
        return sum(len(objects[oid].children) for oid in oids)

    def lookup_name(self, name: str) -> Oid:
        try:
            return self._names[name]
        except KeyError:
            raise OemError(f"no database entry named {name!r}") from None

    @property
    def names(self) -> dict[str, Oid]:
        return dict(self._names)

    def oids(self) -> Iterator[Oid]:
        return iter(self._objects)

    def __len__(self) -> int:
        return len(self._objects)

    def children(self, oid: Oid, label: str | None = None) -> Iterator[Oid]:
        """Child oids of a complex object, optionally filtered by label."""
        obj = self.get(oid)
        for lab, child in obj.children:
            if label is None or lab == label:
                yield child

    def reachable(self, start: Oid) -> set[Oid]:
        """All oids reachable from ``start`` by forward traversal."""
        seen = {start}
        stack = [start]
        while stack:
            oid = stack.pop()
            obj = self.get(oid)
            for _, child in obj.children:
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return seen

    def validate(self) -> None:
        """Check referential integrity: every child oid must exist."""
        for obj in self._objects.values():
            for label, child in obj.children:
                if child not in self._objects:
                    raise OemError(
                        f"oid {obj.oid} has dangling child {child} under {label!r}"
                    )

    # -- bulk loading -----------------------------------------------------------

    @classmethod
    def from_obj(cls, obj: object, name: str = "DB") -> "OemDatabase":
        """Load JSON-shaped data as an OEM database rooted at ``name``."""
        db = cls()
        db.set_name(name, db._load(obj))
        return db

    def _load(self, obj: object) -> Oid:
        if isinstance(obj, ATOMIC_TYPES):
            return self.new_atomic(obj)
        if obj is None:
            return self.new_complex()
        if isinstance(obj, dict):
            oid = self.new_complex()
            for key, value in obj.items():
                if not isinstance(key, str):
                    raise OemError("OEM edge labels must be symbols (strings)")
                if isinstance(value, (list, tuple)):
                    for item in value:
                        self.add_child(oid, key, self._load(item))
                else:
                    self.add_child(oid, key, self._load(value))
            return oid
        if isinstance(obj, (list, tuple)):
            oid = self.new_complex()
            for item in obj:
                self.add_child(oid, "item", self._load(item))
            return oid
        raise OemError(f"cannot load {type(obj).__name__} into OEM")
