"""Bisimulation: the observational equality of semistructured data.

Section 2 of the paper discusses *object identity*: node identifiers "apart
from an equality test, are not observable in the query language", and UnQL
avoids object identity altogether "by not having object identity and
exploiting a simple form of pattern matching".  The right notion of equality
for the value-based (UnQL) model is therefore **bisimulation**: two rooted
graphs denote the same set-theoretic tree value iff their roots are
bisimilar.  Bisimulation also underlies the well-definedness of structural
recursion on cyclic graphs (section 3): a recursion is legal exactly when it
respects bisimulation, and our engine's results are property-tested to be
bisimulation-invariant.

The implementation is iterated partition refinement on *signatures*:
``sig(n) = { (label, block(dst)) | n --label--> dst }``.  Refinement runs to
a fixed point, giving the coarsest partition, in ``O(E * iterations)`` with
``iterations <= diameter + 1`` -- comfortably fast at the paper's scale and
far simpler than Paige–Tarjan, which matters more here than the extra log
factor.
"""

from __future__ import annotations

from typing import Mapping

from .graph import Graph, disjoint_union
from .labels import Label

__all__ = [
    "coarsest_partition",
    "bisimilar_nodes",
    "bisimilar",
    "graph_equal",
    "bisimulation_classes",
    "reduce_graph",
]


def coarsest_partition(graph: Graph, nodes: set[int] | None = None) -> dict[int, int]:
    """Compute the coarsest bisimulation partition of ``nodes``.

    Returns a mapping ``node -> block id``; two nodes are bisimilar iff
    they map to the same block.  ``nodes`` defaults to every node of the
    graph (not only the reachable ones, so the function also serves the
    multi-graph arena built by :func:`~repro.core.graph.disjoint_union`).
    """
    universe = set(graph.nodes()) if nodes is None else set(nodes)
    # Initial partition: a single block.  (Refining from the one-block
    # partition converges to the coarsest bisimulation.)
    block: dict[int, int] = {n: 0 for n in universe}
    while True:
        signatures: dict[int, frozenset[tuple[Label, int]]] = {}
        for n in universe:
            signatures[n] = frozenset(
                (e.label, block[e.dst]) for e in graph.edges_from(n) if e.dst in universe
            )
        # Renumber blocks by (old block, signature) so refinement is stable.
        renumber: dict[tuple[int, frozenset], int] = {}
        new_block: dict[int, int] = {}
        for n in sorted(universe):
            key = (block[n], signatures[n])
            if key not in renumber:
                renumber[key] = len(renumber)
            new_block[n] = renumber[key]
        if len(set(new_block.values())) == len(set(block.values())):
            return new_block
        block = new_block


def bisimilar_nodes(graph: Graph, a: int, b: int) -> bool:
    """True iff nodes ``a`` and ``b`` of one graph are bisimilar."""
    partition = coarsest_partition(graph)
    return partition[a] == partition[b]


def bisimilar(g1: Graph, g2: Graph) -> bool:
    """True iff the two rooted graphs denote the same tree value.

    This is the equality the paper wants for value-based comparison "across
    databases" where object identities are meaningless: the graphs are laid
    side by side in one arena and their roots compared under the coarsest
    bisimulation of the combined node set.
    """
    arena, (m1, m2) = disjoint_union([g1, g2])
    partition = coarsest_partition(arena)
    return partition[m1[g1.root]] == partition[m2[g2.root]]


#: Alias emphasising that bisimulation *is* graph equality in this model.
graph_equal = bisimilar


def bisimulation_classes(graph: Graph) -> list[set[int]]:
    """The bisimulation equivalence classes of the graph's nodes."""
    partition = coarsest_partition(graph)
    classes: dict[int, set[int]] = {}
    for node, blk in partition.items():
        classes.setdefault(blk, set()).add(node)
    return [classes[b] for b in sorted(classes)]


def reduce_graph(graph: Graph) -> Graph:
    """The bisimulation-minimal quotient of the graph.

    Every node is collapsed into its bisimulation class; the result is the
    canonical smallest graph with the same tree value (``bisimilar(g,
    reduce_graph(g))`` always holds -- a property test guards this).  The
    quotient is what a value-based store would actually keep on disk, and
    it is also the first step of DataGuide-style summarization.
    """
    reach = graph.reachable()
    partition = coarsest_partition(graph, reach)
    out = Graph()
    node_for_block: dict[int, int] = {}
    for node in sorted(reach):
        blk = partition[node]
        if blk not in node_for_block:
            node_for_block[blk] = out.new_node()
    out.set_root(node_for_block[partition[graph.root]])
    added: set[tuple[int, Label, int]] = set()
    for node in sorted(reach):
        src = node_for_block[partition[node]]
        for edge in graph.edges_from(node):
            if edge.dst not in reach:
                continue
            dst = node_for_block[partition[edge.dst]]
            key = (src, edge.label, dst)
            if key not in added:
                added.add(key)
                out.add_edge(src, edge.label, dst)
    return out


def partition_signature(graph: Graph) -> Mapping[int, int]:
    """Stable per-node block ids for the reachable part of ``graph``.

    Exposed for tools (e.g. the storage layer's clustering heuristics and
    tests) that want the partition without re-deriving it.
    """
    return coarsest_partition(graph, graph.reachable())
