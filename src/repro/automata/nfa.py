"""Thompson construction: path regex -> NFA with epsilon moves.

The NFA is the operational form of a general path expression.  Its
transitions are guarded by :class:`~repro.automata.regex.LabelPredicate`
values rather than concrete letters, because the alphabet of a
semistructured database (all labels) is unbounded and heterogeneous.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.labels import Label
from .regex import (
    AltRE,
    AtomRE,
    ConcatRE,
    EpsilonRE,
    LabelPredicate,
    OptRE,
    PathRegex,
    PlusRE,
    StarRE,
)

__all__ = ["Nfa", "build_nfa"]


@dataclass
class Nfa:
    """An NFA with predicate-guarded transitions and epsilon moves.

    States are integers ``0..n-1``; ``transitions[s]`` is a list of
    ``(predicate, target)`` pairs and ``epsilon[s]`` a list of targets.
    """

    start: int = 0
    accepting: set[int] = field(default_factory=set)
    transitions: list[list[tuple[LabelPredicate, int]]] = field(default_factory=list)
    epsilon: list[list[int]] = field(default_factory=list)

    # -- construction helpers -----------------------------------------------

    def new_state(self) -> int:
        self.transitions.append([])
        self.epsilon.append([])
        return len(self.transitions) - 1

    def add_transition(self, src: int, predicate: LabelPredicate, dst: int) -> None:
        self.transitions[src].append((predicate, dst))

    def add_epsilon(self, src: int, dst: int) -> None:
        self.epsilon[src].append(dst)

    @property
    def num_states(self) -> int:
        return len(self.transitions)

    # -- execution -------------------------------------------------------------

    def eps_closure(self, states: Iterable[int]) -> frozenset[int]:
        """All states reachable from ``states`` via epsilon moves."""
        seen = set(states)
        stack = list(seen)
        while stack:
            s = stack.pop()
            for t in self.epsilon[s]:
                if t not in seen:
                    seen.add(t)
                    stack.append(t)
        return frozenset(seen)

    def step(self, states: frozenset[int], label: Label) -> frozenset[int]:
        """One consumption step: predicate-matching moves then closure."""
        nxt: set[int] = set()
        for s in states:
            for predicate, t in self.transitions[s]:
                if predicate.matches(label):
                    nxt.add(t)
        return self.eps_closure(nxt)

    def initial(self) -> frozenset[int]:
        return self.eps_closure([self.start])

    def is_accepting(self, states: frozenset[int]) -> bool:
        return any(s in self.accepting for s in states)

    def matches(self, labels: Sequence[Label]) -> bool:
        """Whole-sequence acceptance (the word semantics of the regex)."""
        current = self.initial()
        for label in labels:
            if not current:
                return False
            current = self.step(current, label)
        return self.is_accepting(current)

    def predicates(self) -> list[LabelPredicate]:
        """The distinct transition guards (deterministic order)."""
        seen: dict[LabelPredicate, None] = {}
        for moves in self.transitions:
            for predicate, _ in moves:
                seen.setdefault(predicate)
        return list(seen)


def build_nfa(regex: PathRegex) -> Nfa:
    """Thompson's construction, adapted to predicate-guarded transitions."""
    nfa = Nfa()
    start = nfa.new_state()
    nfa.start = start
    end = _build(nfa, regex, start)
    nfa.accepting = {end}
    return nfa


def _build(nfa: Nfa, node: PathRegex, entry: int) -> int:
    """Wire ``node`` into ``nfa`` starting at ``entry``; return the exit state."""
    if isinstance(node, EpsilonRE):
        return entry
    if isinstance(node, AtomRE):
        exit_state = nfa.new_state()
        nfa.add_transition(entry, node.predicate, exit_state)
        return exit_state
    if isinstance(node, ConcatRE):
        mid = _build(nfa, node.left, entry)
        return _build(nfa, node.right, mid)
    if isinstance(node, AltRE):
        left_exit = _build(nfa, node.left, entry)
        right_entry = nfa.new_state()
        nfa.add_epsilon(entry, right_entry)
        right_exit = _build(nfa, node.right, right_entry)
        join = nfa.new_state()
        nfa.add_epsilon(left_exit, join)
        nfa.add_epsilon(right_exit, join)
        return join
    if isinstance(node, StarRE):
        loop = nfa.new_state()
        nfa.add_epsilon(entry, loop)
        body_exit = _build(nfa, node.inner, loop)
        nfa.add_epsilon(body_exit, loop)
        return loop
    if isinstance(node, PlusRE):
        body_exit = _build(nfa, node.inner, entry)
        # loop back: after one mandatory pass, behave like star
        loop = nfa.new_state()
        nfa.add_epsilon(body_exit, loop)
        again_exit = _build(nfa, node.inner, loop)
        nfa.add_epsilon(again_exit, loop)
        return loop
    if isinstance(node, OptRE):
        body_exit = _build(nfa, node.inner, entry)
        join = nfa.new_state()
        nfa.add_epsilon(entry, join)
        nfa.add_epsilon(body_exit, join)
        return join
    raise TypeError(f"unknown regex node {type(node).__name__}")
