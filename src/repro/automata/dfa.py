"""Lazy determinization of predicate-guarded NFAs.

Classical subset construction assumes a finite alphabet; path regexes over
semistructured data do not have one (any int, string or symbol can label an
edge).  The trick: two labels that agree on every transition predicate of
the NFA are indistinguishable, so the *predicate truth vector* of a label
is its effective letter.  :class:`LazyDfa` builds DFA states on demand,
memoized per (subset-state, truth-vector); the result is a deterministic
runner with amortized O(1) predicate work per (state, vector) pair, which
is what makes repeated RPQ evaluation over large graphs cheap.
"""

from __future__ import annotations

from ..core.labels import Label
from .nfa import Nfa
from .regex import LabelPredicate

__all__ = ["LazyDfa"]

#: Sentinel distinguishing "not computed yet" from a computed ``None``.
_UNCOMPUTED = object()


class LazyDfa:
    """A DFA materialized lazily from an NFA.

    DFA states are interned frozensets of NFA states.  The transition
    table is keyed by ``(dfa_state, truth_vector)`` where the truth vector
    evaluates every NFA predicate against the incoming label once.
    """

    def __init__(self, nfa: Nfa) -> None:
        self._nfa = nfa
        self._predicates: list[LabelPredicate] = nfa.predicates()
        self._pred_index = {p: i for i, p in enumerate(self._predicates)}
        self._state_ids: dict[frozenset[int], int] = {}
        self._subsets: list[frozenset[int]] = []
        self._accepting: list[bool] = []
        self._table: dict[tuple[int, tuple[bool, ...]], int] = {}
        self._vector_cache: dict[Label, tuple[bool, ...]] = {}
        self._live_labels: dict[int, "frozenset[Label] | None"] = {}
        self.start = self._intern(nfa.initial())

    # -- state management -------------------------------------------------------

    def _intern(self, subset: frozenset[int]) -> int:
        if subset not in self._state_ids:
            self._state_ids[subset] = len(self._subsets)
            self._subsets.append(subset)
            self._accepting.append(self._nfa.is_accepting(subset))
        return self._state_ids[subset]

    def _truth_vector(self, label: Label) -> tuple[bool, ...]:
        cached = self._vector_cache.get(label)
        if cached is None:
            cached = tuple(p.matches(label) for p in self._predicates)
            self._vector_cache[label] = cached
        return cached

    # -- execution ----------------------------------------------------------------

    def step(self, state: int, label: Label) -> int:
        """The deterministic transition on ``label`` (building it if new)."""
        vector = self._truth_vector(label)
        key = (state, vector)
        nxt = self._table.get(key)
        if nxt is None:
            subset = self._subsets[state]
            targets: set[int] = set()
            for s in subset:
                for predicate, t in self._nfa.transitions[s]:
                    if vector[self._pred_index[predicate]]:
                        targets.add(t)
            nxt = self._intern(self._nfa.eps_closure(targets))
            self._table[key] = nxt
        return nxt

    def is_accepting(self, state: int) -> bool:
        return self._accepting[state]

    def live_exact_labels(self, state: int) -> "frozenset[Label] | None":
        """The labels that can move ``state`` forward, when that set is exact.

        Returns the union of the *exact* transition guards leaving the
        state's NFA subset, or ``None`` as soon as any guard is
        non-exact (wildcard, glob, type test, negation) -- then no
        finite label set captures the live alphabet and callers must
        fall back to a full edge scan.  Any label outside a non-``None``
        result necessarily steps to the dead state, which is what lets
        the product kernel skip those edges without changing results.
        Memoized per state (the subset never changes).
        """
        cached = self._live_labels.get(state, _UNCOMPUTED)
        if cached is not _UNCOMPUTED:
            return cached
        labels: set[Label] = set()
        live: "frozenset[Label] | None" = None
        for s in self._subsets[state]:
            for predicate, _target in self._nfa.transitions[s]:
                if not predicate.is_exact:
                    break
                labels.add(predicate.exact_label)
            else:
                continue
            break
        else:
            live = frozenset(labels)
        self._live_labels[state] = live
        return live

    def ensure_dead_state(self) -> int:
        """Intern (and return) the dead state explicitly.

        The pruned product kernel calls this when it skips edges whose
        label cannot advance the automaton: a full scan would have
        stepped those edges and thereby materialized the dead state, so
        interning it here keeps ``num_materialized_states`` -- a pinned
        golden-profile observable -- identical between the pruned and
        unpruned traversals.
        """
        return self._intern(frozenset())

    def is_dead(self, state: int) -> bool:
        """True iff the state is the empty subset: no continuation can match."""
        return not self._subsets[state]

    def matches(self, labels) -> bool:
        state = self.start
        for label in labels:
            state = self.step(state, label)
            if self.is_dead(state):
                return False
        return self.is_accepting(state)

    @property
    def num_materialized_states(self) -> int:
        return len(self._subsets)
